//! `stidx` — command-line front end for the spatiotemporal index.
//!
//! ```text
//! stidx generate --kind random --n 10000 --out data.stdat [--seed 7]
//! stidx stats    --data data.stdat
//! stidx build    --data data.stdat --out index.stidx
//!                [--backend ppr|rstar] [--splits 150%|--splits 5000]
//!                [--single merge|dp] [--dist lagreedy|greedy|optimal]
//!                [--threads auto|seq|N]
//! stidx query    --index index.stidx --backend ppr|rstar
//!                --area x0,y0,x1,y1 --time T [--until T2]
//!                [--threads auto|seq|N]
//! stidx nearest  --index index.stidx --backend ppr
//!                --point x,y --time T [--k 5]
//! stidx ingest   --data data.stdat --out index.stidx [--commit-every 8]
//! ```
//!
//! Datasets use the `STDAT1` format (`sti_datagen::io`); indexes use the
//! `STIDX1` page-store format with tree metadata. Index files carry a
//! backend tag, so opening one with the wrong `--backend` fails with a
//! clear error naming the actual backend.
//!
//! R\*-Tree indexes are interpreted with the paper's 1000-instant
//! evolution (time scaled by `TIME_EXTENT`); `stidx build` always writes
//! that scale, but an R\* file saved by library code with a custom
//! `IndexConfig::time_extent` would be misread here.

use spatiotemporal_index::core::{
    DistributionAlgorithm, IndexBackend, IndexConfig, IngestOp, IngestPipeline, ObjectRecord,
    OnlineSplitConfig, Parallelism, SingleSplitAlgorithm, SpatioTemporalIndex, SplitBudget,
};
use spatiotemporal_index::datagen::{
    load_dataset, save_dataset, DatasetReader, DatasetStats, DatasetWriter, OrbitDatasetSpec,
    RailwayDatasetSpec, RandomDatasetSpec, RegionDatasetSpec, TIME_EXTENT,
};
use spatiotemporal_index::geom::{Rect2, StBox, TimeInterval};
use spatiotemporal_index::obs::MetricSet;
use spatiotemporal_index::pprtree::{PprParams, PprTree};
use spatiotemporal_index::rstar::RStarTree;
use spatiotemporal_index::server::cli::{parse_flags, Flags};
use spatiotemporal_index::storage::{BufferPolicy, FileBackend, FsyncPolicy, PageStore, WalConfig};
use spatiotemporal_index::trajectory::RasterizedObject;
use std::io::{Read, Write};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

const USAGE: &str = "usage:
  stidx [--metrics FILE] COMMAND ...
  stidx generate --kind random|railway|orbits|regions --n N --out FILE [--seed S]
  stidx generate --kind random --scale mid|big --out FILE [--n N] [--seed S]
  stidx stats    FILE | --data FILE | --index FILE
  stidx build    --data FILE --out FILE [--backend ppr|rstar]
                 [--splits P% | --splits N] [--single merge|dp]
                 [--dist lagreedy|greedy|optimal] [--threads auto|seq|N]
  stidx build    --data FILE --out FILE --bulk [--scale-stats]
  stidx query    --index FILE --backend ppr|rstar
                 --area x0,y0,x1,y1 --time T [--until T2]
                 [--threads auto|seq|N] [--policy lru|2q] [--readahead]
  stidx nearest  --index FILE --backend ppr
                 --point x,y --time T [--k 5]
  stidx ingest   --data FILE --out FILE [--commit-every N]
                 [--wal DIR] [--fsync always|commit|N] [--checkpoint-every N]
  stidx recover  --wal DIR --out FILE [--fsync always|commit|N]
  stidx check    FILE | --index FILE

  --wal DIR makes ingest durable: every accepted operation is logged
  (fsynced per --fsync: every append, at commit only, or every N
  appends) and a checkpoint is taken every N commits. After a crash,
  stidx recover rebuilds from DIR, replays the log tail, seals, and
  writes the index.

  --scale mid|big streams the scale-tier random dataset (100k / 1M
  objects) straight to disk — nothing is materialized in memory, so the
  big tier generates in constant space.

  --bulk streams the dataset through the external-sort bulk loader into
  a file-backed PPR-Tree: sort by space-time Hilbert order, pack pages
  bottom-up at target fanout. Never holds the dataset in memory.
  --scale-stats prints pages written / peak resident / fill factor.

  --metrics FILE (any position) writes counters from the run — per-query
  I/O, build phase timings, index gauges — in Prometheus text format, or
  JSON when FILE ends in .json. A --bulk build exports
  bulk_pages_written; a --policy/--readahead query exports
  buffer_scan_evictions_avoided and readahead_pages_{hit,wasted}.";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (args, metrics_path) = match strip_metrics_flag(args) {
        Ok(v) => v,
        Err(msg) => {
            eprintln!("stidx: {msg}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let mut metrics = MetricSet::new();
    match run(&args, &mut metrics) {
        Ok(()) => {
            if let Some(path) = metrics_path {
                if let Err(msg) = write_metrics(&path, &metrics) {
                    eprintln!("stidx: {msg}");
                    return ExitCode::FAILURE;
                }
            }
            ExitCode::SUCCESS
        }
        Err(msg) => {
            eprintln!("stidx: {msg}\n\n{USAGE}");
            ExitCode::FAILURE
        }
    }
}

/// Pull the global `--metrics FILE` / `--metrics=FILE` flag out of the
/// argument list (any position) so subcommand parsers never see it.
fn strip_metrics_flag(args: Vec<String>) -> Result<(Vec<String>, Option<PathBuf>), String> {
    let mut rest = Vec::with_capacity(args.len());
    let mut path = None;
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        if arg == "--metrics" {
            let v = it.next().ok_or("--metrics needs a file path")?;
            path = Some(PathBuf::from(v));
        } else if let Some(v) = arg.strip_prefix("--metrics=") {
            path = Some(PathBuf::from(v));
        } else {
            rest.push(arg);
        }
    }
    Ok((rest, path))
}

fn write_metrics(path: &Path, metrics: &MetricSet) -> Result<(), String> {
    let text = if path.extension().is_some_and(|e| e == "json") {
        metrics.to_json()
    } else {
        metrics.to_prometheus()
    };
    std::fs::write(path, text).map_err(|e| format!("writing {}: {e}", path.display()))
}

fn run(args: &[String], metrics: &mut MetricSet) -> Result<(), String> {
    let Some((cmd, rest)) = args.split_first() else {
        return Err("no command given".into());
    };
    // `check` and `stats` take their file as a bare positional too
    // (`stidx stats index.stidx`), matching fsck-style tools.
    if cmd == "check" {
        if let [path] = rest {
            if !path.starts_with("--") {
                return check(&PathBuf::from(path));
            }
        }
        let opts = parse_flags(rest, &["index"], &[])?;
        return check(&PathBuf::from(opts.need("index")?));
    }
    if cmd == "stats" {
        if let [path] = rest {
            if !path.starts_with("--") {
                return stats(&PathBuf::from(path), metrics);
            }
        }
        let opts = parse_flags(rest, &["data", "index"], &[])?;
        let path = opts
            .get("data")
            .or_else(|| opts.get("index"))
            .ok_or("stats needs a file: positional, --data, or --index")?;
        return stats(&PathBuf::from(path), metrics);
    }
    // Each subcommand declares its flag vocabulary; the shared strict
    // parser (`sti_server::cli`) then refuses unknown and duplicated
    // flags instead of silently dropping a typo onto a default.
    let (vocabulary, switches): (&[&str], &[&str]) = match cmd.as_str() {
        "generate" => (&["kind", "n", "out", "seed", "scale"], &[]),
        "build" => (
            &[
                "data", "out", "backend", "splits", "single", "dist", "threads",
            ],
            &["bulk", "scale-stats"],
        ),
        "query" => (
            &[
                "index", "backend", "area", "time", "until", "threads", "policy",
            ],
            &["readahead"],
        ),
        "nearest" => (&["index", "backend", "point", "time", "k"], &[]),
        "ingest" => (
            &[
                "data",
                "out",
                "commit-every",
                "wal",
                "fsync",
                "checkpoint-every",
            ],
            &[],
        ),
        "recover" => (&["wal", "out", "fsync"], &[]),
        other => return Err(format!("unknown command {other}")),
    };
    let opts = parse_flags(rest, vocabulary, switches)?;
    match cmd.as_str() {
        "generate" => generate(&opts),
        "build" => build(&opts, metrics),
        "query" => query(&opts, metrics),
        "nearest" => nearest(&opts),
        "ingest" => ingest(&opts, metrics),
        "recover" => recover(&opts, metrics),
        other => Err(format!("unknown command {other}")),
    }
}

/// Open a saved PPR-Tree index and run the full-history invariant
/// sanitizer over it ([`spatiotemporal_index::pprtree::check`]).
fn check(path: &Path) -> Result<(), String> {
    use spatiotemporal_index::pprtree::check::validate;
    let tree = PprTree::open_file(path).map_err(|e| {
        format!(
            "opening {}: {e} (only ppr indexes can be checked)",
            path.display()
        )
    })?;
    match validate(&tree) {
        Ok(report) => {
            println!("{}: ok — {report}", path.display());
            Ok(())
        }
        Err(violations) => {
            for v in &violations {
                println!("{}: {v}", path.display());
            }
            Err(format!(
                "{} invariant violation(s) in {}",
                violations.len(),
                path.display()
            ))
        }
    }
}

fn generate(opts: &Flags) -> Result<(), String> {
    let kind = opts.need("kind")?;
    let out = PathBuf::from(opts.need("out")?);
    let seed: Option<u64> = match opts.get("seed") {
        Some(s) => Some(s.parse().map_err(|_| "--seed must be an integer")?),
        None => None,
    };
    if let Some(scale) = opts.get("scale") {
        return generate_scale(kind, scale, opts.get("n"), seed, &out);
    }
    let n: usize = opts
        .need("n")?
        .parse()
        .map_err(|_| "--n must be an integer")?;
    let objects: Vec<RasterizedObject> = match kind {
        "random" => {
            let mut spec = RandomDatasetSpec::paper(n);
            if let Some(s) = seed {
                spec.seed = s;
            }
            spec.generate()
        }
        "railway" => {
            let mut spec = RailwayDatasetSpec::paper(n);
            if let Some(s) = seed {
                spec.seed = s;
            }
            spec.generate_rasterized()
        }
        "orbits" => {
            let mut spec = OrbitDatasetSpec::standard(n);
            if let Some(s) = seed {
                spec.seed = s;
            }
            spec.generate()
        }
        "regions" => {
            let mut spec = RegionDatasetSpec::standard(n);
            if let Some(s) = seed {
                spec.seed = s;
            }
            spec.generate_rasterized()
        }
        other => return Err(format!("unknown dataset kind {other}")),
    };
    save_dataset(&out, &objects).map_err(|e| format!("writing {}: {e}", out.display()))?;
    println!("wrote {} objects to {}", objects.len(), out.display());
    Ok(())
}

/// `stidx generate --scale mid|big`: stream the scale-tier random
/// dataset to disk one object at a time. The spec (and therefore the
/// file) is byte-identical to what the benches generate in process, so
/// a CI-cached dataset and an in-process run build the same tree.
fn generate_scale(
    kind: &str,
    scale: &str,
    n: Option<&str>,
    seed: Option<u64>,
    out: &Path,
) -> Result<(), String> {
    if kind != "random" {
        return Err(format!(
            "--scale only applies to the random dataset (got --kind {kind})"
        ));
    }
    let default_n = match scale {
        "mid" => 100_000,
        "big" => 1_000_000,
        other => return Err(format!("unknown scale {other} (expected mid or big)")),
    };
    let n: usize = match n {
        Some(s) => s.parse().map_err(|_| "--n must be an integer")?,
        None => default_n,
    };
    let mut spec = RandomDatasetSpec::big(n);
    if let Some(s) = seed {
        spec.seed = s;
    }
    let mut w =
        DatasetWriter::create(out).map_err(|e| format!("creating {}: {e}", out.display()))?;
    for obj in spec.iter() {
        w.append(&obj)
            .map_err(|e| format!("writing {}: {e}", out.display()))?;
    }
    w.finish()
        .map_err(|e| format!("writing {}: {e}", out.display()))?;
    println!("wrote {n} objects ({scale} tier) to {}", out.display());
    Ok(())
}

/// `stidx stats FILE` — sniff the 8-byte magic and describe either a
/// dataset (`STDAT1`) or a saved index (`STIDX1`).
fn stats(path: &Path, metrics: &mut MetricSet) -> Result<(), String> {
    let mut magic = [0u8; 8];
    {
        let mut f =
            std::fs::File::open(path).map_err(|e| format!("opening {}: {e}", path.display()))?;
        f.read_exact(&mut magic)
            .map_err(|e| format!("reading {}: {e}", path.display()))?;
    }
    if &magic == spatiotemporal_index::datagen::io::DATASET_MAGIC {
        let objects = load_dataset(path).map_err(|e| format!("reading {}: {e}", path.display()))?;
        print_or_pipe(&format!(
            "{}\n",
            DatasetStats::compute(&objects, TIME_EXTENT)
        ))?;
        metrics.gauge(
            "stidx_dataset_objects",
            "objects in the dataset file",
            objects.len() as f64,
        );
        return Ok(());
    }
    if &magic != spatiotemporal_index::storage::persist::MAGIC {
        return Err(format!(
            "{}: neither an STDAT dataset nor an STIDX index file",
            path.display()
        ));
    }
    index_stats(path, metrics)
}

/// Describe a saved index: backend, size on disk, record counts, shape.
fn index_stats(path: &Path, metrics: &mut MetricSet) -> Result<(), String> {
    let bytes = std::fs::metadata(path)
        .map_err(|e| format!("reading {}: {e}", path.display()))?
        .len();
    // The backend tag is the first metadata byte; `open_file` validates
    // it, so try ppr first and fall back to rstar on the tag mismatch.
    match PprTree::open_file(path) {
        Ok(tree) => {
            let height = tree.roots().iter().map(|r| r.level + 1).max().unwrap_or(0);
            let mut out = String::new();
            out.push_str("backend          ppr (partially persistent R-Tree)\n");
            out.push_str(&format!(
                "file             {} ({bytes} bytes)\n",
                path.display()
            ));
            out.push_str(&format!("pages            {}\n", tree.num_pages()));
            out.push_str(&format!("records posted   {}\n", tree.total_records()));
            out.push_str(&format!("records alive    {}\n", tree.alive_records()));
            out.push_str(&format!("root log spans   {}\n", tree.roots().len()));
            out.push_str(&format!("height           {height}\n"));
            out.push_str(&format!("clock (now)      {}\n", tree.now()));
            print_or_pipe(&out)?;
            metrics.gauge(
                "stidx_index_pages",
                "pages in the index",
                tree.num_pages() as f64,
            );
            metrics.gauge(
                "stidx_index_records",
                "records posted to the index",
                tree.total_records() as f64,
            );
            metrics.gauge("stidx_index_height", "tree height", f64::from(height));
            Ok(())
        }
        Err(first) => match RStarTree::open_file(path) {
            Ok(tree) => {
                let mut out = String::new();
                out.push_str("backend          rstar (3D R*-Tree)\n");
                out.push_str(&format!(
                    "file             {} ({bytes} bytes)\n",
                    path.display()
                ));
                out.push_str(&format!("pages            {}\n", tree.num_pages()));
                out.push_str(&format!("records          {}\n", tree.len()));
                out.push_str(&format!("height           {}\n", tree.height()));
                print_or_pipe(&out)?;
                metrics.gauge(
                    "stidx_index_pages",
                    "pages in the index",
                    tree.num_pages() as f64,
                );
                metrics.gauge(
                    "stidx_index_records",
                    "records posted to the index",
                    tree.len() as f64,
                );
                metrics.gauge(
                    "stidx_index_height",
                    "tree height",
                    f64::from(tree.height()),
                );
                Ok(())
            }
            Err(_) => Err(format!("opening {}: {first}", path.display())),
        },
    }
}

fn build(opts: &Flags, metrics: &mut MetricSet) -> Result<(), String> {
    let data = PathBuf::from(opts.need("data")?);
    let out = PathBuf::from(opts.need("out")?);
    remove_stale_temp(&out)?;
    if opts.has("bulk") {
        for flag in ["backend", "splits", "single", "dist", "threads"] {
            if opts.get(flag).is_some() {
                return Err(format!(
                    "--{flag} does not apply to --bulk (the bulk loader is ppr-only \
                     and indexes whole lifetimes, no split planning)"
                ));
            }
        }
        return bulk_build(&data, &out, metrics, opts.has("scale-stats"));
    }
    if opts.has("scale-stats") {
        return Err("--scale-stats needs --bulk".into());
    }
    let backend = parse_backend(opts.get("backend").unwrap_or("ppr"))?;
    let budget = match opts.get("splits") {
        None => SplitBudget::Percent(150.0),
        Some(s) => match s.strip_suffix('%') {
            Some(p) => {
                let pct: f64 = p
                    .parse()
                    .map_err(|_| "--splits percentage must be a number")?;
                if !pct.is_finite() || pct < 0.0 {
                    return Err("--splits percentage must be a non-negative number".into());
                }
                SplitBudget::Percent(pct)
            }
            None => SplitBudget::Count(s.parse().map_err(|_| "--splits must be N or P%")?),
        },
    };
    let single = match opts.get("single").unwrap_or("merge") {
        "merge" => SingleSplitAlgorithm::MergeSplit,
        "dp" => SingleSplitAlgorithm::DpSplit,
        other => return Err(format!("unknown single-object algorithm {other}")),
    };
    let dist = match opts.get("dist").unwrap_or("lagreedy") {
        "lagreedy" => DistributionAlgorithm::LaGreedy,
        "greedy" => DistributionAlgorithm::Greedy,
        "optimal" => DistributionAlgorithm::Optimal,
        other => return Err(format!("unknown distribution algorithm {other}")),
    };

    let threads = match opts.get("threads") {
        Some(t) => Parallelism::parse(t).map_err(|e| format!("--threads: {e}"))?,
        None => Parallelism::Auto,
    };

    let objects = load_dataset(&data).map_err(|e| format!("reading {}: {e}", data.display()))?;
    println!(
        "planning splits for {} objects ({single} + {dist}, threads={threads})...",
        objects.len()
    );
    let (mut index, stats) = SpatioTemporalIndex::build_from_objects(
        &objects,
        single,
        dist,
        budget,
        None,
        &IndexConfig::paper(backend),
        threads,
    )
    .map_err(|e| format!("building the index: {e}"))?;
    println!("build stats: {stats}");
    metrics.record_spans("stidx_build", &stats.spans());
    metrics.gauge(
        "stidx_build_records_emitted",
        "records the split plan emitted",
        stats.records_emitted as f64,
    );
    metrics.gauge(
        "stidx_index_pages",
        "pages in the index",
        index.num_pages() as f64,
    );
    let saved = match backend {
        IndexBackend::PprTree => index.as_ppr_mut().expect("ppr backend").save_to_file(&out),
        IndexBackend::RStar => index
            .as_rstar_mut()
            .expect("rstar backend")
            .save_to_file(&out),
    };
    saved.map_err(|e| format!("writing {}: {e}", out.display()))?;
    println!("wrote {} pages to {}", index.num_pages(), out.display());
    Ok(())
}

/// `stidx build --bulk`: stream the dataset through the external-sort
/// bulk loader into a file-backed PPR-Tree, then persist it in the
/// standard `STIDX1` format (so `stidx check` / `query` / `stats` work
/// on it unchanged). The dataset is never materialized: objects flow
/// from [`DatasetReader`] straight into the loader's spill files, and
/// the tree pages land in a scratch `FileBackend` as they are packed.
fn bulk_build(
    data: &Path,
    out: &Path,
    metrics: &mut MetricSet,
    scale_stats: bool,
) -> Result<(), String> {
    let reader =
        DatasetReader::open(data).map_err(|e| format!("reading {}: {e}", data.display()))?;
    let expected = reader.remaining() as u64;
    println!("bulk-loading {expected} objects from {}...", data.display());

    // Scratch directory beside the output for the backing page file and
    // the sort spool; removed whether or not the build succeeds.
    let scratch = out.with_extension("bulk-scratch");
    std::fs::create_dir_all(&scratch)
        .map_err(|e| format!("creating scratch dir {}: {e}", scratch.display()))?;
    let result = bulk_build_in(reader, expected, &scratch, out, metrics, scale_stats);
    let _ = std::fs::remove_dir_all(&scratch);
    result
}

fn bulk_build_in(
    reader: DatasetReader,
    expected: u64,
    scratch: &Path,
    out: &Path,
    metrics: &mut MetricSet,
    scale_stats: bool,
) -> Result<(), String> {
    let backend = FileBackend::create(&scratch.join("tree.pages"))
        .map_err(|e| format!("creating the backing page file: {e}"))?;
    let config = IndexConfig::paper(IndexBackend::PprTree);
    let store = PageStore::with_backend(Box::new(backend), config.ppr.buffer_pages);

    // Surface a mid-stream dataset read error through the iterator
    // without panicking: stash it, stop the stream, and check after.
    let read_err = std::cell::RefCell::new(None);
    let records = reader.map_while(|r| match r {
        Ok(o) => Some(ObjectRecord {
            id: o.id(),
            stbox: StBox::new(o.mbr_range(0, o.len()), o.lifetime()),
        }),
        Err(e) => {
            *read_err.borrow_mut() = Some(e);
            None
        }
    });
    let (mut index, stats) = SpatioTemporalIndex::bulk_build_ppr(records, &config, store, scratch)
        .map_err(|e| format!("bulk build failed: {e}"))?;
    if let Some(e) = read_err.into_inner() {
        return Err(format!("reading the dataset mid-stream: {e}"));
    }
    if stats.pieces != expected {
        return Err(format!(
            "dataset promised {expected} objects but yielded {}",
            stats.pieces
        ));
    }

    metrics.gauge(
        "bulk_pages_written",
        "pages the bulk loader wrote (all levels plus the root chain)",
        stats.pages_written as f64,
    );
    metrics.gauge(
        "bulk_peak_resident_pages",
        "peak node-sized working set held in memory during the build",
        stats.peak_resident_pages as f64,
    );
    metrics.gauge(
        "bulk_fill_factor",
        "entries recorded / (pages written x fanout)",
        stats.fill_factor,
    );
    metrics.gauge(
        "bulk_spilled_runs",
        "sorted runs spooled to disk by the external sort",
        stats.spilled_runs as f64,
    );
    if scale_stats {
        println!("pages written     {}", stats.pages_written);
        println!("  leaf pages      {}", stats.leaf_pages);
        println!("levels            {}", stats.levels);
        println!("peak resident     {} pages", stats.peak_resident_pages);
        println!("fill factor       {:.3}", stats.fill_factor);
        println!("spilled runs      {}", stats.spilled_runs);
    }

    let tree = index.as_ppr_mut().expect("bulk build is ppr-only");
    tree.save_to_file(out)
        .map_err(|e| format!("writing {}: {e}", out.display()))?;
    println!(
        "bulk-loaded {} pieces into {} pages; wrote {}",
        stats.pieces,
        stats.pages_written,
        out.display()
    );
    Ok(())
}

/// Replay a dataset as a live stream through the single-writer commit
/// pipeline: updates arrive in time order, a batch commits every
/// `--commit-every` instants (atomic snapshot publication each time),
/// and the sealed published version is saved as a PPR-Tree index. The
/// online splitter decides piece boundaries as the stream arrives, so
/// the resulting index is what a live deployment would have built — not
/// the offline split plan `stidx build` computes with full hindsight.
fn ingest(opts: &Flags, metrics: &mut MetricSet) -> Result<(), String> {
    let data = PathBuf::from(opts.need("data")?);
    let out = PathBuf::from(opts.need("out")?);
    remove_stale_temp(&out)?;
    let commit_every: u32 = match opts.get("commit-every") {
        Some(s) => match s.parse() {
            Ok(n) if n > 0 => n,
            _ => return Err("--commit-every must be a positive integer".into()),
        },
        None => 8,
    };
    let wal_dir = opts.get("wal").map(PathBuf::from);
    let fsync = parse_fsync(opts.get("fsync"))?;
    let checkpoint_every: u64 = match opts.get("checkpoint-every") {
        Some(s) => match s.parse() {
            Ok(n) if n > 0 => n,
            _ => return Err("--checkpoint-every must be a positive integer".into()),
        },
        None => 4,
    };
    if wal_dir.is_none() && (opts.get("fsync").is_some() || opts.get("checkpoint-every").is_some())
    {
        return Err("--fsync and --checkpoint-every need --wal DIR".into());
    }

    let objects = load_dataset(&data).map_err(|e| format!("reading {}: {e}", data.display()))?;
    let mut updates: Vec<(u32, u64, Rect2)> = Vec::new();
    let mut finishes: Vec<(u32, u64)> = Vec::new();
    for obj in &objects {
        for (i, r) in obj.rects().iter().enumerate() {
            updates.push((obj.start() + i as u32, obj.id(), *r));
        }
        finishes.push((obj.lifetime().end, obj.id()));
    }
    updates.sort_by_key(|&(t, id, _)| (t, id));
    finishes.sort_unstable_by_key(|&(end, id)| (end, id));
    let horizon = finishes.iter().map(|&(end, _)| end).max().unwrap_or(0);

    println!(
        "replaying {} updates across {} objects as a live stream (commit every {commit_every} instants)...",
        updates.len(),
        objects.len()
    );
    let mut pipeline = IngestPipeline::new(OnlineSplitConfig::default(), PprParams::default());
    // Hidden fault-injection hook so the CLI tests can pin the stalled
    // exit path without a dataset that genuinely wedges the splitter.
    if std::env::var("STIDX_TEST_WEDGE_SEAL").as_deref() == Ok("1") {
        pipeline.wedge_seal_for_test();
    }
    if let Some(dir) = &wal_dir {
        let config = WalConfig {
            fsync,
            ..WalConfig::default()
        };
        pipeline
            .attach_durability(dir, config)
            .map_err(|e| format!("attaching WAL at {}: {e}", dir.display()))?;
    }
    // Hidden crash hook for the crash-matrix CI job: abort (no cleanup,
    // no destructors — a genuine crash) right after the Nth commit.
    let crash_after_commits: Option<u64> = std::env::var("STIDX_TEST_CRASH_AFTER_COMMITS")
        .ok()
        .and_then(|s| s.parse().ok());
    let durable = wal_dir.is_some();
    // Checkpoint cadence counts commit *calls*, not published versions:
    // a stream whose objects are all still open pins the watermark and
    // makes most commits publish nothing, yet the WAL keeps growing.
    let mut commit_calls: u64 = 0;
    let (mut ui, mut fi) = (0usize, 0usize);
    for t in 0..horizon {
        while ui < updates.len() && updates[ui].0 == t {
            let (t, id, rect) = updates[ui];
            enqueue_cli_op(&mut pipeline, durable, IngestOp::Update { id, rect, t })?;
            ui += 1;
        }
        while fi < finishes.len() && finishes[fi].0 == t + 1 {
            let (end, id) = finishes[fi];
            enqueue_cli_op(&mut pipeline, durable, IngestOp::Finish { id, end })?;
            fi += 1;
        }
        if (t + 1) % commit_every == 0 {
            let report = pipeline.commit();
            if let Some(r) = report.rejected.first() {
                return Err(format!("dataset operation rejected: {}", r.error));
            }
            if let Some(e) = report.durability {
                return Err(format!("commit at instant {t} could not sync the WAL: {e}"));
            }
            if let Some(e) = report.error {
                return Err(format!("commit at instant {t} failed: {e}"));
            }
            commit_calls += 1;
            if crash_after_commits == Some(commit_calls) {
                std::process::abort();
            }
            if durable && commit_calls.is_multiple_of(checkpoint_every) {
                pipeline
                    .checkpoint()
                    .map_err(|e| format!("checkpoint after instant {t}: {e}"))?;
            }
        }
    }
    seal_and_save(pipeline, &out, metrics, true)
}

/// Route one operation through the durable or volatile enqueue path.
fn enqueue_cli_op(
    pipeline: &mut IngestPipeline,
    durable: bool,
    op: IngestOp,
) -> Result<(), String> {
    if durable {
        pipeline
            .enqueue_durable(op)
            .map(|_| ())
            .map_err(|e| format!("logging an operation to the WAL: {e}"))
    } else {
        pipeline.enqueue(op);
        Ok(())
    }
}

/// Rebuild a pipeline from a WAL directory written by a durable
/// `stidx ingest` run that crashed, replaying the log tail, then seal
/// and save the index exactly as an uninterrupted run would have.
fn recover(opts: &Flags, metrics: &mut MetricSet) -> Result<(), String> {
    let dir = PathBuf::from(opts.need("wal")?);
    let out = PathBuf::from(opts.need("out")?);
    remove_stale_temp(&out)?;
    let fsync = parse_fsync(opts.get("fsync"))?;
    let config = WalConfig {
        fsync,
        ..WalConfig::default()
    };
    let (pipeline, report) = IngestPipeline::recover(
        &dir,
        OnlineSplitConfig::default(),
        PprParams::default(),
        config,
    )
    .map_err(|e| format!("recovering from {}: {e}", dir.display()))?;
    match report.checkpoint_generation {
        Some(g) => println!(
            "recovered from checkpoint generation {g} at {}; replayed {} WAL record(s){}",
            report.stamp,
            report.wal_records_replayed,
            if report.torn_tail {
                " (torn tail truncated)"
            } else {
                ""
            }
        ),
        None => println!(
            "no checkpoint yet; replayed {} WAL record(s) onto an empty pipeline",
            report.wal_records_replayed
        ),
    }
    // Snapshot the gauges NOW, before sealing drains the restored queue:
    // non-zero ingest_queue_depth / ingest_pending_events alongside the
    // recovery_* counters are how a dashboard tells a recovered process
    // from a fresh one.
    pipeline.record_metrics(metrics);
    report.record_metrics(metrics);
    seal_and_save(pipeline, &out, metrics, false)
}

/// The common tail of `ingest` and `recover`: drain and finish every
/// stream, publish the final version, and save it as a PPR index.
fn seal_and_save(
    mut pipeline: IngestPipeline,
    out: &Path,
    metrics: &mut MetricSet,
    record: bool,
) -> Result<(), String> {
    let report = pipeline.seal();
    if let Some(r) = report.rejected.first() {
        return Err(format!("dataset operation rejected: {}", r.error));
    }
    if let Some(e) = report.durability {
        return Err(format!("sealing could not sync the WAL: {e}"));
    }
    if let Some(e) = report.error {
        return Err(format!("sealing the stream failed: {e}"));
    }
    // A stalled seal publishes nothing new: the stream was NOT fully
    // indexed, and saving the partial snapshot as if it were complete
    // would silently lose the tail of the data.
    if report.stalled {
        return Err(format!(
            "sealing stalled without forward progress: {} queued op(s) and {} pending \
             event(s) were never committed; the index on disk would be missing them",
            pipeline.queue_len(),
            pipeline.pending_events()
        ));
    }
    if pipeline.pending_events() > 0 {
        return Err("sealing left events uncommitted".into());
    }
    println!(
        "published {} after {} commits ({} records posted)",
        report.stamp,
        pipeline.commits(),
        pipeline.published().tree().total_records()
    );
    if record {
        pipeline.record_metrics(metrics);
    }

    let mut tree = pipeline.into_published_tree();
    tree.save_to_file(out)
        .map_err(|e| format!("writing {}: {e}", out.display()))?;
    println!("wrote {} pages to {}", tree.num_pages(), out.display());
    Ok(())
}

/// `--fsync always|commit|N` (N = sync every N appends).
fn parse_fsync(arg: Option<&str>) -> Result<FsyncPolicy, String> {
    match arg {
        None | Some("always") => Ok(FsyncPolicy::Always),
        Some("commit") => Ok(FsyncPolicy::Commit),
        Some(n) => match n.parse() {
            Ok(n) if n > 0 => Ok(FsyncPolicy::EveryN(n)),
            _ => Err("--fsync takes always, commit, or a positive integer".into()),
        },
    }
}

/// Drop the torn temp file a killed process may have left beside `out`.
/// The save path writes `out.tmp`, fsyncs, then renames, so the temp is
/// never the live index — a leftover is pure garbage from a crash
/// between those steps and would otherwise accumulate forever.
fn remove_stale_temp(out: &Path) -> Result<(), String> {
    let tmp = spatiotemporal_index::storage::persist::temp_sibling(out);
    match std::fs::remove_file(&tmp) {
        Ok(()) => {
            eprintln!(
                "note: removed stale temp file {} from an interrupted save",
                tmp.display()
            );
            Ok(())
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
        Err(e) => Err(format!("removing stale temp {}: {e}", tmp.display())),
    }
}

/// Replay a query across `workers` concurrent readers on one shared
/// tree and insist every reader sees the answer `expected` (queries are
/// `&self` end to end, so the only shared state is the buffer pool).
fn verify_concurrent_readers<F>(workers: usize, expected: &[u64], run: F) -> Result<(), String>
where
    F: Fn() -> Result<Vec<u64>, String> + Sync,
{
    std::thread::scope(|scope| {
        let run = &run;
        let handles: Vec<_> = (0..workers).map(|_| scope.spawn(run)).collect();
        for handle in handles {
            let mut ids = handle
                .join()
                .map_err(|_| "a reader thread panicked".to_string())??;
            ids.sort_unstable();
            ids.dedup();
            if ids != expected {
                return Err("concurrent readers disagreed with the sequential answer".into());
            }
        }
        Ok(())
    })
}

fn query(opts: &Flags, metrics: &mut MetricSet) -> Result<(), String> {
    let path = PathBuf::from(opts.need("index")?);
    let backend = parse_backend(opts.need("backend")?)?;
    let area = parse_area(opts.need("area")?)?;
    let t: u32 = opts
        .need("time")?
        .parse()
        .map_err(|_| "--time must be an integer")?;
    let until: u32 = match opts.get("until") {
        Some(s) => s.parse().map_err(|_| "--until must be an integer")?,
        None => t + 1,
    };
    if until <= t {
        return Err("--until must be after --time".into());
    }
    let range = TimeInterval::new(t, until);
    let workers = match opts.get("threads") {
        Some(v) => Parallelism::parse(v)
            .map_err(|e| format!("--threads: {e}"))?
            .workers(),
        None => 1,
    };

    let policy = match opts.get("policy") {
        Some(p) => Some(
            BufferPolicy::parse(p)
                .ok_or_else(|| format!("unknown buffer policy {p} (expected lru or 2q)"))?,
        ),
        None => None,
    };
    let readahead = opts.has("readahead");
    if (policy.is_some() || readahead) && backend == IndexBackend::RStar {
        return Err("--policy and --readahead apply to the ppr backend only".into());
    }

    let (mut ids, qs) = match backend {
        IndexBackend::PprTree => {
            let mut tree = PprTree::open_file(&path)
                .map_err(|e| format!("opening {}: {e}", path.display()))?;
            tree.reset_for_query();
            if let Some(p) = policy {
                tree.set_buffer_policy(p);
            }
            tree.set_readahead(readahead);
            if workers > 1 {
                tree.set_buffer_shards(workers);
            }
            let mut out = Vec::new();
            let qs = if range.len() == 1 {
                tree.query_snapshot(&area, t, &mut out)
            } else {
                tree.query_interval(&area, &range, &mut out)
            }
            .map_err(|e| format!("querying {}: {e}", path.display()))?;
            if workers > 1 {
                let mut expected = out.clone();
                expected.sort_unstable();
                expected.dedup();
                let shared = &tree;
                verify_concurrent_readers(workers, &expected, || {
                    let mut ids = Vec::new();
                    if range.len() == 1 {
                        shared.query_snapshot(&area, t, &mut ids)
                    } else {
                        shared.query_interval(&area, &range, &mut ids)
                    }
                    .map_err(|e| format!("concurrent query: {e}"))?;
                    Ok(ids)
                })?;
            }
            let ra = tree.readahead_stats();
            metrics.gauge(
                "buffer_scan_evictions_avoided",
                "probation evictions the 2Q policy absorbed while protected pages stayed resident",
                tree.scan_evictions_avoided() as f64,
            );
            metrics.gauge(
                "readahead_pages_hit",
                "prefetched pages later touched by the query",
                ra.hits as f64,
            );
            metrics.gauge(
                "readahead_pages_wasted",
                "prefetched pages evicted or invalidated untouched",
                ra.wasted as f64,
            );
            (out, qs)
        }
        IndexBackend::RStar => {
            let mut tree = RStarTree::open_file(&path)
                .map_err(|e| format!("opening {}: {e}", path.display()))?;
            tree.reset_for_query();
            if workers > 1 {
                tree.set_buffer_shards(workers);
            }
            let q = spatiotemporal_index::geom::Rect3::from_query(
                &area,
                &range,
                f64::from(TIME_EXTENT),
            );
            let mut out = Vec::new();
            let qs = tree
                .query(&q, &mut out)
                .map_err(|e| format!("querying {}: {e}", path.display()))?;
            if workers > 1 {
                let mut expected = out.clone();
                expected.sort_unstable();
                expected.dedup();
                let shared = &tree;
                verify_concurrent_readers(workers, &expected, || {
                    let mut ids = Vec::new();
                    shared
                        .query(&q, &mut ids)
                        .map_err(|e| format!("concurrent query: {e}"))?;
                    Ok(ids)
                })?;
            }
            (out, qs)
        }
    };
    let reads = qs.disk_reads;
    qs.record_metrics(metrics, "stidx_query");
    ids.sort_unstable();
    ids.dedup();
    let mut out = String::with_capacity(ids.len() * 8 + 64);
    out.push_str(&format!("{} objects, {reads} disk reads\n", ids.len()));
    if workers > 1 {
        out.push_str(&format!(
            "verified: {workers} concurrent readers agree with the sequential answer\n"
        ));
    }
    for id in ids {
        out.push_str(&format!("{id}\n"));
    }
    print_or_pipe(&out)
}

/// Write to stdout, treating a closed pipe (`stidx query | head`) as a
/// normal early exit instead of a panic.
fn print_or_pipe(text: &str) -> Result<(), String> {
    match std::io::stdout().lock().write_all(text.as_bytes()) {
        Ok(()) => Ok(()),
        Err(e) if e.kind() == std::io::ErrorKind::BrokenPipe => Ok(()),
        Err(e) => Err(format!("writing to stdout: {e}")),
    }
}

fn nearest(opts: &Flags) -> Result<(), String> {
    let path = PathBuf::from(opts.need("index")?);
    let backend = parse_backend(opts.need("backend")?)?;
    let point = parse_point(opts.need("point")?)?;
    let t: u32 = opts
        .need("time")?
        .parse()
        .map_err(|_| "--time must be an integer")?;
    let k: usize = match opts.get("k") {
        Some(s) => s.parse().map_err(|_| "--k must be an integer")?,
        None => 5,
    };

    let results = match backend {
        IndexBackend::PprTree => {
            let tree = PprTree::open_file(&path)
                .map_err(|e| format!("opening {}: {e}", path.display()))?;
            tree.nearest_at(point, t, k)
                .map_err(|e| format!("querying {}: {e}", path.display()))?
        }
        IndexBackend::RStar => {
            // The R*-Tree has no aliveness notion: its kNN ranks by 3D
            // spatiotemporal distance (time scaled into the unit range),
            // which can surface records dead at `t` and is not comparable
            // to the ppr backend's pure-spatial, alive-only ranking.
            return Err(
                "historical kNN needs the ppr backend; the rstar backend's 3D distance \
                 mixes space with scaled time and ignores aliveness"
                    .into(),
            );
        }
    };
    let mut out = format!("{} nearest at t={t}:\n", results.len());
    for (id, d2) in results {
        out.push_str(&format!("{id}  dist {:.6}\n", d2.sqrt()));
    }
    print_or_pipe(&out)
}

fn parse_point(s: &str) -> Result<spatiotemporal_index::geom::Point2, String> {
    let parts: Vec<f64> = s
        .split(',')
        .map(|p| p.trim().parse().map_err(|_| format!("bad coordinate {p}")))
        .collect::<Result<_, _>>()?;
    if parts.len() != 2 {
        return Err("--point takes x,y".into());
    }
    Ok(spatiotemporal_index::geom::Point2::new(parts[0], parts[1]))
}

fn parse_backend(s: &str) -> Result<IndexBackend, String> {
    match s {
        "ppr" => Ok(IndexBackend::PprTree),
        "rstar" => Ok(IndexBackend::RStar),
        other => Err(format!("unknown backend {other} (expected ppr or rstar)")),
    }
}

fn parse_area(s: &str) -> Result<Rect2, String> {
    let parts: Vec<f64> = s
        .split(',')
        .map(|p| p.trim().parse().map_err(|_| format!("bad coordinate {p}")))
        .collect::<Result<_, _>>()?;
    if parts.len() != 4 {
        return Err("--area takes x0,y0,x1,y1".into());
    }
    if parts[0] > parts[2] || parts[1] > parts[3] {
        return Err("--area corners are reversed".into());
    }
    Ok(Rect2::from_bounds(parts[0], parts[1], parts[2], parts[3]))
}
