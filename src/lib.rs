//! # spatiotemporal-index
//!
//! A complete implementation of *Efficient Indexing of Spatiotemporal
//! Objects* (Hadjieleftheriou, Kollios, Gunopulos, Tsotras — EDBT 2002):
//! MBR splitting algorithms for historical spatiotemporal data, a
//! partially persistent R-Tree, a 3D R\*-Tree baseline, the paper's
//! synthetic workloads, and analytical cost models for tuning the number
//! of splits.
//!
//! This facade crate re-exports the workspace crates under stable module
//! names. Start with [`core::SpatioTemporalIndex`] and
//! [`core::SplitPlan`], the `examples/` directory, or the `stidx` CLI
//! (`src/bin/stidx.rs`).

pub use sti_core as core;
pub use sti_costmodel as costmodel;
pub use sti_datagen as datagen;
pub use sti_geom as geom;
pub use sti_hrtree as hrtree;
pub use sti_obs as obs;
pub use sti_pprtree as pprtree;
pub use sti_rstar as rstar;
pub use sti_server as server;
pub use sti_storage as storage;
pub use sti_trajectory as trajectory;

/// Commonly used items, for glob import in examples and tests.
pub mod prelude {
    pub use sti_core::{
        BuildStats, DistributionAlgorithm, HybridConfig, HybridIndex, Parallelism,
        SingleSplitAlgorithm, SpatioTemporalIndex, SplitBudget, SplitPlan,
    };
    pub use sti_datagen::{QuerySetSpec, RailwayDatasetSpec, RandomDatasetSpec};
    pub use sti_geom::{Point2, Rect2, Rect3, StBox, Time, TimeInterval};
    pub use sti_obs::{MetricSet, QueryStats, Span};
    pub use sti_trajectory::{RasterizedObject, Trajectory};
}
