//! Index persistence: save a built index to a real file, load it in a
//! "fresh process" (new object), and verify answers and I/O accounting
//! are identical.

use spatiotemporal_index::core::{IndexBackend, IndexConfig, SpatioTemporalIndex, SplitPlan};
use spatiotemporal_index::pprtree::PprTree;
use spatiotemporal_index::prelude::*;
use spatiotemporal_index::rstar::RStarTree;
use std::path::PathBuf;

fn temp(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("sti-index-{}-{name}", std::process::id()));
    p
}

fn records() -> Vec<spatiotemporal_index::core::ObjectRecord> {
    let objects = RandomDatasetSpec::paper(400).generate();
    SplitPlan::build(
        &objects,
        SingleSplitAlgorithm::MergeSplit,
        DistributionAlgorithm::LaGreedy,
        SplitBudget::Percent(100.0),
        None,
    )
    .records(&objects)
}

#[test]
fn pprtree_survives_a_round_trip() {
    let recs = records();
    // Build via the facade to exercise the real ingestion path, then
    // reach the concrete tree through a fresh build for saving.
    let mut tree = PprTree::new(Default::default());
    let mut events: Vec<(u32, u8, usize)> = Vec::new();
    for (i, r) in recs.iter().enumerate() {
        events.push((r.stbox.lifetime.start, 1, i));
        events.push((r.stbox.lifetime.end, 0, i));
    }
    events.sort_unstable();
    for (t, kind, i) in events {
        if kind == 1 {
            tree.insert(recs[i].id, recs[i].stbox.rect, t).unwrap();
        } else {
            tree.delete(recs[i].id, recs[i].stbox.rect, t).unwrap();
        }
    }

    let path = temp("ppr");
    tree.save_to_file(&path).expect("save");
    let mut back = PprTree::open_file(&path).expect("open");
    std::fs::remove_file(&path).ok();

    assert_eq!(back.num_pages(), tree.num_pages());
    assert_eq!(back.roots(), tree.roots());
    assert_eq!(back.alive_records(), tree.alive_records());
    back.validate();

    for t in (0..1000).step_by(83) {
        let area = Rect2::from_bounds(0.2, 0.2, 0.7, 0.7);
        let mut a = Vec::new();
        let mut b = Vec::new();
        tree.query_snapshot(&area, t, &mut a).unwrap();
        back.query_snapshot(&area, t, &mut b).unwrap();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b, "snapshot at {t}");
        let mut c = Vec::new();
        let mut d = Vec::new();
        let range = TimeInterval::new(t, t + 40);
        tree.query_interval(&area, &range, &mut c).unwrap();
        back.query_interval(&area, &range, &mut d).unwrap();
        c.sort_unstable();
        d.sort_unstable();
        assert_eq!(c, d, "interval at {t}");
    }

    // I/O accounting still behaves after loading.
    back.reset_for_query();
    let mut out = Vec::new();
    back.query_snapshot(&Rect2::UNIT, 500, &mut out).unwrap();
    assert!(back.io_stats().reads > 0);
}

#[test]
fn rstar_survives_a_round_trip() {
    let recs = records();
    let idx = SpatioTemporalIndex::build(&recs, &IndexConfig::paper(IndexBackend::RStar)).unwrap();
    // Rebuild a raw tree the same way the facade does, then persist it.
    let mut tree = RStarTree::new(Default::default());
    for r in &recs {
        tree.insert(r.id, r.to_rect3(1000.0)).unwrap();
    }
    let path = temp("rstar");
    tree.save_to_file(&path).expect("save");
    let mut back = RStarTree::open_file(&path).expect("open");
    std::fs::remove_file(&path).ok();
    assert_eq!(back.len(), tree.len());
    assert_eq!(back.num_pages(), tree.num_pages());
    back.validate();

    for t in (0..1000u32).step_by(129) {
        let area = Rect2::from_bounds(0.1, 0.3, 0.6, 0.8);
        let q = spatiotemporal_index::geom::Rect3::new(
            [area.lo.x, area.lo.y, f64::from(t) / 1000.0],
            [area.hi.x, area.hi.y, f64::from(t) / 1000.0],
        );
        let mut a = Vec::new();
        let mut b = Vec::new();
        tree.query(&q, &mut a).unwrap();
        back.query(&q, &mut b).unwrap();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b, "query at {t}");
        // And the loaded tree agrees with the facade-built index.
        let mut facade = idx.query(&area, &TimeInterval::instant(t)).unwrap();
        facade.sort_unstable();
        b.sort_unstable();
        b.dedup();
        assert_eq!(b, facade, "facade agreement at {t}");
    }
}

#[test]
fn loading_garbage_fails_cleanly() {
    let path = temp("garbage");
    std::fs::write(&path, b"definitely not an index file").expect("write");
    assert!(PprTree::open_file(&path).is_err());
    assert!(RStarTree::open_file(&path).is_err());
    std::fs::remove_file(&path).ok();
}

#[test]
fn backend_mismatch_is_a_clean_error() {
    let recs = records();
    let mut ppr = PprTree::new(Default::default());
    let mut events: Vec<(u32, u8, usize)> = Vec::new();
    for (i, r) in recs.iter().enumerate() {
        events.push((r.stbox.lifetime.start, 1, i));
        events.push((r.stbox.lifetime.end, 0, i));
    }
    events.sort_unstable();
    for (t, kind, i) in events {
        if kind == 1 {
            ppr.insert(recs[i].id, recs[i].stbox.rect, t).unwrap();
        } else {
            ppr.delete(recs[i].id, recs[i].stbox.rect, t).unwrap();
        }
    }
    let path = temp("mismatch");
    ppr.save_to_file(&path).expect("save");
    let err = match RStarTree::open_file(&path) {
        Err(e) => e,
        Ok(_) => panic!("opening a PPR file as R* must fail"),
    };
    assert!(
        err.to_string().contains("PPR-Tree"),
        "mismatch should name the actual backend: {err}"
    );
    // And the right backend still opens it.
    assert!(PprTree::open_file(&path).is_ok());
    std::fs::remove_file(&path).ok();
}

/// Corrupt index files fail closed: header or metadata damage surfaces
/// as an `io::Error` from `open_file`, and page-body damage that the
/// loader cannot see is caught by the integrity checker — never a panic.
#[test]
fn corrupted_index_files_fail_closed() {
    use spatiotemporal_index::pprtree::check;
    use spatiotemporal_index::storage::PAGE_SIZE;

    let mut tree = PprTree::new(spatiotemporal_index::pprtree::PprParams {
        max_entries: 10,
        buffer_pages: 4,
        ..Default::default()
    });
    let rect_for = |i: u64| {
        let x = (i % 30) as f64 * 0.03;
        let y = (i / 30) as f64 * 0.2;
        Rect2::from_bounds(x, y, x + 0.02, y + 0.02)
    };
    for i in 0..120u64 {
        tree.insert(i, rect_for(i), i as u32 / 4).unwrap();
    }
    for i in (0..120u64).step_by(3) {
        tree.delete(i, rect_for(i), 31 + i as u32 / 4).unwrap();
    }
    let path = temp("corrupt");
    tree.save_to_file(&path).expect("save");
    let pristine = std::fs::read(&path).expect("read back");

    // Wrong magic.
    let mut bad = pristine.clone();
    bad[0] = b'X';
    std::fs::write(&path, &bad).unwrap();
    assert!(PprTree::open_file(&path).is_err(), "wrong magic must fail");

    // Truncation anywhere in the file.
    for cut in [9, pristine.len() / 2, pristine.len() - 17] {
        std::fs::write(&path, &pristine[..cut]).unwrap();
        assert!(
            PprTree::open_file(&path).is_err(),
            "truncation at {cut} must fail"
        );
    }

    // Garbage metadata (valid magic, shredded header region).
    let mut bad = pristine.clone();
    for b in bad.iter_mut().skip(8).take(40) {
        *b = 0xFF;
    }
    std::fs::write(&path, &bad).unwrap();
    assert!(PprTree::open_file(&path).is_err(), "garbage meta must fail");

    // Shred the page region (the trailing pages): the per-page
    // checksums catch this at open time — the loader fails closed
    // before the sanitizer ever has to look at the tree.
    let mut bad = pristine.clone();
    let tail = bad.len() - 2 * PAGE_SIZE;
    for b in bad.iter_mut().skip(tail) {
        *b = 0xFF;
    }
    std::fs::write(&path, &bad).unwrap();
    let err = match PprTree::open_file(&path) {
        Err(e) => e,
        Ok(_) => panic!("shredded pages must fail the checksum"),
    };
    assert!(
        err.to_string().contains("checksum"),
        "page damage should be a checksum error: {err}"
    );

    // And the pristine bytes still round-trip cleanly.
    std::fs::write(&path, &pristine).unwrap();
    let back = PprTree::open_file(&path).expect("pristine file reopens");
    assert!(check::validate(&back).is_ok());
    std::fs::remove_file(&path).ok();
}
