//! The paper's experimental claims, asserted at reduced scale.
//!
//! These are the qualitative *shapes* of §V — who wins and in which
//! direction each knob moves — not the absolute I/O counts (our substrate
//! is a simulated disk; see EXPERIMENTS.md for the measured tables).

use spatiotemporal_index::core::{
    piecewise_records, unsplit_records, IndexBackend, IndexConfig, SplitPlan,
};
use spatiotemporal_index::datagen::QuerySetSpec;
use spatiotemporal_index::prelude::*;

fn dataset(n: usize) -> Vec<RasterizedObject> {
    RandomDatasetSpec::paper(n).generate()
}

fn avg_io(idx: &mut SpatioTemporalIndex, queries: &[spatiotemporal_index::datagen::Query]) -> f64 {
    let mut total = 0;
    for q in queries {
        idx.reset_for_query();
        let _ = idx
            .query(&q.area, &q.range)
            .expect("in-memory query cannot fail");
        total += idx.io_stats().reads;
    }
    total as f64 / queries.len() as f64
}

fn records_at(
    objs: &[RasterizedObject],
    pct: f64,
) -> Vec<spatiotemporal_index::core::ObjectRecord> {
    SplitPlan::build(
        objs,
        SingleSplitAlgorithm::MergeSplit,
        DistributionAlgorithm::LaGreedy,
        SplitBudget::Percent(pct),
        None,
    )
    .records(objs)
}

fn queries(spec: QuerySetSpec, n: usize) -> Vec<spatiotemporal_index::datagen::Query> {
    let mut s = spec;
    s.cardinality = n;
    s.generate()
}

/// §V-C / fig. 15: splits substantially reduce PPR-Tree query I/O.
#[test]
fn splits_help_the_pprtree() {
    let objs = dataset(3000);
    let qs = queries(QuerySetSpec::small_range(), 150);
    let cfg = IndexConfig::paper(IndexBackend::PprTree);
    let mut unsplit = SpatioTemporalIndex::build(&records_at(&objs, 0.0), &cfg).unwrap();
    let mut split = SpatioTemporalIndex::build(&records_at(&objs, 150.0), &cfg).unwrap();
    let io_unsplit = avg_io(&mut unsplit, &qs);
    let io_split = avg_io(&mut split, &qs);
    assert!(
        io_split < io_unsplit * 0.85,
        "150% splits should cut PPR I/O by well over 15%: {io_unsplit} -> {io_split}"
    );
}

/// §V-D / figs. 17–18: the PPR-Tree with 150% splits beats the R\*-Tree
/// with 1% splits for both small range and mixed snapshot queries.
#[test]
fn pprtree_beats_rstar() {
    let objs = dataset(3000);
    let mut ppr = SpatioTemporalIndex::build(
        &records_at(&objs, 150.0),
        &IndexConfig::paper(IndexBackend::PprTree),
    )
    .unwrap();
    let mut rstar = SpatioTemporalIndex::build(
        &records_at(&objs, 1.0),
        &IndexConfig::paper(IndexBackend::RStar),
    )
    .unwrap();
    for spec in [QuerySetSpec::small_range(), QuerySetSpec::mixed_snapshot()] {
        let name = spec.name;
        let qs = queries(spec, 150);
        let ppr_io = avg_io(&mut ppr, &qs);
        let rstar_io = avg_io(&mut rstar, &qs);
        assert!(
            ppr_io < rstar_io,
            "{name}: PPR ({ppr_io}) should beat R* ({rstar_io})"
        );
    }
}

/// §V-D / fig. 18: the piecewise representation (~400% splits placed at
/// movement change points) is *worse* for the R\*-Tree than a small
/// well-chosen budget.
#[test]
fn piecewise_is_worse_than_budgeted_splits() {
    let objs = dataset(3000);
    let piecewise = piecewise_records(&objs);
    // "This method resulted in a number of splits about 400% of the
    // total number of objects."
    let pct = (piecewise.len() - objs.len()) as f64 / objs.len() as f64 * 100.0;
    assert!(
        (250.0..=550.0).contains(&pct),
        "piecewise split budget should be ≈400%, got {pct:.0}%"
    );
    let cfg = IndexConfig::paper(IndexBackend::RStar);
    let mut pw = SpatioTemporalIndex::build(&piecewise, &cfg).unwrap();
    let mut budgeted = SpatioTemporalIndex::build(&records_at(&objs, 1.0), &cfg).unwrap();
    let qs = queries(QuerySetSpec::mixed_snapshot(), 150);
    let pw_io = avg_io(&mut pw, &qs);
    let budgeted_io = avg_io(&mut budgeted, &qs);
    assert!(
        pw_io > budgeted_io,
        "piecewise ({pw_io}) should cost more than R*-1% ({budgeted_io})"
    );
}

/// §V-C / fig. 16: the PPR-Tree trades space for time — its footprint is
/// clearly larger than the R\*-Tree's over the same records (paper:
/// "almost twice as much").
#[test]
fn pprtree_costs_more_space() {
    let objs = dataset(2000);
    let records = records_at(&objs, 50.0);
    let ppr =
        SpatioTemporalIndex::build(&records, &IndexConfig::paper(IndexBackend::PprTree)).unwrap();
    let rstar =
        SpatioTemporalIndex::build(&records, &IndexConfig::paper(IndexBackend::RStar)).unwrap();
    let ratio = ppr.num_pages() as f64 / rstar.num_pages() as f64;
    assert!(
        (1.2..=4.0).contains(&ratio),
        "PPR/R* space ratio should be around 2x, got {ratio:.2} ({} vs {})",
        ppr.num_pages(),
        rstar.num_pages()
    );
}

/// §V-A / figs. 11–12: MergeSplit is drastically faster than DPSplit and
/// loses only a little volume.
#[test]
fn mergesplit_is_near_optimal_and_much_faster() {
    use spatiotemporal_index::core::single::{DpSplit, MergeSplit, SingleObjectSplitter};
    use std::time::Instant;
    let objs = dataset(300);

    let t0 = Instant::now();
    let dp_total: f64 = objs
        .iter()
        .map(|o| DpSplit.volume_curve(o, o.len() - 1).volume(o.len() / 10))
        .sum();
    let dp_time = t0.elapsed();

    let t1 = Instant::now();
    let merge_total: f64 = objs
        .iter()
        .map(|o| MergeSplit.volume_curve(o, o.len() - 1).volume(o.len() / 10))
        .sum();
    let merge_time = t1.elapsed();

    assert!(
        merge_total >= dp_total - 1e-9,
        "greedy can never beat optimal"
    );
    assert!(
        merge_total <= dp_total * 1.35,
        "MergeSplit should stay near-optimal: {merge_total} vs {dp_total}"
    );
    assert!(
        merge_time < dp_time,
        "MergeSplit should be faster: {merge_time:?} vs {dp_time:?}"
    );
}

/// §V-B / figs. 13–14: total volume orders as Optimal ≤ LAGreedy ≤
/// Greedy on the real workload.
#[test]
fn distribution_quality_ordering() {
    let objs = dataset(500);
    let volume = |dist| {
        SplitPlan::build(
            &objs,
            SingleSplitAlgorithm::MergeSplit,
            dist,
            SplitBudget::Percent(50.0),
            None,
        )
        .total_volume()
    };
    let opt = volume(DistributionAlgorithm::Optimal);
    let la = volume(DistributionAlgorithm::LaGreedy);
    let greedy = volume(DistributionAlgorithm::Greedy);
    assert!(opt <= la + 1e-9, "optimal ≤ lagreedy ({opt} vs {la})");
    assert!(la <= greedy + 1e-9, "lagreedy ≤ greedy ({la} vs {greedy})");
}

/// §I: the PPR-Tree answers a snapshot query in I/O proportional to the
/// alive objects at that instant, not to the full history.
#[test]
fn snapshot_io_independent_of_history_length() {
    // Same alive density, 4x the history: snapshot I/O stays flat.
    let short = dataset(1000);
    let long = dataset(4000);
    let qs = queries(QuerySetSpec::small_snapshot(), 100);
    let cfg = IndexConfig::paper(IndexBackend::PprTree);
    let mut short_idx = SpatioTemporalIndex::build(&unsplit_records(&short), &cfg).unwrap();
    let mut long_idx = SpatioTemporalIndex::build(&unsplit_records(&long), &cfg).unwrap();
    let io_short = avg_io(&mut short_idx, &qs);
    let io_long = avg_io(&mut long_idx, &qs);
    // 4x the objects per instant costs well under 4x the I/O (log-ish
    // growth through the ephemeral tree, plus denser but tighter leaves).
    assert!(
        io_long < io_short * 3.0,
        "snapshot I/O should scale sublinearly: {io_short} -> {io_long}"
    );
}
