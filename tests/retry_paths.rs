//! Retry-path coverage through the public workspace API: transient
//! faults are retried within the bounded budget (and counted), while
//! permanent faults surface the original error unchanged — both at the
//! raw [`PageStore`] level and through a whole tree.

use spatiotemporal_index::pprtree::{check, PprParams, PprTree};
use spatiotemporal_index::storage::{
    FaultKind, FaultPlan, FaultyBackend, IoOp, PageStore, ReadProbe, RetryPolicy, ScheduledFault,
    StorageError,
};
use sti_geom::Rect2;

fn transient_run(at_ops: impl IntoIterator<Item = u64>) -> FaultPlan {
    FaultPlan::new(
        at_ops
            .into_iter()
            .map(|at_op| ScheduledFault {
                at_op,
                kind: FaultKind::Fail { transient: true },
            })
            .collect(),
    )
}

fn store_with(plan: FaultPlan, policy: RetryPolicy) -> PageStore {
    let mut s = PageStore::with_backend(Box::new(FaultyBackend::new_mem(plan)), 4);
    s.set_retry_policy(policy);
    s
}

/// A transient fault on every attempt `1..k` (with `k` strictly inside
/// the budget) succeeds on the last attempt and records exactly `k`
/// retries — each re-execution advances the fault clock, so the faults
/// sit on consecutive operation indexes.
#[test]
fn transient_faults_within_budget_succeed_and_count_retries() {
    for k in 1..=4u64 {
        let policy = RetryPolicy {
            max_attempts: 6,
            ..RetryPolicy::default()
        };
        // Op 0 is the allocate; the write occupies ops 1..=k+1.
        let mut s = store_with(transient_run(1..=k), policy);
        let a = s.allocate().unwrap();
        s.write(a, &[42]).unwrap_or_else(|e| {
            panic!("{k} transient faults inside a budget of 6 must succeed: {e}")
        });
        assert_eq!(
            &s.read(a, &mut ReadProbe::new()).unwrap().bytes()[..1],
            &[42]
        );
        let fs = s.fault_stats();
        assert_eq!(fs.io_retries, k, "one retry per transient fault");
        assert_eq!(fs.io_faults_injected, k);
        assert_eq!(s.clock().pauses(), k, "each retry spent backoff time");
    }
}

/// A permanent fault is never retried: the injected error comes back
/// unchanged, no retry is counted, and the page keeps its prior bytes.
#[test]
fn permanent_fault_is_not_retried_and_surfaces_unchanged() {
    let plan = FaultPlan::new(vec![ScheduledFault {
        at_op: 2,
        kind: FaultKind::Fail { transient: false },
    }]);
    let mut s = store_with(plan, RetryPolicy::default());
    let a = s.allocate().unwrap();
    s.write(a, &[7]).unwrap();
    let err = s.write(a, &[9]).unwrap_err();
    assert_eq!(
        err,
        StorageError::Injected {
            op: IoOp::Write,
            page: Some(a),
            transient: false,
        },
        "the original error, not a retry-exhaustion wrapper"
    );
    assert_eq!(s.fault_stats().io_retries, 0, "permanent faults skip retry");
    assert_eq!(
        &s.read(a, &mut ReadProbe::new()).unwrap().bytes()[..1],
        &[7],
        "state unchanged"
    );
}

/// Exhausting the budget surfaces the *original* transient error (typed,
/// still marked transient) after exactly `max_attempts - 1` retries.
#[test]
fn budget_exhaustion_returns_the_original_transient_error() {
    let policy = RetryPolicy {
        max_attempts: 3,
        ..RetryPolicy::default()
    };
    // Ops 1, 2, 3: every attempt of the write fails.
    let mut s = store_with(transient_run(1..=3), policy);
    let a = s.allocate().unwrap();
    let err = s.write(a, &[1]).unwrap_err();
    assert!(err.is_transient(), "typed transient error: {err:?}");
    assert_eq!(
        err,
        StorageError::Injected {
            op: IoOp::Write,
            page: Some(a),
            transient: true,
        }
    );
    assert_eq!(s.fault_stats().io_retries, 2, "budget of 3 = 2 retries");
    assert!(
        s.read(a, &mut ReadProbe::new())
            .unwrap()
            .bytes()
            .iter()
            .all(|&b| b == 0),
        "failed write left the page untouched"
    );
}

/// `RetryPolicy::no_retry` turns even a transient fault into an
/// immediate error.
#[test]
fn no_retry_policy_fails_on_the_first_transient_fault() {
    let mut s = store_with(transient_run([1]), RetryPolicy::no_retry());
    let a = s.allocate().unwrap();
    let err = s.write(a, &[1]).unwrap_err();
    assert!(err.is_transient());
    assert_eq!(s.fault_stats().io_retries, 0);
    assert_eq!(s.clock().pauses(), 0, "no backoff without a retry");
}

/// The same behaviour holds end-to-end through a tree: a transient
/// fault mid-insert is absorbed by the retry loop, the insert succeeds,
/// the retry shows up in [`PprTree::fault_stats`], and the tree still
/// passes the sanitizer.
#[test]
fn tree_absorbs_transient_faults_and_reports_them() {
    let plan = transient_run([4, 11]);
    let backend = FaultyBackend::new_mem(plan);
    let mut tree = PprTree::with_backend(
        PprParams {
            max_entries: 10,
            buffer_pages: 4,
            ..PprParams::default()
        },
        Box::new(backend),
    );
    tree.set_retry_policy(RetryPolicy::default());
    for i in 0..40u64 {
        let x = (i % 10) as f64 * 0.09;
        let y = (i / 10) as f64 * 0.2;
        tree.insert(i, Rect2::from_bounds(x, y, x + 0.05, y + 0.05), i as u32)
            .unwrap_or_else(|e| panic!("transient faults must be retried, got {e} at {i}"));
    }
    let fs = tree.fault_stats();
    assert_eq!(fs.io_faults_injected, 2, "both scheduled faults fired");
    assert_eq!(fs.io_retries, 2, "and both were absorbed by a retry");
    let mut out = Vec::new();
    tree.query_snapshot(&Rect2::UNIT, 39, &mut out).unwrap();
    assert_eq!(out.len(), 40, "every insert landed exactly once");
    assert!(check::validate(&tree).is_ok());
}
