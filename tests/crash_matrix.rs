//! The crash-recovery matrix: kill the durable ingest pipeline at every
//! WAL / checkpoint / publish boundary and prove that recovery
//!
//!   1. never panics — injected crashes and disk damage surface as
//!      typed errors only,
//!   2. never loses an acknowledged operation under `fsync = Always`,
//!   3. never resurrects an operation the pipeline rejected, and
//!   4. produces an index that answers snapshot and interval queries
//!      exactly like a shadow pipeline that ran uninterrupted.
//!
//! A byte-level corruption sweep then flips every byte of every WAL
//! segment (and of checkpoint artifacts) and re-runs recovery: every
//! outcome must be a typed error or a pipeline whose sealed index still
//! upholds the invariants above.

use spatiotemporal_index::core::{
    CrashPoint, DurabilityError, IngestOp, IngestPipeline, OnlineSplitConfig, RecoverError,
};
use spatiotemporal_index::geom::{Rect2, TimeInterval};
use spatiotemporal_index::obs::MetricSet;
use spatiotemporal_index::pprtree::PprParams;
use spatiotemporal_index::storage::{FsyncPolicy, WalConfig};
use std::path::{Path, PathBuf};

/// Fresh scratch directory (removed first if a previous run left one).
fn temp_dir(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("sti-crash-{}-{name}", std::process::id()));
    if p.exists() {
        std::fs::remove_dir_all(&p).expect("clear scratch dir");
    }
    p
}

/// Tiny segments so the workload exercises rotation and truncation.
fn wal_config() -> WalConfig {
    WalConfig {
        segment_max_bytes: 256,
        fsync: FsyncPolicy::Always,
    }
}

fn rect_for(id: u64, t: u32) -> Rect2 {
    let x = id as f64 * 0.1;
    let y = f64::from(t) * 0.02;
    Rect2::from_bounds(x, y, x + 0.05, y + 0.05)
}

/// Where the rejected op claims to be — nothing else goes near it, so a
/// non-empty query here means recovery resurrected a rejected op.
const REJECTED_CORNER: Rect2 = Rect2 {
    lo: spatiotemporal_index::geom::Point2 { x: 0.88, y: 0.88 },
    hi: spatiotemporal_index::geom::Point2 { x: 1.0, y: 1.0 },
};
const REJECTED_T: u32 = 5;

/// The full intended stream, in arrival order: four objects observed on
/// contiguous instants, then finished — plus one op the pipeline must
/// reject (its instant is behind the global clock by the time it
/// arrives) sitting in the middle of the stream.
fn workload() -> Vec<IngestOp> {
    let mut timeline: Vec<(u32, u8, u64, IngestOp)> = Vec::new();
    for id in 1..=4u64 {
        let start = id as u32;
        let end = start + 10;
        for t in start..end {
            let op = IngestOp::Update {
                id,
                rect: rect_for(id, t),
                t,
            };
            timeline.push((t, 0, id, op));
        }
        timeline.push((end, 1, id, IngestOp::Finish { id, end }));
    }
    timeline.sort_by_key(|&(t, tie, id, _)| (t, tie, id));
    let mut ops: Vec<IngestOp> = timeline.into_iter().map(|(_, _, _, op)| op).collect();
    // Stale by the time it arrives: the stream is already past t = 8.
    let past_t8 = ops
        .iter()
        .position(|op| matches!(op, IngestOp::Update { t: 9, .. }))
        .expect("stream reaches t = 9");
    ops.insert(
        past_t8,
        IngestOp::Update {
            id: 99,
            rect: Rect2::from_bounds(0.9, 0.9, 0.95, 0.95),
            t: REJECTED_T,
        },
    );
    ops
}

const COMMIT_EVERY: usize = 7;
const CHECKPOINT_EVERY: u64 = 2;

/// Why a drive stopped early, and where the resumed client must pick
/// the stream back up. A client that saw `enqueue_durable` fail before
/// the WAL append re-submits that op; one that saw it fail *after* the
/// append must not (recovery replays it from the log) — at-least-once
/// for unacknowledged ops, exactly-once for acknowledged ones.
struct CrashStop {
    resume_from: usize,
}

/// Feed `ops[start..]` through the pipeline with periodic commits and
/// (when durable) checkpoints. Stops at the first durability error.
fn drive(
    pipeline: &mut IngestPipeline,
    ops: &[IngestOp],
    start: usize,
    durable: bool,
) -> Result<(), CrashStop> {
    // Checkpoint cadence counts commit *calls*: `commits()` only counts
    // commits that published, and a stream whose objects are all still
    // open pins the watermark, making most commits no-ops.
    let mut commit_calls = 0u64;
    for (i, op) in ops.iter().enumerate().skip(start) {
        if durable {
            if let Err(e) = pipeline.enqueue_durable(*op) {
                let resume_from = match e {
                    DurabilityError::InjectedCrash(CrashPoint::AfterWalAppend) => i + 1,
                    _ => i,
                };
                return Err(CrashStop { resume_from });
            }
        } else {
            pipeline.enqueue(*op);
        }
        if (i + 1) % COMMIT_EVERY == 0 {
            let report = pipeline.commit();
            if report.durability.is_some() {
                return Err(CrashStop { resume_from: i + 1 });
            }
            assert!(report.error.is_none(), "commit hit a storage fault");
            commit_calls += 1;
            if durable
                && commit_calls.is_multiple_of(CHECKPOINT_EVERY)
                && pipeline.checkpoint().is_err()
            {
                return Err(CrashStop { resume_from: i + 1 });
            }
        }
    }
    Ok(())
}

/// Seal and return the sorted, deduplicated answers to a fixed probe
/// battery of snapshot and interval queries.
fn seal_and_probe(mut pipeline: IngestPipeline) -> Vec<Vec<u64>> {
    let report = pipeline.seal();
    assert!(report.error.is_none(), "seal hit a storage fault");
    assert!(report.durability.is_none(), "seal hit a durability fault");
    assert!(!report.stalled, "seal stalled");
    assert_eq!(pipeline.pending_events(), 0, "seal left events pending");
    probe(&pipeline)
}

fn probe(pipeline: &IngestPipeline) -> Vec<Vec<u64>> {
    let published = pipeline.published();
    let tree = published.tree();
    let everything = Rect2::from_bounds(0.0, 0.0, 1.0, 1.0);
    let window = Rect2::from_bounds(0.05, 0.05, 0.45, 0.45);
    let mut answers = Vec::new();
    for t in 0..16 {
        for area in [&everything, &window, &REJECTED_CORNER] {
            let mut out = Vec::new();
            tree.query_snapshot(area, t, &mut out).expect("snapshot");
            out.sort_unstable();
            out.dedup();
            answers.push(out);
        }
    }
    for range in [TimeInterval::new(2, 9), TimeInterval::new(0, 16)] {
        for area in [&everything, &window] {
            let mut out = Vec::new();
            tree.query_interval(area, &range, &mut out)
                .expect("interval");
            out.sort_unstable();
            out.dedup();
            answers.push(out);
        }
    }
    answers
}

/// The uninterrupted reference: same stream, no WAL, sealed.
fn shadow_answers(ops: &[IngestOp]) -> Vec<Vec<u64>> {
    let mut shadow = IngestPipeline::new(OnlineSplitConfig::default(), PprParams::default());
    drive(&mut shadow, ops, 0, false).unwrap_or_else(|_| unreachable!("volatile drive"));
    seal_and_probe(shadow)
}

fn recover(
    dir: &Path,
) -> Result<(IngestPipeline, spatiotemporal_index::core::RecoveryReport), RecoverError> {
    IngestPipeline::recover(
        dir,
        OnlineSplitConfig::default(),
        PprParams::default(),
        wal_config(),
    )
}

/// A durable run crashed at `point`, recovered, and resumed must end up
/// answer-identical to the uninterrupted shadow.
#[test]
fn every_crash_point_recovers_to_the_shadow_answers() {
    let ops = workload();
    let reference = shadow_answers(&ops);
    // The rejected corner must stay empty in the reference too — the
    // probe battery includes it at every instant.
    assert!(reference.iter().all(|ids| !ids.contains(&99)));

    for (i, point) in CrashPoint::ALL.into_iter().enumerate() {
        let dir = temp_dir(&format!("point-{i}"));
        let mut pipeline = IngestPipeline::new(OnlineSplitConfig::default(), PprParams::default());
        pipeline
            .attach_durability(&dir, wal_config())
            .expect("attach");
        pipeline.arm_crash_point(point).expect("arm");

        let stop = drive(&mut pipeline, &ops, 0, true)
            .expect_err("every armed crash point fires under this cadence");
        // A dead pipeline refuses all further durable work.
        assert!(matches!(
            pipeline.enqueue_durable(ops[0]),
            Err(DurabilityError::Dead)
        ));
        drop(pipeline);

        let (mut recovered, report) =
            recover(&dir).unwrap_or_else(|e| panic!("recovery after {point} failed: {e}"));
        assert!(
            !report.torn_tail,
            "fsync=Always leaves no torn tail ({point})"
        );
        drive(&mut recovered, &ops, stop.resume_from, true)
            .unwrap_or_else(|_| panic!("resumed drive crashed again after {point}"));
        let answers = seal_and_probe(recovered);
        assert_eq!(
            answers, reference,
            "recovered index diverges from the shadow after a crash at {point}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// Run the durable workload to completion (commits + checkpoints, no
/// seal) and leave the WAL directory behind for damage experiments.
fn durable_run(dir: &Path) {
    let ops = workload();
    let mut pipeline = IngestPipeline::new(OnlineSplitConfig::default(), PprParams::default());
    pipeline
        .attach_durability(dir, wal_config())
        .expect("attach");
    drive(&mut pipeline, &ops, 0, true).unwrap_or_else(|_| unreachable!("no crash armed"));
}

/// Every single-byte flip in every WAL segment must yield a typed error
/// or a recoverable pipeline — never a panic, and never a resurrected
/// rejected op.
#[test]
fn wal_corruption_sweep_fails_closed() {
    let dir = temp_dir("sweep");
    durable_run(&dir);
    let baseline = recover(&dir).expect("pristine recovery");
    let baseline_replayed = baseline.1.wal_records_replayed;
    drop(baseline);

    let segments: Vec<PathBuf> = {
        let mut v: Vec<PathBuf> = std::fs::read_dir(&dir)
            .expect("read wal dir")
            .map(|e| e.expect("dir entry").path())
            .filter(|p| {
                p.file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(|n| n.starts_with("wal-") && n.ends_with(".seg"))
            })
            .collect();
        v.sort();
        v
    };
    assert!(
        segments.len() > 1,
        "workload must span several segments to make the sweep meaningful"
    );

    // Bit rot: every single-byte flip leaves frame lengths intact, so
    // none can masquerade as a torn tail — recovery must refuse every
    // one with a typed error (that is the point of checksumming the
    // length field separately).
    for segment in &segments {
        let pristine = std::fs::read(segment).expect("read segment");
        for offset in 0..pristine.len() {
            let mut damaged = pristine.clone();
            damaged[offset] ^= 0xFF;
            std::fs::write(segment, &damaged).expect("write damaged segment");
            match recover(&dir) {
                Ok(_) => panic!(
                    "recovery accepted a flipped byte at {}+{offset}",
                    segment.display()
                ),
                // Force the error through its Display path too.
                Err(e) => drop(e.to_string()),
            }
            std::fs::write(segment, &pristine).expect("restore segment");
        }
    }

    // Torn tails: a crash mid-write shears the *last* segment at an
    // arbitrary byte. Every truncation length must recover — the torn
    // suffix is dropped fail-closed, never misread as data.
    let last = segments.last().expect("at least one segment");
    let pristine = std::fs::read(last).expect("read last segment");
    let mut survived = 0u32;
    for keep in 0..pristine.len() {
        std::fs::write(last, &pristine[..keep]).expect("shear segment");
        let (pipeline, report) =
            recover(&dir).unwrap_or_else(|e| panic!("torn tail at {keep} bytes must recover: {e}"));
        survived += 1;
        assert!(report.wal_records_replayed <= baseline_replayed);
        let mut out = Vec::new();
        pipeline
            .published()
            .tree()
            .query_snapshot(&REJECTED_CORNER, REJECTED_T, &mut out)
            .expect("probe torn recovery");
        assert!(out.is_empty(), "rejected op resurrected by a torn tail");
    }
    std::fs::write(last, &pristine).expect("restore last segment");
    assert!(survived > 0);

    // Shearing an *interior* segment is not a torn tail — the chain to
    // the next segment breaks, and recovery must say so.
    let interior = &segments[0];
    let bytes = std::fs::read(interior).expect("read interior segment");
    std::fs::write(interior, &bytes[..bytes.len() / 2]).expect("shear interior");
    assert!(
        recover(&dir).is_err(),
        "a sheared interior segment must fail recovery"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// Damaging the newest checkpoint demotes recovery to the previous
/// generation; damaging every checkpoint is a typed error, not a panic.
#[test]
fn checkpoint_damage_falls_back_then_fails_closed() {
    let dir = temp_dir("ckpt");
    durable_run(&dir);

    let mut metas: Vec<PathBuf> = std::fs::read_dir(&dir)
        .expect("read wal dir")
        .map(|e| e.expect("dir entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "meta"))
        .collect();
    metas.sort();
    assert_eq!(metas.len(), 2, "retention keeps exactly two generations");

    let (pristine, report) = recover(&dir).expect("pristine recovery");
    let newest_gen = report.checkpoint_generation.expect("has a checkpoint");
    assert_eq!(report.checkpoints_skipped, 0);
    drop(pristine);

    // Corrupt the newest meta: fall back one generation, count the skip.
    let newest = metas.last().expect("two metas");
    let saved = std::fs::read(newest).expect("read meta");
    let mut damaged = saved.clone();
    damaged[saved.len() / 2] ^= 0xFF;
    std::fs::write(newest, &damaged).expect("damage meta");
    let (_, report) = recover(&dir).expect("fallback recovery");
    assert_eq!(report.checkpoints_skipped, 1);
    assert_eq!(
        report.checkpoint_generation,
        Some(newest_gen - 1),
        "fallback must land on the previous generation"
    );
    std::fs::write(newest, &saved).expect("restore meta");

    // Corrupt the newest *index image* instead: same fallback.
    let idx = newest.with_extension("idx");
    let saved_idx = std::fs::read(&idx).expect("read idx");
    std::fs::write(&idx, b"torn checkpoint image").expect("damage idx");
    let (_, report) = recover(&dir).expect("fallback recovery via idx");
    assert_eq!(report.checkpoints_skipped, 1);
    std::fs::write(&idx, &saved_idx).expect("restore idx");

    // Damage every meta: recovery must refuse with a typed error rather
    // than silently replaying the whole WAL as if no checkpoint existed
    // (the WAL below the oldest cut is already truncated).
    for meta in &metas {
        let bytes = std::fs::read(meta).expect("read meta");
        let mut broken = bytes.clone();
        broken[0] ^= 0xFF;
        std::fs::write(meta, &broken).expect("damage meta");
    }
    match recover(&dir) {
        Err(RecoverError::NoUsableCheckpoint { tried }) => assert_eq!(tried, 2),
        Err(e) => panic!("expected NoUsableCheckpoint, got {e}"),
        Ok(_) => panic!("expected NoUsableCheckpoint, got a recovered pipeline"),
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// Satellite 6 at the library level: a recovered pipeline reports its
/// restored backlog — the queue-depth and pending-event gauges pick up
/// where the crashed process left off instead of resetting to zero.
#[test]
fn recovered_gauges_report_the_restored_backlog() {
    let dir = temp_dir("gauges");
    let ops = workload();
    let mut pipeline = IngestPipeline::new(OnlineSplitConfig::default(), PprParams::default());
    pipeline
        .attach_durability(&dir, wal_config())
        .expect("attach");
    // Stop mid-stream with acknowledged-but-uncommitted ops in flight:
    // past the last commit boundary, before the next.
    let cutoff = COMMIT_EVERY * 3 + 4;
    drive(&mut pipeline, &ops[..cutoff], 0, true).unwrap_or_else(|_| unreachable!("no crash"));
    let backlog = pipeline.queue_len();
    assert!(backlog > 0, "cutoff must strand ops in the queue");
    drop(pipeline);

    let (recovered, report) = recover(&dir).expect("recovery");
    // The restored queue holds everything past the checkpoint's LSN
    // cut, which includes the stranded backlog (and may include already
    // committed ops the replay re-derives deterministically).
    let restored = recovered.queue_len();
    assert!(restored >= backlog, "restored queue lost stranded ops");
    assert!(report.wal_records_replayed > 0 || report.queued_restored > 0);

    let mut metrics = MetricSet::new();
    recovered.record_metrics(&mut metrics);
    report.record_metrics(&mut metrics);
    let text = metrics.to_prometheus();
    assert!(
        text.contains(&format!("ingest_queue_depth {restored}")),
        "queue gauge must survive recovery, got:\n{text}"
    );
    assert!(text.contains("recovery_wal_records_replayed"));
    assert!(text.contains("recovery_checkpoint_generation"));
    assert!(text.contains("wal_appends_total"));
    std::fs::remove_dir_all(&dir).ok();
}

/// Attaching a fresh pipeline to a directory that already holds durable
/// history must fail loudly — that directory belongs to `recover`.
#[test]
fn attach_refuses_a_used_directory() {
    let dir = temp_dir("used");
    durable_run(&dir);
    let mut fresh = IngestPipeline::new(OnlineSplitConfig::default(), PprParams::default());
    assert!(matches!(
        fresh.attach_durability(&dir, wal_config()),
        Err(DurabilityError::DirNotInitial)
    ));
    std::fs::remove_dir_all(&dir).ok();
}
