//! Validation of the analytical cost models (§IV): predictions must
//! track measured query I/O across split budgets — not in absolute
//! value, but in *ordering* and rough ratio, which is all the tuner
//! needs.

use spatiotemporal_index::core::{IndexBackend, IndexConfig, SpatioTemporalIndex, SplitPlan};
use spatiotemporal_index::costmodel::{pagel_cost_2d, BoxStats, RTreeCostModel};
use spatiotemporal_index::datagen::QuerySetSpec;
use spatiotemporal_index::prelude::*;

fn measured_io(records: &[spatiotemporal_index::core::ObjectRecord], queries: usize) -> f64 {
    let mut idx =
        SpatioTemporalIndex::build(records, &IndexConfig::paper(IndexBackend::PprTree)).unwrap();
    let mut spec = QuerySetSpec::small_snapshot();
    spec.cardinality = queries;
    let qs = spec.generate();
    let mut total = 0u64;
    for q in &qs {
        idx.reset_for_query();
        let _ = idx
            .query(&q.area, &q.range)
            .expect("in-memory query cannot fail");
        total += idx.io_stats().reads;
    }
    total as f64 / qs.len() as f64
}

#[test]
fn model_ranking_matches_measurements() {
    let objects = RandomDatasetSpec::paper(8000).generate();
    let model = RTreeCostModel::default();
    let budgets = [0.0, 25.0, 75.0, 150.0];

    let mut predicted = Vec::new();
    let mut measured = Vec::new();
    for pct in budgets {
        let plan = SplitPlan::build(
            &objects,
            SingleSplitAlgorithm::MergeSplit,
            DistributionAlgorithm::LaGreedy,
            SplitBudget::Percent(pct),
            None,
        );
        let records = plan.records(&objects);
        let stats = BoxStats::compute(records.iter().map(|r| &r.stbox), 1000);
        predicted.push(model.estimate(
            (stats.alive_per_instant.ceil() as usize).max(1),
            &[stats.avg_extent.0, stats.avg_extent.1],
            &[0.0055, 0.0055],
        ));
        measured.push(measured_io(&records, 150));
    }

    // Both sequences must be strictly decreasing over the budget sweep
    // (splitting helps), i.e. the model ranks candidates correctly.
    for w in predicted.windows(2) {
        assert!(w[1] < w[0], "model not monotone: {predicted:?}");
    }
    for w in measured.windows(2) {
        assert!(w[1] < w[0], "measurements not monotone: {measured:?}");
    }
    // And the predicted relative improvement is in the measured ballpark.
    let predicted_gain = predicted[0] / predicted[predicted.len() - 1];
    let measured_gain = measured[0] / measured[measured.len() - 1];
    assert!(
        predicted_gain > 1.05 && measured_gain > 1.05,
        "both should show a clear gain: predicted {predicted_gain:.2}, measured {measured_gain:.2}"
    );
    assert!(
        (predicted_gain / measured_gain) < 4.0 && (measured_gain / predicted_gain) < 4.0,
        "gain estimates diverge: predicted {predicted_gain:.2}x vs measured {measured_gain:.2}x"
    );
}

#[test]
fn pagel_formula_counts_record_touches() {
    // The Pagel sum over *records* equals (in expectation) the number of
    // records a uniform query intersects — check against brute force.
    let objects = RandomDatasetSpec::paper(1500).generate();
    let plan = SplitPlan::build(
        &objects,
        SingleSplitAlgorithm::MergeSplit,
        DistributionAlgorithm::Greedy,
        SplitBudget::Percent(50.0),
        None,
    );
    let records = plan.records(&objects);
    let stats = BoxStats::compute(records.iter().map(|r| &r.stbox), 1000);

    // Spatial-only check at a single instant: alive records vs Pagel 2D.
    let q = (0.02, 0.02);
    let predicted = pagel_cost_2d(stats.alive_per_instant.ceil() as usize, stats.avg_extent, q);
    // Monte-Carlo the true expectation.
    let mut spec = QuerySetSpec::small_snapshot();
    spec.cardinality = 400;
    spec.extent_pct = (2.0, 2.0); // exactly 2% per side
    let qs = spec.generate();
    let mut total_hits = 0usize;
    for query in &qs {
        total_hits += records
            .iter()
            .filter(|r| r.stbox.matches(&query.area, &query.range))
            .count();
    }
    let measured = total_hits as f64 / qs.len() as f64;
    assert!(
        predicted / measured < 3.0 && measured / predicted < 3.0,
        "Pagel estimate {predicted:.2} vs measured {measured:.2}"
    );
}

#[test]
fn multiversion_storage_model_tracks_measurements() {
    use spatiotemporal_index::costmodel::MultiVersionCostModel;
    use spatiotemporal_index::hrtree::{HrParams, HrTree};
    use spatiotemporal_index::pprtree::{PprParams, PprTree};

    let objects = RandomDatasetSpec::paper(3000).generate();
    let plan = SplitPlan::build(
        &objects,
        SingleSplitAlgorithm::MergeSplit,
        DistributionAlgorithm::LaGreedy,
        SplitBudget::Percent(100.0),
        None,
    );
    let records = plan.records(&objects);
    let updates = records.len() * 2;

    let mut events: Vec<(u32, u8, usize)> = Vec::new();
    for (i, r) in records.iter().enumerate() {
        events.push((r.stbox.lifetime.start, 1, i));
        events.push((r.stbox.lifetime.end, 0, i));
    }
    events.sort_unstable();
    let mut ppr = PprTree::new(PprParams::default());
    let mut hr = HrTree::new(HrParams::default());
    for &(t, kind, i) in &events {
        let r = &records[i];
        if kind == 1 {
            ppr.insert(r.id, r.stbox.rect, t).unwrap();
            hr.insert(r.id, r.stbox.rect, t).unwrap();
        } else {
            ppr.delete(r.id, r.stbox.rect, t).unwrap();
            hr.delete(r.id, r.stbox.rect, t).unwrap();
        }
    }

    let model = MultiVersionCostModel::default();
    let ppr_pred = model.ppr_pages(updates);
    let ppr_real = ppr.num_pages() as f64;
    assert!(
        ppr_pred / ppr_real < 2.5 && ppr_real / ppr_pred < 2.5,
        "PPR pages: predicted {ppr_pred:.0} vs measured {ppr_real:.0}"
    );

    let alive_avg = records
        .iter()
        .map(|r| r.stbox.lifetime.len() as f64)
        .sum::<f64>()
        / 1000.0;
    let hr_pred = model.hr_pages(updates, alive_avg);
    let hr_real = hr.num_pages() as f64;
    assert!(
        hr_pred / hr_real < 3.0 && hr_real / hr_pred < 3.0,
        "HR pages: predicted {hr_pred:.0} vs measured {hr_real:.0}"
    );
    // And the model preserves the ordering by a wide margin.
    assert!(hr_real > ppr_real * 10.0);
}
