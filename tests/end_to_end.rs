//! End-to-end pipeline tests: generator → splitter → distributor →
//! index → queries, cross-checked against brute force over the records
//! and over the raw per-instant geometry.

use spatiotemporal_index::core::{
    total_volume, unsplit_records, IndexBackend, IndexConfig, ObjectRecord, SplitPlan,
};
use spatiotemporal_index::prelude::*;

fn dataset(n: usize) -> Vec<RasterizedObject> {
    RandomDatasetSpec {
        seed: 0xabcd,
        ..RandomDatasetSpec::paper(n)
    }
    .generate()
}

/// Brute force over the split records (exact semantics of the index).
fn brute_records(records: &[ObjectRecord], area: &Rect2, range: &TimeInterval) -> Vec<u64> {
    let mut v: Vec<u64> = records
        .iter()
        .filter(|r| r.stbox.matches(area, range))
        .map(|r| r.id)
        .collect();
    v.sort_unstable();
    v.dedup();
    v
}

/// Brute force over the raw geometry (the "ground truth" an application
/// cares about; MBR-based indexes may report supersets of this).
fn brute_geometry(objs: &[RasterizedObject], area: &Rect2, range: &TimeInterval) -> Vec<u64> {
    let mut v: Vec<u64> = objs
        .iter()
        .filter(|o| {
            let life = o.lifetime();
            life.overlaps(range)
                && (range.start.max(life.start)..range.end.min(life.end))
                    .any(|t| o.rect((t - life.start) as usize).intersects(area))
        })
        .map(|o| o.id())
        .collect();
    v.sort_unstable();
    v
}

fn query_grid() -> Vec<(Rect2, TimeInterval)> {
    let mut qs = Vec::new();
    for i in 0..6u32 {
        for j in 0..4u32 {
            let x = 0.15 * f64::from(i);
            let y = 0.2 * f64::from(j);
            let t = 150 * i + 37 * j;
            qs.push((
                Rect2::from_bounds(x, y, (x + 0.1).min(1.0), (y + 0.12).min(1.0)),
                TimeInterval::new(t, t + 1),
            ));
            qs.push((
                Rect2::from_bounds(x, y, (x + 0.05).min(1.0), (y + 0.05).min(1.0)),
                TimeInterval::new(t, t + 9),
            ));
        }
    }
    qs
}

#[test]
fn every_algorithm_combination_yields_a_correct_index() {
    let objs = dataset(300);
    for single in [
        SingleSplitAlgorithm::DpSplit,
        SingleSplitAlgorithm::MergeSplit,
    ] {
        for dist in [
            DistributionAlgorithm::Optimal,
            DistributionAlgorithm::Greedy,
            DistributionAlgorithm::LaGreedy,
        ] {
            let plan = SplitPlan::build(&objs, single, dist, SplitBudget::Percent(75.0), Some(20));
            let records = plan.records(&objs);
            assert!((total_volume(&records) - plan.total_volume()).abs() < 1e-6);
            for backend in [IndexBackend::PprTree, IndexBackend::RStar] {
                let idx =
                    SpatioTemporalIndex::build(&records, &IndexConfig::paper(backend)).unwrap();
                for (area, range) in query_grid() {
                    let got = idx.query(&area, &range).unwrap();
                    let want = brute_records(&records, &area, &range);
                    assert_eq!(got, want, "{single}/{dist}/{backend} at {range}");
                }
            }
        }
    }
}

#[test]
fn indexes_never_miss_true_geometry_hits() {
    // MBR approximations may add false positives but must never lose an
    // object that truly intersects the query.
    let objs = dataset(400);
    let plan = SplitPlan::build(
        &objs,
        SingleSplitAlgorithm::MergeSplit,
        DistributionAlgorithm::LaGreedy,
        SplitBudget::Percent(150.0),
        None,
    );
    let records = plan.records(&objs);
    for backend in [IndexBackend::PprTree, IndexBackend::RStar] {
        let idx = SpatioTemporalIndex::build(&records, &IndexConfig::paper(backend)).unwrap();
        for (area, range) in query_grid() {
            let got = idx.query(&area, &range).unwrap();
            for id in brute_geometry(&objs, &area, &range) {
                assert!(got.contains(&id), "{backend} lost object {id} at {range}");
            }
        }
    }
}

#[test]
fn splitting_only_removes_false_positives() {
    // The split representation is contained in the unsplit one, so split
    // answers are subsets of unsplit answers (and supersets of truth).
    let objs = dataset(300);
    let whole = unsplit_records(&objs);
    let plan = SplitPlan::build(
        &objs,
        SingleSplitAlgorithm::MergeSplit,
        DistributionAlgorithm::Greedy,
        SplitBudget::Percent(100.0),
        None,
    );
    let split = plan.records(&objs);
    let cfg = IndexConfig::paper(IndexBackend::PprTree);
    let whole_idx = SpatioTemporalIndex::build(&whole, &cfg).unwrap();
    let split_idx = SpatioTemporalIndex::build(&split, &cfg).unwrap();
    for (area, range) in query_grid() {
        let broad = whole_idx.query(&area, &range).unwrap();
        let tight = split_idx.query(&area, &range).unwrap();
        for id in &tight {
            assert!(
                broad.contains(id),
                "split answer must be a subset at {range}"
            );
        }
    }
}

#[test]
fn railway_pipeline_end_to_end() {
    let trains = RailwayDatasetSpec {
        seed: 5,
        ..RailwayDatasetSpec::paper(400)
    }
    .generate_rasterized();
    let plan = SplitPlan::build(
        &trains,
        SingleSplitAlgorithm::MergeSplit,
        DistributionAlgorithm::LaGreedy,
        SplitBudget::Percent(150.0),
        None,
    );
    let records = plan.records(&trains);
    let ppr =
        SpatioTemporalIndex::build(&records, &IndexConfig::paper(IndexBackend::PprTree)).unwrap();
    let rstar =
        SpatioTemporalIndex::build(&records, &IndexConfig::paper(IndexBackend::RStar)).unwrap();
    for (area, range) in query_grid() {
        let want = brute_records(&records, &area, &range);
        assert_eq!(ppr.query(&area, &range).unwrap(), want, "PPR at {range}");
        assert_eq!(rstar.query(&area, &range).unwrap(), want, "R* at {range}");
    }
}
