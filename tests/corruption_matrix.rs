//! Exhaustive corruption matrix over a saved index image: flip every
//! byte offset and truncate at every page boundary, and assert the
//! loader + sanitizer pair never panics — every damaged image is either
//! rejected with a typed error at open time or caught by
//! `check::validate` afterwards.

use spatiotemporal_index::pprtree::{check, PprParams, PprTree};
use spatiotemporal_index::prelude::*;
use spatiotemporal_index::rstar::{RStarParams, RStarTree};
use spatiotemporal_index::storage::PAGE_SIZE;
use std::path::PathBuf;

fn temp(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("sti-corrupt-{}-{name}", std::process::id()));
    p
}

/// A deliberately tiny index so the byte-exhaustive sweep stays fast:
/// a handful of pages, every structural region (header, meta, free
/// list, pages, trailer) present.
fn tiny_ppr_image() -> Vec<u8> {
    let mut tree = PprTree::new(PprParams {
        max_entries: 10,
        buffer_pages: 4,
        ..PprParams::default()
    });
    let rect_for = |i: u64| {
        let x = (i % 8) as f64 * 0.1;
        let y = (i / 8) as f64 * 0.2;
        Rect2::from_bounds(x, y, x + 0.05, y + 0.05)
    };
    for i in 0..32u64 {
        tree.insert(i, rect_for(i), i as u32).unwrap();
    }
    for i in (0..32u64).step_by(4) {
        tree.delete(i, rect_for(i), 40 + i as u32).unwrap();
    }
    let path = temp("ppr-src");
    tree.save_to_file(&path).expect("save");
    let bytes = std::fs::read(&path).expect("read image");
    std::fs::remove_file(&path).ok();
    bytes
}

/// Flip every single byte of the image in turn. Opening the damaged
/// file must fail with a typed error, or the loaded tree must be caught
/// by the sanitizer; in no case may either of them panic, and a flip
/// must never go completely unnoticed.
#[test]
fn every_single_byte_flip_is_detected_without_panicking() {
    let pristine = tiny_ppr_image();
    assert!(
        pristine.len() < 40 * PAGE_SIZE,
        "matrix input grew too large to sweep: {} bytes",
        pristine.len()
    );
    let path = temp("ppr-flip");
    let mut undetected = Vec::new();
    for offset in 0..pristine.len() {
        let mut bad = pristine.clone();
        bad[offset] ^= 0xFF;
        std::fs::write(&path, &bad).unwrap();
        match PprTree::open_file(&path) {
            // Fail-closed at open time: a typed io::Error. Nothing to
            // assert beyond "it did not panic".
            Err(_) => {}
            // The loader let it through: the sanitizer must object.
            Ok(back) => {
                if check::validate(&back).is_ok() {
                    undetected.push(offset);
                }
            }
        }
    }
    std::fs::remove_file(&path).ok();
    assert!(
        undetected.is_empty(),
        "byte flips at {undetected:?} survived both the loader and the sanitizer"
    );
}

/// Truncate at every page boundary (and at every offset within the
/// first page, which holds the header and metadata): `open_file` must
/// reject every prefix of a valid image.
#[test]
fn every_truncation_point_fails_closed() {
    let pristine = tiny_ppr_image();
    let path = temp("ppr-trunc");
    let header_cuts = 0..pristine.len().min(PAGE_SIZE);
    let page_cuts = (1..)
        .map(|i| i * PAGE_SIZE)
        .take_while(|&c| c < pristine.len());
    for cut in header_cuts.chain(page_cuts) {
        std::fs::write(&path, &pristine[..cut]).unwrap();
        assert!(
            PprTree::open_file(&path).is_err(),
            "prefix of {cut}/{} bytes must be rejected",
            pristine.len()
        );
    }
    std::fs::remove_file(&path).ok();
}

/// The same truncation sweep for the R*-Tree loader (its `validate`
/// panics on defect, so for this backend the guarantee is entirely
/// "open fails closed").
#[test]
fn rstar_truncation_points_fail_closed() {
    let mut tree = RStarTree::new(RStarParams::default());
    for i in 0..64u64 {
        let x = (i % 8) as f64 * 0.1;
        let y = (i / 8) as f64 * 0.1;
        let t = i as f64 / 64.0;
        tree.insert(i, Rect3::new([x, y, t], [x + 0.05, y + 0.05, t]))
            .unwrap();
    }
    let path = temp("rstar-trunc");
    tree.save_to_file(&path).expect("save");
    let pristine = std::fs::read(&path).expect("read image");

    for cut in (0..pristine.len()).step_by(61).chain(
        (1..)
            .map(|i| i * PAGE_SIZE)
            .take_while(|&c| c < pristine.len()),
    ) {
        std::fs::write(&path, &pristine[..cut]).unwrap();
        assert!(
            RStarTree::open_file(&path).is_err(),
            "prefix of {cut}/{} bytes must be rejected",
            pristine.len()
        );
    }

    // The untouched image still loads and answers.
    std::fs::write(&path, &pristine).unwrap();
    let mut back = RStarTree::open_file(&path).expect("pristine reopen");
    back.validate();
    std::fs::remove_file(&path).ok();
}
