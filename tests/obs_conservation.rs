//! Conservation law for the per-query observability layer: the
//! [`sti_obs::QueryStats`] a tree returns are *deltas* of the global
//! [`spatiotemporal_index::storage::IoStats`] counters, so over any
//! sequence of queries — with no counter resets in between — the
//! per-query deltas must sum exactly to the global counter movement.
//! If a query path ever touched the store outside its snapshot window
//! (or double-counted inside it), these sums would drift.
//!
//! Runs across all three tree backends and multiple buffer capacities,
//! including the degenerate capacity-0 pool where every access is a
//! disk read.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use spatiotemporal_index::geom::{Rect2, Rect3, TimeInterval};
use spatiotemporal_index::hrtree::{HrParams, HrTree};
use spatiotemporal_index::obs::QueryStats;
use spatiotemporal_index::pprtree::{PprParams, PprTree};
use spatiotemporal_index::rstar::{RStarParams, RStarTree};
use spatiotemporal_index::storage::IoStats;

const BUFFER_CAPACITIES: [usize; 3] = [0, 4, 10];

fn random_rect2(rng: &mut StdRng) -> Rect2 {
    let x = rng.random::<f64>() * 0.8;
    let y = rng.random::<f64>() * 0.8;
    let w = 0.05 + rng.random::<f64>() * 0.2;
    Rect2::from_bounds(x, y, x + w, y + w)
}

/// Assert that summed per-query deltas equal the global counter delta.
fn assert_conserved(label: &str, total: QueryStats, before: IoStats, after: IoStats) {
    assert_eq!(
        total.disk_reads,
        after.reads - before.reads,
        "{label}: disk reads drifted"
    );
    assert_eq!(
        total.disk_writes,
        after.writes - before.writes,
        "{label}: disk writes drifted"
    );
    assert_eq!(
        total.buffer_hits,
        after.buffer_hits - before.buffer_hits,
        "{label}: buffer hits drifted"
    );
}

fn build_ppr(rng: &mut StdRng, n: u32) -> PprTree {
    let mut tree = PprTree::new(PprParams::default());
    let mut alive = Vec::new();
    for i in 0..n {
        let rect = random_rect2(rng);
        tree.insert(u64::from(i), rect, i).unwrap();
        alive.push((u64::from(i), rect));
        // Interleave deletions so several tree versions exist.
        if alive.len() > 4 && rng.random_bool(0.3) {
            let (id, r) = alive.swap_remove(rng.random_range(0..alive.len() - 1));
            tree.delete(id, r, i).expect("record is alive");
        }
    }
    tree
}

fn build_hr(rng: &mut StdRng, n: u32) -> HrTree {
    let mut tree = HrTree::new(HrParams::default());
    let mut alive = Vec::new();
    for i in 0..n {
        let rect = random_rect2(rng);
        tree.insert(u64::from(i), rect, i).unwrap();
        alive.push((u64::from(i), rect));
        if alive.len() > 4 && rng.random_bool(0.3) {
            let (id, r) = alive.swap_remove(rng.random_range(0..alive.len() - 1));
            tree.delete(id, r, i).expect("record is alive");
        }
    }
    tree
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn ppr_query_stats_sum_to_global_delta(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut tree = build_ppr(&mut rng, 80);
        let horizon = tree.now();
        for capacity in BUFFER_CAPACITIES {
            tree.set_buffer_capacity(capacity);
            let before = tree.io_stats();
            let mut total = QueryStats::new();
            for _ in 0..12 {
                let area = random_rect2(&mut rng);
                let mut out = Vec::new();
                if rng.random_bool(0.5) {
                    let t = rng.random_range(0..horizon.max(1));
                    total += tree.query_snapshot(&area, t, &mut out).unwrap();
                } else {
                    let a = rng.random_range(0..horizon.max(1));
                    let b = rng.random_range(a..=horizon);
                    total += tree.query_interval(&area, &TimeInterval::new(a, b + 1), &mut out).unwrap();
                }
            }
            assert_conserved("ppr", total, before, tree.io_stats());
        }
    }

    #[test]
    fn hr_query_stats_sum_to_global_delta(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut tree = build_hr(&mut rng, 80);
        let horizon = tree.now();
        for capacity in BUFFER_CAPACITIES {
            tree.set_buffer_capacity(capacity);
            let before = tree.io_stats();
            let mut total = QueryStats::new();
            for _ in 0..12 {
                let area = random_rect2(&mut rng);
                let mut out = Vec::new();
                if rng.random_bool(0.5) {
                    let t = rng.random_range(0..horizon.max(1));
                    total += tree.query_snapshot(&area, t, &mut out).unwrap();
                } else {
                    let a = rng.random_range(0..horizon.max(1));
                    let b = rng.random_range(a..=horizon);
                    total += tree.query_interval(&area, &TimeInterval::new(a, b + 1), &mut out).unwrap();
                }
            }
            assert_conserved("hr", total, before, tree.io_stats());
        }
    }

    #[test]
    fn rstar_query_stats_sum_to_global_delta(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut tree = RStarTree::new(RStarParams::default());
        for id in 0..150u64 {
            let lo = [
                rng.random::<f64>(),
                rng.random::<f64>(),
                rng.random::<f64>(),
            ];
            let hi = [lo[0] + 0.1, lo[1] + 0.1, lo[2] + 0.1];
            tree.insert(id, Rect3::new(lo, hi)).unwrap();
        }
        for capacity in BUFFER_CAPACITIES {
            tree.set_buffer_capacity(capacity);
            let before = tree.io_stats();
            let mut total = QueryStats::new();
            for _ in 0..12 {
                let lo = [
                    rng.random::<f64>() * 0.7,
                    rng.random::<f64>() * 0.7,
                    rng.random::<f64>() * 0.7,
                ];
                let hi = [lo[0] + 0.3, lo[1] + 0.3, lo[2] + 0.3];
                let mut out = Vec::new();
                total += tree.query(&Rect3::new(lo, hi), &mut out).unwrap();
            }
            assert_conserved("rstar", total, before, tree.io_stats());
        }
    }
}
