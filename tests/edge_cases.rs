//! Edge cases across the public API surface: empty and minimal inputs,
//! degenerate geometry, extreme budgets.

use spatiotemporal_index::core::{
    total_volume, unsplit_records, IndexBackend, IndexConfig, SpatioTemporalIndex, SplitPlan,
};
use spatiotemporal_index::prelude::*;

#[test]
fn empty_record_set_builds_and_answers_nothing() {
    for backend in [IndexBackend::PprTree, IndexBackend::RStar] {
        let idx = SpatioTemporalIndex::build(&[], &IndexConfig::paper(backend)).unwrap();
        assert_eq!(idx.record_count(), 0);
        let hits = idx
            .query(&Rect2::UNIT, &TimeInterval::new(0, 1000))
            .unwrap();
        assert!(hits.is_empty(), "{backend}");
    }
}

#[test]
fn empty_object_collection_plans_trivially() {
    let objects: Vec<RasterizedObject> = Vec::new();
    let plan = SplitPlan::build(
        &objects,
        SingleSplitAlgorithm::MergeSplit,
        DistributionAlgorithm::LaGreedy,
        SplitBudget::Percent(150.0),
        None,
    );
    assert_eq!(plan.allocation().splits_used(), 0);
    assert_eq!(plan.records(&objects).len(), 0);
    assert_eq!(plan.total_volume(), 0.0);
}

#[test]
fn single_instant_objects_index_fine() {
    // Lifetime of exactly one instant: no splits possible, still queryable.
    let objects: Vec<RasterizedObject> = (0..30u64)
        .map(|id| {
            RasterizedObject::new(
                id,
                (id * 30) as u32,
                vec![Rect2::from_bounds(0.1, 0.1, 0.2, 0.2)],
            )
        })
        .collect();
    let plan = SplitPlan::build(
        &objects,
        SingleSplitAlgorithm::DpSplit,
        DistributionAlgorithm::Optimal,
        SplitBudget::Percent(150.0),
        None,
    );
    assert_eq!(
        plan.allocation().splits_used(),
        0,
        "1-instant objects cannot split"
    );
    let records = plan.records(&objects);
    assert_eq!(records.len(), 30);
    for backend in [IndexBackend::PprTree, IndexBackend::RStar] {
        let idx = SpatioTemporalIndex::build(&records, &IndexConfig::paper(backend)).unwrap();
        let hits = idx
            .query(
                &Rect2::from_bounds(0.0, 0.0, 0.3, 0.3),
                &TimeInterval::instant(60),
            )
            .unwrap();
        assert_eq!(hits, vec![2], "{backend}");
    }
}

#[test]
fn zero_extent_point_objects_work_end_to_end() {
    // Moving points: degenerate rectangles everywhere (railway-style).
    let objects: Vec<RasterizedObject> = (0..20u64)
        .map(|id| {
            let rects = (0..15)
                .map(|i| {
                    Rect2::point(spatiotemporal_index::geom::Point2::new(
                        0.05 * id as f64 % 1.0,
                        0.05 * i as f64,
                    ))
                })
                .collect();
            RasterizedObject::new(id, 100, rects)
        })
        .collect();
    let records = unsplit_records(&objects);
    assert_eq!(total_volume(&records), 0.0, "points have zero volume");
    for backend in [IndexBackend::PprTree, IndexBackend::RStar] {
        let idx = SpatioTemporalIndex::build(&records, &IndexConfig::paper(backend)).unwrap();
        let hits = idx
            .query(&Rect2::UNIT, &TimeInterval::instant(105))
            .unwrap();
        assert_eq!(hits.len(), 20, "{backend}");
    }
}

#[test]
fn budget_vastly_exceeding_capacity_saturates() {
    let objects: Vec<RasterizedObject> = (0..5u64)
        .map(|id| {
            let rects = (0..6)
                .map(|i| Rect2::from_bounds(0.1 * i as f64, 0.0, 0.1 * i as f64 + 0.05, 0.05))
                .collect();
            RasterizedObject::new(id, 0, rects)
        })
        .collect();
    let plan = SplitPlan::build(
        &objects,
        SingleSplitAlgorithm::MergeSplit,
        DistributionAlgorithm::Greedy,
        SplitBudget::Count(1_000_000),
        None,
    );
    // 5 objects × (6 − 1) max splits each.
    assert_eq!(plan.allocation().splits_used(), 25);
    assert_eq!(plan.records(&objects).len(), 30);
}

#[test]
fn whole_space_whole_time_query_returns_everything() {
    let objects = RandomDatasetSpec::paper(200).generate();
    let records = unsplit_records(&objects);
    for backend in [IndexBackend::PprTree, IndexBackend::RStar] {
        let idx = SpatioTemporalIndex::build(&records, &IndexConfig::paper(backend)).unwrap();
        let hits = idx
            .query(&Rect2::UNIT, &TimeInterval::new(0, 1000))
            .unwrap();
        assert_eq!(hits.len(), 200, "{backend}");
    }
}

#[test]
fn queries_outside_all_lifetimes_return_nothing() {
    let objects: Vec<RasterizedObject> = (0..10u64)
        .map(|id| RasterizedObject::new(id, 100, vec![Rect2::from_bounds(0.4, 0.4, 0.6, 0.6); 20]))
        .collect();
    let records = unsplit_records(&objects);
    for backend in [IndexBackend::PprTree, IndexBackend::RStar] {
        let idx = SpatioTemporalIndex::build(&records, &IndexConfig::paper(backend)).unwrap();
        assert!(idx
            .query(&Rect2::UNIT, &TimeInterval::new(0, 100))
            .unwrap()
            .is_empty());
        assert!(idx
            .query(&Rect2::UNIT, &TimeInterval::new(120, 900))
            .unwrap()
            .is_empty());
        assert_eq!(
            idx.query(&Rect2::UNIT, &TimeInterval::new(119, 121))
                .unwrap()
                .len(),
            10
        );
    }
}
