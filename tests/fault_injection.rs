//! Fault-injection property tests: random insert/delete/query
//! interleavings against randomly seeded [`FaultPlan`]s, on all three
//! tree structures.
//!
//! The properties, per case:
//!   1. No operation panics — faults surface as typed errors only.
//!   2. A failed operation leaves no trace: the tree keeps answering
//!      exactly like the shadow model, which is only advanced on `Ok`.
//!   3. After the storm the structure passes its invariant checker.
//!   4. A save interrupted by a simulated crash leaves the previous
//!      file current, and any torn temp image fails closed on open.
//!
//! Fault schedules stay inside `FAULT_HORIZON` backend operations while
//! every workload performs at least `STEPS` backend writes, so by the
//! time the final validation walks the tree the plan is exhausted and a
//! panicking checker (`HrTree::validate`, `RStarTree::validate`) can be
//! used as the oracle without racing leftover faults.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use spatiotemporal_index::hrtree::tree::DeleteError as HrDeleteError;
use spatiotemporal_index::hrtree::{HrParams, HrTree};
use spatiotemporal_index::pprtree::tree::DeleteError as PprDeleteError;
use spatiotemporal_index::pprtree::{check, PprParams, PprTree};
use spatiotemporal_index::rstar::{RStarParams, RStarTree};
use spatiotemporal_index::storage::{FaultPlan, FaultyBackend};
use sti_geom::{Rect2, Rect3, TimeInterval};

/// Steps per workload; each step attempts at least one backend write,
/// so the executed operation count always exceeds the fault horizon.
const STEPS: u32 = 50;
/// All scheduled faults fire (or go stale) within this many backend
/// operations — strictly less than the writes the workload performs.
const FAULT_HORIZON: u64 = 40;

fn plan_for(seed: u64) -> FaultPlan {
    // 1..=6 faults, count drawn from the same seed for reproducibility.
    FaultPlan::seeded(seed, FAULT_HORIZON, (seed % 6) as usize + 1)
}

fn small_rect(rng: &mut StdRng) -> Rect2 {
    let x = rng.random::<f64>() * 0.9;
    let y = rng.random::<f64>() * 0.9;
    Rect2::from_bounds(x, y, x + 0.05, y + 0.05)
}

fn query_area(rng: &mut StdRng) -> Rect2 {
    let x = rng.random::<f64>() * 0.5;
    let y = rng.random::<f64>() * 0.5;
    let w = 0.1 + rng.random::<f64>() * 0.5;
    Rect2::from_bounds(x, y, (x + w).min(1.0), (y + w).min(1.0))
}

/// Shadow model shared by the two temporal trees: full record history
/// with alive intervals `[start, end)`.
#[derive(Default)]
struct Shadow {
    records: Vec<(u64, Rect2, u32, u32)>,
}

impl Shadow {
    fn snapshot(&self, area: &Rect2, t: u32) -> Vec<u64> {
        let mut v: Vec<u64> = self
            .records
            .iter()
            .filter(|(_, r, s, e)| *s <= t && t < *e && r.intersects(area))
            .map(|&(id, ..)| id)
            .collect();
        v.sort_unstable();
        v
    }

    fn interval(&self, area: &Rect2, range: &TimeInterval) -> Vec<u64> {
        let mut v: Vec<u64> = self
            .records
            .iter()
            .filter(|(_, r, s, e)| TimeInterval::new(*s, *e).overlaps(range) && r.intersects(area))
            .map(|&(id, ..)| id)
            .collect();
        v.sort_unstable();
        v.dedup();
        v
    }
}

/// One faulted PPR-Tree workload: returns the tree and its shadow for
/// final validation by the caller.
fn ppr_case(seed: u64) {
    let backend = FaultyBackend::new_mem(plan_for(seed));
    let mut tree = PprTree::with_backend(
        PprParams {
            max_entries: 10,
            buffer_pages: 4,
            ..PprParams::default()
        },
        Box::new(backend),
    );
    let mut rng = StdRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15);
    let mut shadow = Shadow::default();
    let mut alive: Vec<usize> = Vec::new();
    let mut failed_ops = 0u64;

    for t in 0..STEPS {
        // Every step inserts (id = step), keeping the backend op count
        // growing past the fault horizon.
        let id = u64::from(t);
        let r = small_rect(&mut rng);
        match tree.insert(id, r, t) {
            Ok(()) => {
                shadow.records.push((id, r, t, u32::MAX));
                alive.push(shadow.records.len() - 1);
            }
            Err(_) => failed_ops += 1, // typed, rolled back
        }

        if !alive.is_empty() && rng.random::<f64>() < 0.3 {
            let k = rng.random_range(0..alive.len());
            let idx = alive[k];
            let (id, r, ..) = shadow.records[idx];
            match tree.delete(id, r, t) {
                Ok(()) => {
                    shadow.records[idx].3 = t;
                    alive.swap_remove(k);
                }
                Err(PprDeleteError::Storage(_)) => failed_ops += 1,
                Err(e @ PprDeleteError::NotFound { .. }) => {
                    panic!("shadow says {id} is alive at {t}: {e}")
                }
            }
        }

        if rng.random::<f64>() < 0.4 {
            let area = query_area(&mut rng);
            let qt = rng.random_range(0..=t);
            let mut out = Vec::new();
            match tree.query_snapshot(&area, qt, &mut out) {
                Ok(_) => {
                    out.sort_unstable();
                    assert_eq!(
                        out,
                        shadow.snapshot(&area, qt),
                        "snapshot t={qt} seed={seed}"
                    );
                }
                Err(_) => failed_ops += 1,
            }
            let range = TimeInterval::new(qt, qt + 1 + qt % 7);
            let mut out = Vec::new();
            match tree.query_interval(&area, &range, &mut out) {
                Ok(_) => {
                    out.sort_unstable();
                    out.dedup();
                    assert_eq!(
                        out,
                        shadow.interval(&area, &range),
                        "interval {range} seed={seed}"
                    );
                }
                Err(_) => failed_ops += 1,
            }
        }
    }

    // Accounting sanity: failures only come from injected faults.
    if failed_ops > 0 {
        assert!(
            tree.fault_stats().io_faults_injected > 0,
            "{failed_ops} ops failed without any injected fault"
        );
    }
    if let Err(violations) = check::validate(&tree) {
        let lines: Vec<String> = violations.iter().map(|v| v.to_string()).collect();
        panic!(
            "seed {seed}: invariants broken after faults:\n{}",
            lines.join("\n")
        );
    }
}

fn hr_case(seed: u64) {
    let backend = FaultyBackend::new_mem(plan_for(seed));
    let mut tree = HrTree::with_backend(
        HrParams {
            max_entries: 8,
            buffer_pages: 4,
            ..HrParams::default()
        },
        Box::new(backend),
    );
    let mut rng = StdRng::seed_from_u64(seed ^ 0x6c62_272e_07bb_0142);
    let mut shadow = Shadow::default();
    let mut alive: Vec<usize> = Vec::new();

    for t in 0..STEPS {
        let id = u64::from(t);
        let r = small_rect(&mut rng);
        if tree.insert(id, r, t).is_ok() {
            shadow.records.push((id, r, t, u32::MAX));
            alive.push(shadow.records.len() - 1);
        }

        if !alive.is_empty() && rng.random::<f64>() < 0.3 {
            let k = rng.random_range(0..alive.len());
            let idx = alive[k];
            let (id, r, ..) = shadow.records[idx];
            match tree.delete(id, r, t) {
                Ok(()) => {
                    shadow.records[idx].3 = t;
                    alive.swap_remove(k);
                }
                Err(HrDeleteError::Storage(_)) => {}
                Err(e @ HrDeleteError::NotFound { .. }) => {
                    panic!("shadow says {id} is alive at {t}: {e}")
                }
            }
        }

        if rng.random::<f64>() < 0.4 {
            let area = query_area(&mut rng);
            let qt = rng.random_range(0..=t);
            let mut out = Vec::new();
            if tree.query_snapshot(&area, qt, &mut out).is_ok() {
                out.sort_unstable();
                assert_eq!(
                    out,
                    shadow.snapshot(&area, qt),
                    "snapshot t={qt} seed={seed}"
                );
            }
        }
    }

    // The plan is exhausted (see FAULT_HORIZON): the panicking
    // invariant walker is safe to use as the final oracle.
    tree.validate();
}

fn rstar_case(seed: u64) {
    let backend = FaultyBackend::new_mem(plan_for(seed));
    let mut tree = match RStarTree::with_backend(
        RStarParams {
            max_entries: 10,
            buffer_pages: 4,
            ..RStarParams::default()
        },
        Box::new(backend),
    ) {
        Ok(t) => t,
        // A fault on the very first operations can fail construction;
        // that is a typed, clean outcome.
        Err(_) => return,
    };
    let mut rng = StdRng::seed_from_u64(seed ^ 0x2545_f491_4f6c_dd1d);
    let mut alive: Vec<(u64, Rect3)> = Vec::new();

    let cube = |rng: &mut StdRng| {
        let x = rng.random::<f64>() * 0.9;
        let y = rng.random::<f64>() * 0.9;
        let z = rng.random::<f64>() * 0.9;
        Rect3::new([x, y, z], [x + 0.05, y + 0.05, z + 0.05])
    };

    for id in 0..u64::from(STEPS) {
        let r = cube(&mut rng);
        if tree.insert(id, r).is_ok() {
            alive.push((id, r));
        }

        if !alive.is_empty() && rng.random::<f64>() < 0.3 {
            let k = rng.random_range(0..alive.len());
            let (id, r) = alive[k];
            match tree.delete(id, &r) {
                Ok(true) => {
                    alive.swap_remove(k);
                }
                Ok(false) => panic!("shadow says {id} is present (seed={seed})"),
                Err(_) => {}
            }
        }

        if rng.random::<f64>() < 0.4 {
            let q = {
                let x = rng.random::<f64>() * 0.5;
                let y = rng.random::<f64>() * 0.5;
                let z = rng.random::<f64>() * 0.5;
                Rect3::new([x, y, z], [x + 0.4, y + 0.4, z + 0.4])
            };
            let mut out = Vec::new();
            if tree.query(&q, &mut out).is_ok() {
                out.sort_unstable();
                let mut want: Vec<u64> = alive
                    .iter()
                    .filter(|(_, r)| r.intersects(&q))
                    .map(|&(id, _)| id)
                    .collect();
                want.sort_unstable();
                assert_eq!(out, want, "rstar query seed={seed}");
            }
        }
    }

    tree.validate();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn ppr_tree_survives_random_faults(seed in any::<u64>()) {
        ppr_case(seed);
    }

    #[test]
    fn hr_tree_survives_random_faults(seed in any::<u64>()) {
        hr_case(seed);
    }

    #[test]
    fn rstar_tree_survives_random_faults(seed in any::<u64>()) {
        rstar_case(seed);
    }
}

/// Crash-safe persistence: a save interrupted mid-temp-file or just
/// before the rename leaves the previous image current and loadable,
/// and the torn temp file fails closed if anything tries to open it.
#[test]
fn mid_save_crash_recovers_to_the_previous_image() {
    use spatiotemporal_index::storage::{OpenError, PageStore, ReadProbe, SaveCrash};

    let dir = std::env::temp_dir();
    let path = dir.join(format!("sti-crash-{}.idx", std::process::id()));
    let tmp = dir.join(format!("sti-crash-{}.idx.tmp", std::process::id()));

    let mut store = PageStore::new(4);
    let a = store.allocate().unwrap();
    store.write(a, b"version one").unwrap();
    store.save_to(&path, b"meta-v1").expect("clean save");

    // Crash while the temp file is half-written: the current file is
    // untouched, and the torn temp image is rejected.
    store.write(a, b"version two").unwrap();
    store
        .save_to_crashing(&path, b"meta-v2", SaveCrash::MidTemp { keep_bytes: 100 })
        .expect("simulated crash is not an error");
    let (back, meta) = PageStore::load_from(&path, 4).expect("previous image loads");
    assert_eq!(meta, b"meta-v1");
    assert_eq!(
        &back.read(a, &mut ReadProbe::new()).unwrap().bytes()[..11],
        b"version one"
    );
    let torn = PageStore::load_from(&tmp, 4);
    assert!(
        matches!(
            torn,
            Err(OpenError::Truncated { .. }) | Err(OpenError::Corrupt { .. })
        ),
        "torn temp image must fail closed: {torn:?}"
    );

    // Crash after the temp file is complete but before the rename: the
    // previous image is still the current one.
    store
        .save_to_crashing(&path, b"meta-v2", SaveCrash::BeforeRename)
        .expect("simulated crash is not an error");
    let (_, meta) = PageStore::load_from(&path, 4).expect("previous image still loads");
    assert_eq!(meta, b"meta-v1", "rename never happened");

    // An uninterrupted save then supersedes it.
    store.save_to(&path, b"meta-v2").expect("clean save");
    let (back, meta) = PageStore::load_from(&path, 4).expect("new image loads");
    assert_eq!(meta, b"meta-v2");
    assert_eq!(
        &back.read(a, &mut ReadProbe::new()).unwrap().bytes()[..11],
        b"version two"
    );

    std::fs::remove_file(&path).ok();
    std::fs::remove_file(&tmp).ok();
}

/// The same guarantee at tree level: after a tree is saved, torn
/// prefixes of a would-be replacement image (what a crashed re-save
/// leaves in its temp file) never open as a valid index, while the
/// original file keeps validating clean.
#[test]
fn tree_level_crash_images_fail_closed_or_validate_clean() {
    let path = std::env::temp_dir().join(format!("sti-crash-tree-{}.idx", std::process::id()));
    let mut tree = PprTree::new(PprParams {
        max_entries: 10,
        buffer_pages: 4,
        ..PprParams::default()
    });
    let mut rng = StdRng::seed_from_u64(7);
    for i in 0..80u64 {
        let r = small_rect(&mut rng);
        tree.insert(i, r, i as u32).unwrap();
    }
    tree.save_to_file(&path).expect("save");
    let pristine = std::fs::read(&path).expect("read image");

    for cut in [0, 1, 37, pristine.len() / 3, pristine.len() - 1] {
        std::fs::write(&path, &pristine[..cut]).unwrap();
        assert!(
            PprTree::open_file(&path).is_err(),
            "crash image of {cut} bytes must fail closed"
        );
    }

    std::fs::write(&path, &pristine).unwrap();
    let back = PprTree::open_file(&path).expect("pristine image reopens");
    assert!(check::validate(&back).is_ok());
    std::fs::remove_file(&path).ok();
}
