//! Cross-structure equivalence: the three persistence approaches (PPR,
//! HR, and the 3D R\*-Tree) must agree on every historical query over the
//! same update stream — they differ in cost, never in answers.

use spatiotemporal_index::core::SplitPlan;
use spatiotemporal_index::geom::{Rect3, TimeInterval};
use spatiotemporal_index::hrtree::{HrParams, HrTree};
use spatiotemporal_index::pprtree::{PprParams, PprTree};
use spatiotemporal_index::prelude::*;
use spatiotemporal_index::rstar::{RStarParams, RStarTree};

fn build_all(records: &[spatiotemporal_index::core::ObjectRecord]) -> (PprTree, HrTree, RStarTree) {
    let mut events: Vec<(u32, u8, usize)> = Vec::new();
    for (i, r) in records.iter().enumerate() {
        events.push((r.stbox.lifetime.start, 1, i));
        events.push((r.stbox.lifetime.end, 0, i));
    }
    events.sort_unstable();

    let mut ppr = PprTree::new(PprParams {
        max_entries: 12,
        ..PprParams::default()
    });
    let mut hr = HrTree::new(HrParams {
        max_entries: 12,
        ..HrParams::default()
    });
    for &(t, kind, i) in &events {
        let r = &records[i];
        if kind == 1 {
            ppr.insert(r.id, r.stbox.rect, t).unwrap();
            hr.insert(r.id, r.stbox.rect, t).unwrap();
        } else {
            ppr.delete(r.id, r.stbox.rect, t).unwrap();
            hr.delete(r.id, r.stbox.rect, t).unwrap();
        }
    }
    let mut rstar = RStarTree::new(RStarParams {
        max_entries: 12,
        ..RStarParams::default()
    });
    for r in records {
        rstar.insert(r.id, r.to_rect3(1000.0)).unwrap();
    }
    (ppr, hr, rstar)
}

#[test]
fn all_three_structures_agree_everywhere() {
    let objects = RandomDatasetSpec::paper(500).generate();
    let plan = SplitPlan::build(
        &objects,
        SingleSplitAlgorithm::MergeSplit,
        DistributionAlgorithm::LaGreedy,
        SplitBudget::Percent(120.0),
        None,
    );
    let records = plan.records(&objects);
    let (ppr, hr, rstar) = build_all(&records);

    for i in 0..40u32 {
        let x = 0.09 * f64::from(i % 10);
        let area = Rect2::from_bounds(x, 0.1, (x + 0.12).min(1.0), 0.6);
        let t = 25 * i;
        // Snapshot agreement.
        let mut a = Vec::new();
        let mut b = Vec::new();
        ppr.query_snapshot(&area, t, &mut a).unwrap();
        hr.query_snapshot(&area, t, &mut b).unwrap();
        a.sort_unstable();
        a.dedup();
        b.sort_unstable();
        b.dedup();
        assert_eq!(a, b, "PPR vs HR snapshot at t={t}");
        let mut c = Vec::new();
        let q = Rect3::new(
            [area.lo.x, area.lo.y, f64::from(t) / 1000.0],
            [area.hi.x, area.hi.y, f64::from(t) / 1000.0],
        );
        rstar.query(&q, &mut c).unwrap();
        c.sort_unstable();
        c.dedup();
        assert_eq!(a, c, "PPR vs R* snapshot at t={t}");

        // Interval agreement.
        let range = TimeInterval::new(t, t + 1 + (i % 13));
        let mut d = Vec::new();
        let mut e = Vec::new();
        ppr.query_interval(&area, &range, &mut d).unwrap();
        hr.query_interval(&area, &range, &mut e).unwrap();
        d.sort_unstable();
        e.sort_unstable();
        assert_eq!(d, e, "PPR vs HR interval at {range}");
    }
}

#[test]
fn railway_stream_agreement() {
    let trains = RailwayDatasetSpec::paper(400).generate_rasterized();
    let plan = SplitPlan::build(
        &trains,
        SingleSplitAlgorithm::MergeSplit,
        DistributionAlgorithm::Greedy,
        SplitBudget::Percent(80.0),
        None,
    );
    let records = plan.records(&trains);
    let (ppr, hr, _) = build_all(&records);
    for t in (0..1000).step_by(111) {
        let area = Rect2::from_bounds(0.0, 0.5, 0.3, 1.0); // around California
        let mut a = Vec::new();
        let mut b = Vec::new();
        ppr.query_snapshot(&area, t, &mut a).unwrap();
        hr.query_snapshot(&area, t, &mut b).unwrap();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b, "t={t}");
    }
}
