//! Partial-persistence semantics under adversarial churn, checked
//! against a naive shadow and across backends.

use spatiotemporal_index::geom::{Rect2, TimeInterval};
use spatiotemporal_index::pprtree::{PprParams, PprTree};

fn rect(x: f64, y: f64, s: f64) -> Rect2 {
    Rect2::from_bounds(x, y, (x + s).min(1.0), (y + s).min(1.0))
}

struct Shadow {
    records: Vec<(u64, Rect2, u32, u32)>,
}

impl Shadow {
    fn snapshot(&self, area: &Rect2, t: u32) -> Vec<u64> {
        let mut v: Vec<u64> = self
            .records
            .iter()
            .filter(|(_, r, s, e)| *s <= t && t < *e && r.intersects(area))
            .map(|&(id, ..)| id)
            .collect();
        v.sort_unstable();
        v
    }
}

/// Deterministic "chaos" workload: waves of correlated births and deaths,
/// including whole-population extinctions, rebuilding from nothing, and
/// single-survivor eras — the regimes that stress version splits, merges
/// and root turnover.
#[test]
fn extinction_and_rebirth_eras() {
    let params = PprParams {
        max_entries: 12,
        buffer_pages: 4,
        ..PprParams::default()
    };
    let mut tree = PprTree::new(params);
    let mut shadow = Shadow {
        records: Vec::new(),
    };
    let mut next_id = 0u64;

    let mut alive: Vec<(u64, Rect2)> = Vec::new();
    for era in 0..6u32 {
        let t0 = era * 100;
        // Boom: 30 objects in a tight cluster (stresses key splits).
        for i in 0..30u64 {
            let r = rect(
                0.3 + 0.01 * (i % 6) as f64,
                0.3 + 0.01 * (i / 6) as f64,
                0.015,
            );
            tree.insert(next_id, r, t0 + i as u32 / 10).unwrap();
            shadow
                .records
                .push((next_id, r, t0 + i as u32 / 10, u32::MAX));
            alive.push((next_id, r));
            next_id += 1;
        }
        // Bust: everything dies except one survivor per era.
        let survivor = alive[era as usize % alive.len()];
        for (id, r) in alive.drain(..) {
            if id == survivor.0 {
                continue;
            }
            let td = t0 + 50;
            tree.delete(id, r, td).unwrap();
            let rec = shadow
                .records
                .iter_mut()
                .find(|(i, ..)| *i == id)
                .expect("exists");
            rec.3 = td;
        }
        alive.push(survivor);
        // Kill the survivor too on even eras → total extinction.
        if era % 2 == 0 {
            let (id, r) = alive.pop().expect("survivor");
            tree.delete(id, r, t0 + 60).unwrap();
            let rec = shadow
                .records
                .iter_mut()
                .find(|(i, ..)| *i == id)
                .expect("exists");
            rec.3 = t0 + 60;
        }
    }
    tree.validate();

    // Every instant of the whole evolution, three windows each.
    for t in 0..620u32 {
        for area in [
            Rect2::UNIT,
            Rect2::from_bounds(0.3, 0.3, 0.34, 0.34),
            Rect2::from_bounds(0.8, 0.8, 0.9, 0.9),
        ] {
            let mut got = Vec::new();
            tree.query_snapshot(&area, t, &mut got).unwrap();
            got.sort_unstable();
            assert_eq!(got, shadow.snapshot(&area, t), "t={t}");
        }
    }
}

/// Long-lived records must survive arbitrarily many version splits
/// caused by churning neighbors, and interval queries must report them
/// exactly once.
#[test]
fn long_lived_records_survive_churn() {
    let params = PprParams {
        max_entries: 10,
        buffer_pages: 4,
        ..PprParams::default()
    };
    let mut tree = PprTree::new(params);
    // Ten immortal anchors spread over space.
    for i in 0..10u64 {
        tree.insert(i, rect(0.09 * i as f64, 0.5, 0.02), 0).unwrap();
    }
    // 500 churners near the anchors.
    let mut id = 100u64;
    for round in 0..100u32 {
        let t = 1 + round * 3;
        for j in 0..5u64 {
            let r = rect(0.09 * ((id + j) % 10) as f64, 0.5, 0.02);
            tree.insert(id + j, r, t).unwrap();
        }
        for j in 0..5u64 {
            let r = rect(0.09 * ((id + j) % 10) as f64, 0.5, 0.02);
            tree.delete(id + j, r, t + 1).unwrap();
        }
        id += 5;
    }
    tree.validate();

    // All ten anchors alive at every probed instant.
    for t in (0..300).step_by(23) {
        let mut got = Vec::new();
        tree.query_snapshot(&Rect2::UNIT, t, &mut got).unwrap();
        let anchors = got.iter().filter(|&&i| i < 10).count();
        assert_eq!(anchors, 10, "t={t}");
    }
    // Interval query over everything reports each anchor once.
    let mut got = Vec::new();
    tree.query_interval(&Rect2::UNIT, &TimeInterval::new(0, 400), &mut got)
        .unwrap();
    let mut anchors: Vec<u64> = got.into_iter().filter(|&i| i < 10).collect();
    anchors.sort_unstable();
    assert_eq!(anchors, (0..10).collect::<Vec<u64>>());
}

/// The root log is a consistent, consecutive partition of time.
#[test]
fn root_log_invariants_under_heavy_load() {
    let params = PprParams {
        max_entries: 10,
        buffer_pages: 4,
        ..PprParams::default()
    };
    let mut tree = PprTree::new(params);
    for i in 0..2000u64 {
        tree.insert(
            i,
            rect((i % 40) as f64 * 0.024, (i % 25) as f64 * 0.039, 0.02),
            (i / 2) as u32,
        )
        .unwrap();
    }
    for i in 0..1000u64 {
        tree.delete(
            i,
            rect((i % 40) as f64 * 0.024, (i % 25) as f64 * 0.039, 0.02),
            1000 + i as u32,
        )
        .unwrap();
    }
    tree.validate();
    let roots = tree.roots();
    assert!(roots.len() > 1, "heavy load should turn over the root");
    for w in roots.windows(2) {
        assert_eq!(
            w[0].interval.end, w[1].interval.start,
            "gaps in the root log"
        );
    }
    assert_eq!(tree.alive_records(), 1000);
    assert_eq!(tree.total_records(), 2000);
}
