//! The shared-read-path contract: one tree, many reader threads.
//!
//! Queries take `&self` end to end (tree → page store → sharded
//! buffer), so N threads can query one shared tree with no external
//! locking. These tests pin the three properties that make that safe
//! to rely on:
//!
//! 1. **Determinism** — concurrent queries return byte-identical
//!    result sets to the same queries run sequentially; thread count
//!    and interleaving can never change an answer.
//! 2. **Conservation** — per-query [`QueryStats`] are attributed via
//!    per-call probes, so they sum exactly to the global
//!    [`IoStats`] delta even when queries race on the buffer pool.
//! 3. **Fault isolation** — under a [`FaultyBackend`] storm, a
//!    concurrent reader observes a typed [`StorageError`] or a correct
//!    result, never a panic and never a torn (partially wrong) result
//!    set.
//!
//! All three tree backends are covered, across several shard counts
//! including the single-shard default that reproduces the paper's one
//! LRU exactly.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use spatiotemporal_index::geom::{Rect2, Rect3, TimeInterval};
use spatiotemporal_index::hrtree::{HrParams, HrTree};
use spatiotemporal_index::obs::QueryStats;
use spatiotemporal_index::pprtree::{PprParams, PprTree};
use spatiotemporal_index::rstar::{RStarParams, RStarTree};
use spatiotemporal_index::storage::{
    FaultKind, FaultPlan, FaultyBackend, ScheduledFault, StorageError,
};

const THREADS: usize = 4;
const QUERIES: usize = 32;
const SHARD_COUNTS: [usize; 3] = [1, 4, 7];

/// One query descriptor, pre-generated so every pass (sequential or
/// concurrent, any backend) sees the same workload.
#[derive(Debug, Clone, Copy)]
struct Q {
    area: Rect2,
    range: TimeInterval,
}

fn random_rect2(rng: &mut StdRng) -> Rect2 {
    let x = rng.random::<f64>() * 0.8;
    let y = rng.random::<f64>() * 0.8;
    let w = 0.05 + rng.random::<f64>() * 0.2;
    Rect2::from_bounds(x, y, x + w, y + w)
}

fn queries(rng: &mut StdRng, horizon: u32) -> Vec<Q> {
    (0..QUERIES)
        .map(|_| {
            let area = random_rect2(rng);
            let range = if rng.random_bool(0.5) {
                let t = rng.random_range(0..horizon.max(1));
                TimeInterval::new(t, t + 1)
            } else {
                let a = rng.random_range(0..horizon.max(1));
                let b = rng.random_range(a..=horizon);
                TimeInterval::new(a, b + 1)
            };
            Q { area, range }
        })
        .collect()
}

fn build_ppr(rng: &mut StdRng, n: u32) -> PprTree {
    let mut tree = PprTree::new(PprParams::default());
    let mut alive = Vec::new();
    for i in 0..n {
        let rect = random_rect2(rng);
        tree.insert(u64::from(i), rect, i).unwrap();
        alive.push((u64::from(i), rect));
        if alive.len() > 4 && rng.random_bool(0.3) {
            let (id, r) = alive.swap_remove(rng.random_range(0..alive.len() - 1));
            tree.delete(id, r, i).expect("record is alive");
        }
    }
    tree
}

fn build_hr(rng: &mut StdRng, n: u32) -> HrTree {
    let mut tree = HrTree::new(HrParams::default());
    for i in 0..n {
        tree.insert(u64::from(i), random_rect2(rng), i).unwrap();
    }
    tree
}

/// Run `query` for every descriptor on the calling thread.
fn run_sequential<F>(qs: &[Q], query: F) -> Vec<Result<(Vec<u64>, QueryStats), StorageError>>
where
    F: Fn(&Q) -> Result<(Vec<u64>, QueryStats), StorageError>,
{
    qs.iter().map(&query).collect()
}

/// Run `query` for every descriptor across [`THREADS`] scoped threads
/// (round-robin deal), reassembling outcomes in descriptor order.
fn run_concurrent<F>(qs: &[Q], query: F) -> Vec<Result<(Vec<u64>, QueryStats), StorageError>>
where
    F: Fn(&Q) -> Result<(Vec<u64>, QueryStats), StorageError> + Sync,
{
    let query = &query;
    let mut slots: Vec<_> = qs.iter().map(|_| None).collect();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..THREADS)
            .map(|tid| {
                scope.spawn(move || {
                    qs.iter()
                        .enumerate()
                        .filter(|(i, _)| i % THREADS == tid)
                        .map(|(i, q)| (i, query(q)))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        for handle in handles {
            for (i, outcome) in handle.join().expect("reader thread must not panic") {
                slots[i] = Some(outcome);
            }
        }
    });
    slots
        .into_iter()
        .map(|s| s.expect("every slot filled"))
        .collect()
}

/// Sorted ids from an outcome (queries make no result-order promise).
fn ids(outcome: &Result<(Vec<u64>, QueryStats), StorageError>) -> Vec<u64> {
    let mut v = outcome.as_ref().expect("fault-free query").0.clone();
    v.sort_unstable();
    v
}

/// Properties 1 + 2 for one tree: concurrent results must be
/// byte-identical to the sequential baseline, and the concurrent pass's
/// per-query stats must sum exactly to the global counter delta.
fn assert_concurrent_matches_sequential<F, S>(label: &str, qs: &[Q], query: F, io: S)
where
    F: Fn(&Q) -> Result<(Vec<u64>, QueryStats), StorageError> + Sync,
    S: Fn() -> spatiotemporal_index::storage::IoStats,
{
    let baseline = run_sequential(qs, &query);
    let before = io();
    let concurrent = run_concurrent(qs, &query);
    let after = io();

    let mut total = QueryStats::new();
    for (i, (b, c)) in baseline.iter().zip(&concurrent).enumerate() {
        assert_eq!(
            ids(b),
            ids(c),
            "{label}: query {i} diverged under concurrency"
        );
        total += c.as_ref().expect("fault-free query").1;
    }
    assert_eq!(
        total.disk_reads,
        after.reads - before.reads,
        "{label}: concurrent disk reads drifted from the global delta"
    );
    assert_eq!(
        total.buffer_hits,
        after.buffer_hits - before.buffer_hits,
        "{label}: concurrent buffer hits drifted from the global delta"
    );
    assert_eq!(
        total.disk_writes,
        after.writes - before.writes,
        "{label}: queries must not write"
    );
}

// Compile-time proof that every tree is shareable across threads.
#[allow(dead_code)]
fn trees_are_sync() {
    fn assert_sync<T: Sync>() {}
    assert_sync::<PprTree>();
    assert_sync::<HrTree>();
    assert_sync::<RStarTree>();
    assert_sync::<spatiotemporal_index::core::SpatioTemporalIndex>();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn ppr_concurrent_queries_are_deterministic_and_conserved(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut tree = build_ppr(&mut rng, 80);
        let horizon = tree.now();
        let qs = queries(&mut rng, horizon);
        for shards in SHARD_COUNTS {
            tree.set_buffer_shards(shards);
            let t = &tree;
            assert_concurrent_matches_sequential(
                &format!("ppr/shards={shards}"),
                &qs,
                |q: &Q| {
                    let mut out = Vec::new();
                    let stats = if q.range.len() == 1 {
                        t.query_snapshot(&q.area, q.range.start, &mut out)?
                    } else {
                        t.query_interval(&q.area, &q.range, &mut out)?
                    };
                    Ok((out, stats))
                },
                || t.io_stats(),
            );
        }
    }

    #[test]
    fn hr_concurrent_queries_are_deterministic_and_conserved(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut tree = build_hr(&mut rng, 60);
        let horizon = tree.now();
        let qs = queries(&mut rng, horizon);
        for shards in SHARD_COUNTS {
            tree.set_buffer_shards(shards);
            let t = &tree;
            assert_concurrent_matches_sequential(
                &format!("hr/shards={shards}"),
                &qs,
                |q: &Q| {
                    let mut out = Vec::new();
                    let stats = if q.range.len() == 1 {
                        t.query_snapshot(&q.area, q.range.start, &mut out)?
                    } else {
                        t.query_interval(&q.area, &q.range, &mut out)?
                    };
                    Ok((out, stats))
                },
                || t.io_stats(),
            );
        }
    }

    #[test]
    fn rstar_concurrent_queries_are_deterministic_and_conserved(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut tree = RStarTree::new(RStarParams::default());
        for id in 0..150u64 {
            let lo = [rng.random::<f64>(), rng.random::<f64>(), rng.random::<f64>()];
            let hi = [lo[0] + 0.1, lo[1] + 0.1, lo[2] + 0.1];
            tree.insert(id, Rect3::new(lo, hi)).unwrap();
        }
        let qs = queries(&mut rng, 1000);
        for shards in SHARD_COUNTS {
            tree.set_buffer_shards(shards);
            let t = &tree;
            assert_concurrent_matches_sequential(
                &format!("rstar/shards={shards}"),
                &qs,
                |q: &Q| {
                    let scale = 1000.0;
                    let mut out = Vec::new();
                    let stats =
                        t.query(&Rect3::from_query(&q.area, &q.range, scale), &mut out)?;
                    Ok((out, stats))
                },
                || t.io_stats(),
            );
        }
    }
}

// ---------------------------------------------------------------------
// Property 3: fault storms under concurrent readers.
// ---------------------------------------------------------------------

/// A plan that keeps firing for the whole test: one fault every
/// `period` backend operations, cycling permanent fails, transient
/// fails, and read bit flips (which the store's checksum verification
/// catches and retries).
fn storm_plan(period: u64, horizon: u64) -> FaultPlan {
    let faults = (0..horizon / period)
        .map(|i| ScheduledFault {
            at_op: i * period,
            kind: match i % 3 {
                0 => FaultKind::Fail { transient: false },
                1 => FaultKind::Fail { transient: true },
                _ => FaultKind::BitFlip {
                    byte: (i % 4096) as u16,
                    bit: (i % 8) as u8,
                },
            },
        })
        .collect();
    FaultPlan::new(faults)
}

/// Build the same workload twice — once over a fault storm, once
/// clean — keeping only the inserts that succeeded on the faulty tree
/// (failed updates roll back completely), so both trees index exactly
/// the same records.
fn faulty_and_shadow_ppr(seed: u64) -> (PprTree, PprTree) {
    let params = PprParams {
        max_entries: 10,
        buffer_pages: 4,
        ..PprParams::default()
    };
    let mut faulty = PprTree::with_backend(
        params,
        Box::new(FaultyBackend::new_mem(storm_plan(97, 2_000_000))),
    );
    let mut shadow = PprTree::new(params);
    let mut rng = StdRng::seed_from_u64(seed);
    for t in 0..120u32 {
        let rect = random_rect2(&mut rng);
        if faulty.insert(u64::from(t), rect, t).is_ok() {
            shadow.insert(u64::from(t), rect, t).unwrap();
        }
    }
    (faulty, shadow)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn ppr_fault_storm_under_concurrent_readers_yields_typed_errors_only(seed in any::<u64>()) {
        let (mut faulty, shadow) = faulty_and_shadow_ppr(seed);
        faulty.set_buffer_shards(4);
        let horizon = faulty.now();
        let mut rng = StdRng::seed_from_u64(seed ^ 0xdead_beef);
        let qs = queries(&mut rng, horizon);

        // Fault-free expected answers from the shadow tree.
        let expected: Vec<Vec<u64>> = qs
            .iter()
            .map(|q| {
                let mut out = Vec::new();
                if q.range.len() == 1 {
                    shadow.query_snapshot(&q.area, q.range.start, &mut out).unwrap();
                } else {
                    shadow.query_interval(&q.area, &q.range, &mut out).unwrap();
                }
                out.sort_unstable();
                out
            })
            .collect();

        let t = &faulty;
        let outcomes = run_concurrent(&qs, |q: &Q| {
            let mut out = Vec::new();
            let stats = if q.range.len() == 1 {
                t.query_snapshot(&q.area, q.range.start, &mut out)?
            } else {
                t.query_interval(&q.area, &q.range, &mut out)?
            };
            Ok((out, stats))
        });

        let mut failed = 0usize;
        for (i, outcome) in outcomes.iter().enumerate() {
            match outcome {
                Ok((got, _)) => {
                    // Interval queries release nothing on error, and
                    // snapshot queries that *succeed* must be complete:
                    // a success under faults is indistinguishable from
                    // a fault-free run.
                    let mut got = got.clone();
                    got.sort_unstable();
                    prop_assert_eq!(
                        &got, &expected[i],
                        "query {} returned a torn result under faults", i
                    );
                }
                Err(e) => {
                    failed += 1;
                    // Typed, query-scoped errors only — and the error
                    // classifies as a real storage failure, not a panic
                    // smuggled into a Result.
                    let _: &StorageError = e;
                }
            }
        }
        // The storm fires every 97 ops with capacity-4 buffers, so some
        // queries genuinely fail; if none did, the storm never reached
        // the read path and the test proves nothing.
        prop_assert!(failed > 0, "storm never hit a concurrent reader");
    }
}
