//! Every `.rs` file in the repository must get a *deliberate* decision
//! from stilint's classification matrix: either it is linted with a
//! non-empty rule set, or it is exempt for a stated reason. A file the
//! matrix does not know (`Classification::Unknown`) fails this test, so
//! adding a new top-level directory forces a conscious choice instead of
//! silently dodging the lint.

use std::path::{Path, PathBuf};
use stilint::{classify, classify_full, collect_files, Classification, FileClass};

fn workspace_root() -> PathBuf {
    // CARGO_MANIFEST_DIR for the root package *is* the workspace root.
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
}

fn rel(root: &Path, file: &Path) -> String {
    file.strip_prefix(root)
        .unwrap_or(file)
        .to_string_lossy()
        .replace('\\', "/")
}

#[test]
fn every_rust_file_gets_a_deliberate_classification() {
    let root = workspace_root();
    let files = collect_files(&root).expect("walk workspace");
    assert!(
        files.len() > 50,
        "suspiciously few files ({}) — walking the wrong root?",
        files.len()
    );
    let mut unknown = Vec::new();
    let mut empty_rule_set = Vec::new();
    for file in &files {
        let rel = rel(&root, file);
        match classify_full(&rel) {
            Classification::Unknown => unknown.push(rel),
            Classification::Exempt(reason) => {
                assert!(!reason.is_empty(), "{rel}: exemption without a reason");
            }
            Classification::Lint(class) => {
                if class == FileClass::SKIP {
                    empty_rule_set.push(rel);
                }
            }
        }
    }
    assert!(
        unknown.is_empty(),
        "files without a classification entry (add them to stilint's \
         classify_full matrix): {unknown:#?}"
    );
    assert!(
        empty_rule_set.is_empty(),
        "files classified as Lint but with no rules enabled: {empty_rule_set:#?}"
    );
}

#[test]
fn linted_files_all_enforce_the_interprocedural_rules() {
    let root = workspace_root();
    let files = collect_files(&root).expect("walk workspace");
    for file in &files {
        let rel = rel(&root, file);
        if let Classification::Lint(class) = classify_full(&rel) {
            // lock_discipline and atomic_order hold everywhere; panic_path
            // everywhere except the tool crate (its parser indexes its own
            // bounds-checked buffers heavily).
            assert!(class.lock_discipline, "{rel}: lock_discipline off");
            assert!(class.atomic_order, "{rel}: atomic_order off");
            if !rel.starts_with("crates/stilint/") {
                assert!(class.panic_path, "{rel}: panic_path off");
            }
        }
    }
}

#[test]
fn durability_layer_is_covered_by_the_io_rules() {
    // The WAL and the recovery module perform storage I/O on the
    // durability path; both must sit inside R5 `no_io_unwrap` (and the
    // universal R7 `lock_discipline`) so a panic on a failed read can
    // never slip into crash recovery.
    for rel in ["crates/storage/src/wal.rs", "crates/core/src/recover.rs"] {
        match classify_full(rel) {
            Classification::Lint(class) => {
                assert!(class.no_io_unwrap, "{rel}: no_io_unwrap off");
                assert!(class.lock_discipline, "{rel}: lock_discipline off");
            }
            other => panic!("{rel}: expected Lint, got {other:?}"),
        }
    }
}

#[test]
fn classify_agrees_with_classify_full() {
    let root = workspace_root();
    for file in collect_files(&root).expect("walk workspace") {
        let rel = rel(&root, &file);
        match classify_full(&rel) {
            Classification::Lint(class) => assert_eq!(classify(&rel), class, "{rel}"),
            _ => assert_eq!(classify(&rel), FileClass::SKIP, "{rel}"),
        }
    }
}
