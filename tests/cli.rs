//! End-to-end tests of the `stidx` command-line tool: generate → stats →
//! build (both backends) → query, plus error handling.

use std::path::PathBuf;
use std::process::Command;

fn stidx() -> Command {
    Command::new(env!("CARGO_BIN_EXE_stidx"))
}

fn temp(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("sti-cli-{}-{name}", std::process::id()));
    p
}

#[test]
fn full_pipeline_both_backends() {
    let data = temp("data.stdat");
    let out = stidx()
        .args(["generate", "--kind", "random", "--n", "300", "--out"])
        .arg(&data)
        .output()
        .expect("run generate");
    assert!(
        out.status.success(),
        "generate failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    let out = stidx()
        .args(["stats", "--data"])
        .arg(&data)
        .output()
        .expect("run stats");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(
        text.contains("Total Objects              300"),
        "stats output: {text}"
    );

    for backend in ["ppr", "rstar"] {
        let idx = temp(&format!("index.{backend}"));
        let out = stidx()
            .args(["build", "--data"])
            .arg(&data)
            .args(["--out"])
            .arg(&idx)
            .args(["--backend", backend, "--splits", "100%"])
            .output()
            .expect("run build");
        assert!(
            out.status.success(),
            "build {backend} failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );

        let out = stidx()
            .args(["query", "--index"])
            .arg(&idx)
            .args([
                "--backend",
                backend,
                "--area",
                "0.0,0.0,1.0,1.0",
                "--time",
                "500",
            ])
            .output()
            .expect("run query");
        assert!(out.status.success());
        let text = String::from_utf8_lossy(&out.stdout);
        let first = text.lines().next().expect("summary line");
        assert!(
            first.contains("objects") && first.contains("disk reads"),
            "{first}"
        );
        // The whole-space snapshot finds a plausible number of objects
        // (~ objects-per-instant = 300 * 50 / 1000 = 15).
        let found: usize = first
            .split_whitespace()
            .next()
            .expect("count")
            .parse()
            .expect("int");
        assert!((3..=60).contains(&found), "implausible hit count {found}");
        std::fs::remove_file(&idx).ok();
    }
    std::fs::remove_file(&data).ok();
}

#[test]
fn interval_queries_return_supersets_of_snapshots() {
    let data = temp("interval.stdat");
    let idx = temp("interval.ppr");
    assert!(stidx()
        .args(["generate", "--kind", "railway", "--n", "200", "--out"])
        .arg(&data)
        .status()
        .expect("generate")
        .success());
    assert!(stidx()
        .args(["build", "--data"])
        .arg(&data)
        .args(["--out"])
        .arg(&idx)
        .status()
        .expect("build")
        .success());

    let run = |args: &[&str]| -> usize {
        let out = stidx()
            .args(["query", "--index"])
            .arg(&idx)
            .args(["--backend", "ppr"])
            .args(args)
            .output()
            .expect("query");
        assert!(out.status.success());
        String::from_utf8_lossy(&out.stdout)
            .lines()
            .next()
            .expect("summary")
            .split_whitespace()
            .next()
            .expect("count")
            .parse()
            .expect("int")
    };
    let snap = run(&["--area", "0.0,0.0,1.0,1.0", "--time", "400"]);
    let span = run(&[
        "--area",
        "0.0,0.0,1.0,1.0",
        "--time",
        "400",
        "--until",
        "440",
    ]);
    assert!(
        span >= snap,
        "interval ({span}) must contain snapshot ({snap})"
    );
    std::fs::remove_file(&data).ok();
    std::fs::remove_file(&idx).ok();
}

#[test]
fn helpful_errors() {
    let out = stidx().args(["frobnicate"]).output().expect("run");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage:"));

    let out = stidx()
        .args([
            "query",
            "--index",
            "/nonexistent",
            "--backend",
            "ppr",
            "--area",
            "0,0,1,1",
            "--time",
            "5",
        ])
        .output()
        .expect("run");
    assert!(!out.status.success());

    let out = stidx()
        .args([
            "generate", "--kind", "martian", "--n", "5", "--out", "/tmp/x",
        ])
        .output()
        .expect("run");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown dataset kind"));
}

#[test]
fn nearest_subcommand_works() {
    let data = temp("knn.stdat");
    let idx = temp("knn.ppr");
    assert!(stidx()
        .args(["generate", "--kind", "random", "--n", "200", "--out"])
        .arg(&data)
        .status()
        .expect("generate")
        .success());
    assert!(stidx()
        .args(["build", "--data"])
        .arg(&data)
        .args(["--out"])
        .arg(&idx)
        .status()
        .expect("build")
        .success());
    let out = stidx()
        .args(["nearest", "--index"])
        .arg(&idx)
        .args([
            "--backend",
            "ppr",
            "--point",
            "0.5,0.5",
            "--time",
            "500",
            "--k",
            "3",
        ])
        .output()
        .expect("nearest");
    assert!(
        out.status.success(),
        "nearest failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("nearest at t=500"), "{text}");
    // Distances are printed ascending.
    let dists: Vec<f64> = text
        .lines()
        .skip(1)
        .filter_map(|l| l.split_whitespace().last()?.parse().ok())
        .collect();
    assert!(dists.windows(2).all(|w| w[0] <= w[1]), "{dists:?}");
    std::fs::remove_file(&data).ok();
    std::fs::remove_file(&idx).ok();
}
