//! End-to-end tests of the `stidx` command-line tool: generate → stats →
//! build (both backends) → query, plus error handling.

use std::path::PathBuf;
use std::process::Command;

fn stidx() -> Command {
    Command::new(env!("CARGO_BIN_EXE_stidx"))
}

fn temp(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("sti-cli-{}-{name}", std::process::id()));
    p
}

#[test]
fn full_pipeline_both_backends() {
    let data = temp("data.stdat");
    let out = stidx()
        .args(["generate", "--kind", "random", "--n", "300", "--out"])
        .arg(&data)
        .output()
        .expect("run generate");
    assert!(
        out.status.success(),
        "generate failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    let out = stidx()
        .args(["stats", "--data"])
        .arg(&data)
        .output()
        .expect("run stats");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(
        text.contains("Total Objects              300"),
        "stats output: {text}"
    );

    for backend in ["ppr", "rstar"] {
        let idx = temp(&format!("index.{backend}"));
        let out = stidx()
            .args(["build", "--data"])
            .arg(&data)
            .args(["--out"])
            .arg(&idx)
            .args(["--backend", backend, "--splits", "100%"])
            .output()
            .expect("run build");
        assert!(
            out.status.success(),
            "build {backend} failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );

        let out = stidx()
            .args(["query", "--index"])
            .arg(&idx)
            .args([
                "--backend",
                backend,
                "--area",
                "0.0,0.0,1.0,1.0",
                "--time",
                "500",
            ])
            .output()
            .expect("run query");
        assert!(out.status.success());
        let text = String::from_utf8_lossy(&out.stdout);
        let first = text.lines().next().expect("summary line");
        assert!(
            first.contains("objects") && first.contains("disk reads"),
            "{first}"
        );
        // The whole-space snapshot finds a plausible number of objects
        // (~ objects-per-instant = 300 * 50 / 1000 = 15).
        let found: usize = first
            .split_whitespace()
            .next()
            .expect("count")
            .parse()
            .expect("int");
        assert!((3..=60).contains(&found), "implausible hit count {found}");
        std::fs::remove_file(&idx).ok();
    }
    std::fs::remove_file(&data).ok();
}

#[test]
fn interval_queries_return_supersets_of_snapshots() {
    let data = temp("interval.stdat");
    let idx = temp("interval.ppr");
    assert!(stidx()
        .args(["generate", "--kind", "railway", "--n", "200", "--out"])
        .arg(&data)
        .status()
        .expect("generate")
        .success());
    assert!(stidx()
        .args(["build", "--data"])
        .arg(&data)
        .args(["--out"])
        .arg(&idx)
        .status()
        .expect("build")
        .success());

    let run = |args: &[&str]| -> usize {
        let out = stidx()
            .args(["query", "--index"])
            .arg(&idx)
            .args(["--backend", "ppr"])
            .args(args)
            .output()
            .expect("query");
        assert!(out.status.success());
        String::from_utf8_lossy(&out.stdout)
            .lines()
            .next()
            .expect("summary")
            .split_whitespace()
            .next()
            .expect("count")
            .parse()
            .expect("int")
    };
    let snap = run(&["--area", "0.0,0.0,1.0,1.0", "--time", "400"]);
    let span = run(&[
        "--area",
        "0.0,0.0,1.0,1.0",
        "--time",
        "400",
        "--until",
        "440",
    ]);
    assert!(
        span >= snap,
        "interval ({span}) must contain snapshot ({snap})"
    );
    std::fs::remove_file(&data).ok();
    std::fs::remove_file(&idx).ok();
}

#[test]
fn stats_describes_index_files_and_metrics_flag_writes_counters() {
    let data = temp("obs.stdat");
    let idx = temp("obs.ppr");
    assert!(stidx()
        .args(["generate", "--kind", "random", "--n", "200", "--out"])
        .arg(&data)
        .status()
        .expect("generate")
        .success());
    assert!(stidx()
        .args(["build", "--data"])
        .arg(&data)
        .args(["--out"])
        .arg(&idx)
        .status()
        .expect("build")
        .success());

    // `stats` sniffs the magic: bare positional works for both kinds.
    let out = stidx().arg("stats").arg(&data).output().expect("stats");
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("Total Objects"));

    let out = stidx().arg("stats").arg(&idx).output().expect("stats");
    assert!(
        out.status.success(),
        "index stats failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    for needle in ["backend", "ppr", "pages", "records posted", "height"] {
        assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
    }

    // Global --metrics flag, any position: Prometheus text for a query.
    let prom = temp("query.prom");
    let out = stidx()
        .args(["--metrics"])
        .arg(&prom)
        .args(["query", "--index"])
        .arg(&idx)
        .args([
            "--backend",
            "ppr",
            "--area",
            "0.0,0.0,1.0,1.0",
            "--time",
            "500",
        ])
        .output()
        .expect("query with metrics");
    assert!(
        out.status.success(),
        "query --metrics failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let reads: u64 = String::from_utf8_lossy(&out.stdout)
        .lines()
        .next()
        .expect("summary")
        .split_whitespace()
        .nth(2)
        .expect("reads field")
        .parse()
        .expect("int");
    let metrics = std::fs::read_to_string(&prom).expect("metrics file written");
    assert!(metrics.contains("# TYPE stidx_query_disk_reads counter"));
    assert!(
        metrics.contains(&format!("stidx_query_disk_reads {reads}")),
        "metrics disagree with the printed read count {reads}:\n{metrics}"
    );
    // The fault/retry counters from the storage layer ride along on
    // every query; a healthy file-backed run pins them all at zero.
    for counter in [
        "stidx_query_io_retries",
        "stidx_query_io_faults_injected",
        "stidx_query_checksum_failures",
    ] {
        assert!(
            metrics.contains(&format!("# TYPE {counter} counter"))
                && metrics.contains(&format!("{counter} 0")),
            "missing fault counter {counter}:\n{metrics}"
        );
    }

    // `.json` extension switches the serializer.
    let json = temp("stats.json");
    assert!(stidx()
        .arg(format!("--metrics={}", json.display()))
        .arg("stats")
        .arg(&idx)
        .status()
        .expect("stats with metrics")
        .success());
    let text = std::fs::read_to_string(&json).expect("json metrics written");
    assert!(
        text.trim_start().starts_with('[') && text.contains("\"stidx_index_pages\""),
        "not the JSON serializer:\n{text}"
    );

    for p in [&data, &idx, &prom, &json] {
        std::fs::remove_file(p).ok();
    }
}

#[test]
fn helpful_errors() {
    let out = stidx().args(["frobnicate"]).output().expect("run");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage:"));

    let out = stidx()
        .args([
            "query",
            "--index",
            "/nonexistent",
            "--backend",
            "ppr",
            "--area",
            "0,0,1,1",
            "--time",
            "5",
        ])
        .output()
        .expect("run");
    assert!(!out.status.success());

    let out = stidx()
        .args([
            "generate", "--kind", "martian", "--n", "5", "--out", "/tmp/x",
        ])
        .output()
        .expect("run");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown dataset kind"));
}

#[test]
fn unknown_and_duplicate_flags_are_refused_with_suggestions() {
    // A typo'd flag used to be silently dropped (and its default used);
    // now the parser refuses and names the nearest valid flag.
    let out = stidx()
        .args([
            "ingest",
            "--data",
            "/tmp/x",
            "--out",
            "/tmp/y",
            "--commit-evry",
            "4",
        ])
        .output()
        .expect("run");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(
        err.contains("unknown flag --commit-evry (did you mean --commit-every?)"),
        "{err}"
    );

    // A flag from a *different* subcommand is just as unknown here.
    let out = stidx()
        .args(["query", "--index", "/tmp/x", "--kind", "random"])
        .output()
        .expect("run");
    assert!(!out.status.success());
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("unknown flag --kind"),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // Duplicates are ambiguous, not last-one-wins.
    let out = stidx()
        .args([
            "generate", "--kind", "random", "--kind", "railway", "--n", "5", "--out", "/tmp/x",
        ])
        .output()
        .expect("run");
    assert!(!out.status.success());
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("duplicate flag --kind"),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn stalled_seal_fails_the_ingest_run() {
    let data = temp("stall.stdat");
    let idx = temp("stall.ppr");
    assert!(stidx()
        .args(["generate", "--kind", "random", "--n", "60", "--out"])
        .arg(&data)
        .status()
        .expect("generate")
        .success());

    // The hidden wedge hook forces seal() onto its genuine stalled exit;
    // the run must fail loudly instead of saving a partial index.
    let out = stidx()
        .env("STIDX_TEST_WEDGE_SEAL", "1")
        .args(["ingest", "--data"])
        .arg(&data)
        .args(["--out"])
        .arg(&idx)
        .output()
        .expect("run ingest");
    assert!(
        !out.status.success(),
        "a stalled seal must be a non-zero exit"
    );
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("sealing stalled"), "{err}");
    assert!(
        err.contains("pending") && err.contains("queued"),
        "diagnostics must quote the undrained queue/pending counts: {err}"
    );
    assert!(
        !idx.exists(),
        "no index file may be written for a stalled stream"
    );

    // Control: the same dataset without the wedge ingests fine.
    let out = stidx()
        .args(["ingest", "--data"])
        .arg(&data)
        .args(["--out"])
        .arg(&idx)
        .output()
        .expect("run ingest");
    assert!(
        out.status.success(),
        "unwedged ingest failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    std::fs::remove_file(&data).ok();
    std::fs::remove_file(&idx).ok();
}

#[test]
fn nearest_subcommand_works() {
    let data = temp("knn.stdat");
    let idx = temp("knn.ppr");
    assert!(stidx()
        .args(["generate", "--kind", "random", "--n", "200", "--out"])
        .arg(&data)
        .status()
        .expect("generate")
        .success());
    assert!(stidx()
        .args(["build", "--data"])
        .arg(&data)
        .args(["--out"])
        .arg(&idx)
        .status()
        .expect("build")
        .success());
    let out = stidx()
        .args(["nearest", "--index"])
        .arg(&idx)
        .args([
            "--backend",
            "ppr",
            "--point",
            "0.5,0.5",
            "--time",
            "500",
            "--k",
            "3",
        ])
        .output()
        .expect("nearest");
    assert!(
        out.status.success(),
        "nearest failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("nearest at t=500"), "{text}");
    // Distances are printed ascending.
    let dists: Vec<f64> = text
        .lines()
        .skip(1)
        .filter_map(|l| l.split_whitespace().last()?.parse().ok())
        .collect();
    assert!(dists.windows(2).all(|w| w[0] <= w[1]), "{dists:?}");
    std::fs::remove_file(&data).ok();
    std::fs::remove_file(&idx).ok();
}

#[test]
fn stale_temp_from_a_killed_save_is_cleaned_before_the_next_run() {
    let data = temp("staletmp.stdat");
    let idx = temp("staletmp.ppr");
    let tmp = {
        let mut os = idx.as_os_str().to_os_string();
        os.push(".tmp");
        PathBuf::from(os)
    };
    assert!(stidx()
        .args(["generate", "--kind", "random", "--n", "40", "--out"])
        .arg(&data)
        .status()
        .expect("generate")
        .success());

    // A process killed between temp-write and rename leaves the torn
    // temp behind (no destructors run); the next run must sweep it.
    std::fs::write(&tmp, b"torn partial index from a killed process").expect("plant stale temp");
    let out = stidx()
        .args(["ingest", "--data"])
        .arg(&data)
        .args(["--out"])
        .arg(&idx)
        .output()
        .expect("run ingest");
    assert!(
        out.status.success(),
        "ingest failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("removed stale temp"),
        "the sweep must be announced: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(!tmp.exists(), "stale temp must be gone after the run");
    assert!(idx.exists());
    std::fs::remove_file(&data).ok();
    std::fs::remove_file(&idx).ok();
}

#[test]
fn failed_save_leaves_no_temp_file_behind() {
    let data = temp("failsave.stdat");
    let out_dir = temp("failsave.dir");
    assert!(stidx()
        .args(["generate", "--kind", "random", "--n", "40", "--out"])
        .arg(&data)
        .status()
        .expect("generate")
        .success());

    // Renaming the finished temp onto a directory fails, so the save
    // errors out after writing its temp — which must then be removed,
    // not stranded next to the target.
    std::fs::create_dir_all(&out_dir).expect("create blocking directory");
    let out = stidx()
        .args(["ingest", "--data"])
        .arg(&data)
        .args(["--out"])
        .arg(&out_dir)
        .output()
        .expect("run ingest");
    assert!(!out.status.success(), "saving onto a directory must fail");
    let tmp = {
        let mut os = out_dir.as_os_str().to_os_string();
        os.push(".tmp");
        PathBuf::from(os)
    };
    assert!(
        !tmp.exists(),
        "a failed save must clean up its own temp file"
    );
    std::fs::remove_file(&data).ok();
    std::fs::remove_dir_all(&out_dir).ok();
}

#[test]
fn durable_ingest_crash_and_recover_round_trip() {
    let data = temp("durable.stdat");
    let control = temp("durable-control.ppr");
    let recovered = temp("durable-recovered.ppr");
    let crashed = temp("durable-crashed.ppr");
    let wal = temp("durable-wal");
    let metrics = temp("durable-recover.prom");
    std::fs::remove_dir_all(&wal).ok();
    assert!(stidx()
        .args(["generate", "--kind", "random", "--n", "60", "--seed", "11", "--out"])
        .arg(&data)
        .status()
        .expect("generate")
        .success());

    // Control: the same stream ingested without interruption.
    assert!(stidx()
        .args(["ingest", "--data"])
        .arg(&data)
        .args(["--out"])
        .arg(&control)
        .status()
        .expect("control ingest")
        .success());

    // Durable run, killed (abort — no cleanup) right after commit 3.
    let out = stidx()
        .env("STIDX_TEST_CRASH_AFTER_COMMITS", "3")
        .args(["ingest", "--data"])
        .arg(&data)
        .args(["--out"])
        .arg(&crashed)
        .args(["--wal"])
        .arg(&wal)
        .args(["--checkpoint-every", "2"])
        .output()
        .expect("crashed ingest");
    assert!(!out.status.success(), "the crash hook must kill the run");
    assert!(!crashed.exists(), "a killed run must not leave an index");
    assert!(wal.is_dir(), "the WAL directory must survive the crash");

    // Recover: replay the log tail, seal, save — and export the
    // restored backlog, which must be visibly non-zero (a recovered
    // process does not report itself as a fresh one).
    let out = stidx()
        .arg("--metrics")
        .arg(&metrics)
        .args(["recover", "--wal"])
        .arg(&wal)
        .args(["--out"])
        .arg(&recovered)
        .output()
        .expect("recover");
    assert!(
        out.status.success(),
        "recover failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("recovered from checkpoint generation"),
        "{stdout}"
    );
    let text = std::fs::read_to_string(&metrics).expect("metrics file");
    let queue_depth: f64 = text
        .lines()
        .find_map(|l| l.strip_prefix("ingest_queue_depth "))
        .expect("queue gauge present")
        .trim()
        .parse()
        .expect("queue gauge numeric");
    assert!(
        queue_depth > 0.0,
        "restored queue depth must be non-zero, metrics:\n{text}"
    );
    assert!(text.contains("recovery_wal_records_replayed"), "{text}");
    assert!(text.contains("recovery_checkpoint_generation"), "{text}");

    // The recovered index passes the invariant checker...
    assert!(stidx()
        .arg("check")
        .arg(&recovered)
        .status()
        .expect("check")
        .success());

    // ...and answers queries exactly like the uninterrupted control —
    // within the horizon the crashed run had acknowledged. (The tail of
    // the stream was never submitted, so it is legitimately absent; the
    // crash hook fires after commit 3 = instant 23 at the default
    // cadence, and every acked op below that must have survived.)
    for (t, until) in [("10", None), ("2", Some("16"))] {
        let mut answers = Vec::new();
        for idx in [&control, &recovered] {
            let mut cmd = stidx();
            cmd.args(["query", "--index"]).arg(idx).args([
                "--backend",
                "ppr",
                "--area",
                "0,0,1,1",
                "--time",
                t,
            ]);
            if let Some(u) = until {
                cmd.args(["--until", u]);
            }
            let out = cmd.output().expect("query");
            assert!(
                out.status.success(),
                "query failed: {}",
                String::from_utf8_lossy(&out.stderr)
            );
            answers.push(String::from_utf8_lossy(&out.stdout).into_owned());
        }
        assert_eq!(
            answers[0], answers[1],
            "recovered index diverges from the control at t={t}"
        );
    }

    std::fs::remove_file(&data).ok();
    std::fs::remove_file(&control).ok();
    std::fs::remove_file(&recovered).ok();
    std::fs::remove_file(&metrics).ok();
    std::fs::remove_dir_all(&wal).ok();
}
