//! Quickstart: split a handful of moving objects and answer historical
//! queries with the partially persistent R-Tree.
//!
//! Run with: `cargo run --example quickstart`

use spatiotemporal_index::core::{IndexConfig, SplitPlan};
use spatiotemporal_index::prelude::*;

fn main() {
    // 1. Describe spatiotemporal objects: a point starting at (0.1, 0.1)
    //    drifting right for 60 instants, and a rectangle that sits still
    //    and then jumps. Trajectories are piecewise polynomial (§II-A of
    //    the paper); `rasterize()` samples one rectangle per instant.
    use spatiotemporal_index::trajectory::{MotionSegment, Polynomial};

    let drifter = Trajectory::new(
        1,
        vec![MotionSegment::with_constant_extent(
            TimeInterval::new(0, 60),
            Polynomial::linear(0.1, 0.01), // x(τ) = 0.1 + 0.01·τ
            Polynomial::constant(0.1),
            0.02,
            0.02,
        )],
    );
    let jumper = Trajectory::new(
        2,
        vec![
            MotionSegment::with_constant_extent(
                TimeInterval::new(10, 40),
                Polynomial::constant(0.8),
                Polynomial::constant(0.8),
                0.05,
                0.05,
            ),
            MotionSegment::linear_between(
                TimeInterval::new(40, 50),
                Point2::new(0.8, 0.8),
                Point2::new(0.2, 0.8),
                0.05,
                0.05,
            ),
        ],
    );
    let objects: Vec<RasterizedObject> =
        [&drifter, &jumper].iter().map(|t| t.rasterize()).collect();

    // 2. Plan artificial splits: MergeSplit curves per object, LAGreedy
    //    distribution, 150% budget (the paper's sweet spot).
    let plan = SplitPlan::build(
        &objects,
        SingleSplitAlgorithm::MergeSplit,
        DistributionAlgorithm::LaGreedy,
        SplitBudget::Percent(150.0),
        None,
    );
    println!(
        "split {} objects with {} splits: volume {:.5} -> {:.5}",
        objects.len(),
        plan.allocation().splits_used(),
        objects.iter().map(|o| o.unsplit_volume()).sum::<f64>(),
        plan.total_volume(),
    );

    // 3. Index the split records with the PPR-Tree.
    let records = plan.records(&objects);
    let mut index = SpatioTemporalIndex::build(
        &records,
        &IndexConfig::paper(spatiotemporal_index::core::IndexBackend::PprTree),
    )
    .expect("in-memory build cannot fail");

    // 4. Ask historical questions.
    let near_start = Rect2::from_bounds(0.0, 0.0, 0.3, 0.3);
    println!(
        "objects in the lower-left corner at t=5:  {:?}",
        index
            .query(&near_start, &TimeInterval::instant(5))
            .expect("in-memory query cannot fail")
    );
    println!(
        "objects in the lower-left corner at t=45: {:?}",
        index
            .query(&near_start, &TimeInterval::instant(45))
            .expect("in-memory query cannot fail")
    );
    let upper = Rect2::from_bounds(0.7, 0.7, 1.0, 1.0);
    println!(
        "objects in the upper-right during [0, 100): {:?}",
        index
            .query(&upper, &TimeInterval::new(0, 100))
            .expect("in-memory query cannot fail")
    );
    index.reset_for_query();
    let _ = index.query(&upper, &TimeInterval::instant(20));
    println!("that snapshot cost {} disk reads", index.io_stats().reads);
}
