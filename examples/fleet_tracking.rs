//! Fleet tracking: the paper's transportation motivation at scale.
//!
//! A courier company keeps one year of vehicle traces (here: the paper's
//! synthetic moving-rectangle workload) and answers audit questions like
//! "which vehicles were inside this district at 10:00 on day N?". The
//! example shows why the splitting + partial persistence pipeline exists:
//! the same questions against a plain 3D R\*-Tree cost several times more
//! disk reads.
//!
//! Run with: `cargo run --release --example fleet_tracking`

use spatiotemporal_index::core::{unsplit_records, IndexBackend, IndexConfig, SplitPlan};
use spatiotemporal_index::datagen::QuerySetSpec;
use spatiotemporal_index::prelude::*;

fn main() {
    // 4000 vehicles over a 1000-instant evolution.
    let fleet = RandomDatasetSpec::paper(4000).generate();
    println!("tracking {} vehicles", fleet.len());

    // Split with the paper's best configuration.
    let plan = SplitPlan::build(
        &fleet,
        SingleSplitAlgorithm::MergeSplit,
        DistributionAlgorithm::LaGreedy,
        SplitBudget::Percent(150.0),
        None,
    );
    let split_recs = plan.records(&fleet);
    let whole_recs = unsplit_records(&fleet);
    println!(
        "records: {} unsplit -> {} split pieces (empty space -{:.0}%)",
        whole_recs.len(),
        split_recs.len(),
        (1.0 - plan.total_volume() / fleet.iter().map(|o| o.unsplit_volume()).sum::<f64>()) * 100.0
    );

    let mut ppr =
        SpatioTemporalIndex::build(&split_recs, &IndexConfig::paper(IndexBackend::PprTree))
            .expect("in-memory build cannot fail");
    let mut rstar =
        SpatioTemporalIndex::build(&whole_recs, &IndexConfig::paper(IndexBackend::RStar))
            .expect("in-memory build cannot fail");

    // One concrete audit question.
    let district = Rect2::from_bounds(0.40, 0.40, 0.45, 0.45);
    let when = TimeInterval::instant(500);
    let vehicles = ppr
        .query(&district, &when)
        .expect("in-memory query cannot fail");
    println!(
        "\nvehicles in the district at t=500: {} found {vehicles:?}",
        vehicles.len()
    );

    // The same workload, measured: 200 mixed snapshot queries.
    let mut spec = QuerySetSpec::mixed_snapshot();
    spec.cardinality = 200;
    let queries = spec.generate();
    let io = |idx: &mut SpatioTemporalIndex| {
        let mut total = 0;
        for q in &queries {
            idx.reset_for_query();
            let _ = idx.query(&q.area, &q.range);
            total += idx.io_stats().reads;
        }
        total as f64 / queries.len() as f64
    };
    let ppr_io = io(&mut ppr);
    let rstar_io = io(&mut rstar);
    println!("\navg disk reads per audit query:");
    println!("  PPR-Tree over split records:   {ppr_io:.2}");
    println!("  3D R*-Tree over whole records: {rstar_io:.2}");
    println!("  -> {:.1}x fewer reads", rstar_io / ppr_io);
}
