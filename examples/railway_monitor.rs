//! Railway monitoring: historical queries over the skewed train
//! workload (paper §V's second dataset family).
//!
//! Builds the 22-city / 51-track map, runs thousands of trains across
//! it, indexes their trajectories, and answers questions like "which
//! trains passed near Chicago around hour 500?".
//!
//! Run with: `cargo run --release --example railway_monitor`

use spatiotemporal_index::core::{IndexBackend, IndexConfig, SplitPlan};
use spatiotemporal_index::datagen::RailwayMap;
use spatiotemporal_index::prelude::*;

fn main() {
    let map = RailwayMap::us_rail();
    println!(
        "railway map: {} cities, {} tracks",
        map.cities().len(),
        map.tracks().len()
    );

    let spec = RailwayDatasetSpec::paper(3000);
    let trains = spec.generate_rasterized();
    println!(
        "simulated {} train trips (1 instant = 1 hour)",
        trains.len()
    );

    let plan = SplitPlan::build(
        &trains,
        SingleSplitAlgorithm::MergeSplit,
        DistributionAlgorithm::LaGreedy,
        SplitBudget::Percent(150.0),
        None,
    );
    let mut index = SpatioTemporalIndex::build(
        &plan.records(&trains),
        &IndexConfig::paper(IndexBackend::PprTree),
    )
    .expect("in-memory build cannot fail");

    // "Which trains were within ~100 miles of Chicago at hour 500?"
    let chicago = map
        .cities()
        .iter()
        .find(|c| c.name == "Chicago")
        .expect("Chicago is on the map")
        .pos;
    let window = Rect2::centered(chicago, 0.08, 0.14);
    let at_500 = index
        .query(&window, &TimeInterval::instant(500))
        .expect("in-memory query cannot fail");
    println!("\ntrains near Chicago at hour 500: {}", at_500.len());

    // "Any trains there during the whole day around it?"
    let day = TimeInterval::new(488, 512);
    let during_day = index
        .query(&window, &day)
        .expect("in-memory query cannot fail");
    println!(
        "trains near Chicago during hours [488, 512): {}",
        during_day.len()
    );
    assert!(
        during_day.len() >= at_500.len(),
        "interval answers contain snapshot answers"
    );

    // Compare coasts: the workload is skewed toward CA and NY.
    let la = map
        .cities()
        .iter()
        .find(|c| c.name == "Los Angeles")
        .expect("exists")
        .pos;
    let ca_window = Rect2::centered(la, 0.08, 0.14);
    let ca_traffic = index
        .query(&ca_window, &day)
        .expect("in-memory query cannot fail");
    println!(
        "trains near Los Angeles during the same day: {}",
        ca_traffic.len()
    );

    index.reset_for_query();
    let _ = index.query(&window, &TimeInterval::instant(500));
    println!(
        "\nsnapshot query cost: {} disk reads",
        index.io_stats().reads
    );
    println!("index footprint: {} pages", index.num_pages());
}
