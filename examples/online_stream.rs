//! Streaming ingestion: the paper's §VII future work in action.
//!
//! Position updates arrive one instant at a time; the online splitter
//! decides artificial splits on the fly and the indexer keeps a
//! partially persistent R-Tree current behind a watermark. Historical
//! queries run *while* the stream is still flowing.
//!
//! Run with: `cargo run --release --example online_stream`

use spatiotemporal_index::core::online::{OnlineIndexer, OnlineSplitConfig};
use spatiotemporal_index::pprtree::PprParams;
use spatiotemporal_index::prelude::*;

fn main() {
    let objects = RandomDatasetSpec::paper(500).generate();
    let config = OnlineSplitConfig {
        overhead_threshold: 8.0,
        min_piece_instants: 5,
        // Cap piece length so the watermark keeps advancing even when
        // some object barely moves.
        max_piece_instants: Some(40),
        max_piece_area: None,
    };
    let mut indexer = OnlineIndexer::new(config, PprParams::default());

    // Replay the dataset as a global time-ordered stream of updates.
    let mut events: Vec<(Time, u64, usize, bool)> = Vec::new();
    for o in &objects {
        for i in 0..o.len() {
            events.push((o.start() + i as Time, o.id(), i, false));
        }
        events.push((o.lifetime().end, o.id(), 0, true));
    }
    events.sort_unstable();

    let mut asked = 0;
    for (t, id, i, done) in events {
        if done {
            indexer.finish(id, t).expect("replayed stream is gap-free");
        } else {
            indexer
                .update(id, objects[id as usize].rect(i), t)
                .expect("in-memory ingest cannot fail");
        }
        // Every ~200 ticks, ask a question about finalized history.
        if t % 200 == 0 && indexer.watermark() > 50 && asked < t / 200 {
            asked = t / 200;
            let probe = indexer.watermark() - 1;
            let mut out = Vec::new();
            indexer
                .query_snapshot(&Rect2::from_bounds(0.25, 0.25, 0.75, 0.75), probe, &mut out)
                .expect("in-memory query cannot fail");
            println!(
                "t={t:4}  watermark={:4}  objects in the center at t={probe}: {}",
                indexer.watermark(),
                out.len()
            );
        }
    }

    println!(
        "\nstream done: {} artificial splits issued online",
        indexer.splits_issued()
    );
    let tree = indexer.seal(1000).expect("in-memory seal cannot fail");
    let mut out = Vec::new();
    tree.query_interval(
        &Rect2::from_bounds(0.45, 0.45, 0.55, 0.55),
        &TimeInterval::new(0, 1000),
        &mut out,
    )
    .expect("in-memory query cannot fail");
    println!(
        "objects that ever crossed the center 10% window: {}",
        out.len()
    );
    println!(
        "final index: {} pages over {} roots",
        tree.num_pages(),
        tree.roots().len()
    );
}
