//! Choosing the split budget (paper §IV): analytical model vs sampling.
//!
//! The split budget trades disk space for query speed. This example runs
//! both tuning methods the paper describes on the same dataset and shows
//! they point at a similar budget — without ever building the full-size
//! candidate indexes.
//!
//! Run with: `cargo run --release --example split_tuning`

use spatiotemporal_index::core::tuning::{
    choose_splits_analytical, choose_splits_by_sampling, QueryProfile,
};
use spatiotemporal_index::core::IndexBackend;
use spatiotemporal_index::datagen::QuerySetSpec;
use spatiotemporal_index::prelude::*;

fn main() {
    let objects = RandomDatasetSpec::paper(20_000).generate();
    let candidates: Vec<SplitBudget> = [0.0, 10.0, 25.0, 50.0, 100.0, 150.0]
        .map(SplitBudget::Percent)
        .to_vec();

    // Method 1: analytical. Predict the average query cost per budget
    // from dataset statistics (no index built at all).
    let analytical = choose_splits_analytical(
        &objects,
        SingleSplitAlgorithm::MergeSplit,
        DistributionAlgorithm::LaGreedy,
        &candidates,
        QueryProfile {
            extents: (0.0055, 0.0055),
            duration: 1,
        },
        1000,
        Parallelism::Auto,
    );
    println!("analytical model predictions (node accesses per query):");
    for (i, (budget, cost)) in analytical.costs.iter().enumerate() {
        let mark = if i == analytical.best {
            "  <== chosen"
        } else {
            ""
        };
        println!("  {budget:?}: {cost:.2}{mark}");
    }

    // Method 2: sampling. Build real indexes over 1/4 of the objects and
    // measure; percent budgets normalize to the full dataset for free.
    let mut spec = QuerySetSpec::small_snapshot();
    spec.cardinality = 200;
    let queries: Vec<_> = spec.generate().iter().map(|q| (q.area, q.range)).collect();
    let sampled = choose_splits_by_sampling(
        &objects,
        SingleSplitAlgorithm::MergeSplit,
        DistributionAlgorithm::LaGreedy,
        &candidates,
        &queries,
        IndexBackend::PprTree,
        4,
        Parallelism::Auto,
    );
    println!("\nsampled measurements (avg disk reads on a 1/4 sample):");
    for (i, (budget, cost)) in sampled.costs.iter().enumerate() {
        let mark = if i == sampled.best {
            "  <== chosen"
        } else {
            ""
        };
        println!("  {budget:?}: {cost:.2}{mark}");
    }

    println!(
        "\nanalytical pick: {:?} | sampling pick: {:?}",
        analytical.best_budget(),
        sampled.best_budget()
    );
}
