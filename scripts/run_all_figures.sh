#!/usr/bin/env bash
# Regenerate every table, figure, and ablation at default scale.
# Usage: scripts/run_all_figures.sh [outdir] [extra flags, e.g. --paper]
set -euo pipefail
cd "$(dirname "$0")/.."
OUT="${1:-results}"
shift || true
mkdir -p "$OUT"
cargo build --release -p sti-bench --bins
for bin in table1 table2 fig11 fig12 fig13 fig14 fig15 fig16 fig17 fig18 \
           railway tuning ablation_motion ablation_packing ablation_online \
           ablation_orbits ablation_overlapping ablation_buffer \
           ablation_split ablation_hybrid; do
  echo "== $bin"
  ./target/release/"$bin" "$@" | tee "$OUT/$bin.txt"
done
