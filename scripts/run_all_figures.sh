#!/usr/bin/env bash
# Regenerate every table, figure, and ablation at default scale.
# Usage: scripts/run_all_figures.sh [outdir] [extra flags, e.g. --paper]
#
# With --scale=mid|big among the extra flags, only the tier-aware
# benches (fig15, throughput) run — the tier replaces the paper sweep
# with one bulk-loaded FileBackend tree, so the other figures have no
# scale variant to produce.
set -euo pipefail
cd "$(dirname "$0")/.."
OUT="${1:-results}"
shift || true
mkdir -p "$OUT"

BINS="table1 table2 fig11 fig12 fig13 fig14 fig15 fig16 fig17 fig18 \
      railway tuning ablation_motion ablation_packing ablation_online \
      ablation_orbits ablation_overlapping ablation_buffer \
      ablation_split ablation_hybrid"
SUFFIX=""
for arg in "$@"; do
  case "$arg" in
    --scale=*) BINS="fig15 throughput"; SUFFIX="_${arg#--scale=}" ;;
  esac
done

cargo build --release -p sti-bench --bins
for bin in $BINS; do
  echo "== $bin$SUFFIX"
  ./target/release/"$bin" "$@" | tee "$OUT/$bin$SUFFIX.txt"
done
