#!/usr/bin/env python3
"""Compare a fresh BENCH_*.json against a committed baseline.

Usage:
    check_regression.py BASELINE.json CURRENT.json [--wall-tolerance 1.5]
    check_regression.py --self-test

The workspace's benchmarks are deterministic end to end: datasets are
seeded, split planning is deterministic, and tree construction is
single-threaded, so every I/O-derived metric in a profile (average disk
reads per query, percentiles, nodes visited, buffer hits, error counts)
must match the baseline *exactly*. Any difference — better or worse —
fails the gate, because a silent improvement is just as much an
unreviewed behavior change as a regression. Time is the one
machine-dependent dimension: every profile key ending in `_secs`
(`wall_secs`, and the `p50_secs`/`p95_secs`/`p99_secs` latency
percentiles the serving benchmark reports) only fails when the current
run is more than --wall-tolerance times slower than the baseline
(default 1.5x).

Re-baselining: see CONTRIBUTING.md ("Performance baselines").

--self-test exercises the gate against synthetic documents (identical
pass, perturbed I/O fail, over-tolerance wall-time fail, within-
tolerance pass) so CI can prove the gate itself still bites before
trusting a green comparison.

Exit status: 0 when everything matches, 1 on any mismatch, 2 on usage or
schema errors. Pure stdlib; no third-party imports.
"""

import json
import sys

# Exact-compared profile keys (absent in both documents passes).
# `avg_formatted` stands in for `avg` so the comparison is on the
# printed representation, not float identity. `errors` is the serving
# benchmark's failed-request count: a baseline of 0 pins it at 0.
EXACT_PROFILE_KEYS = ["avg_formatted", "p50", "p95", "max", "queries", "errors"]
# Exact-compared keys inside the summed per-query totals (`io`).
EXACT_IO_KEYS = [
    "disk_reads",
    "buffer_hits",
    "nodes_visited",
    "entries_scanned",
    "results",
]


def load(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        print(f"error: cannot load {path}: {e}", file=sys.stderr)
        sys.exit(2)
    if doc.get("schema") != "sti-bench/1":
        print(f"error: {path}: unexpected schema {doc.get('schema')!r}", file=sys.stderr)
        sys.exit(2)
    return doc


def profile_map(doc):
    """(table index, row, series) -> profile dict."""
    out = {}
    for ti, table in enumerate(doc.get("tables", [])):
        for prof in table.get("profiles", []):
            out[(ti, prof["row"], prof["series"])] = prof
    return out


def compare(base_doc, cur_doc, tol):
    """All gate logic in one place; returns (failures, checked)."""
    base, cur = profile_map(base_doc), profile_map(cur_doc)
    failures = []
    checked = 0

    missing = sorted(set(base) - set(cur))
    for key in missing:
        failures.append(f"{key}: profile present in baseline but missing from current run")
    extra = sorted(set(cur) - set(base))
    for key in extra:
        failures.append(f"{key}: new profile not present in baseline (re-baseline to accept)")

    for key in sorted(set(base) & set(cur)):
        b, c = base[key], cur[key]
        for field in EXACT_PROFILE_KEYS:
            checked += 1
            if b.get(field) != c.get(field):
                failures.append(
                    f"{key}: {field} changed: baseline {b.get(field)!r} -> {c.get(field)!r}"
                )
        bio, cio = b.get("io", {}), c.get("io", {})
        for field in EXACT_IO_KEYS:
            if field not in bio and field not in cio:
                continue
            checked += 1
            if bio.get(field) != cio.get(field):
                failures.append(
                    f"{key}: io.{field} changed: baseline {bio.get(field)!r} -> {cio.get(field)!r}"
                )
        # Every `_secs` key is machine-dependent time: gate it with the
        # slowdown tolerance instead of exact equality.
        secs_keys = sorted(
            k for k in set(b) | set(c) if isinstance(k, str) and k.endswith("_secs")
        )
        for field in secs_keys:
            checked += 1
            if field not in b or field not in c:
                missing_in = "current run" if field not in c else "baseline"
                failures.append(f"{key}: {field} missing from {missing_in}")
                continue
            bw, cw = float(b[field]), float(c[field])
            if cw > bw * tol:
                failures.append(
                    f"{key}: {field} {cw:.4f} exceeds baseline {bw:.4f} x {tol} tolerance"
                )
    return failures, checked


def synthetic_doc(avg="3.10", p95=12, wall=1.0):
    """A minimal but schema-complete document for the self-test."""
    return {
        "schema": "sti-bench/1",
        "bench": "selftest",
        "tables": [
            {
                "profiles": [
                    {
                        "row": "r0",
                        "series": "s0",
                        "avg_formatted": avg,
                        "p50": 3,
                        "p95": p95,
                        "max": 40,
                        "queries": 1000,
                        "wall_secs": wall,
                        "io": {"disk_reads": 3100, "buffer_hits": 900},
                    }
                ]
            }
        ],
    }


def self_test():
    cases = [
        ("identical documents pass", synthetic_doc(), synthetic_doc(), 1.5, True),
        ("perturbed I/O fails", synthetic_doc(), synthetic_doc(avg="3.11"), 1.5, False),
        ("perturbed percentile fails", synthetic_doc(), synthetic_doc(p95=13), 1.5, False),
        ("over-tolerance wall fails", synthetic_doc(), synthetic_doc(wall=1.6), 1.5, False),
        ("within-tolerance wall passes", synthetic_doc(), synthetic_doc(wall=1.4), 1.5, True),
    ]
    broken = 0
    for name, base, cur, tol, should_pass in cases:
        failures, _ = compare(base, cur, tol)
        ok = (not failures) == should_pass
        print(f"  {'ok' if ok else 'BROKEN'}: {name}")
        if not ok:
            broken += 1
            for f in failures:
                print(f"      unexpected: {f}")
    if broken:
        print(f"self-test FAILED: the gate no longer bites in {broken} case(s)")
        return 1
    print(f"self-test ok: {len(cases)} cases behave")
    return 0


def main(argv):
    if "--self-test" in argv[1:]:
        return self_test()
    args = [a for a in argv[1:] if not a.startswith("--")]
    tol = 1.5
    for a in argv[1:]:
        if a.startswith("--wall-tolerance"):
            try:
                tol = float(a.split("=", 1)[1]) if "=" in a else float(
                    argv[argv.index(a) + 1]
                )
            except (IndexError, ValueError):
                print("error: --wall-tolerance needs a number", file=sys.stderr)
                return 2
    if len(args) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2

    base_doc, cur_doc = load(args[0]), load(args[1])
    if base_doc.get("bench") != cur_doc.get("bench"):
        print(
            f"error: bench mismatch: baseline is {base_doc.get('bench')!r}, "
            f"current is {cur_doc.get('bench')!r}",
            file=sys.stderr,
        )
        return 2

    failures, checked = compare(base_doc, cur_doc, tol)
    base = profile_map(base_doc)
    bench = cur_doc.get("bench")
    if failures:
        print(f"perf gate FAILED for {bench!r} ({len(failures)} problem(s)):")
        for f in failures:
            print(f"  - {f}")
        return 1
    print(
        f"perf gate ok for {bench!r}: {len(base)} profiles, {checked} checks "
        f"(I/O exact, *_secs x{tol} tolerance)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
