//! Randomized churn against a naive shadow, mirroring the PPR-Tree's
//! workload tests so the two partial-persistence approaches are held to
//! the same standard.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use sti_geom::{Rect2, TimeInterval};
use sti_hrtree::{HrParams, HrTree};

fn run_workload(seed: u64, cap: usize) -> (HrTree, Vec<(u64, Rect2, u32, u32)>) {
    let params = HrParams {
        max_entries: cap,
        buffer_pages: 4,
        ..HrParams::default()
    };
    let mut rng = StdRng::seed_from_u64(seed);
    let mut tree = HrTree::new(params);
    let mut records: Vec<(u64, Rect2, u32, u32)> = Vec::new();
    let mut alive: Vec<(u64, Rect2)> = Vec::new();
    let mut next = 0u64;
    for t in 0..150u32 {
        for _ in 0..rng.random_range(0..3) {
            let x = rng.random::<f64>() * 0.9;
            let y = rng.random::<f64>() * 0.9;
            let r = Rect2::from_bounds(x, y, x + 0.05, y + 0.05);
            tree.insert(next, r, t).unwrap();
            records.push((next, r, t, u32::MAX));
            alive.push((next, r));
            next += 1;
        }
        for _ in 0..rng.random_range(0..2) {
            if alive.is_empty() {
                break;
            }
            let k = rng.random_range(0..alive.len());
            let (id, r) = alive.swap_remove(k);
            tree.delete(id, r, t).unwrap();
            records
                .iter_mut()
                .find(|(i, ..)| *i == id)
                .expect("exists")
                .3 = t;
        }
    }
    (tree, records)
}

fn shadow_snapshot(records: &[(u64, Rect2, u32, u32)], area: &Rect2, t: u32) -> Vec<u64> {
    let mut v: Vec<u64> = records
        .iter()
        .filter(|(_, r, s, e)| *s <= t && t < *e && r.intersects(area))
        .map(|&(id, ..)| id)
        .collect();
    v.sort_unstable();
    v
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn snapshots_match_shadow(seed in any::<u64>(), cap in prop::sample::select(vec![6usize, 8, 10, 12])) {
        let (mut tree, records) = run_workload(seed, cap);
        tree.validate();
        for t in (0..150).step_by(11) {
            let area = Rect2::from_bounds(0.1, 0.1, 0.8, 0.85);
            let mut got = Vec::new();
            tree.query_snapshot(&area, t, &mut got).unwrap();
            got.sort_unstable();
            prop_assert_eq!(got, shadow_snapshot(&records, &area, t), "t={}", t);
        }
    }

    #[test]
    fn intervals_match_shadow(seed in any::<u64>(), cap in prop::sample::select(vec![6usize, 8, 10, 12])) {
        let (tree, records) = run_workload(seed, cap);
        for start in (0..140).step_by(19) {
            let range = TimeInterval::new(start, start + 1 + (start % 13));
            let area = Rect2::from_bounds(0.0, 0.0, 0.7, 0.7);
            let mut got = Vec::new();
            tree.query_interval(&area, &range, &mut got).unwrap();
            got.sort_unstable();
            let mut want: Vec<u64> = records
                .iter()
                .filter(|(_, r, s, e)| {
                    TimeInterval::new(*s, *e).overlaps(&range) && r.intersects(&area)
                })
                .map(|&(id, ..)| id)
                .collect();
            want.sort_unstable();
            want.dedup();
            prop_assert_eq!(got, want, "range={}", range);
        }
    }

    #[test]
    fn storage_grows_with_path_length(seed in any::<u64>()) {
        // The defining cost of overlapping: pages ≥ updates (every change
        // copies at least the leaf), typically ≈ height × updates.
        let (tree, records) = run_workload(seed, 8);
        let deletes = records.iter().filter(|(_, _, _, e)| *e != u32::MAX).count();
        let updates = records.len() + deletes;
        if updates > 40 {
            prop_assert!(
                tree.num_pages() >= updates,
                "path copying: {} pages for {} updates",
                tree.num_pages(),
                updates
            );
        }
    }
}

/// Deleting from a small tree (root under min fill) must not flatten and
/// re-insert the survivors: the root is exempt from the min-fill rule.
#[test]
fn root_is_exempt_from_min_fill() {
    // Default params: min fill 20 — a 10-record tree's root is "underfull"
    // by that measure from the start.
    let mut tree = HrTree::new(HrParams::default());
    for i in 0..10u64 {
        tree.insert(
            i,
            Rect2::from_bounds(0.05 * i as f64, 0.1, 0.05 * i as f64 + 0.02, 0.12),
            i as u32,
        )
        .unwrap();
    }
    let pages_before = tree.num_pages();
    let r3 = Rect2::from_bounds(0.05 * 3.0, 0.1, 0.05 * 3.0 + 0.02, 0.12);
    tree.delete(3, r3, 20).unwrap();
    // One delete on a single-node tree = exactly one new root page, not a
    // rebuild of every record.
    assert_eq!(
        tree.num_pages(),
        pages_before + 1,
        "root deletion should path-copy one node"
    );
    let mut out = Vec::new();
    tree.query_snapshot(&Rect2::UNIT, 20, &mut out).unwrap();
    assert_eq!(out.len(), 9);
    // History intact.
    out.clear();
    tree.query_snapshot(&Rect2::UNIT, 15, &mut out).unwrap();
    assert_eq!(out.len(), 10);
}
