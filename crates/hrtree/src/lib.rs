//! A historical R-Tree (HR-Tree): the *overlapping* approach to partial
//! persistence (Nascimento & Silva 1998; Burton et al.'s overlapping
//! B-trees — references \[17\] and \[4\] of the paper).
//!
//! Conceptually one 2D R-Tree exists per time instant; since consecutive
//! trees differ in only a few nodes, unchanged branches are physically
//! *shared* between versions. Every update path-copies the nodes from
//! the root to the touched leaf — O(height) fresh pages per change —
//! which is exactly the "logarithmic overhead on the index storage
//! requirements" the paper cites (§I) as the reason to prefer the
//! multi-version PPR-Tree. The `ablation_overlapping` bench target
//! measures that trade-off.
//!
//! Nodes are immutable once written (a functional data structure over
//! disk pages); updates never mutate shared history, so every historical
//! version stays exactly queryable.

pub mod node;
pub mod tree;

pub use node::{HrEntry, HrNode, HrParams};
pub use tree::{DeleteError, HrTree};
