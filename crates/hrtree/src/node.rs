//! HR-Tree nodes: plain 2D R-Tree nodes, immutable once written.

use sti_geom::Rect2;
use sti_storage::{ByteReader, ByteWriter, CodecError, Page, PAGE_SIZE};

/// Tuning parameters of the HR-Tree.
#[derive(Debug, Clone, Copy)]
pub struct HrParams {
    /// Maximum entries per node (paper setup: 50).
    pub max_entries: usize,
    /// Minimum fill fraction for splits.
    pub min_fill: f64,
    /// Buffer pool capacity in pages (paper: 10).
    pub buffer_pages: usize,
}

impl Default for HrParams {
    fn default() -> Self {
        Self {
            max_entries: 50,
            min_fill: 0.4,
            buffer_pages: 10,
        }
    }
}

impl HrParams {
    /// Minimum entries per split group.
    pub fn min_entries(&self) -> usize {
        ((self.min_fill * self.max_entries as f64).ceil() as usize).max(1)
    }

    /// Validate bounds and page fit.
    pub fn validate(&self) {
        assert!(self.max_entries >= 4, "max_entries too small");
        assert!(
            HrNode::encoded_size(self.max_entries) <= PAGE_SIZE,
            "{} entries do not fit a {PAGE_SIZE}-byte page",
            self.max_entries
        );
        assert!(
            (0.0..=0.5).contains(&self.min_fill),
            "min_fill out of range"
        );
    }
}

/// One HR-Tree entry: a rectangle plus an object id (leaf) or child page
/// (directory). No lifetimes — time lives entirely in the root log.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HrEntry {
    /// Bounding rectangle.
    pub rect: Rect2,
    /// Object id (leaf) or child page id (directory).
    pub ptr: u64,
}

impl HrEntry {
    /// Interpret `ptr` as a child page id.
    pub fn child_page(&self) -> sti_storage::PageId {
        // stilint::allow(no_panic, "directory entries are built exclusively from allocate()-returned u32 page ids widened into the shared ptr field")
        sti_storage::PageId::try_from(self.ptr).expect("directory entry holds a page id")
    }

    const ENCODED: usize = 4 * 8 + 8;
}

/// One immutable HR-Tree node.
#[derive(Debug, Clone, PartialEq)]
pub struct HrNode {
    /// Height above the leaves (0 = leaf).
    pub level: u32,
    /// Entries.
    pub entries: Vec<HrEntry>,
}

impl HrNode {
    /// An empty node at `level`.
    pub fn new(level: u32) -> Self {
        Self {
            level,
            entries: Vec::new(),
        }
    }

    /// True for leaf nodes.
    pub fn is_leaf(&self) -> bool {
        self.level == 0
    }

    /// Union of the entries' rectangles.
    pub fn mbr(&self) -> Rect2 {
        let mut m = Rect2::EMPTY;
        for e in &self.entries {
            m.expand(&e.rect);
        }
        m
    }

    /// Bytes needed for `n` entries.
    pub fn encoded_size(n: usize) -> usize {
        4 + 2 + n * HrEntry::ENCODED
    }

    /// Serialize into a page, zeroing the tail.
    pub fn encode(&self, page: &mut Page) {
        assert!(
            Self::encoded_size(self.entries.len()) <= PAGE_SIZE,
            "node too large for page"
        );
        let buf = page.bytes_mut();
        let mut w = ByteWriter::new(&mut buf[..]);
        w.put_u32(self.level);
        // stilint::allow(no_panic, "the encoded_size assert above bounds entries by the page capacity, far below u16::MAX")
        w.put_u16(u16::try_from(self.entries.len()).expect("entry count fits u16"));
        for e in &self.entries {
            w.put_f64(e.rect.lo.x);
            w.put_f64(e.rect.lo.y);
            w.put_f64(e.rect.hi.x);
            w.put_f64(e.rect.hi.y);
            w.put_u64(e.ptr);
        }
        let pos = w.position();
        buf[pos..].fill(0);
    }

    /// Deserialize from a page.
    pub fn decode(page: &Page) -> Result<Self, CodecError> {
        let mut r = ByteReader::new(&page.bytes()[..]);
        let level = r.get_u32()?;
        let count = r.get_u16()? as usize;
        if Self::encoded_size(count) > PAGE_SIZE {
            return Err(CodecError::InvalidValue(
                "entry count exceeds page capacity",
            ));
        }
        let mut entries = Vec::with_capacity(count);
        for _ in 0..count {
            let lx = r.get_f64()?;
            let ly = r.get_f64()?;
            let hx = r.get_f64()?;
            let hy = r.get_f64()?;
            if lx > hx || ly > hy {
                return Err(CodecError::InvalidValue("reversed rectangle in node entry"));
            }
            let ptr = r.get_u64()?;
            entries.push(HrEntry {
                rect: Rect2::from_bounds(lx, ly, hx, hy),
                ptr,
            });
        }
        Ok(Self { level, entries })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(v: f64, ptr: u64) -> HrEntry {
        HrEntry {
            rect: Rect2::from_bounds(v, v, v + 0.1, v + 0.1),
            ptr,
        }
    }

    #[test]
    fn params() {
        let p = HrParams::default();
        p.validate();
        assert_eq!(p.min_entries(), 20);
    }

    #[test]
    fn round_trip() {
        let node = HrNode {
            level: 2,
            entries: (0..50).map(|i| entry(i as f64 * 0.01, i)).collect(),
        };
        let mut page = Page::zeroed();
        node.encode(&mut page);
        assert_eq!(HrNode::decode(&page).unwrap(), node);
    }

    #[test]
    fn capacity_bounds() {
        assert!(HrNode::encoded_size(50) <= PAGE_SIZE);
        assert!(HrNode::encoded_size(102) <= PAGE_SIZE);
        assert!(HrNode::encoded_size(103) > PAGE_SIZE);
    }

    #[test]
    fn decode_rejects_reversed() {
        let node = HrNode {
            level: 0,
            entries: vec![entry(0.1, 1)],
        };
        let mut page = Page::zeroed();
        node.encode(&mut page);
        page.bytes_mut()[6..14].copy_from_slice(&1e9f64.to_le_bytes());
        assert!(HrNode::decode(&page).is_err());
    }

    #[test]
    fn mbr_of_empty_is_empty() {
        assert!(HrNode::new(0).mbr().is_empty());
    }
}
