//! The HR-Tree proper: path-copying updates over immutable nodes, one
//! logical R-Tree version per change timestamp.

use crate::node::{HrEntry, HrNode, HrParams};
use std::collections::HashSet;
use sti_geom::{Rect2, Time, TimeInterval};
use sti_obs::QueryStats;
use sti_storage::{
    CorruptReason, FaultStats, IoStats, Page, PageBackend, PageId, PageStore, ReadProbe,
    RetryPolicy, ScratchPool, StorageError,
};

/// Error from [`HrTree::delete`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeleteError {
    /// No record `(id, rect)` exists in the current version.
    NotFound {
        /// The record id that was requested.
        id: u64,
        /// The delete timestamp.
        t: Time,
    },
    /// The underlying page store failed. The partial update was rolled
    /// back: pages, version log, clock and the alive counter all hold
    /// their pre-call values.
    Storage(StorageError),
}

impl From<StorageError> for DeleteError {
    fn from(e: StorageError) -> Self {
        DeleteError::Storage(e)
    }
}

impl std::fmt::Display for DeleteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeleteError::NotFound { id, t } => {
                write!(f, "no record {id} alive in the current version at t={t}")
            }
            DeleteError::Storage(e) => write!(f, "delete aborted by storage error: {e}"),
        }
    }
}

impl std::error::Error for DeleteError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DeleteError::NotFound { .. } => None,
            DeleteError::Storage(e) => Some(e),
        }
    }
}

/// One version of the overlapping structure: the R-Tree rooted at `page`
/// is current from `time` until the next version's timestamp.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HrVersion {
    /// First instant this version is valid for.
    pub time: Time,
    /// Root page of this version's R-Tree.
    pub page: PageId,
    /// Root level (tree height).
    pub level: u32,
}

/// A historical R-Tree: the overlapping approach to partial persistence.
///
/// Updates never mutate written pages; each change copies the root-to-leaf
/// path it touches (Guttman-style insertion/deletion with a quadratic
/// split), so all versions share their unchanged branches. Storage
/// therefore grows by O(height) pages per change — the overhead the paper
/// cites when preferring the multi-version PPR-Tree.
///
/// Every operation that touches the page store is fallible: updates run
/// inside a page-level undo transaction and roll back completely on
/// error (see DESIGN.md §6), so a failed `insert`/`delete` leaves the
/// tree exactly as it was.
pub struct HrTree {
    store: PageStore,
    params: HrParams,
    versions: Vec<HrVersion>,
    now: Time,
    alive: u64,
    scratch: ScratchPool<QueryScratch>,
}

/// Copy a [`ReadProbe`]'s per-call I/O attribution into the I/O fields
/// of a [`QueryStats`] (queries are read-only, so `disk_writes` stays 0).
fn apply_probe(stats: &mut QueryStats, probe: &ReadProbe) {
    stats.disk_reads = probe.disk_reads;
    stats.buffer_hits = probe.buffer_hits;
    stats.io_retries = probe.io_retries;
    stats.io_faults_injected = probe.io_faults_injected;
    stats.checksum_failures = probe.checksum_failures;
}

/// Reusable query-time allocations, cleared at every query entry (they
/// carry capacity, never data, between calls) — same pooled pattern as
/// the PPR-Tree's scratch blocks: sequential queries recycle one block,
/// concurrent `&self` queries each take their own. The scratch is
/// returned to the pool even when a query aborts on a storage error.
#[derive(Debug, Default)]
struct QueryScratch {
    /// Dedup set for interval-query results.
    seen: HashSet<u64>,
    /// Pages already visited across versions (shared branches are
    /// descended once).
    visited: HashSet<PageId>,
    /// Descent stack.
    stack: Vec<PageId>,
}

impl HrTree {
    /// Create an empty tree.
    pub fn new(params: HrParams) -> Self {
        params.validate();
        Self {
            store: PageStore::new(params.buffer_pages),
            params,
            versions: Vec::new(),
            now: 0,
            alive: 0,
            scratch: ScratchPool::new(),
        }
    }

    /// Create an empty tree over a caller-supplied page backend (e.g. a
    /// [`sti_storage::FaultyBackend`] for fault-injection suites).
    pub fn with_backend(params: HrParams, backend: Box<dyn PageBackend>) -> Self {
        params.validate();
        Self {
            store: PageStore::with_backend(backend, params.buffer_pages),
            params,
            versions: Vec::new(),
            now: 0,
            alive: 0,
            scratch: ScratchPool::new(),
        }
    }

    /// Records alive in the newest version.
    pub fn alive_records(&self) -> u64 {
        self.alive
    }

    /// The version log.
    pub fn versions(&self) -> &[HrVersion] {
        &self.versions
    }

    /// Disk footprint in pages.
    pub fn num_pages(&self) -> usize {
        self.store.num_pages()
    }

    /// Accumulated I/O counters.
    pub fn io_stats(&self) -> IoStats {
        self.store.stats()
    }

    /// Accumulated fault/retry counters from the backing store.
    pub fn fault_stats(&self) -> FaultStats {
        self.store.fault_stats()
    }

    /// Replace the retry budget for transient storage faults.
    pub fn set_retry_policy(&mut self, policy: RetryPolicy) {
        self.store.set_retry_policy(policy);
    }

    /// Timestamp of the newest update (0 on an empty tree).
    pub fn now(&self) -> Time {
        self.now
    }

    /// Replace the buffer pool capacity (clears residency), mirroring
    /// the PPR-Tree's knob so buffer sweeps can compare structures.
    pub fn set_buffer_capacity(&mut self, pages: usize) {
        self.store.set_buffer_capacity(pages);
    }

    /// Re-stripe the buffer pool across `shards` lock shards (clears
    /// residency, preserves counters). More shards reduce lock contention
    /// between concurrent `&self` queries.
    pub fn set_buffer_shards(&mut self, shards: usize) {
        self.store.set_buffer_shards(shards);
    }

    /// Zero the I/O counters without touching residency; shared so a
    /// fresh accounting window can start while readers hold `&self`.
    pub fn reset_counters(&self) {
        self.store.reset_stats();
    }

    /// Empty the buffer pool (cold-buffer methodology). Exclusive so
    /// residency cannot be yanked out from under concurrent readers.
    pub fn clear_buffer(&mut self) {
        self.store.reset_buffer();
    }

    /// Reset I/O counters and buffer pool before a measured query.
    pub fn reset_for_query(&mut self) {
        self.reset_counters();
        self.clear_buffer();
    }

    // ------------------------------------------------------------------
    // Updates
    // ------------------------------------------------------------------

    /// Insert a record alive from `t` onward.
    ///
    /// # Errors
    /// A [`StorageError`] if the page store fails; the update is rolled
    /// back and the tree (pages, version log, clock, counter) is
    /// unchanged.
    ///
    /// # Panics
    /// If `t` precedes an earlier update (versions are time-ordered) or
    /// the rectangle is the empty sentinel — caller bugs, rejected before
    /// any page is touched.
    pub fn insert(&mut self, id: u64, rect: Rect2, t: Time) -> Result<(), StorageError> {
        assert!(!rect.is_empty(), "cannot index an empty rectangle");
        assert!(
            t >= self.now,
            "updates must be time-ordered: {t} < {}",
            self.now
        );
        let versions_before = self.versions.clone();
        let state_before = (self.now, self.alive);
        self.store.begin_txn();
        match self.insert_inner(id, rect, t) {
            Ok(()) => {
                self.store.commit_txn();
                Ok(())
            }
            Err(e) => {
                self.store.rollback_txn();
                self.versions = versions_before;
                (self.now, self.alive) = state_before;
                Err(e)
            }
        }
    }

    fn insert_inner(&mut self, id: u64, rect: Rect2, t: Time) -> Result<(), StorageError> {
        self.advance(t);
        let entry = HrEntry { rect, ptr: id };
        match self.current() {
            None => {
                let node = HrNode {
                    level: 0,
                    entries: vec![entry],
                };
                let page = self.write_new(&node)?;
                self.set_root(page, 0, t);
            }
            Some(v) => {
                let (page, level) = self.functional_insert(v, entry, 0)?;
                self.set_root(page, level, t);
            }
        }
        self.alive += 1;
        Ok(())
    }

    /// Delete the alive record `(id, rect)` at time `t`.
    ///
    /// # Errors
    /// [`DeleteError::NotFound`] if no record `(id, rect)` exists in the
    /// current version, or [`DeleteError::Storage`] if the page store
    /// failed mid-update; either way the evolution is unchanged (a failed
    /// update neither advances time nor registers a version — storage
    /// failures roll back).
    ///
    /// # Panics
    /// If `t` precedes an earlier update (versions are time-ordered).
    pub fn delete(&mut self, id: u64, rect: Rect2, t: Time) -> Result<(), DeleteError> {
        let versions_before = self.versions.clone();
        let state_before = (self.now, self.alive);
        self.store.begin_txn();
        match self.delete_inner(id, rect, t) {
            Ok(()) => {
                self.store.commit_txn();
                Ok(())
            }
            Err(e) => {
                self.store.rollback_txn();
                self.versions = versions_before;
                (self.now, self.alive) = state_before;
                Err(e)
            }
        }
    }

    fn delete_inner(&mut self, id: u64, rect: Rect2, t: Time) -> Result<(), DeleteError> {
        let Some(v) = self.current() else {
            return Err(DeleteError::NotFound { id, t });
        };
        let mut orphans: Vec<(HrEntry, u32)> = Vec::new();
        let outcome = self.delete_rec(v.page, id, &rect, &mut orphans, true)?;
        let replacement = match outcome {
            // delete_rec copies no pages until it has found the record,
            // so NotHere leaves the store untouched.
            DelOutcome::NotHere => return Err(DeleteError::NotFound { id, t }),
            DelOutcome::Replaced(page, _) => Some((page, v.level)),
            DelOutcome::Dissolved => None,
        };
        self.advance(t);
        // Rebuild from the (possibly missing) new root plus the orphans.
        // Orphaned *subtrees* are flattened to their leaf entries before
        // re-insertion: dissolving nodes is rare enough that the extra
        // path copies are cheaper than juggling height mismatches when
        // the root itself dissolved.
        let mut leaf_orphans: Vec<HrEntry> = Vec::new();
        for (e, lvl) in orphans {
            if lvl == 0 {
                leaf_orphans.push(e);
            } else {
                self.collect_leaf_entries(e.child_page(), &mut leaf_orphans)?;
            }
        }
        let mut root = replacement;
        for e in leaf_orphans {
            root = Some(match root {
                None => {
                    let node = HrNode {
                        level: 0,
                        entries: vec![e],
                    };
                    (self.write_new(&node)?, 0)
                }
                Some((page, level)) => {
                    let v = HrVersion {
                        time: t,
                        page,
                        level,
                    };
                    self.functional_insert(v, e, 0)?
                }
            });
        }
        // Collapse a trivial directory root.
        while let Some((page, level)) = root {
            if level == 0 {
                break;
            }
            let node = self.read_node(page)?;
            if node.entries.len() == 1 {
                root = Some((node.entries[0].child_page(), level - 1));
            } else {
                break;
            }
        }
        match root {
            Some((page, level)) => self.set_root(page, level, t),
            None => {
                // The version at t is an empty tree.
                let page = self.write_new(&HrNode::new(0))?;
                self.set_root(page, 0, t);
            }
        }
        self.alive -= 1;
        Ok(())
    }

    fn advance(&mut self, t: Time) {
        assert!(
            t >= self.now,
            "updates must be time-ordered: {t} < {}",
            self.now
        );
        self.now = t;
    }

    fn current(&self) -> Option<HrVersion> {
        self.versions.last().copied()
    }

    fn set_root(&mut self, page: PageId, level: u32, t: Time) {
        if let Some(last) = self.versions.last_mut() {
            if last.time == t {
                // Same timestamp: this update refines the same version.
                last.page = page;
                last.level = level;
                return;
            }
        }
        self.versions.push(HrVersion {
            time: t,
            page,
            level,
        });
    }

    // ------------------------------------------------------------------
    // Queries
    // ------------------------------------------------------------------

    /// Snapshot query: ids of records present in the version current at
    /// `t` whose rectangle intersects `area`.
    ///
    /// Append contract: matches are *appended* to `out`; the vector is
    /// never cleared here, so a caller can accumulate several queries
    /// into one buffer (all three tree backends share this contract).
    ///
    /// Returns the [`QueryStats`] delta for this call, reconciling
    /// exactly with the global [`IoStats`] counters.
    ///
    /// # Errors
    /// A [`StorageError`] if a page read fails after retries. The tree is
    /// unchanged (queries are read-only), but `out` may already hold the
    /// matches found before the failing read.
    pub fn query_snapshot(
        &self,
        area: &Rect2,
        t: Time,
        out: &mut Vec<u64>,
    ) -> Result<QueryStats, StorageError> {
        let mut stats = QueryStats::new();
        let mut probe = ReadProbe::new();
        let mut scratch = self.scratch.take();
        let mut failed = None;
        if let Some(idx) = self.version_at(t) {
            let root = self.versions[idx];
            let stack = &mut scratch.stack;
            stack.clear();
            stack.push(root.page);
            while let Some(page) = stack.pop() {
                let node = match self.read_node_probed(page, &mut probe) {
                    Ok(n) => n,
                    Err(e) => {
                        failed = Some(e);
                        break;
                    }
                };
                stats.nodes_visited += 1;
                for e in &node.entries {
                    stats.entries_scanned += 1;
                    if e.rect.intersects(area) {
                        if node.is_leaf() {
                            out.push(e.ptr);
                            stats.results += 1;
                        } else {
                            stack.push(e.child_page());
                        }
                    }
                }
            }
        }
        self.scratch.put(scratch);
        if let Some(e) = failed {
            return Err(e);
        }
        apply_probe(&mut stats, &probe);
        Ok(stats)
    }

    /// Interval query: ids of records present in any version alive during
    /// `range` whose rectangle intersects `area`, de-duplicated. Shared
    /// branches are visited once.
    ///
    /// Append contract: matches are *appended* to `out`; the vector is
    /// never cleared here (all three tree backends share this contract).
    /// Dedup applies to this call only — ids already in `out` from
    /// earlier queries may be appended again.
    ///
    /// Returns the [`QueryStats`] delta for this call (see
    /// [`HrTree::query_snapshot`]).
    ///
    /// # Errors
    /// A [`StorageError`] if a page read fails after retries. The tree is
    /// unchanged, and nothing is appended to `out` for this call (dedup
    /// happens before results are released).
    pub fn query_interval(
        &self,
        area: &Rect2,
        range: &TimeInterval,
        out: &mut Vec<u64>,
    ) -> Result<QueryStats, StorageError> {
        let mut stats = QueryStats::new();
        if range.is_empty() {
            return Ok(stats);
        }
        let mut probe = ReadProbe::new();
        let mut scratch = self.scratch.take();
        let QueryScratch {
            seen,
            visited,
            stack,
        } = &mut scratch;
        seen.clear();
        visited.clear();
        stack.clear();
        let first = self.version_at(range.start);
        let mut failed = None;
        'versions: for i in 0..self.versions.len() {
            let v = self.versions[i];
            let in_range = v.time >= range.start && v.time < range.end;
            if !(in_range || Some(i) == first) {
                continue;
            }
            stack.push(v.page);
            while let Some(page) = stack.pop() {
                if !visited.insert(page) {
                    continue;
                }
                let node = match self.read_node_probed(page, &mut probe) {
                    Ok(n) => n,
                    Err(e) => {
                        failed = Some(e);
                        break 'versions;
                    }
                };
                stats.nodes_visited += 1;
                for e in &node.entries {
                    stats.entries_scanned += 1;
                    if e.rect.intersects(area) {
                        if node.is_leaf() {
                            seen.insert(e.ptr);
                        } else {
                            stack.push(e.child_page());
                        }
                    }
                }
            }
        }
        if failed.is_none() {
            stats.dedup_candidates = seen.len() as u64;
            stats.results = stats.dedup_candidates;
            out.extend(seen.drain());
        }
        self.scratch.put(scratch);
        if let Some(e) = failed {
            return Err(e);
        }
        apply_probe(&mut stats, &probe);
        Ok(stats)
    }

    /// Index of the version current at `t` (largest `time ≤ t`).
    fn version_at(&self, t: Time) -> Option<usize> {
        let idx = self.versions.partition_point(|v| v.time <= t);
        idx.checked_sub(1)
    }

    // ------------------------------------------------------------------
    // Functional (path-copying) structure changes
    // ------------------------------------------------------------------

    fn read_node(&self, page: PageId) -> Result<HrNode, StorageError> {
        self.read_node_probed(page, &mut ReadProbe::new())
    }

    fn read_node_probed(
        &self,
        page: PageId,
        probe: &mut ReadProbe,
    ) -> Result<HrNode, StorageError> {
        let raw = self.store.read(page, probe)?;
        HrNode::decode(&raw).map_err(|_| StorageError::Corrupt {
            page,
            reason: CorruptReason::Decode,
        })
    }

    fn write_new(&mut self, node: &HrNode) -> Result<PageId, StorageError> {
        let page = self.store.allocate()?;
        let mut buf = Page::zeroed();
        node.encode(&mut buf);
        self.store.write(page, &buf.bytes()[..])?;
        Ok(page)
    }

    /// Insert `entry` at `target_level` under version `v`, path-copying.
    /// Returns the new root (page, level).
    fn functional_insert(
        &mut self,
        v: HrVersion,
        entry: HrEntry,
        target_level: u32,
    ) -> Result<(PageId, u32), StorageError> {
        debug_assert!(target_level <= v.level, "orphan taller than the tree");
        let (page, _mbr, split) = self.insert_rec(v.page, entry, target_level)?;
        match split {
            None => Ok((page, v.level)),
            Some((sib_page, sib_mbr)) => {
                let left = self.read_node(page)?;
                let new_root = HrNode {
                    level: v.level + 1,
                    entries: vec![
                        HrEntry {
                            rect: left.mbr(),
                            ptr: u64::from(page),
                        },
                        HrEntry {
                            rect: sib_mbr,
                            ptr: u64::from(sib_page),
                        },
                    ],
                };
                let root_page = self.write_new(&new_root)?;
                Ok((root_page, v.level + 1))
            }
        }
    }

    /// Returns (copied page, its MBR, optional split sibling).
    #[allow(clippy::type_complexity)]
    fn insert_rec(
        &mut self,
        page: PageId,
        entry: HrEntry,
        target_level: u32,
    ) -> Result<(PageId, Rect2, Option<(PageId, Rect2)>), StorageError> {
        let mut node = self.read_node(page)?;
        if node.level == target_level {
            node.entries.push(entry);
        } else {
            let idx = choose_subtree(&node, &entry.rect);
            let child = node.entries[idx].child_page();
            let (new_child, child_mbr, split) = self.insert_rec(child, entry, target_level)?;
            node.entries[idx] = HrEntry {
                rect: child_mbr,
                ptr: u64::from(new_child),
            };
            if let Some((sib_page, sib_mbr)) = split {
                node.entries.push(HrEntry {
                    rect: sib_mbr,
                    ptr: u64::from(sib_page),
                });
            }
        }
        if node.entries.len() > self.params.max_entries {
            let (g1, g2) = quadratic_split(node.entries, self.params.min_entries());
            let left = HrNode {
                level: node.level,
                entries: g1,
            };
            let right = HrNode {
                level: node.level,
                entries: g2,
            };
            let left_page = self.write_new(&left)?;
            let right_page = self.write_new(&right)?;
            return Ok((left_page, left.mbr(), Some((right_page, right.mbr()))));
        }
        let mbr = node.mbr();
        let new_page = self.write_new(&node)?;
        Ok((new_page, mbr, None))
    }

    /// Gather every leaf entry beneath `page` (orphan flattening).
    fn collect_leaf_entries(
        &mut self,
        page: PageId,
        out: &mut Vec<HrEntry>,
    ) -> Result<(), StorageError> {
        let node = self.read_node(page)?;
        if node.is_leaf() {
            out.extend(node.entries);
        } else {
            for e in &node.entries {
                self.collect_leaf_entries(e.child_page(), out)?;
            }
        }
        Ok(())
    }

    fn delete_rec(
        &mut self,
        page: PageId,
        id: u64,
        rect: &Rect2,
        orphans: &mut Vec<(HrEntry, u32)>,
        is_root: bool,
    ) -> Result<DelOutcome, StorageError> {
        let mut node = self.read_node(page)?;
        if node.is_leaf() {
            let Some(pos) = node
                .entries
                .iter()
                .position(|e| e.ptr == id && e.rect == *rect)
            else {
                return Ok(DelOutcome::NotHere);
            };
            node.entries.remove(pos);
            // The root is exempt from min fill (like any R-Tree root);
            // dissolving it would flatten and re-insert the whole tree.
            if !is_root && node.entries.len() < self.params.min_entries() {
                for e in node.entries {
                    orphans.push((e, 0));
                }
                return Ok(DelOutcome::Dissolved);
            }
            let mbr = node.mbr();
            return Ok(DelOutcome::Replaced(self.write_new(&node)?, mbr));
        }
        for i in 0..node.entries.len() {
            if !node.entries[i].rect.contains_rect(rect) {
                continue;
            }
            match self.delete_rec(node.entries[i].child_page(), id, rect, orphans, false)? {
                DelOutcome::NotHere => continue,
                DelOutcome::Replaced(new_child, child_mbr) => {
                    node.entries[i] = HrEntry {
                        rect: child_mbr,
                        ptr: u64::from(new_child),
                    };
                    let mbr = node.mbr();
                    return Ok(DelOutcome::Replaced(self.write_new(&node)?, mbr));
                }
                DelOutcome::Dissolved => {
                    let level = node.level;
                    node.entries.remove(i);
                    if !is_root && node.entries.len() < self.params.min_entries() {
                        for e in node.entries {
                            orphans.push((e, level));
                        }
                        return Ok(DelOutcome::Dissolved);
                    }
                    let mbr = node.mbr();
                    return Ok(DelOutcome::Replaced(self.write_new(&node)?, mbr));
                }
            }
        }
        Ok(DelOutcome::NotHere)
    }

    /// Walk the newest version and assert R-Tree invariants.
    #[doc(hidden)]
    pub fn validate(&mut self) {
        let Some(v) = self.current() else { return };
        let max = self.params.max_entries;
        let min = self.params.min_entries();
        let mut count = 0u64;
        let mut stack = vec![(v.page, v.level, None::<Rect2>)];
        while let Some((page, level, parent_rect)) = stack.pop() {
            // stilint::allow(no_io_unwrap, "test-only invariant walker whose contract is to panic on any defect, unreadable pages included")
            let node = self.read_node(page).expect("validate: unreadable node");
            assert_eq!(node.level, level, "level mismatch at {page}");
            assert!(node.entries.len() <= max, "overfull node {page}");
            if page != v.page {
                assert!(node.entries.len() >= min, "underfull node {page}");
            }
            if let Some(pr) = parent_rect {
                assert!(
                    pr.contains_rect(&node.mbr()),
                    "parent does not cover {page}"
                );
            }
            if node.is_leaf() {
                count += node.entries.len() as u64;
            } else {
                for e in &node.entries {
                    stack.push((e.child_page(), level - 1, Some(e.rect)));
                }
            }
        }
        assert_eq!(count, self.alive, "alive count mismatch");
    }
}

enum DelOutcome {
    NotHere,
    Replaced(PageId, Rect2),
    Dissolved,
}

/// Guttman's ChooseLeaf criterion: least enlargement, ties by area.
fn choose_subtree(node: &HrNode, rect: &Rect2) -> usize {
    debug_assert!(!node.is_leaf());
    let mut best = 0usize;
    let mut best_key = (f64::INFINITY, f64::INFINITY);
    for (i, e) in node.entries.iter().enumerate() {
        let key = (e.rect.enlargement(rect), e.rect.area());
        if key < best_key {
            best_key = key;
            best = i;
        }
    }
    best
}

/// Guttman's quadratic split (the HR-Tree's original substrate is a plain
/// R-Tree, so the historically matching algorithm is used here rather
/// than the R\* split).
fn quadratic_split(entries: Vec<HrEntry>, min_entries: usize) -> (Vec<HrEntry>, Vec<HrEntry>) {
    let n = entries.len();
    assert!(
        n >= 2 * min_entries,
        "cannot split {n} entries with min fill {min_entries}"
    );

    // PickSeeds: the pair wasting the most area together.
    let mut seed = (0usize, 1usize);
    let mut worst = f64::NEG_INFINITY;
    for i in 0..n {
        for j in i + 1..n {
            let waste = entries[i].rect.union(&entries[j].rect).area()
                - entries[i].rect.area()
                - entries[j].rect.area();
            if waste > worst {
                worst = waste;
                seed = (i, j);
            }
        }
    }

    let mut g1 = vec![entries[seed.0]];
    let mut g2 = vec![entries[seed.1]];
    let mut bb1 = entries[seed.0].rect;
    let mut bb2 = entries[seed.1].rect;
    let mut rest: Vec<HrEntry> = entries
        .into_iter()
        .enumerate()
        .filter(|&(i, _)| i != seed.0 && i != seed.1)
        .map(|(_, e)| e)
        .collect();

    while !rest.is_empty() {
        // Force-assign when one group must take everything left.
        if g1.len() + rest.len() == min_entries {
            for e in rest.drain(..) {
                bb1.expand(&e.rect);
                g1.push(e);
            }
            break;
        }
        if g2.len() + rest.len() == min_entries {
            for e in rest.drain(..) {
                bb2.expand(&e.rect);
                g2.push(e);
            }
            break;
        }
        // PickNext: strongest preference first.
        let mut pick = 0usize;
        let mut pick_diff = f64::NEG_INFINITY;
        for (i, e) in rest.iter().enumerate() {
            let d1 = bb1.enlargement(&e.rect);
            let d2 = bb2.enlargement(&e.rect);
            let diff = (d1 - d2).abs();
            if diff > pick_diff {
                pick_diff = diff;
                pick = i;
            }
        }
        let e = rest.swap_remove(pick);
        let d1 = bb1.enlargement(&e.rect);
        let d2 = bb2.enlargement(&e.rect);
        let to_first = match d1.total_cmp(&d2) {
            std::cmp::Ordering::Less => true,
            std::cmp::Ordering::Greater => false,
            std::cmp::Ordering::Equal => {
                bb1.area() < bb2.area() || (bb1.area() == bb2.area() && g1.len() <= g2.len())
            }
        };
        if to_first {
            bb1.expand(&e.rect);
            g1.push(e);
        } else {
            bb2.expand(&e.rect);
            g2.push(e);
        }
    }
    (g1, g2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sti_storage::{FaultKind, FaultPlan, FaultyBackend, MemBackend, ScheduledFault};

    fn small() -> HrParams {
        HrParams {
            max_entries: 8,
            min_fill: 0.4,
            buffer_pages: 4,
        }
    }

    fn rect(x: f64, y: f64) -> Rect2 {
        Rect2::from_bounds(x, y, x + 0.03, y + 0.03)
    }

    #[test]
    fn empty_tree() {
        let t = HrTree::new(small());
        let mut out = Vec::new();
        t.query_snapshot(&Rect2::UNIT, 5, &mut out).unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn history_is_immutable() {
        let mut t = HrTree::new(small());
        for i in 0..20u64 {
            t.insert(i, rect(0.04 * i as f64, 0.1), i as Time).unwrap();
        }
        t.validate();
        // Every prefix version still answers exactly its own content.
        for probe in [0u32, 5, 13, 19, 100] {
            let mut out = Vec::new();
            t.query_snapshot(&Rect2::UNIT, probe, &mut out).unwrap();
            out.sort_unstable();
            let expect: Vec<u64> = (0..=u64::from(probe.min(19))).collect();
            assert_eq!(out, expect, "probe {probe}");
        }
    }

    #[test]
    fn delete_creates_a_new_version_keeps_old() {
        let mut t = HrTree::new(small());
        for i in 0..10u64 {
            t.insert(i, rect(0.05 * i as f64, 0.2), 0).unwrap();
        }
        for i in 0..5u64 {
            t.delete(i, rect(0.05 * i as f64, 0.2), 10).unwrap();
        }
        t.validate();
        let mut out = Vec::new();
        t.query_snapshot(&Rect2::UNIT, 5, &mut out).unwrap();
        assert_eq!(out.len(), 10, "old version intact");
        out.clear();
        t.query_snapshot(&Rect2::UNIT, 10, &mut out).unwrap();
        out.sort_unstable();
        assert_eq!(out, vec![5, 6, 7, 8, 9]);
    }

    #[test]
    fn interval_queries_dedup_across_versions() {
        let mut t = HrTree::new(small());
        t.insert(1, rect(0.5, 0.5), 0).unwrap();
        // Churn around it, creating many versions that all share record 1.
        for round in 0..20u64 {
            let tt = 1 + round as Time;
            t.insert(100 + round, rect(0.01, 0.9), tt).unwrap();
        }
        let mut out = Vec::new();
        t.query_interval(&rect(0.5, 0.5), &TimeInterval::new(0, 50), &mut out)
            .unwrap();
        assert_eq!(out, vec![1]);
    }

    #[test]
    fn storage_overhead_is_per_update_path() {
        // Each update copies ~height pages: storage grows linearly in
        // updates with a slope ≥ 1, far above PPR's amortized slope.
        let mut t = HrTree::new(small());
        for i in 0..200u64 {
            t.insert(
                i,
                rect((i % 20) as f64 * 0.04, (i / 20) as f64 * 0.08),
                i as Time,
            )
            .unwrap();
        }
        assert!(
            t.num_pages() >= 200,
            "path copying must allocate at least one page per update, got {}",
            t.num_pages()
        );
    }

    #[test]
    fn deletion_to_empty_and_rebirth() {
        let mut t = HrTree::new(small());
        for i in 0..6u64 {
            t.insert(i, rect(0.1 * i as f64, 0.4), 0).unwrap();
        }
        for i in 0..6u64 {
            t.delete(i, rect(0.1 * i as f64, 0.4), 5).unwrap();
        }
        assert_eq!(t.alive_records(), 0);
        let mut out = Vec::new();
        t.query_snapshot(&Rect2::UNIT, 5, &mut out).unwrap();
        assert!(out.is_empty());
        t.insert(99, rect(0.5, 0.5), 8).unwrap();
        t.validate();
        out.clear();
        t.query_snapshot(&Rect2::UNIT, 8, &mut out).unwrap();
        assert_eq!(out, vec![99]);
        // the pre-delete world still answers
        out.clear();
        t.query_snapshot(&Rect2::UNIT, 3, &mut out).unwrap();
        assert_eq!(out.len(), 6);
    }

    #[test]
    #[should_panic(expected = "time-ordered")]
    fn rejects_time_travel() {
        let mut t = HrTree::new(small());
        t.insert(1, rect(0.1, 0.1), 10).unwrap();
        let _ = t.insert(2, rect(0.2, 0.2), 5);
    }

    #[test]
    fn quadratic_split_respects_min_fill() {
        let entries: Vec<HrEntry> = (0..9)
            .map(|i| HrEntry {
                rect: rect(0.1 * i as f64, 0.0),
                ptr: i,
            })
            .collect();
        let (g1, g2) = quadratic_split(entries, 3);
        assert_eq!(g1.len() + g2.len(), 9);
        assert!(g1.len() >= 3 && g2.len() >= 3);
    }

    /// A permanent fault mid-insert rolls the whole path copy back: the
    /// version log, clock, counter and page count keep their prior
    /// values, and the invariant walk still passes.
    #[test]
    fn failed_insert_rolls_back_completely() {
        let plan = FaultPlan::new(vec![ScheduledFault {
            at_op: 35,
            kind: FaultKind::Fail { transient: false },
        }]);
        let backend = FaultyBackend::new(Box::new(MemBackend::new()), plan);
        let mut t = HrTree::with_backend(small(), Box::new(backend));
        t.set_retry_policy(RetryPolicy::no_retry());

        let mut i = 0u64;
        let err = loop {
            let versions_before = t.versions().len();
            let pages_before = t.num_pages();
            match t.insert(i, rect(0.03 * (i % 25) as f64, 0.2), i as Time) {
                Ok(()) => {
                    i += 1;
                    assert!(i < 10_000, "fault never fired");
                }
                Err(e) => {
                    assert_eq!(t.versions().len(), versions_before, "version log restored");
                    assert_eq!(t.num_pages(), pages_before, "allocations rolled back");
                    break e;
                }
            }
        };
        assert!(matches!(err, StorageError::Injected { .. }), "{err:?}");
        assert_eq!(t.alive_records(), i, "failed insert must not count");
        t.validate();

        // The tree keeps working once the fault has passed.
        t.insert(i, rect(0.03 * (i % 25) as f64, 0.2), i as Time)
            .unwrap();
        assert_eq!(t.alive_records(), i + 1);
        t.validate();
    }

    /// Transient faults are absorbed by the store's retry loop and
    /// surface only in the fault counters.
    #[test]
    fn transient_faults_are_invisible_to_updates() {
        let plan = FaultPlan::new(vec![ScheduledFault {
            at_op: 5,
            kind: FaultKind::Fail { transient: true },
        }]);
        let backend = FaultyBackend::new(Box::new(MemBackend::new()), plan);
        let mut t = HrTree::with_backend(small(), Box::new(backend));
        for i in 0..15u64 {
            t.insert(i, rect(0.05 * (i % 12) as f64, 0.4), i as Time)
                .unwrap();
        }
        t.validate();
        let fs = t.fault_stats();
        assert_eq!(fs.io_faults_injected, 1);
        assert_eq!(fs.io_retries, 1);
        let mut out = Vec::new();
        let stats = t.query_snapshot(&Rect2::UNIT, 14, &mut out).unwrap();
        assert_eq!(out.len(), 15);
        assert_eq!(stats.io_faults_injected, 0, "fault spent before queries");
    }
}
