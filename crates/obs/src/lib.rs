//! `sti-obs`: a dependency-free observability layer for the
//! spatiotemporal index workspace.
//!
//! The paper's evaluation (§V) is denominated in page accesses per query
//! under a small LRU buffer, so the unit of observability here is the
//! *operation*, not the process: trees return a [`QueryStats`] delta from
//! each query, builds emit per-phase [`Span`]s through a pluggable
//! [`SpanSink`], and [`MetricSet`] renders any of it as Prometheus text
//! exposition format or JSON.
//!
//! Everything in this crate returns `String`s or values; nothing here
//! touches stdout, files, or the process environment. Binaries decide
//! where the bytes go.

mod hist;
mod json;
mod metrics;
mod span;
mod stats;

pub use hist::{HistogramSnapshot, LatencyHistogram};
pub use json::JsonValue;
pub use metrics::{Metric, MetricKind, MetricSet};
pub use span::{NullSink, Span, SpanSink, SpanTimer, VecSink};
pub use stats::QueryStats;
