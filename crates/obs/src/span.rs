//! A lightweight span API for phase-level wall-clock tracing.
//!
//! Builds in this workspace run in distinct phases (split planning,
//! distribution/packing, tree insert/apply); a [`Span`] names one phase
//! and carries its duration, and a [`SpanSink`] decides what happens to
//! finished spans. The default sinks either collect ([`VecSink`]) or
//! drop ([`NullSink`]) — rendering is left to [`crate::MetricSet`] and
//! the callers.

use crate::json::JsonValue;
use std::time::{Duration, Instant};

/// One named, finished wall-clock interval.
#[derive(Debug, Clone, PartialEq)]
pub struct Span {
    /// Phase name, e.g. `"split_planning"`.
    pub name: String,
    /// Elapsed wall-clock time for the phase.
    pub elapsed: Duration,
}

impl Span {
    /// Build a span from an already-measured duration (used to export
    /// phase timings that were captured before this crate existed, e.g.
    /// `BuildStats`).
    pub fn from_duration(name: impl Into<String>, elapsed: Duration) -> Span {
        Span {
            name: name.into(),
            elapsed,
        }
    }

    /// Elapsed time in (fractional) seconds.
    pub fn seconds(&self) -> f64 {
        self.elapsed.as_secs_f64()
    }

    /// Structured form for the JSON serializers.
    pub fn to_json(&self) -> JsonValue {
        JsonValue::object([
            ("name", JsonValue::str(self.name.clone())),
            ("seconds", JsonValue::Num(self.seconds())),
        ])
    }
}

/// Receiver for finished spans. Implementations must not panic.
pub trait SpanSink {
    /// Accept one finished span.
    fn record(&mut self, span: Span);
}

/// Collects every span, in completion order.
#[derive(Debug, Default, Clone)]
pub struct VecSink {
    /// Finished spans in the order they were recorded.
    pub spans: Vec<Span>,
}

impl VecSink {
    /// An empty sink.
    pub fn new() -> VecSink {
        VecSink::default()
    }

    /// Total seconds across all recorded spans.
    pub fn total_seconds(&self) -> f64 {
        self.spans.iter().map(Span::seconds).sum()
    }

    /// Spans as a JSON array.
    pub fn to_json(&self) -> JsonValue {
        JsonValue::array(self.spans.iter().map(Span::to_json))
    }
}

impl SpanSink for VecSink {
    fn record(&mut self, span: Span) {
        self.spans.push(span);
    }
}

/// Discards every span; the zero-cost default when tracing is off.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl SpanSink for NullSink {
    fn record(&mut self, _span: Span) {}
}

/// Measures one span with `Instant`. Start it, do the work, then
/// [`finish`](SpanTimer::finish) into a sink (or drop it to discard the
/// measurement).
#[derive(Debug)]
pub struct SpanTimer {
    name: String,
    started: Instant,
}

impl SpanTimer {
    /// Start timing a phase named `name`.
    pub fn start(name: impl Into<String>) -> SpanTimer {
        SpanTimer {
            name: name.into(),
            started: Instant::now(),
        }
    }

    /// Time elapsed so far.
    pub fn elapsed(&self) -> Duration {
        self.started.elapsed()
    }

    /// Stop the clock and deliver the span to `sink`.
    pub fn finish(self, sink: &mut dyn SpanSink) {
        let elapsed = self.started.elapsed();
        sink.record(Span {
            name: self.name,
            elapsed,
        });
    }

    /// Stop the clock and return the span to the caller directly.
    pub fn finish_span(self) -> Span {
        Span {
            elapsed: self.started.elapsed(),
            name: self.name,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timer_records_into_sink() {
        let mut sink = VecSink::new();
        let t = SpanTimer::start("phase_a");
        std::thread::sleep(Duration::from_millis(1));
        t.finish(&mut sink);
        assert_eq!(sink.spans.len(), 1);
        assert_eq!(sink.spans[0].name, "phase_a");
        assert!(sink.spans[0].elapsed >= Duration::from_millis(1));
        assert!(sink.total_seconds() > 0.0);
    }

    #[test]
    fn null_sink_discards() {
        let mut sink = NullSink;
        SpanTimer::start("x").finish(&mut sink);
        // Nothing to observe — the point is that this compiles and runs.
    }

    #[test]
    fn span_json_has_name_and_seconds() {
        let s = Span::from_duration("pack", Duration::from_millis(250)).to_json();
        assert_eq!(s.render(), "{\"name\":\"pack\",\"seconds\":0.25}");
    }
}
