//! A minimal JSON document model and renderer.
//!
//! The workspace is offline and dependency-free, so instead of serde this
//! module provides an explicit value tree whose object fields keep their
//! insertion order — serialized output is byte-stable across runs, which
//! the bench harness relies on for diffable `BENCH_*.json` artifacts.

use core::fmt::Write as _;

/// One JSON value. Objects preserve insertion order.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    Null,
    Bool(bool),
    /// Unsigned integers (counters, sizes) render without a decimal point.
    UInt(u64),
    Int(i64),
    /// Finite floats render via Rust's shortest-roundtrip `Display`;
    /// NaN and infinities render as `null` (JSON has no spelling for
    /// them).
    Num(f64),
    Str(String),
    Arr(Vec<JsonValue>),
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Build an object from `(key, value)` pairs, preserving order.
    pub fn object<K, I>(fields: I) -> JsonValue
    where
        K: Into<String>,
        I: IntoIterator<Item = (K, JsonValue)>,
    {
        JsonValue::Obj(fields.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Build an array from any iterator of values.
    pub fn array<I: IntoIterator<Item = JsonValue>>(items: I) -> JsonValue {
        JsonValue::Arr(items.into_iter().collect())
    }

    /// Convenience for string values.
    pub fn str(s: impl Into<String>) -> JsonValue {
        JsonValue::Str(s.into())
    }

    /// Append a field to an object; ignored (by design) on non-objects so
    /// builders can chain unconditionally.
    pub fn push_field(&mut self, key: impl Into<String>, value: JsonValue) {
        if let JsonValue::Obj(fields) = self {
            fields.push((key.into(), value));
        }
    }

    /// Render as compact single-line JSON.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write_compact(&mut out);
        out
    }

    /// Render with two-space indentation, for human-inspectable artifacts.
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out.push('\n');
        out
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::UInt(n) => {
                let _ = write!(out, "{n}");
            }
            JsonValue::Int(n) => {
                let _ = write!(out, "{n}");
            }
            JsonValue::Num(x) => write_f64(out, *x),
            JsonValue::Str(s) => write_escaped(out, s),
            JsonValue::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_compact(out);
                }
                out.push(']');
            }
            JsonValue::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write_compact(out);
                }
                out.push('}');
            }
        }
    }

    fn write_pretty(&self, out: &mut String, depth: usize) {
        match self {
            JsonValue::Arr(items) if !items.is_empty() => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, depth + 1);
                    item.write_pretty(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push(']');
            }
            JsonValue::Obj(fields) if !fields.is_empty() => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, depth + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write_pretty(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push('}');
            }
            other => other.write_compact(out),
        }
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

/// JSON has no representation for NaN or infinity; map them to `null`
/// rather than emitting an invalid document.
fn write_f64(out: &mut String, x: f64) {
    if x.is_finite() {
        let _ = write!(out, "{x}");
        // `Display` prints integral floats without a decimal point
        // ("3"), which is valid JSON but loses the "this was a float"
        // hint; keep it as-is for compactness.
    } else {
        out.push_str("null");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render_as_json() {
        assert_eq!(JsonValue::Null.render(), "null");
        assert_eq!(JsonValue::Bool(true).render(), "true");
        assert_eq!(JsonValue::UInt(42).render(), "42");
        assert_eq!(JsonValue::Int(-7).render(), "-7");
        assert_eq!(JsonValue::Num(1.5).render(), "1.5");
        assert_eq!(JsonValue::Num(f64::NAN).render(), "null");
        assert_eq!(JsonValue::Num(f64::INFINITY).render(), "null");
    }

    #[test]
    fn strings_are_escaped() {
        assert_eq!(
            JsonValue::str("a\"b\\c\nd\te\u{1}").render(),
            "\"a\\\"b\\\\c\\nd\\te\\u0001\""
        );
    }

    #[test]
    fn objects_keep_insertion_order() {
        let v = JsonValue::object([("zebra", JsonValue::UInt(1)), ("apple", JsonValue::UInt(2))]);
        assert_eq!(v.render(), "{\"zebra\":1,\"apple\":2}");
    }

    #[test]
    fn pretty_output_is_indented_and_reparsable_shape() {
        let v = JsonValue::object([
            ("name", JsonValue::str("fig15")),
            (
                "rows",
                JsonValue::array([JsonValue::array([JsonValue::str("0%")])]),
            ),
            ("empty", JsonValue::Arr(Vec::new())),
        ]);
        let text = v.render_pretty();
        assert!(text.contains("\n  \"name\": \"fig15\""), "{text}");
        assert!(text.contains("\"empty\": []"), "{text}");
        assert!(text.ends_with("}\n"), "{text}");
    }
}
