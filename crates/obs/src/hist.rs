//! A lock-free latency histogram with log-spaced buckets.
//!
//! The paper's metric of record is page I/Os per query, but a served
//! index is judged by end-to-end latency under concurrency — a
//! *distribution*, not an average, because tail latency is what an SLO
//! bounds. [`LatencyHistogram`] records observations into geometrically
//! spaced buckets behind atomic counters, so many worker threads can
//! observe through one `&self` handle with no coordination beyond the
//! cache line, and quantile estimates stay deterministic given the same
//! observations (the estimate is always a bucket *upper bound*, never an
//! interpolation that would depend on float summation order).

use std::sync::atomic::{AtomicU64, Ordering};

/// Default smallest bucket upper bound: 1µs.
const FIRST_BOUND_SECS: f64 = 1e-6;
/// Default growth factor between bucket bounds: 2^(1/4) ≈ 1.19, i.e. a
/// worst-case quantile overestimate of ~19%.
const GROWTH: f64 = 1.189_207_115_002_721;
/// Default bucket count, spanning 1µs to ~67s (the last bound is 104
/// factors of 2^(1/4) above the first: 2^26 ≈ 6.7e7).
const DEFAULT_BUCKETS: usize = 105;

/// A point-in-time copy of a histogram, in the shape the Prometheus
/// exposition format wants: per-bucket **cumulative** counts plus the
/// total sum and count ([`crate::MetricSet::histogram`] renders it).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct HistogramSnapshot {
    /// `(upper_bound_secs, cumulative_count)`, ascending. Observations
    /// above the last bound only show up in `count` (the `+Inf` bucket).
    pub buckets: Vec<(f64, u64)>,
    /// Sum of every observed value, in seconds.
    pub sum: f64,
    /// Total number of observations.
    pub count: u64,
}

/// A shared, interior-mutable latency histogram.
///
/// `observe` is `&self` and lock-free: concurrent recorders only ever
/// touch atomic counters. Reads (`snapshot`, `quantile`) are
/// tear-tolerant — they may miss observations racing in while they
/// read, which is the usual contract for scrape-time metrics.
#[derive(Debug)]
pub struct LatencyHistogram {
    /// Ascending bucket upper bounds, in seconds.
    bounds: Vec<f64>,
    /// Per-bucket (non-cumulative) counts, same length as `bounds`.
    counts: Vec<AtomicU64>,
    /// Observations above the last bound (the `+Inf` bucket).
    overflow: AtomicU64,
    /// Total observed nanoseconds (for the `_sum` series).
    sum_nanos: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// A histogram with the default latency-oriented bounds: 105
    /// log-spaced buckets from 1µs to ~67s (ratio 2^(1/4), so quantile
    /// estimates overshoot by at most ~19%).
    pub fn new() -> Self {
        let mut bounds = Vec::with_capacity(DEFAULT_BUCKETS);
        let mut bound = FIRST_BOUND_SECS;
        for _ in 0..DEFAULT_BUCKETS {
            bounds.push(bound);
            bound *= GROWTH;
        }
        Self::with_bounds(bounds)
    }

    /// A histogram over explicit ascending bucket upper bounds (in
    /// seconds). Non-finite, non-positive, or out-of-order bounds are
    /// dropped rather than accepted into a nonsensical scale.
    pub fn with_bounds(bounds: Vec<f64>) -> Self {
        let mut clean: Vec<f64> = Vec::with_capacity(bounds.len());
        for b in bounds {
            let ascending = clean.last().is_none_or(|&prev| b > prev);
            if b.is_finite() && b > 0.0 && ascending {
                clean.push(b);
            }
        }
        let counts = clean.iter().map(|_| AtomicU64::new(0)).collect();
        Self {
            bounds: clean,
            counts,
            overflow: AtomicU64::new(0),
            sum_nanos: AtomicU64::new(0),
        }
    }

    /// Record one observation, in seconds. Negative and non-finite
    /// values are clamped to zero (they can only come from clock
    /// misbehavior, and a poisoned scale helps nobody).
    pub fn observe_secs(&self, secs: f64) {
        let secs = if secs.is_finite() && secs > 0.0 {
            secs
        } else {
            0.0
        };
        let idx = self.bounds.partition_point(|&b| b < secs);
        let cell = match self.counts.get(idx) {
            Some(cell) => cell,
            None => &self.overflow,
        };
        // ordering: independent monotonic counters; readers tolerate
        // torn cross-counter views, so no ordering between cells is
        // needed.
        cell.fetch_add(1, Ordering::Relaxed);
        let nanos = (secs * 1e9).min(u64::MAX as f64) as u64;
        // ordering: same single-counter monotonicity argument as above.
        self.sum_nanos.fetch_add(nanos, Ordering::Relaxed);
    }

    /// Record one observation from a [`std::time::Duration`].
    pub fn observe(&self, elapsed: std::time::Duration) {
        self.observe_secs(elapsed.as_secs_f64());
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        let mut total = 0u64;
        for c in &self.counts {
            // ordering: scrape-time read of independent counters;
            // relaxed is the documented tear-tolerant contract.
            total += c.load(Ordering::Relaxed);
        }
        // ordering: see above.
        total + self.overflow.load(Ordering::Relaxed)
    }

    /// Sum of every observed value, in seconds.
    pub fn sum_secs(&self) -> f64 {
        // ordering: scrape-time read; see `count`.
        self.sum_nanos.load(Ordering::Relaxed) as f64 / 1e9
    }

    /// The estimated `q`-quantile (`0.0..=1.0`), as the upper bound of
    /// the first bucket whose cumulative count reaches `ceil(q * n)`.
    /// Returns 0 for an empty histogram; observations above the last
    /// bound report the last bound (the estimate saturates rather than
    /// inventing a number for the open-ended `+Inf` bucket).
    pub fn quantile(&self, q: f64) -> f64 {
        let snap = self.snapshot();
        if snap.count == 0 {
            return 0.0;
        }
        let rank = ((q.clamp(0.0, 1.0) * snap.count as f64).ceil() as u64).max(1);
        for &(bound, cumulative) in &snap.buckets {
            if cumulative >= rank {
                return bound;
            }
        }
        snap.buckets.last().map_or(0.0, |&(bound, _)| bound)
    }

    /// A point-in-time copy with cumulative bucket counts.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut cumulative = 0u64;
        let buckets = self
            .bounds
            .iter()
            .zip(&self.counts)
            .map(|(&bound, count)| {
                // ordering: scrape-time read; see `count`.
                cumulative += count.load(Ordering::Relaxed);
                (bound, cumulative)
            })
            .collect();
        // ordering: scrape-time read; see `count`.
        let count = cumulative + self.overflow.load(Ordering::Relaxed);
        HistogramSnapshot {
            buckets,
            sum: self.sum_secs(),
            count,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_bounds_are_ascending_and_span_the_latency_range() {
        let h = LatencyHistogram::new();
        assert_eq!(h.bounds.len(), DEFAULT_BUCKETS);
        assert!(h.bounds.windows(2).all(|w| w[0] < w[1]));
        assert!(h.bounds.first().is_some_and(|&b| b == 1e-6));
        assert!(h.bounds.last().is_some_and(|&b| b > 60.0 && b < 90.0));
    }

    #[test]
    fn observations_land_in_le_buckets() {
        let h = LatencyHistogram::with_bounds(vec![0.001, 0.01, 0.1]);
        h.observe_secs(0.001); // exactly on a bound: le semantics
        h.observe_secs(0.005);
        h.observe_secs(0.05);
        h.observe_secs(5.0); // overflow
        let snap = h.snapshot();
        assert_eq!(snap.buckets, vec![(0.001, 1), (0.01, 2), (0.1, 3)]);
        assert_eq!(snap.count, 4);
        assert!((snap.sum - 5.056).abs() < 1e-6, "{}", snap.sum);
    }

    #[test]
    fn quantiles_return_bucket_upper_bounds() {
        let h = LatencyHistogram::with_bounds(vec![1.0, 2.0, 4.0, 8.0]);
        for _ in 0..90 {
            h.observe_secs(0.5); // bucket le=1
        }
        for _ in 0..10 {
            h.observe_secs(3.0); // bucket le=4
        }
        assert_eq!(h.quantile(0.5), 1.0);
        assert_eq!(h.quantile(0.9), 1.0);
        assert_eq!(h.quantile(0.95), 4.0);
        assert_eq!(h.quantile(1.0), 4.0);
        assert_eq!(h.count(), 100);
    }

    #[test]
    fn empty_histogram_is_all_zeros() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.99), 0.0);
        assert_eq!(h.sum_secs(), 0.0);
    }

    #[test]
    fn overflow_saturates_quantiles_at_the_last_bound() {
        let h = LatencyHistogram::with_bounds(vec![0.5, 1.0]);
        h.observe_secs(100.0);
        assert_eq!(h.quantile(0.99), 1.0, "saturate, don't invent");
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn bogus_bounds_and_values_are_sanitized() {
        let h = LatencyHistogram::with_bounds(vec![-1.0, 0.0, 1.0, 0.5, f64::NAN, 2.0]);
        assert_eq!(h.bounds, vec![1.0, 2.0]);
        h.observe_secs(f64::NAN);
        h.observe_secs(-3.0);
        let snap = h.snapshot();
        assert_eq!(snap.count, 2, "clamped to zero, still counted");
        assert_eq!(snap.sum, 0.0);
    }

    #[test]
    fn empty_histogram_quantiles_are_zero_across_the_whole_q_range() {
        let h = LatencyHistogram::with_bounds(vec![0.001, 0.01, 0.1]);
        for q in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(h.quantile(q), 0.0, "q={q} on an empty histogram");
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 0);
        assert_eq!(snap.sum, 0.0);
        assert_eq!(snap.buckets, vec![(0.001, 0), (0.01, 0), (0.1, 0)]);
    }

    #[test]
    fn single_sample_answers_every_quantile_with_its_bucket_bound() {
        let h = LatencyHistogram::with_bounds(vec![0.001, 0.01, 0.1]);
        h.observe_secs(0.004); // lands in the le=0.01 bucket
        for q in [0.0, 0.01, 0.5, 0.99, 1.0] {
            assert_eq!(h.quantile(q), 0.01, "q={q} with one sample");
        }
        assert_eq!(h.count(), 1);
        assert!((h.sum_secs() - 0.004).abs() < 1e-9);
    }

    #[test]
    fn out_of_range_q_is_clamped_not_extrapolated() {
        let h = LatencyHistogram::with_bounds(vec![1.0, 2.0]);
        h.observe_secs(0.5);
        h.observe_secs(1.5);
        assert_eq!(h.quantile(-3.0), h.quantile(0.0));
        assert_eq!(h.quantile(7.0), h.quantile(1.0));
        assert_eq!(h.quantile(7.0), 2.0);
    }

    #[test]
    fn saturating_top_bucket_keeps_count_and_sum_honest() {
        let h = LatencyHistogram::with_bounds(vec![0.001, 0.01]);
        h.observe_secs(0.0005); // le=0.001
        h.observe_secs(5.0); // +Inf: above every bound
        h.observe_secs(7.0); // +Inf
        let snap = h.snapshot();
        // Overflow shows up in the total count but never in a bucket.
        assert_eq!(snap.buckets, vec![(0.001, 1), (0.01, 1)]);
        assert_eq!(snap.count, 3);
        assert!((snap.sum - 12.0005).abs() < 1e-6, "{}", snap.sum);
        // A majority-overflow distribution still saturates at the last
        // bound instead of inventing a value for the +Inf bucket.
        assert_eq!(h.quantile(0.5), 0.01);
        assert_eq!(h.quantile(1.0), 0.01);
    }

    #[test]
    fn concurrent_observers_lose_nothing() {
        let h = LatencyHistogram::new();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for i in 0..1000 {
                        h.observe_secs(0.0001 * f64::from(i));
                    }
                });
            }
        });
        assert_eq!(h.count(), 4000);
    }
}
