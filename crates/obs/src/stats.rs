//! Per-operation I/O and traversal counters.

use crate::json::JsonValue;
use core::fmt;
use core::ops::{Add, AddAssign};

/// The I/O and traversal cost of one query (or any other bounded
/// operation), expressed as *deltas* over the backing store's global
/// counters plus traversal-side tallies the store cannot see.
///
/// Trees produce one of these per `query_*` call by snapshotting the
/// `PageStore` counters on entry and subtracting on exit, so the sum of
/// the `QueryStats` for a sequence of operations equals the global
/// counter delta over the same window exactly — no lost or
/// double-counted I/O (this conservation property is pinned by a
/// proptest in the workspace root).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct QueryStats {
    /// Pages read from "disk" (buffer misses). This is the paper's
    /// figure-of-merit for query cost.
    pub disk_reads: u64,
    /// Page reads absorbed by the LRU buffer.
    pub buffer_hits: u64,
    /// Pages written. Queries are read-only, so this is zero for them,
    /// but the same struct describes mixed operations.
    pub disk_writes: u64,
    /// Tree nodes whose entries were examined.
    pub nodes_visited: u64,
    /// Node entries tested against the query predicate.
    pub entries_scanned: u64,
    /// Distinct candidate object ids that entered the dedup set
    /// (interval queries can see one object in several leaves/roots).
    pub dedup_candidates: u64,
    /// Result ids appended to the caller's output vector.
    pub results: u64,
    /// Storage operations re-attempted after a transient fault (delta of
    /// the store's `FaultStats` over this operation).
    pub io_retries: u64,
    /// Faults the storage backend injected during this operation (zero
    /// outside fault-injection runs).
    pub io_faults_injected: u64,
    /// Page verifications that failed a checksum during this operation.
    pub checksum_failures: u64,
}

impl QueryStats {
    /// A zeroed stats block.
    pub const fn new() -> Self {
        QueryStats {
            disk_reads: 0,
            buffer_hits: 0,
            disk_writes: 0,
            nodes_visited: 0,
            entries_scanned: 0,
            dedup_candidates: 0,
            results: 0,
            io_retries: 0,
            io_faults_injected: 0,
            checksum_failures: 0,
        }
    }

    /// Physical page transfers: reads that missed the buffer plus all
    /// writes (writes always cost one transfer; see `PageStore::write`).
    pub fn io_total(&self) -> u64 {
        self.disk_reads + self.disk_writes
    }

    /// Logical page reads, whether or not the buffer absorbed them.
    pub fn logical_reads(&self) -> u64 {
        self.disk_reads + self.buffer_hits
    }

    /// Fold another operation's counters into this one.
    pub fn merge(&mut self, other: &QueryStats) {
        self.disk_reads += other.disk_reads;
        self.buffer_hits += other.buffer_hits;
        self.disk_writes += other.disk_writes;
        self.nodes_visited += other.nodes_visited;
        self.entries_scanned += other.entries_scanned;
        self.dedup_candidates += other.dedup_candidates;
        self.results += other.results;
        self.io_retries += other.io_retries;
        self.io_faults_injected += other.io_faults_injected;
        self.checksum_failures += other.checksum_failures;
    }

    /// Structured form, field order fixed for stable serialized output.
    pub fn to_json(&self) -> JsonValue {
        JsonValue::object([
            ("disk_reads", JsonValue::UInt(self.disk_reads)),
            ("buffer_hits", JsonValue::UInt(self.buffer_hits)),
            ("disk_writes", JsonValue::UInt(self.disk_writes)),
            ("nodes_visited", JsonValue::UInt(self.nodes_visited)),
            ("entries_scanned", JsonValue::UInt(self.entries_scanned)),
            ("dedup_candidates", JsonValue::UInt(self.dedup_candidates)),
            ("results", JsonValue::UInt(self.results)),
            ("io_retries", JsonValue::UInt(self.io_retries)),
            (
                "io_faults_injected",
                JsonValue::UInt(self.io_faults_injected),
            ),
            ("checksum_failures", JsonValue::UInt(self.checksum_failures)),
        ])
    }

    /// Contribute these counters to a metric set under `prefix`, e.g.
    /// `prefix = "stidx_query"` yields `stidx_query_disk_reads` etc.
    pub fn record_metrics(&self, set: &mut crate::MetricSet, prefix: &str) {
        let pairs: [(&str, u64); 10] = [
            ("disk_reads", self.disk_reads),
            ("buffer_hits", self.buffer_hits),
            ("disk_writes", self.disk_writes),
            ("nodes_visited", self.nodes_visited),
            ("entries_scanned", self.entries_scanned),
            ("dedup_candidates", self.dedup_candidates),
            ("results", self.results),
            ("io_retries", self.io_retries),
            ("io_faults_injected", self.io_faults_injected),
            ("checksum_failures", self.checksum_failures),
        ];
        for (field, value) in pairs {
            set.counter(
                &format!("{prefix}_{field}"),
                "per-operation delta reported by sti-obs",
                value as f64,
            );
        }
    }
}

impl AddAssign for QueryStats {
    fn add_assign(&mut self, rhs: QueryStats) {
        self.merge(&rhs);
    }
}

impl Add for QueryStats {
    type Output = QueryStats;
    fn add(mut self, rhs: QueryStats) -> QueryStats {
        self.merge(&rhs);
        self
    }
}

impl core::iter::Sum for QueryStats {
    fn sum<I: Iterator<Item = QueryStats>>(iter: I) -> QueryStats {
        let mut acc = QueryStats::new();
        for s in iter {
            acc.merge(&s);
        }
        acc
    }
}

impl fmt::Display for QueryStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "reads {} (hits {}), writes {}, nodes {}, entries {}, \
             candidates {}, results {}, retries {}, faults {}, \
             checksum failures {}",
            self.disk_reads,
            self.buffer_hits,
            self.disk_writes,
            self.nodes_visited,
            self.entries_scanned,
            self.dedup_candidates,
            self.results,
            self.io_retries,
            self.io_faults_injected,
            self.checksum_failures
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_and_sum_agree() {
        let a = QueryStats {
            disk_reads: 3,
            buffer_hits: 2,
            disk_writes: 1,
            nodes_visited: 5,
            entries_scanned: 40,
            dedup_candidates: 7,
            results: 6,
            io_retries: 1,
            io_faults_injected: 2,
            checksum_failures: 1,
        };
        let b = QueryStats {
            disk_reads: 10,
            ..QueryStats::new()
        };
        let summed: QueryStats = [a, b].into_iter().sum();
        assert_eq!(summed, a + b);
        assert_eq!(summed.disk_reads, 13);
        assert_eq!(summed.io_total(), 14);
        assert_eq!(summed.logical_reads(), 15);
    }

    #[test]
    fn json_field_order_is_stable() {
        let s = QueryStats::new().to_json().render();
        let reads = s.find("disk_reads").unwrap();
        let hits = s.find("buffer_hits").unwrap();
        let results = s.find("results").unwrap();
        let retries = s.find("io_retries").unwrap();
        let failures = s.find("checksum_failures").unwrap();
        assert!(reads < hits && hits < results, "{s}");
        assert!(results < retries && retries < failures, "{s}");
    }

    #[test]
    fn fault_counters_merge_and_serialize() {
        let mut a = QueryStats::new();
        a.io_retries = 2;
        a.io_faults_injected = 3;
        a.checksum_failures = 1;
        let mut b = QueryStats::new();
        b.io_retries = 1;
        b.merge(&a);
        assert_eq!(b.io_retries, 3);
        assert_eq!(b.io_faults_injected, 3);
        assert_eq!(b.checksum_failures, 1);
        let rendered = a.to_json().render();
        assert!(rendered.contains("\"io_retries\":2"), "{rendered}");
        assert!(rendered.contains("\"io_faults_injected\":3"), "{rendered}");
        assert!(rendered.contains("\"checksum_failures\":1"), "{rendered}");
    }
}
