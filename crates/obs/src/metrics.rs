//! Named metrics and the Prometheus / JSON serializers.
//!
//! [`MetricSet`] is an append-only list of samples. Rendering returns
//! `String`s — writing them anywhere is the binary's job (see the
//! workspace lint rule `no_process_io`).

use crate::hist::HistogramSnapshot;
use crate::json::JsonValue;
use core::fmt::Write as _;

/// Prometheus metric type, as emitted in `# TYPE` comments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonic count (page reads, objects generated).
    Counter,
    /// Point-in-time value (pages allocated, phase seconds).
    Gauge,
    /// Bucketed distribution (request latency); the sample carries a
    /// [`HistogramSnapshot`] and renders as `_bucket`/`_sum`/`_count`
    /// series.
    Histogram,
}

impl MetricKind {
    fn as_str(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

/// One metric sample: name, optional labels, value.
#[derive(Debug, Clone, PartialEq)]
pub struct Metric {
    /// Metric name; sanitized to Prometheus' `[a-zA-Z_:][a-zA-Z0-9_:]*`
    /// at render time.
    pub name: String,
    /// One-line description for the `# HELP` comment.
    pub help: String,
    /// Counter or gauge.
    pub kind: MetricKind,
    /// Label pairs, rendered in insertion order.
    pub labels: Vec<(String, String)>,
    /// The sample value. Ignored for histograms, which carry their data
    /// in `histogram`.
    pub value: f64,
    /// Bucketed data for [`MetricKind::Histogram`] samples; `None` for
    /// counters and gauges.
    pub histogram: Option<HistogramSnapshot>,
}

/// An ordered collection of metric samples.
#[derive(Debug, Default, Clone)]
pub struct MetricSet {
    metrics: Vec<Metric>,
}

impl MetricSet {
    /// An empty set.
    pub fn new() -> MetricSet {
        MetricSet::default()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.metrics.is_empty()
    }

    /// Number of samples recorded.
    pub fn len(&self) -> usize {
        self.metrics.len()
    }

    /// Record an arbitrary sample.
    pub fn push(&mut self, metric: Metric) {
        self.metrics.push(metric);
    }

    /// Record an unlabelled counter sample.
    pub fn counter(&mut self, name: &str, help: &str, value: f64) {
        self.push(Metric {
            name: name.to_string(),
            help: help.to_string(),
            kind: MetricKind::Counter,
            labels: Vec::new(),
            value,
            histogram: None,
        });
    }

    /// Record an unlabelled gauge sample.
    pub fn gauge(&mut self, name: &str, help: &str, value: f64) {
        self.push(Metric {
            name: name.to_string(),
            help: help.to_string(),
            kind: MetricKind::Gauge,
            labels: Vec::new(),
            value,
            histogram: None,
        });
    }

    /// Record a labelled gauge sample.
    pub fn gauge_with(&mut self, name: &str, help: &str, labels: &[(&str, &str)], value: f64) {
        self.push(Metric {
            name: name.to_string(),
            help: help.to_string(),
            kind: MetricKind::Gauge,
            labels: labels
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
            value,
            histogram: None,
        });
    }

    /// Record a histogram sample from a bucket snapshot (see
    /// [`crate::LatencyHistogram::snapshot`]). Renders as the standard
    /// Prometheus `_bucket{le="..."}` / `_sum` / `_count` triple.
    pub fn histogram(&mut self, name: &str, help: &str, snapshot: HistogramSnapshot) {
        self.push(Metric {
            name: name.to_string(),
            help: help.to_string(),
            kind: MetricKind::Histogram,
            labels: Vec::new(),
            value: 0.0,
            histogram: Some(snapshot),
        });
    }

    /// Record each span in `sink` as a `<prefix>_seconds` gauge labelled
    /// by phase name.
    pub fn record_spans(&mut self, prefix: &str, spans: &[crate::Span]) {
        for span in spans {
            self.gauge_with(
                &format!("{prefix}_seconds"),
                "phase wall-clock time in seconds",
                &[("phase", span.name.as_str())],
                span.seconds(),
            );
        }
    }

    /// Render in the Prometheus text exposition format. `# HELP` and
    /// `# TYPE` comments are emitted once per metric name, at its first
    /// occurrence; samples keep insertion order.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        let mut announced: Vec<&str> = Vec::new();
        for m in &self.metrics {
            let name = sanitize_name(&m.name);
            if !announced.contains(&m.name.as_str()) {
                announced.push(m.name.as_str());
                if !m.help.is_empty() {
                    let _ = writeln!(out, "# HELP {name} {}", sanitize_help(&m.help));
                }
                let _ = writeln!(out, "# TYPE {name} {}", m.kind.as_str());
            }
            if let Some(snap) = &m.histogram {
                for &(bound, cumulative) in &snap.buckets {
                    let _ = writeln!(
                        out,
                        "{name}_bucket{{le=\"{}\"}} {cumulative}",
                        fmt_value(bound)
                    );
                }
                let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", snap.count);
                let _ = writeln!(out, "{name}_sum {}", fmt_value(snap.sum));
                let _ = writeln!(out, "{name}_count {}", snap.count);
                continue;
            }
            out.push_str(&name);
            if !m.labels.is_empty() {
                out.push('{');
                for (i, (k, v)) in m.labels.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    let _ = write!(out, "{}=\"{}\"", sanitize_name(k), escape_label(v));
                }
                out.push('}');
            }
            let _ = writeln!(out, " {}", fmt_value(m.value));
        }
        out
    }

    /// Render as a JSON array of `{name, kind, labels, value}` records.
    pub fn to_json(&self) -> String {
        let items = self.metrics.iter().map(|m| {
            let mut obj = JsonValue::object([
                ("name", JsonValue::str(sanitize_name(&m.name))),
                ("kind", JsonValue::str(m.kind.as_str())),
            ]);
            if !m.labels.is_empty() {
                obj.push_field(
                    "labels",
                    JsonValue::Obj(
                        m.labels
                            .iter()
                            .map(|(k, v)| (k.clone(), JsonValue::str(v.clone())))
                            .collect(),
                    ),
                );
            }
            match &m.histogram {
                Some(snap) => {
                    let buckets = snap.buckets.iter().map(|&(bound, cumulative)| {
                        JsonValue::array([JsonValue::Num(bound), JsonValue::UInt(cumulative)])
                    });
                    obj.push_field(
                        "histogram",
                        JsonValue::object([
                            ("buckets", JsonValue::array(buckets)),
                            ("sum", JsonValue::Num(snap.sum)),
                            ("count", JsonValue::UInt(snap.count)),
                        ]),
                    );
                }
                None => obj.push_field("value", JsonValue::Num(m.value)),
            }
            obj
        });
        JsonValue::array(items).render_pretty()
    }
}

/// Map arbitrary names onto Prometheus' allowed alphabet.
fn sanitize_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for (i, c) in name.chars().enumerate() {
        let ok = c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit());
        out.push(if ok { c } else { '_' });
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

/// HELP text escapes backslash and newline per the exposition format, so
/// multi-line help round-trips through a real scraper instead of being
/// lossily folded. Bare `\r` has no spelling in the format; it is folded
/// into the escaped newline.
fn sanitize_help(help: &str) -> String {
    let mut out = String::with_capacity(help.len());
    let mut chars = help.chars().peekable();
    while let Some(c) = chars.next() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => {
                if chars.peek() != Some(&'\n') {
                    out.push_str("\\n");
                }
            }
            c => out.push(c),
        }
    }
    out
}

/// Label values escape backslash, quote, and newline per the exposition
/// format.
fn escape_label(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Prometheus values are floats; print integral values without the
/// trailing `.0` noise and non-finite values in its spelling.
fn fmt_value(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v.is_infinite() {
        if v.is_sign_positive() {
            "+Inf".to_string()
        } else {
            "-Inf".to_string()
        }
    } else {
        format!("{v}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Span;
    use std::time::Duration;

    #[test]
    fn prometheus_format_shape() {
        let mut set = MetricSet::new();
        set.counter("sti_reads_total", "pages read", 42.0);
        set.gauge_with("sti_phase_seconds", "phase time", &[("phase", "pack")], 0.5);
        let text = set.to_prometheus();
        assert!(text.contains("# HELP sti_reads_total pages read"), "{text}");
        assert!(text.contains("# TYPE sti_reads_total counter"), "{text}");
        assert!(text.contains("sti_reads_total 42"), "{text}");
        assert!(
            text.contains("sti_phase_seconds{phase=\"pack\"} 0.5"),
            "{text}"
        );
    }

    #[test]
    fn help_and_type_emitted_once_per_name() {
        let mut set = MetricSet::new();
        set.gauge_with("m", "help", &[("i", "1")], 1.0);
        set.gauge_with("m", "help", &[("i", "2")], 2.0);
        let text = set.to_prometheus();
        assert_eq!(text.matches("# HELP m ").count(), 1, "{text}");
        assert_eq!(text.matches("# TYPE m ").count(), 1, "{text}");
        assert_eq!(text.matches("m{i=").count(), 2, "{text}");
    }

    #[test]
    fn names_and_labels_are_sanitized() {
        let mut set = MetricSet::new();
        set.gauge_with("bad-name.1", "h", &[("k", "va\"l\nue")], 1.0);
        let text = set.to_prometheus();
        assert!(text.contains("bad_name_1{k=\"va\\\"l\\nue\"} 1"), "{text}");
        assert_eq!(sanitize_name("0abc"), "_abc");
    }

    #[test]
    fn durability_counters_and_gauges_render_with_their_types() {
        // The names the ingest pipeline and recovery report export
        // (`record_metrics` in sti-core); pin that the renderer gives
        // each one a HELP/TYPE pair with the right kind and an exact
        // integer value line.
        let mut set = MetricSet::new();
        set.counter("wal_appends_total", "records appended to the WAL", 128.0);
        set.counter("wal_fsyncs_total", "fsync calls issued by the WAL", 128.0);
        set.gauge("wal_segments", "live WAL segment files", 3.0);
        set.counter(
            "recovery_wal_records_replayed",
            "WAL records replayed at recovery",
            17.0,
        );
        set.gauge(
            "recovery_checkpoint_generation",
            "checkpoint generation recovery loaded",
            5.0,
        );
        let text = set.to_prometheus();
        assert!(text.contains("# TYPE wal_appends_total counter"), "{text}");
        assert!(text.contains("wal_appends_total 128"), "{text}");
        assert!(text.contains("# TYPE wal_segments gauge"), "{text}");
        assert!(text.contains("wal_segments 3"), "{text}");
        assert!(
            text.contains("# TYPE recovery_wal_records_replayed counter"),
            "{text}"
        );
        assert!(text.contains("recovery_wal_records_replayed 17"), "{text}");
        assert!(
            text.contains("# TYPE recovery_checkpoint_generation gauge"),
            "{text}"
        );
        assert!(text.contains("recovery_checkpoint_generation 5"), "{text}");
        assert!(
            text.contains(
                "# HELP recovery_checkpoint_generation checkpoint generation recovery loaded"
            ),
            "{text}"
        );
        let json = set.to_json();
        assert!(json.contains("\"name\": \"wal_fsyncs_total\""), "{json}");
        assert!(json.contains("\"kind\": \"counter\""), "{json}");
    }

    #[test]
    fn json_rendering_includes_labels() {
        let mut set = MetricSet::new();
        set.counter("a_total", "", 3.0);
        set.gauge_with("b", "", &[("x", "y")], 0.25);
        let text = set.to_json();
        assert!(text.contains("\"name\": \"a_total\""), "{text}");
        assert!(text.contains("\"x\": \"y\""), "{text}");
        assert!(text.contains("\"value\": 0.25"), "{text}");
    }

    #[test]
    fn spans_record_as_labelled_gauges() {
        let mut set = MetricSet::new();
        let spans = [Span::from_duration(
            "split_planning",
            Duration::from_millis(10),
        )];
        set.record_spans("sti_build", &spans);
        let text = set.to_prometheus();
        assert!(
            text.contains("sti_build_seconds{phase=\"split_planning\"} 0.01"),
            "{text}"
        );
    }

    #[test]
    fn non_finite_values_render_in_prometheus_spelling() {
        assert_eq!(fmt_value(f64::NAN), "NaN");
        assert_eq!(fmt_value(f64::INFINITY), "+Inf");
        assert_eq!(fmt_value(f64::NEG_INFINITY), "-Inf");
    }

    /// Inverse of the exposition-format escaping, as a real scraper
    /// would apply it when parsing a `# HELP` line or a label value.
    fn unescape(escaped: &str) -> String {
        let mut out = String::with_capacity(escaped.len());
        let mut chars = escaped.chars();
        while let Some(c) = chars.next() {
            if c != '\\' {
                out.push(c);
                continue;
            }
            match chars.next() {
                Some('\\') => out.push('\\'),
                Some('n') => out.push('\n'),
                Some('"') => out.push('"'),
                Some(other) => {
                    out.push('\\');
                    out.push(other);
                }
                None => out.push('\\'),
            }
        }
        out
    }

    #[test]
    fn help_escapes_newline() {
        assert_eq!(sanitize_help("line one\nline two"), "line one\\nline two");
        assert_eq!(
            unescape(&sanitize_help("line one\nline two")),
            "line one\nline two"
        );
    }

    #[test]
    fn help_escapes_backslash() {
        assert_eq!(sanitize_help(r"path\to\thing"), r"path\\to\\thing");
        assert_eq!(unescape(&sanitize_help(r"path\to\thing")), r"path\to\thing");
    }

    #[test]
    fn help_folds_carriage_returns_into_newlines() {
        assert_eq!(sanitize_help("a\r\nb"), "a\\nb");
        assert_eq!(sanitize_help("a\rb"), "a\\nb");
    }

    #[test]
    fn help_leaves_quotes_alone() {
        // Per the exposition format, HELP text escapes only `\` and
        // newline — quotes pass through verbatim.
        assert_eq!(sanitize_help("say \"hi\""), "say \"hi\"");
    }

    #[test]
    fn label_escapes_round_trip() {
        for raw in ["a\nb", "a\\b", "a\"b", "mix\\\"\nall"] {
            assert_eq!(unescape(&escape_label(raw)), raw, "{raw:?}");
        }
    }

    #[test]
    fn tricky_help_survives_a_full_render() {
        let mut set = MetricSet::new();
        set.counter("m_total", "uses \\n literally\nand a real break", 1.0);
        let text = set.to_prometheus();
        let help_line = text
            .lines()
            .find(|l| l.starts_with("# HELP"))
            .expect("help line");
        assert_eq!(
            help_line,
            "# HELP m_total uses \\\\n literally\\nand a real break"
        );
        assert_eq!(
            unescape(help_line.trim_start_matches("# HELP m_total ")),
            "uses \\n literally\nand a real break"
        );
    }

    #[test]
    fn histogram_renders_cumulative_buckets() {
        let h = crate::LatencyHistogram::with_bounds(vec![0.01, 0.1]);
        h.observe_secs(0.005);
        h.observe_secs(0.05);
        h.observe_secs(7.0);
        let mut set = MetricSet::new();
        set.histogram("req_seconds", "request latency", h.snapshot());
        let text = set.to_prometheus();
        assert!(text.contains("# TYPE req_seconds histogram"), "{text}");
        assert!(text.contains("req_seconds_bucket{le=\"0.01\"} 1"), "{text}");
        assert!(text.contains("req_seconds_bucket{le=\"0.1\"} 2"), "{text}");
        assert!(text.contains("req_seconds_bucket{le=\"+Inf\"} 3"), "{text}");
        assert!(text.contains("req_seconds_count 3"), "{text}");
        assert!(text.contains("req_seconds_sum 7.055"), "{text}");
    }

    #[test]
    fn histogram_renders_in_json() {
        let h = crate::LatencyHistogram::with_bounds(vec![1.0]);
        h.observe_secs(0.5);
        let mut set = MetricSet::new();
        set.histogram("lat", "l", h.snapshot());
        let text = set.to_json();
        assert!(text.contains("\"kind\": \"histogram\""), "{text}");
        assert!(text.contains("\"count\": 1"), "{text}");
        assert!(text.contains("\"buckets\""), "{text}");
    }
}
