//! Fuzzing the node decoder: arbitrary page bytes must never panic —
//! a corrupted page yields a decode error, not UB or an abort.

use proptest::prelude::*;
use sti_rstar::Node;
use sti_storage::{Page, PAGE_SIZE};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn random_bytes_never_panic(bytes in prop::collection::vec(any::<u8>(), 0..PAGE_SIZE)) {
        let mut page = Page::zeroed();
        page.fill_from(&bytes);
        // Either outcome is fine; panicking is not.
        let _ = Node::decode(&page);
    }

    #[test]
    fn bitflip_on_valid_page_never_panics(
        seed_entries in 1usize..40,
        flip_byte in 0usize..PAGE_SIZE,
        flip_bit in 0u8..8,
    ) {
        use sti_geom::Rect3;
        use sti_rstar::Entry;
        let node = Node {
            level: 1,
            entries: (0..seed_entries)
                .map(|i| {
                    let v = i as f64 * 0.01;
                    Entry { rect: Rect3::new([v; 3], [v + 0.1; 3]), ptr: i as u64 }
                })
                .collect(),
        };
        let mut page = Page::zeroed();
        node.encode(&mut page);
        page.bytes_mut()[flip_byte] ^= 1 << flip_bit;
        if let Ok(decoded) = Node::decode(&page) {
            // A surviving decode must still be structurally sane; a
            // decode error means the corruption was detected — also fine.
            prop_assert!(decoded.entries.len() <= 73);
            for e in &decoded.entries {
                prop_assert!(e.rect.lo[0] <= e.rect.hi[0]);
                prop_assert!(e.rect.lo[1] <= e.rect.hi[1]);
                prop_assert!(e.rect.lo[2] <= e.rect.hi[2]);
            }
        }
    }
}
