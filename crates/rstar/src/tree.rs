//! The R\*-Tree proper: insertion with forced reinsertion, and box
//! queries with I/O accounting.

use crate::node::SplitStrategy;
use crate::node::{Entry, Node, RStarParams};
use crate::split::{quadratic_split, rstar_split};
use sti_geom::Rect3;
use sti_obs::QueryStats;
use sti_storage::{
    CorruptReason, FaultStats, IoStats, MemBackend, Page, PageBackend, PageId, PageStore,
    ReadProbe, RetryPolicy, ScratchPool, StorageError,
};

/// A disk-based 3D R\*-Tree.
///
/// All node traffic goes through an internal [`PageStore`], so
/// [`RStarTree::io_stats`] reports faithful page-access counts. Queries
/// read through the store's LRU buffer; call
/// [`RStarTree::reset_for_query`] before each measured query to reproduce
/// the paper's buffer-reset methodology.
///
/// Supports dynamic insertion (R\* forced reinsertion + topological
/// split), Guttman-style deletion with CondenseTree, bulk loading (see
/// [`crate::bulk`]), and window queries. The paper's experiments only
/// build offline and query, but a production index needs the full set.
///
/// Every operation that touches the page store is fallible: updates run
/// inside a page-level undo transaction and roll back completely on
/// error (see DESIGN.md §6), so a failed `insert`/`delete` leaves the
/// tree exactly as it was.
pub struct RStarTree {
    pub(crate) store: PageStore,
    pub(crate) params: RStarParams,
    pub(crate) root: PageId,
    pub(crate) root_level: u32,
    pub(crate) len: u64,
    /// Pool of reusable descent stacks; cleared at every query entry,
    /// they carry capacity (never data) between calls so steady-state
    /// sequential queries do not allocate, while concurrent `&self`
    /// queries each take their own stack.
    pub(crate) scratch: ScratchPool<Vec<PageId>>,
}

/// Copy a [`ReadProbe`]'s per-call I/O attribution into the I/O fields
/// of a [`QueryStats`] (queries are read-only, so `disk_writes` stays 0).
pub(crate) fn apply_probe(stats: &mut QueryStats, probe: &ReadProbe) {
    stats.disk_reads = probe.disk_reads;
    stats.buffer_hits = probe.buffer_hits;
    stats.io_retries = probe.io_retries;
    stats.io_faults_injected = probe.io_faults_injected;
    stats.checksum_failures = probe.checksum_failures;
}

impl RStarTree {
    /// Create an empty tree.
    pub fn new(params: RStarParams) -> Self {
        match Self::with_backend(params, Box::new(MemBackend::new())) {
            Ok(t) => t,
            // stilint::allow(no_panic, "a fresh MemBackend cannot fail the two bootstrap page operations")
            Err(e) => unreachable!("in-memory bootstrap failed: {e}"),
        }
    }

    /// Create an empty tree over a caller-supplied page backend (e.g. a
    /// [`sti_storage::FaultyBackend`] for fault-injection suites).
    ///
    /// # Errors
    /// A [`StorageError`] if allocating or writing the initial root page
    /// fails.
    pub fn with_backend(
        params: RStarParams,
        backend: Box<dyn PageBackend>,
    ) -> Result<Self, StorageError> {
        params.validate();
        let mut store = PageStore::with_backend(backend, params.buffer_pages);
        let root = store.allocate()?;
        let mut page = Page::zeroed();
        Node::new(0).encode(&mut page);
        store.write(root, &page.bytes()[..])?;
        Ok(Self {
            store,
            params,
            root,
            root_level: 0,
            len: 0,
            scratch: ScratchPool::new(),
        })
    }

    /// Number of data records.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// True when no records have been inserted.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Height of the tree (level of the root node).
    pub fn height(&self) -> u32 {
        self.root_level
    }

    /// Page id of the root node (for traversals built on top of the
    /// tree, e.g. the kNN search in [`crate::knn`]).
    pub(crate) fn root_page(&self) -> PageId {
        self.root
    }

    /// Number of allocated pages (disk footprint).
    pub fn num_pages(&self) -> usize {
        self.store.num_pages()
    }

    /// Accumulated I/O counters of the underlying store.
    pub fn io_stats(&self) -> IoStats {
        self.store.stats()
    }

    /// Accumulated fault/retry counters from the backing store.
    pub fn fault_stats(&self) -> FaultStats {
        self.store.fault_stats()
    }

    /// Replace the retry budget for transient storage faults.
    pub fn set_retry_policy(&mut self, policy: RetryPolicy) {
        self.store.set_retry_policy(policy);
    }

    /// Replace the buffer pool capacity (clears residency). The paper
    /// fixes this at 10 pages; the `ablation_buffer` bench sweeps it.
    pub fn set_buffer_capacity(&mut self, pages: usize) {
        self.store.set_buffer_capacity(pages);
    }

    /// Re-stripe the buffer pool across `shards` lock shards (clears
    /// residency, preserves counters). More shards reduce lock contention
    /// between concurrent `&self` queries.
    pub fn set_buffer_shards(&mut self, shards: usize) {
        self.store.set_buffer_shards(shards);
    }

    /// Zero the I/O counters without touching residency; shared so a
    /// fresh accounting window can start while readers hold `&self`.
    pub fn reset_counters(&self) {
        self.store.reset_stats();
    }

    /// Empty the buffer pool (cold-buffer methodology). Exclusive so
    /// residency cannot be yanked out from under concurrent readers.
    pub fn clear_buffer(&mut self) {
        self.store.reset_buffer();
    }

    /// Reset I/O counters and empty the buffer pool — call before each
    /// measured query, as the paper does.
    pub fn reset_for_query(&mut self) {
        self.reset_counters();
        self.clear_buffer();
    }

    /// Insert a data record.
    ///
    /// # Errors
    /// A [`StorageError`] if the page store fails; the update is rolled
    /// back and the tree (pages, root pointer, count) is unchanged.
    ///
    /// # Panics
    /// If the rectangle is the empty sentinel (a caller bug, rejected
    /// before any page is touched).
    pub fn insert(&mut self, id: u64, rect: Rect3) -> Result<(), StorageError> {
        assert!(!rect.is_empty(), "cannot index an empty rectangle");
        let state_before = (self.root, self.root_level, self.len);
        self.store.begin_txn();
        match self.insert_entry(Entry { rect, ptr: id }, 0) {
            Ok(()) => {
                self.len += 1;
                self.store.commit_txn();
                Ok(())
            }
            Err(e) => {
                self.store.rollback_txn();
                (self.root, self.root_level, self.len) = state_before;
                Err(e)
            }
        }
    }

    /// Collect the ids of all records whose box intersects `query`.
    ///
    /// Append contract: matches are *appended* to `out`; the vector is
    /// never cleared here, so a caller can accumulate several queries
    /// into one buffer (all three tree backends share this contract).
    ///
    /// Returns the [`QueryStats`] delta for this call: I/O and fault
    /// counters are attributed per read via a [`ReadProbe`], so summing
    /// the returned deltas over a batch reproduces the global
    /// [`IoStats`] delta exactly — even when queries run concurrently.
    ///
    /// # Errors
    /// A [`StorageError`] if a page read fails after retries. The tree is
    /// unchanged (queries are read-only), but `out` may already hold the
    /// matches found before the failing read.
    pub fn query(&self, query: &Rect3, out: &mut Vec<u64>) -> Result<QueryStats, StorageError> {
        let mut stats = QueryStats::new();
        let mut probe = ReadProbe::new();
        let mut stack = self.scratch.take();
        stack.clear();
        stack.push(self.root);
        let mut failed = None;
        while let Some(page) = stack.pop() {
            let node = match self.read_node_probed(page, &mut probe) {
                Ok(n) => n,
                Err(e) => {
                    failed = Some(e);
                    break;
                }
            };
            stats.nodes_visited += 1;
            if node.is_leaf() {
                for e in &node.entries {
                    stats.entries_scanned += 1;
                    if e.rect.intersects(query) {
                        out.push(e.ptr);
                        stats.results += 1;
                    }
                }
            } else {
                for e in &node.entries {
                    stats.entries_scanned += 1;
                    if e.rect.intersects(query) {
                        stack.push(e.child_page());
                    }
                }
            }
        }
        self.scratch.put(stack);
        if let Some(e) = failed {
            return Err(e);
        }
        apply_probe(&mut stats, &probe);
        Ok(stats)
    }

    pub(crate) fn read_node(&self, page: PageId) -> Result<Node, StorageError> {
        self.read_node_probed(page, &mut ReadProbe::new())
    }

    pub(crate) fn read_node_probed(
        &self,
        page: PageId,
        probe: &mut ReadProbe,
    ) -> Result<Node, StorageError> {
        let raw = self.store.read(page, probe)?;
        Node::decode(&raw).map_err(|_| StorageError::Corrupt {
            page,
            reason: CorruptReason::Decode,
        })
    }

    pub(crate) fn write_node(&mut self, page: PageId, node: &Node) -> Result<(), StorageError> {
        let mut buf = Page::zeroed();
        node.encode(&mut buf);
        self.store.write(page, &buf.bytes()[..])
    }

    /// Insert `entry` into a node of `target_level`, processing any forced
    /// reinsertions the insertion triggers.
    fn insert_entry(&mut self, entry: Entry, target_level: u32) -> Result<(), StorageError> {
        // One flag per level: forced reinsertion fires at most once per
        // level per data insertion (R* OverflowTreatment).
        let mut reinsert_done = vec![false; self.root_level as usize + 2];
        let mut pending: Vec<(Entry, u32)> = vec![(entry, target_level)];
        while let Some((e, lvl)) = pending.pop() {
            let root = self.root;
            let (mbr, split) = self.insert_rec(root, e, lvl, &mut reinsert_done, &mut pending)?;
            if let Some(sibling) = split {
                // Root split: grow the tree by one level.
                let new_root_level = self.root_level + 1;
                let mut new_root = Node::new(new_root_level);
                new_root.entries.push(Entry::child(mbr, self.root));
                new_root.entries.push(sibling);
                let pid = self.store.allocate()?;
                self.write_node(pid, &new_root)?;
                self.root = pid;
                self.root_level = new_root_level;
                reinsert_done.resize(new_root_level as usize + 2, false);
            }
        }
        Ok(())
    }

    /// Recursive insertion. Returns the node's MBR after the insertion
    /// and, when the node split, the entry for the new sibling.
    fn insert_rec(
        &mut self,
        page: PageId,
        entry: Entry,
        target_level: u32,
        reinsert_done: &mut Vec<bool>,
        pending: &mut Vec<(Entry, u32)>,
    ) -> Result<(Rect3, Option<Entry>), StorageError> {
        let mut node = self.read_node(page)?;
        debug_assert!(node.level >= target_level, "descended past target level");

        if node.level == target_level {
            node.entries.push(entry);
        } else {
            let idx = choose_subtree(&node, &entry.rect);
            let child = node.entries[idx].child_page();
            let (child_mbr, split) =
                self.insert_rec(child, entry, target_level, reinsert_done, pending)?;
            node.entries[idx].rect = child_mbr;
            if let Some(sibling) = split {
                node.entries.push(sibling);
            }
        }

        if node.entries.len() > self.params.max_entries {
            let lvl = node.level as usize;
            if page != self.root && !reinsert_done[lvl] {
                // Forced reinsertion: remove the entries farthest from the
                // node center and re-insert them from the top ("close
                // reinsert": nearest first).
                reinsert_done[lvl] = true;
                let removed = select_reinsert_victims(&mut node, self.params.reinsert_count());
                // `removed` is farthest-first; pushing in that order makes
                // the nearest pop first from the stack.
                for e in removed {
                    pending.push((e, node.level));
                }
                self.write_node(page, &node)?;
                return Ok((node.mbr(), None));
            }
            // Split.
            let level = node.level;
            let entries = std::mem::take(&mut node.entries);
            let (g1, g2) = match self.params.split_strategy {
                SplitStrategy::RStar => rstar_split(entries, self.params.min_entries()),
                SplitStrategy::QuadraticGuttman => {
                    quadratic_split(entries, self.params.min_entries())
                }
            };
            let node1 = Node { level, entries: g1 };
            let node2 = Node { level, entries: g2 };
            let new_page = self.store.allocate()?;
            self.write_node(page, &node1)?;
            self.write_node(new_page, &node2)?;
            return Ok((node1.mbr(), Some(Entry::child(node2.mbr(), new_page))));
        }

        self.write_node(page, &node)?;
        Ok((node.mbr(), None))
    }

    /// Delete the record previously inserted as `(id, rect)`. Returns
    /// `Ok(true)` when found and removed, `Ok(false)` when absent.
    ///
    /// Follows Guttman's CondenseTree: underfull nodes along the deletion
    /// path are dissolved, their surviving entries re-inserted at their
    /// original level, and the root is collapsed while it holds a single
    /// child. Freed node pages return to the store's free list.
    ///
    /// (The paper's experiments never delete from the R\*-Tree — records
    /// are historical — but a production index supports it.)
    ///
    /// # Errors
    /// A [`StorageError`] if the page store fails; the update is rolled
    /// back and the tree (pages, free list, root pointer, count) is
    /// unchanged.
    pub fn delete(&mut self, id: u64, rect: &Rect3) -> Result<bool, StorageError> {
        let state_before = (self.root, self.root_level, self.len);
        self.store.begin_txn();
        match self.delete_inner(id, rect) {
            Ok(found) => {
                self.store.commit_txn();
                Ok(found)
            }
            Err(e) => {
                self.store.rollback_txn();
                (self.root, self.root_level, self.len) = state_before;
                Err(e)
            }
        }
    }

    fn delete_inner(&mut self, id: u64, rect: &Rect3) -> Result<bool, StorageError> {
        let root = self.root;
        let mut orphans: Vec<(Entry, u32)> = Vec::new();
        let outcome = self.delete_rec(root, id, rect, &mut orphans)?;
        if matches!(outcome, DelOutcome::NotHere) {
            debug_assert!(orphans.is_empty());
            return Ok(false);
        }
        self.len -= 1;
        // Re-insert orphans *before* shrinking the root: a level-L orphan
        // needs the tree to still be at least L+1 tall.
        orphans.sort_by_key(|&(_, lvl)| std::cmp::Reverse(lvl));
        for (e, lvl) in orphans {
            self.insert_entry(e, lvl)?;
        }
        // Collapse trivial roots.
        loop {
            let node = self.read_node(self.root)?;
            if !node.is_leaf() && node.entries.len() == 1 {
                let child = node.entries[0].child_page();
                self.store.free(self.root)?;
                self.root = child;
                self.root_level -= 1;
            } else {
                break;
            }
        }
        Ok(true)
    }

    fn delete_rec(
        &mut self,
        page: PageId,
        id: u64,
        rect: &Rect3,
        orphans: &mut Vec<(Entry, u32)>,
    ) -> Result<DelOutcome, StorageError> {
        let mut node = self.read_node(page)?;
        if node.is_leaf() {
            let Some(pos) = node
                .entries
                .iter()
                .position(|e| e.ptr == id && e.rect == *rect)
            else {
                return Ok(DelOutcome::NotHere);
            };
            node.entries.remove(pos);
            if page != self.root && node.entries.len() < self.params.min_entries() {
                for e in node.entries {
                    orphans.push((e, 0));
                }
                self.store.free(page)?;
                return Ok(DelOutcome::Underflow);
            }
            self.write_node(page, &node)?;
            return Ok(DelOutcome::Removed(node.mbr()));
        }
        for i in 0..node.entries.len() {
            if !node.entries[i].rect.contains(rect) {
                continue;
            }
            match self.delete_rec(node.entries[i].child_page(), id, rect, orphans)? {
                DelOutcome::NotHere => continue,
                DelOutcome::Removed(child_mbr) => {
                    node.entries[i].rect = child_mbr;
                    self.write_node(page, &node)?;
                    return Ok(DelOutcome::Removed(node.mbr()));
                }
                DelOutcome::Underflow => {
                    let level = node.level;
                    node.entries.remove(i);
                    if page != self.root && node.entries.len() < self.params.min_entries() {
                        for e in node.entries {
                            orphans.push((e, level));
                        }
                        self.store.free(page)?;
                        return Ok(DelOutcome::Underflow);
                    }
                    self.write_node(page, &node)?;
                    return Ok(DelOutcome::Removed(node.mbr()));
                }
            }
        }
        Ok(DelOutcome::NotHere)
    }

    /// Save the whole index (pages + parameters + root pointer) to a
    /// file.
    ///
    /// The save is atomic and epoch-stamped: the image is written to a
    /// temp sibling, synced, then renamed over `path` (see
    /// [`sti_storage::persist`]).
    pub fn save_to_file(&mut self, path: &std::path::Path) -> std::io::Result<()> {
        let mut meta = vec![0u8; 1 + 4 + 8 + 8 + 4 + 4 + 4 + 8];
        {
            let mut w = sti_storage::ByteWriter::new(&mut meta);
            w.put_u8(b'R'); // backend tag: 3D R*-Tree
            w.put_u32(self.params.max_entries as u32);
            w.put_f64(self.params.min_fill);
            w.put_f64(self.params.reinsert_fraction);
            w.put_u32(self.params.buffer_pages as u32);
            w.put_u32(self.root);
            w.put_u32(self.root_level);
            w.put_u64(self.len);
        }
        self.store.save_to(path, &meta)
    }

    /// Load an index previously written by [`RStarTree::save_to_file`].
    ///
    /// Fails closed: any checksum, magic, epoch or structural mismatch in
    /// the file is a typed error before a single page is trusted.
    pub fn open_file(path: &std::path::Path) -> std::io::Result<Self> {
        use std::io::{Error, ErrorKind};
        let bad = |m: &'static str| Error::new(ErrorKind::InvalidData, m);
        let (mut store, meta) = PageStore::load_from(path, 0)?;
        let mut r = sti_storage::ByteReader::new(&meta);
        match r.get_u8().map_err(|_| bad("backend tag"))? {
            b'R' => {}
            b'P' => return Err(bad("this file holds a PPR-Tree, not an R*-Tree")),
            _ => return Err(bad("unknown index backend tag")),
        }
        let params = RStarParams {
            max_entries: r.get_u32().map_err(|_| bad("max_entries"))? as usize,
            min_fill: r.get_f64().map_err(|_| bad("min_fill"))?,
            reinsert_fraction: r.get_f64().map_err(|_| bad("reinsert_fraction"))?,
            buffer_pages: r.get_u32().map_err(|_| bad("buffer_pages"))? as usize,
            // The split strategy only affects future insertions, not the
            // stored structure; files reopen with the default.
            split_strategy: SplitStrategy::default(),
        };
        params.validate();
        store.set_buffer_capacity(params.buffer_pages);
        let root = r.get_u32().map_err(|_| bad("root"))?;
        let root_level = r.get_u32().map_err(|_| bad("root_level"))?;
        let len = r.get_u64().map_err(|_| bad("len"))?;
        if (root as usize) >= store.num_pages() {
            return Err(bad("root page out of range"));
        }
        Ok(Self {
            store,
            params,
            root,
            root_level,
            len,
            scratch: ScratchPool::new(),
        })
    }

    /// Walk the whole tree and assert structural invariants. Test/debug
    /// aid; O(tree size) and counts I/O.
    #[doc(hidden)]
    pub fn validate(&mut self) {
        self.validate_impl(true);
    }

    /// Like [`RStarTree::validate`] but without the minimum-fill check:
    /// bulk-loaded trees legitimately leave the trailing chunk of each
    /// level underfull.
    #[doc(hidden)]
    pub fn validate_packed(&mut self) {
        self.validate_impl(false);
    }

    fn validate_impl(&mut self, check_min: bool) {
        let root_level = self.root_level;
        let max = self.params.max_entries;
        let min = if check_min {
            self.params.min_entries()
        } else {
            1
        };
        let mut stack = vec![(self.root, root_level, None::<Rect3>)];
        let mut data_count = 0u64;
        while let Some((page, expect_level, parent_rect)) = stack.pop() {
            // stilint::allow(no_io_unwrap, "test-only invariant walker whose contract is to panic on any defect, unreadable pages included")
            let node = self.read_node(page).expect("validate: unreadable node");
            assert_eq!(node.level, expect_level, "level mismatch at page {page}");
            assert!(node.entries.len() <= max, "overfull node {page}");
            if page != self.root {
                assert!(node.entries.len() >= min, "underfull node {page}");
            }
            if let Some(pr) = parent_rect {
                assert!(
                    pr.contains(&node.mbr()),
                    "parent entry does not cover node {page}"
                );
            }
            if node.is_leaf() {
                data_count += node.entries.len() as u64;
            } else {
                assert!(node.level >= 1);
                for e in &node.entries {
                    stack.push((e.child_page(), node.level - 1, Some(e.rect)));
                }
            }
        }
        assert_eq!(data_count, self.len, "record count mismatch");
    }
}

/// Result of one recursive deletion step.
enum DelOutcome {
    /// The record is not in this subtree.
    NotHere,
    /// Removed; the subtree's new MBR.
    Removed(Rect3),
    /// Removed, and this node dissolved (entries orphaned, page freed).
    Underflow,
}

/// R\* ChooseSubtree: at the level just above the leaves pick the entry
/// whose box needs the least *overlap* enlargement; higher up, the least
/// volume enlargement. Ties break by volume enlargement then volume.
fn choose_subtree(node: &Node, rect: &Rect3) -> usize {
    debug_assert!(!node.is_leaf());
    let entries = &node.entries;
    if node.level == 1 {
        // Children are leaves: minimum overlap enlargement.
        let mut best = 0usize;
        let mut best_key = (f64::INFINITY, f64::INFINITY, f64::INFINITY);
        for (i, e) in entries.iter().enumerate() {
            let enlarged = e.rect.union(rect);
            let mut overlap_before = 0.0;
            let mut overlap_after = 0.0;
            for (j, other) in entries.iter().enumerate() {
                if i == j {
                    continue;
                }
                overlap_before += e.rect.overlap_volume(&other.rect);
                overlap_after += enlarged.overlap_volume(&other.rect);
            }
            let key = (
                overlap_after - overlap_before,
                e.rect.enlargement(rect),
                e.rect.volume(),
            );
            if key < best_key {
                best_key = key;
                best = i;
            }
        }
        best
    } else {
        let mut best = 0usize;
        let mut best_key = (f64::INFINITY, f64::INFINITY);
        for (i, e) in entries.iter().enumerate() {
            let key = (e.rect.enlargement(rect), e.rect.volume());
            if key < best_key {
                best_key = key;
                best = i;
            }
        }
        best
    }
}

/// Remove the `count` entries whose centers lie farthest from the node's
/// MBR center, returning them farthest-first.
fn select_reinsert_victims(node: &mut Node, count: usize) -> Vec<Entry> {
    let center = node.mbr().center();
    let dist2 = |e: &Entry| -> f64 {
        let c = e.rect.center();
        (0..3)
            .map(|d| (c[d] - center[d]) * (c[d] - center[d]))
            .sum()
    };
    // Nearest first; the farthest `count` entries split off the tail.
    node.entries.sort_by(|a, b| dist2(a).total_cmp(&dist2(b)));
    let mut removed = node.entries.split_off(node.entries.len() - count);
    removed.reverse(); // farthest-first
    removed
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};
    use sti_storage::{FaultKind, FaultPlan, FaultyBackend, ScheduledFault};

    fn small_params() -> RStarParams {
        RStarParams {
            max_entries: 8,
            buffer_pages: 4,
            ..RStarParams::default()
        }
    }

    fn random_box(rng: &mut StdRng) -> Rect3 {
        let lo = [
            rng.random::<f64>(),
            rng.random::<f64>(),
            rng.random::<f64>(),
        ];
        let ext = [
            rng.random::<f64>() * 0.05,
            rng.random::<f64>() * 0.05,
            rng.random::<f64>() * 0.05,
        ];
        Rect3::new(lo, [lo[0] + ext[0], lo[1] + ext[1], lo[2] + ext[2]])
    }

    #[test]
    fn empty_tree_answers_nothing() {
        let t = RStarTree::new(small_params());
        let mut out = Vec::new();
        t.query(&Rect3::new([0.0; 3], [1.0; 3]), &mut out).unwrap();
        assert!(out.is_empty());
        assert!(t.is_empty());
        assert_eq!(t.height(), 0);
    }

    #[test]
    fn single_insert_and_query() {
        let mut t = RStarTree::new(small_params());
        let r = Rect3::new([0.1; 3], [0.2; 3]);
        t.insert(42, r).unwrap();
        let mut out = Vec::new();
        t.query(&Rect3::new([0.15; 3], [0.16; 3]), &mut out)
            .unwrap();
        assert_eq!(out, vec![42]);
        out.clear();
        t.query(&Rect3::new([0.5; 3], [0.6; 3]), &mut out).unwrap();
        assert!(out.is_empty());
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn thousand_inserts_match_brute_force() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut t = RStarTree::new(small_params());
        let mut data = Vec::new();
        for id in 0..1000u64 {
            let r = random_box(&mut rng);
            t.insert(id, r).unwrap();
            data.push((id, r));
        }
        t.validate();
        assert!(t.height() >= 2, "tree should have grown");

        for _ in 0..50 {
            let q = random_box(&mut rng);
            let mut got = Vec::new();
            t.query(&q, &mut got).unwrap();
            got.sort_unstable();
            let mut want: Vec<u64> = data
                .iter()
                .filter(|(_, r)| r.intersects(&q))
                .map(|&(id, _)| id)
                .collect();
            want.sort_unstable();
            assert_eq!(got, want);
        }
    }

    #[test]
    fn io_accounting_and_buffer_reset() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut t = RStarTree::new(small_params());
        for id in 0..500u64 {
            t.insert(id, random_box(&mut rng)).unwrap();
        }
        t.reset_for_query();
        let mut out = Vec::new();
        t.query(&Rect3::new([0.0; 3], [1.0; 3]), &mut out).unwrap();
        let full_scan = t.io_stats().reads;
        assert!(
            full_scan as usize >= t.num_pages() / 2,
            "full query touches most pages"
        );

        t.reset_for_query();
        out.clear();
        t.query(&Rect3::new([0.5; 3], [0.5001; 3]), &mut out)
            .unwrap();
        let point = t.io_stats().reads;
        assert!(
            point < full_scan,
            "selective query must read fewer pages ({point} vs {full_scan})"
        );
        assert!(
            point >= t.height() as u64,
            "must at least walk one root-to-leaf path"
        );
    }

    #[test]
    fn duplicate_geometry_is_allowed() {
        let mut t = RStarTree::new(small_params());
        let r = Rect3::new([0.3; 3], [0.4; 3]);
        for id in 0..20 {
            t.insert(id, r).unwrap();
        }
        t.validate();
        let mut out = Vec::new();
        t.query(&r, &mut out).unwrap();
        assert_eq!(out.len(), 20);
    }

    #[test]
    #[should_panic(expected = "empty rectangle")]
    fn rejects_empty_rect() {
        let mut t = RStarTree::new(small_params());
        let _ = t.insert(1, Rect3::EMPTY);
    }

    #[test]
    fn clustered_data_stays_valid() {
        // Heavy duplication + clustering stresses reinsertion and split.
        let mut rng = StdRng::seed_from_u64(11);
        let mut t = RStarTree::new(small_params());
        for id in 0..800u64 {
            let cluster = (id % 5) as f64 * 0.2;
            let jitter = rng.random::<f64>() * 0.01;
            let lo = [cluster + jitter, cluster, 0.0];
            t.insert(id, Rect3::new(lo, [lo[0] + 0.01, lo[1] + 0.01, 0.9]))
                .unwrap();
        }
        t.validate();
        assert_eq!(t.len(), 800);
    }

    #[test]
    fn delete_roundtrip_small() {
        let mut t = RStarTree::new(small_params());
        let r = Rect3::new([0.2; 3], [0.3; 3]);
        t.insert(1, r).unwrap();
        assert!(t.delete(1, &r).unwrap());
        assert!(!t.delete(1, &r).unwrap(), "double delete returns false");
        assert_eq!(t.len(), 0);
        let mut out = Vec::new();
        t.query(&Rect3::new([0.0; 3], [1.0; 3]), &mut out).unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn delete_missing_returns_false() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut t = RStarTree::new(small_params());
        for id in 0..100u64 {
            t.insert(id, random_box(&mut rng)).unwrap();
        }
        assert!(!t.delete(999, &random_box(&mut rng)).unwrap());
        assert_eq!(t.len(), 100);
    }

    #[test]
    fn interleaved_insert_delete_matches_brute_force() {
        let mut rng = StdRng::seed_from_u64(13);
        let mut t = RStarTree::new(small_params());
        let mut live: Vec<(u64, Rect3)> = Vec::new();
        let mut next = 0u64;
        for round in 0..60 {
            for _ in 0..20 {
                let r = random_box(&mut rng);
                t.insert(next, r).unwrap();
                live.push((next, r));
                next += 1;
            }
            for _ in 0..(if round % 3 == 0 { 25 } else { 10 }) {
                if live.is_empty() {
                    break;
                }
                let k = rng.random_range(0..live.len());
                let (id, r) = live.swap_remove(k);
                assert!(t.delete(id, &r).unwrap(), "record {id} must be deletable");
            }
            t.validate();
        }
        assert_eq!(t.len(), live.len() as u64);
        for _ in 0..30 {
            let q = random_box(&mut rng);
            let mut got = Vec::new();
            t.query(&q, &mut got).unwrap();
            got.sort_unstable();
            let mut want: Vec<u64> = live
                .iter()
                .filter(|(_, r)| r.intersects(&q))
                .map(|&(id, _)| id)
                .collect();
            want.sort_unstable();
            assert_eq!(got, want);
        }
    }

    #[test]
    fn delete_everything_shrinks_to_empty_root() {
        let mut rng = StdRng::seed_from_u64(17);
        let mut t = RStarTree::new(small_params());
        let mut recs = Vec::new();
        for id in 0..300u64 {
            let r = random_box(&mut rng);
            t.insert(id, r).unwrap();
            recs.push((id, r));
        }
        assert!(t.height() >= 2);
        let pages_full = t.num_pages();
        for (id, r) in recs {
            assert!(t.delete(id, &r).unwrap());
        }
        assert!(t.is_empty());
        assert_eq!(t.height(), 0, "root must collapse back to a leaf");
        // Freed pages are recycled on the next insert wave.
        for id in 0..300u64 {
            t.insert(1000 + id, random_box(&mut rng)).unwrap();
        }
        assert!(
            t.num_pages() <= pages_full + pages_full / 2,
            "page recycling should bound growth: {} vs {}",
            t.num_pages(),
            pages_full
        );
        t.validate();
    }

    /// A permanent fault mid-insert rolls everything back — including
    /// root splits and forced reinsertions in flight — and the tree
    /// still validates and answers correctly.
    #[test]
    fn failed_insert_rolls_back_completely() {
        let plan = FaultPlan::new(vec![ScheduledFault {
            at_op: 60,
            kind: FaultKind::Fail { transient: false },
        }]);
        let backend = FaultyBackend::new(Box::new(sti_storage::MemBackend::new()), plan);
        let mut t = RStarTree::with_backend(small_params(), Box::new(backend)).unwrap();
        t.set_retry_policy(RetryPolicy::no_retry());
        let mut rng = StdRng::seed_from_u64(23);

        let mut inserted = Vec::new();
        let err = loop {
            let r = random_box(&mut rng);
            let id = inserted.len() as u64;
            let pages_before = t.num_pages();
            match t.insert(id, r) {
                Ok(()) => {
                    inserted.push((id, r));
                    assert!(inserted.len() < 10_000, "fault never fired");
                }
                Err(e) => {
                    assert_eq!(t.num_pages(), pages_before, "allocations rolled back");
                    break e;
                }
            }
        };
        assert!(matches!(err, StorageError::Injected { .. }), "{err:?}");
        assert_eq!(t.len(), inserted.len() as u64);
        t.validate();
        let mut got = Vec::new();
        t.query(&Rect3::new([0.0; 3], [1.0; 3]), &mut got).unwrap();
        assert_eq!(got.len(), inserted.len(), "failed insert left no record");
    }

    /// A permanent fault mid-delete rolls back the CondenseTree pass:
    /// no record disappears, no page leaks from the free list.
    #[test]
    fn failed_delete_rolls_back_completely() {
        let mut rng = StdRng::seed_from_u64(29);
        let mut seed_tree = RStarTree::new(small_params());
        let mut recs = Vec::new();
        for id in 0..120u64 {
            let r = random_box(&mut rng);
            seed_tree.insert(id, r).unwrap();
            recs.push((id, r));
        }

        // Calibration run: measure how many backend ops the insert phase
        // uses, so the fault can be scheduled inside the delete phase.
        let calib = FaultyBackend::new_mem(FaultPlan::none());
        let mut t = RStarTree::with_backend(small_params(), Box::new(calib)).unwrap();
        for &(id, r) in &recs {
            t.insert(id, r).unwrap();
        }
        let insert_ops = t
            .store
            .backend()
            .as_any()
            .downcast_ref::<FaultyBackend>()
            .unwrap()
            .ops_executed();

        // Replay the same workload over a faulty backend, then delete
        // until the fault fires mid-CondenseTree.
        let plan = FaultPlan::new(vec![ScheduledFault {
            at_op: insert_ops + 50,
            kind: FaultKind::Fail { transient: false },
        }]);
        let backend = FaultyBackend::new(Box::new(sti_storage::MemBackend::new()), plan);
        let mut t = RStarTree::with_backend(small_params(), Box::new(backend)).unwrap();
        t.set_retry_policy(RetryPolicy::no_retry());
        for &(id, r) in &recs {
            t.insert(id, r).unwrap();
        }
        let mut deleted = 0usize;
        let mut hit_fault = false;
        for &(id, r) in &recs {
            let len_before = t.len();
            match t.delete(id, &r) {
                Ok(found) => {
                    assert!(found);
                    deleted += 1;
                }
                Err(e) => {
                    assert!(matches!(e, StorageError::Injected { .. }), "{e:?}");
                    assert_eq!(t.len(), len_before, "failed delete must not count");
                    hit_fault = true;
                    break;
                }
            }
        }
        assert!(hit_fault, "fault plan never fired — tune at_op");
        t.validate();
        let mut got = Vec::new();
        t.query(&Rect3::new([0.0; 3], [1.0; 3]), &mut got).unwrap();
        assert_eq!(got.len(), recs.len() - deleted);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn queries_always_match_brute_force(seed in any::<u64>()) {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut t = RStarTree::new(small_params());
            let mut data = Vec::new();
            for id in 0..200u64 {
                let r = random_box(&mut rng);
                t.insert(id, r).unwrap();
                data.push((id, r));
            }
            t.validate();
            for _ in 0..10 {
                let q = random_box(&mut rng);
                let mut got = Vec::new();
                t.query(&q, &mut got).unwrap();
                got.sort_unstable();
                let mut want: Vec<u64> = data
                    .iter()
                    .filter(|(_, r)| r.intersects(&q))
                    .map(|&(id, _)| id)
                    .collect();
                want.sort_unstable();
                prop_assert_eq!(got, want);
            }
        }
    }
}
