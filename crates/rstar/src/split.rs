//! The R\*-Tree topological split (ChooseSplitAxis / ChooseSplitIndex).

use crate::node::Entry;
use sti_geom::Rect3;

/// Split an overflowing entry set into two groups, R\*-style:
///
/// 1. **ChooseSplitAxis** — for every axis, sort the entries by lower and
///    by upper bound and sum the margins of every legal distribution; the
///    axis with the smallest margin sum wins (minimizing perimeter keeps
///    nodes square-ish).
/// 2. **ChooseSplitIndex** — along the winning axis, pick the
///    distribution with minimum overlap between the two group boxes,
///    breaking ties by minimum combined area (here: volume).
///
/// Legal distributions put at least `min_entries` in each group.
/// Returns the two groups; the first keeps the original page.
pub fn rstar_split(entries: Vec<Entry>, min_entries: usize) -> (Vec<Entry>, Vec<Entry>) {
    let n = entries.len();
    assert!(
        n >= 2 * min_entries,
        "cannot split {n} entries with min fill {min_entries}"
    );

    // A candidate distribution is (axis, sort-by-upper?, split position k):
    // the first `min_entries - 1 + k` entries of the sort go to group 1,
    // k in 1..=n - 2*min_entries + 1.
    let k_range = 1..=(n - 2 * min_entries + 1);

    let sorted_by = |axis: usize, by_upper: bool| -> Vec<usize> {
        let mut idx: Vec<usize> = (0..n).collect();
        idx.sort_by(|&a, &b| {
            let (ra, rb) = (&entries[a].rect, &entries[b].rect);
            let key = |r: &Rect3| {
                if by_upper {
                    (r.hi[axis], r.lo[axis])
                } else {
                    (r.lo[axis], r.hi[axis])
                }
            };
            let (ka, kb) = (key(ra), key(rb));
            ka.0.total_cmp(&kb.0).then(ka.1.total_cmp(&kb.1))
        });
        idx
    };

    // Prefix/suffix bounding boxes of a sort order.
    let sweep = |order: &[usize]| -> (Vec<Rect3>, Vec<Rect3>) {
        let mut prefix = Vec::with_capacity(n);
        let mut acc = Rect3::EMPTY;
        for &i in order {
            acc.expand(&entries[i].rect);
            prefix.push(acc);
        }
        let mut suffix = vec![Rect3::EMPTY; n];
        let mut acc = Rect3::EMPTY;
        for (pos, &i) in order.iter().enumerate().rev() {
            acc.expand(&entries[i].rect);
            suffix[pos] = acc;
        }
        (prefix, suffix)
    };

    // ChooseSplitAxis.
    let mut best_axis = 0;
    let mut best_margin = f64::INFINITY;
    for axis in 0..3 {
        let mut margin_sum = 0.0;
        for by_upper in [false, true] {
            let order = sorted_by(axis, by_upper);
            let (prefix, suffix) = sweep(&order);
            for k in k_range.clone() {
                let split_at = min_entries - 1 + k; // size of group 1
                margin_sum += prefix[split_at - 1].margin() + suffix[split_at].margin();
            }
        }
        if margin_sum < best_margin {
            best_margin = margin_sum;
            best_axis = axis;
        }
    }

    // ChooseSplitIndex along best_axis.
    let mut best: Option<(f64, f64, Vec<usize>, usize)> = None; // (overlap, volume, order, split_at)
    for by_upper in [false, true] {
        let order = sorted_by(best_axis, by_upper);
        let (prefix, suffix) = sweep(&order);
        for k in k_range.clone() {
            let split_at = min_entries - 1 + k;
            let bb1 = prefix[split_at - 1];
            let bb2 = suffix[split_at];
            let overlap = bb1.overlap_volume(&bb2);
            let volume = bb1.volume() + bb2.volume();
            let better = match &best {
                None => true,
                Some((o, v, _, _)) => (overlap, volume) < (*o, *v),
            };
            if better {
                best = Some((overlap, volume, order.clone(), split_at));
            }
        }
    }

    // stilint::allow(no_panic, "k_range is nonempty whenever n >= 2*min_entries (asserted on entry), so the distribution loop always ran")
    let (_, _, order, split_at) = best.expect("at least one distribution");
    let g1 = order[..split_at].iter().map(|&i| entries[i]).collect();
    let g2 = order[split_at..].iter().map(|&i| entries[i]).collect();
    (g1, g2)
}

/// Guttman's quadratic split (R-Tree, SIGMOD 1984), generalized to 3D:
/// PickSeeds maximizes wasted volume, PickNext assigns the entry with the
/// strongest group preference. Provided as the classic alternative to
/// [`rstar_split`]; the `ablation_split` bench target compares them.
pub fn quadratic_split(entries: Vec<Entry>, min_entries: usize) -> (Vec<Entry>, Vec<Entry>) {
    let n = entries.len();
    assert!(
        n >= 2 * min_entries,
        "cannot split {n} entries with min fill {min_entries}"
    );

    let mut seed = (0usize, 1usize);
    let mut worst = f64::NEG_INFINITY;
    for i in 0..n {
        for j in i + 1..n {
            let waste = entries[i].rect.union(&entries[j].rect).volume()
                - entries[i].rect.volume()
                - entries[j].rect.volume();
            if waste > worst {
                worst = waste;
                seed = (i, j);
            }
        }
    }

    let mut g1 = vec![entries[seed.0]];
    let mut g2 = vec![entries[seed.1]];
    let mut bb1 = entries[seed.0].rect;
    let mut bb2 = entries[seed.1].rect;
    let mut rest: Vec<Entry> = entries
        .into_iter()
        .enumerate()
        .filter(|&(i, _)| i != seed.0 && i != seed.1)
        .map(|(_, e)| e)
        .collect();

    while !rest.is_empty() {
        if g1.len() + rest.len() == min_entries {
            for e in rest.drain(..) {
                bb1.expand(&e.rect);
                g1.push(e);
            }
            break;
        }
        if g2.len() + rest.len() == min_entries {
            for e in rest.drain(..) {
                bb2.expand(&e.rect);
                g2.push(e);
            }
            break;
        }
        let mut pick = 0usize;
        let mut pick_diff = f64::NEG_INFINITY;
        for (i, e) in rest.iter().enumerate() {
            let diff = (bb1.enlargement(&e.rect) - bb2.enlargement(&e.rect)).abs();
            if diff > pick_diff {
                pick_diff = diff;
                pick = i;
            }
        }
        let e = rest.swap_remove(pick);
        let d1 = bb1.enlargement(&e.rect);
        let d2 = bb2.enlargement(&e.rect);
        let to_first = match d1.total_cmp(&d2) {
            std::cmp::Ordering::Less => true,
            std::cmp::Ordering::Greater => false,
            std::cmp::Ordering::Equal => {
                bb1.volume() < bb2.volume()
                    || (bb1.volume() == bb2.volume() && g1.len() <= g2.len())
            }
        };
        if to_first {
            bb1.expand(&e.rect);
            g1.push(e);
        } else {
            bb2.expand(&e.rect);
            g2.push(e);
        }
    }
    (g1, g2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn e(lo: [f64; 3], hi: [f64; 3], ptr: u64) -> Entry {
        Entry {
            rect: Rect3::new(lo, hi),
            ptr,
        }
    }

    fn cube(x: f64, y: f64, t: f64, s: f64, ptr: u64) -> Entry {
        e([x, y, t], [x + s, y + s, t + s], ptr)
    }

    #[test]
    fn separates_two_obvious_clusters() {
        // 4 boxes near the origin, 4 boxes far along x; min fill 2.
        let mut entries = Vec::new();
        for i in 0..4 {
            entries.push(cube(0.01 * i as f64, 0.0, 0.0, 0.05, i));
        }
        for i in 0..4 {
            entries.push(cube(10.0 + 0.01 * i as f64, 0.0, 0.0, 0.05, 100 + i));
        }
        let (g1, g2) = rstar_split(entries, 2);
        let ids1: Vec<u64> = g1.iter().map(|e| e.ptr).collect();
        let ids2: Vec<u64> = g2.iter().map(|e| e.ptr).collect();
        // One group holds the near cluster, the other the far cluster.
        let near_in_1 = ids1.iter().all(|&p| p < 100);
        let near_in_2 = ids2.iter().all(|&p| p < 100);
        assert!(near_in_1 ^ near_in_2);
        assert_eq!(g1.len(), 4);
        assert_eq!(g2.len(), 4);
    }

    #[test]
    fn split_axis_prefers_the_spread_dimension() {
        // Entries spread along t only — the split must separate along t,
        // giving zero overlap.
        let entries: Vec<Entry> = (0..8).map(|i| cube(0.0, 0.0, i as f64, 0.5, i)).collect();
        let (g1, g2) = rstar_split(entries, 2);
        let bb1 = g1.iter().fold(Rect3::EMPTY, |a, e| a.union(&e.rect));
        let bb2 = g2.iter().fold(Rect3::EMPTY, |a, e| a.union(&e.rect));
        assert_eq!(bb1.overlap_volume(&bb2), 0.0);
    }

    #[test]
    #[should_panic(expected = "cannot split")]
    fn rejects_underfull_input() {
        let entries: Vec<Entry> = (0..3).map(|i| cube(0.0, 0.0, 0.0, 0.1, i)).collect();
        let _ = rstar_split(entries, 2);
    }

    #[test]
    fn quadratic_separates_clusters_too() {
        let mut entries = Vec::new();
        for i in 0..4 {
            entries.push(cube(0.01 * i as f64, 0.0, 0.0, 0.05, i));
        }
        for i in 0..4 {
            entries.push(cube(10.0, 10.0, 0.0, 0.05, 100 + i));
        }
        let (g1, g2) = quadratic_split(entries, 2);
        let near1 = g1.iter().all(|e| e.ptr < 100);
        let near2 = g2.iter().all(|e| e.ptr < 100);
        assert!(near1 ^ near2);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn quadratic_preserves_entries_and_min_fill(
            boxes in prop::collection::vec(
                (0.0..1.0f64, 0.0..1.0f64, 0.0..1.0f64, 0.001..0.2f64), 8..50),
        ) {
            let min_fill = 1 + boxes.len() / 5;
            let entries: Vec<Entry> = boxes
                .iter()
                .enumerate()
                .map(|(i, &(x, y, t, s))| cube(x, y, t, s, i as u64))
                .collect();
            let n = entries.len();
            let (g1, g2) = quadratic_split(entries, min_fill);
            prop_assert_eq!(g1.len() + g2.len(), n);
            prop_assert!(g1.len() >= min_fill && g2.len() >= min_fill);
        }

        #[test]
        fn split_preserves_entries_and_min_fill(
            boxes in prop::collection::vec(
                (0.0..1.0f64, 0.0..1.0f64, 0.0..1.0f64, 0.001..0.2f64), 8..60),
        ) {
            let min_fill = 1 + boxes.len() / 5; // ≈ 0.2–0.4 of n
            let entries: Vec<Entry> = boxes
                .iter()
                .enumerate()
                .map(|(i, &(x, y, t, s))| cube(x, y, t, s, i as u64))
                .collect();
            let n = entries.len();
            let (g1, g2) = rstar_split(entries, min_fill);
            prop_assert_eq!(g1.len() + g2.len(), n);
            prop_assert!(g1.len() >= min_fill);
            prop_assert!(g2.len() >= min_fill);
            // No entry lost or duplicated.
            let mut ids: Vec<u64> = g1.iter().chain(&g2).map(|e| e.ptr).collect();
            ids.sort_unstable();
            prop_assert!(ids.windows(2).all(|w| w[0] < w[1]));
        }
    }
}
