//! A disk-based 3-dimensional R\*-Tree (Beckmann, Kriegel, Schneider,
//! Seeger — SIGMOD 1990).
//!
//! This is the paper's *straightforward baseline*: treat time as a third
//! spatial dimension, box every spatiotemporal record into (x, y, t), and
//! index the boxes. The implementation is complete R\*: ChooseSubtree with
//! minimum overlap enlargement at the leaf level, forced reinsertion of
//! the farthest 30% on first overflow per level, and the margin-driven
//! topological split.
//!
//! Nodes are serialized to fixed-size pages of a
//! [`sti_storage::PageStore`], so query I/O (with the paper's 10-page LRU
//! buffer) is measured exactly as in the evaluation. The paper's setup
//! uses a page capacity of 50 entries.

pub mod bulk;
pub mod knn;
pub mod node;
pub mod split;
pub mod tree;

pub use bulk::PackingAlgorithm;
pub use node::{Entry, Node, RStarParams, SplitStrategy};
pub use tree::RStarTree;
