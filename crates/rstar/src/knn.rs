//! k-nearest-neighbor search (best-first MINDIST traversal, Hjaltason &
//! Samet style). Not used by the paper's evaluation, but a production
//! R-Tree without kNN is half a library.

use crate::node::Entry;
use crate::tree::RStarTree;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use sti_storage::StorageError;

/// Heap element for the best-first queue: distance-ordered, nodes and
/// records mixed.
#[derive(Debug, PartialEq)]
struct Pending {
    dist2: f64,
    /// `None` ⇒ `ptr` is a record id; `Some(level)` ⇒ child node page.
    level: Option<u32>,
    ptr: u64,
}

impl Eq for Pending {}

impl Ord for Pending {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.dist2
            .total_cmp(&other.dist2)
            .then_with(|| self.ptr.cmp(&other.ptr))
    }
}

impl PartialOrd for Pending {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl RStarTree {
    /// The `k` records nearest to `point` (in (x, y, scaled-t) space),
    /// as `(id, squared distance)` pairs ordered nearest-first.
    ///
    /// Best-first search: a min-heap ordered by MINDIST interleaves
    /// directory nodes and data records; when a record surfaces, no
    /// unexplored subtree can contain anything closer, so it is emitted.
    /// I/O is counted through the buffer pool like any query.
    ///
    /// # Errors
    /// A [`StorageError`] if a page read fails after retries; the search
    /// is abandoned (the tree itself is untouched — reads only).
    pub fn nearest(&self, point: [f64; 3], k: usize) -> Result<Vec<(u64, f64)>, StorageError> {
        let mut out = Vec::with_capacity(k);
        if k == 0 || self.is_empty() {
            return Ok(out);
        }
        let mut heap: BinaryHeap<Reverse<Pending>> = BinaryHeap::new();
        let root = self.root_page();
        let root_level = self.height();
        heap.push(Reverse(Pending {
            dist2: 0.0,
            level: Some(root_level),
            ptr: u64::from(root),
        }));

        while let Some(Reverse(item)) = heap.pop() {
            match item.level {
                None => {
                    out.push((item.ptr, item.dist2));
                    if out.len() == k {
                        break;
                    }
                }
                Some(_) => {
                    // stilint::allow(no_panic, "directory items carry allocate()-returned u32 page ids widened into the shared ptr field")
                    let page = u32::try_from(item.ptr).expect("page id");
                    let node = self.read_node(page)?;
                    for e in &node.entries {
                        let dist2 = e.rect.min_dist2(&point);
                        heap.push(Reverse(Pending {
                            dist2,
                            level: if node.is_leaf() {
                                None
                            } else {
                                Some(node.level - 1)
                            },
                            ptr: entry_ptr(e, node.is_leaf()),
                        }));
                    }
                }
            }
        }
        Ok(out)
    }
}

fn entry_ptr(e: &Entry, leaf: bool) -> u64 {
    if leaf {
        e.ptr
    } else {
        u64::from(e.child_page())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::RStarParams;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};
    use sti_geom::Rect3;

    fn build(n: usize, seed: u64) -> (RStarTree, Vec<(u64, Rect3)>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut tree = RStarTree::new(RStarParams {
            max_entries: 8,
            buffer_pages: 4,
            ..RStarParams::default()
        });
        let mut data = Vec::new();
        for id in 0..n as u64 {
            let lo = [
                rng.random::<f64>(),
                rng.random::<f64>(),
                rng.random::<f64>(),
            ];
            let e = rng.random::<f64>() * 0.03;
            let r = Rect3::new(lo, [lo[0] + e, lo[1] + e, lo[2] + e]);
            tree.insert(id, r).unwrap();
            data.push((id, r));
        }
        (tree, data)
    }

    fn brute(data: &[(u64, Rect3)], p: [f64; 3], k: usize) -> Vec<(u64, f64)> {
        let mut v: Vec<(u64, f64)> = data.iter().map(|&(id, r)| (id, r.min_dist2(&p))).collect();
        v.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
        v.truncate(k);
        v
    }

    #[test]
    fn matches_brute_force() {
        let (tree, data) = build(500, 3);
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..25 {
            let p = [
                rng.random::<f64>(),
                rng.random::<f64>(),
                rng.random::<f64>(),
            ];
            for k in [1usize, 5, 20] {
                let got = tree.nearest(p, k).unwrap();
                let want = brute(&data, p, k);
                assert_eq!(got.len(), k);
                // Distances must match exactly (ids may differ on ties).
                for (g, w) in got.iter().zip(&want) {
                    assert!(
                        (g.1 - w.1).abs() < 1e-12,
                        "k={k}: got {:?} want {:?}",
                        got,
                        want
                    );
                }
                // And results are sorted nearest-first.
                assert!(got.windows(2).all(|w| w[0].1 <= w[1].1));
            }
        }
    }

    #[test]
    fn k_zero_and_empty_tree() {
        let (tree, _) = build(50, 9);
        assert!(tree.nearest([0.5; 3], 0).unwrap().is_empty());
        let empty = RStarTree::new(RStarParams {
            max_entries: 8,
            ..RStarParams::default()
        });
        assert!(empty.nearest([0.5; 3], 3).unwrap().is_empty());
    }

    #[test]
    fn k_larger_than_dataset_returns_all() {
        let (tree, data) = build(30, 11);
        let got = tree.nearest([0.2, 0.2, 0.2], 100).unwrap();
        assert_eq!(got.len(), data.len());
    }

    #[test]
    fn point_inside_a_record_has_distance_zero() {
        let mut tree = RStarTree::new(RStarParams {
            max_entries: 8,
            ..RStarParams::default()
        });
        tree.insert(42, Rect3::new([0.4; 3], [0.6; 3])).unwrap();
        tree.insert(1, Rect3::new([0.0; 3], [0.1; 3])).unwrap();
        let got = tree.nearest([0.5; 3], 1).unwrap();
        assert_eq!(got, vec![(42, 0.0)]);
    }

    #[test]
    fn knn_reads_fewer_pages_than_a_scan() {
        let (mut tree, _) = build(2000, 21);
        tree.reset_for_query();
        let _ = tree.nearest([0.5, 0.5, 0.5], 3).unwrap();
        let knn_reads = tree.io_stats().reads;
        assert!(
            (knn_reads as usize) < tree.num_pages() / 4,
            "best-first should prune: {knn_reads} reads of {} pages",
            tree.num_pages()
        );
    }
}
