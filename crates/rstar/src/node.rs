//! R\*-Tree nodes and their page serialization.

use sti_geom::Rect3;
use sti_storage::{ByteReader, ByteWriter, CodecError, Page, PageId, PAGE_SIZE};

/// Node split algorithm selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SplitStrategy {
    /// The R\* topological split (margin-driven axis choice) — default.
    #[default]
    RStar,
    /// Guttman's quadratic split (R-Tree, 1984), for comparison.
    QuadraticGuttman,
}

/// Tuning parameters of the R\*-Tree.
#[derive(Debug, Clone, Copy)]
pub struct RStarParams {
    /// Maximum entries per node (`M`). The paper's setup: 50.
    pub max_entries: usize,
    /// Minimum fill fraction for splits (`m = ceil(fraction · M)`);
    /// Beckmann et al. recommend 0.4.
    pub min_fill: f64,
    /// Fraction of entries force-reinserted on first overflow per level;
    /// Beckmann et al. recommend 0.3.
    pub reinsert_fraction: f64,
    /// Buffer pool capacity in pages (paper: 10).
    pub buffer_pages: usize,
    /// Which split algorithm overflowing nodes use.
    pub split_strategy: SplitStrategy,
}

impl Default for RStarParams {
    fn default() -> Self {
        Self {
            max_entries: 50,
            min_fill: 0.4,
            reinsert_fraction: 0.3,
            buffer_pages: 10,
            split_strategy: SplitStrategy::default(),
        }
    }
}

impl RStarParams {
    /// Minimum entries a split group must receive.
    pub fn min_entries(&self) -> usize {
        ((self.min_fill * self.max_entries as f64).ceil() as usize).max(1)
    }

    /// Number of entries removed by forced reinsertion.
    pub fn reinsert_count(&self) -> usize {
        ((self.reinsert_fraction * self.max_entries as f64).floor() as usize).max(1)
    }

    /// Check a node of `max_entries` (+1 transient overflow slot is kept
    /// in memory only) fits a page.
    pub fn validate(&self) {
        assert!(self.max_entries >= 4, "max_entries too small");
        assert!(
            Node::encoded_size(self.max_entries) <= PAGE_SIZE,
            "{} entries do not fit a {PAGE_SIZE}-byte page",
            self.max_entries
        );
        assert!(
            (0.0..=0.5).contains(&self.min_fill),
            "min_fill out of range"
        );
        assert!(
            (0.0..0.5).contains(&self.reinsert_fraction),
            "reinsert_fraction out of range"
        );
    }
}

/// A node entry. In a leaf (`level == 0`) `ptr` is the record's object
/// id; in an internal node it is the child's [`PageId`] (widened to u64).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Entry {
    /// Bounding box of the record / child subtree.
    pub rect: Rect3,
    /// Object id (leaf) or child page id (internal).
    pub ptr: u64,
}

impl Entry {
    /// Convenience constructor for internal entries.
    pub fn child(rect: Rect3, page: PageId) -> Self {
        Self {
            rect,
            ptr: u64::from(page),
        }
    }

    /// Interpret `ptr` as a child page id.
    pub fn child_page(&self) -> PageId {
        // stilint::allow(no_panic, "internal entries are built exclusively from allocate()-returned u32 page ids widened into the shared ptr field")
        PageId::try_from(self.ptr).expect("internal entry holds a page id")
    }

    const ENCODED: usize = 6 * 8 + 8; // rect + ptr
}

/// One R\*-Tree node: a level (0 = leaf) and up to `M` entries (one extra
/// transient entry may be present in memory during overflow handling; it
/// is never written to a page).
#[derive(Debug, Clone, PartialEq)]
pub struct Node {
    /// Height above the leaves: 0 for leaf nodes.
    pub level: u32,
    /// The entries.
    pub entries: Vec<Entry>,
}

impl Node {
    /// An empty node at `level`.
    pub fn new(level: u32) -> Self {
        Self {
            level,
            entries: Vec::new(),
        }
    }

    /// True for leaf nodes.
    pub fn is_leaf(&self) -> bool {
        self.level == 0
    }

    /// Bounding box of all entries.
    pub fn mbr(&self) -> Rect3 {
        let mut m = Rect3::EMPTY;
        for e in &self.entries {
            m.expand(&e.rect);
        }
        m
    }

    /// Bytes needed to encode a node of `n` entries.
    pub fn encoded_size(n: usize) -> usize {
        4 + 2 + n * Entry::ENCODED
    }

    /// Serialize into a page buffer.
    ///
    /// # Panics
    /// If the node does not fit (the tree splits before this can happen).
    pub fn encode(&self, page: &mut Page) {
        assert!(
            Self::encoded_size(self.entries.len()) <= PAGE_SIZE,
            "node too large for page"
        );
        let buf = page.bytes_mut();
        let mut w = ByteWriter::new(&mut buf[..]);
        w.put_u32(self.level);
        // stilint::allow(no_panic, "the encoded_size assert above bounds entries by the page capacity, far below u16::MAX")
        w.put_u16(u16::try_from(self.entries.len()).expect("entry count fits u16"));
        for e in &self.entries {
            for d in 0..3 {
                w.put_f64(e.rect.lo[d]);
            }
            for d in 0..3 {
                w.put_f64(e.rect.hi[d]);
            }
            w.put_u64(e.ptr);
        }
        // Zero the tail so stale bytes from a previous, larger version of
        // this node can never be mis-decoded.
        let pos = w.position();
        buf[pos..].fill(0);
    }

    /// Deserialize from a page.
    pub fn decode(page: &Page) -> Result<Self, CodecError> {
        let mut r = ByteReader::new(&page.bytes()[..]);
        let level = r.get_u32()?;
        let count = r.get_u16()? as usize;
        if Self::encoded_size(count) > PAGE_SIZE {
            return Err(CodecError::InvalidValue(
                "entry count exceeds page capacity",
            ));
        }
        let mut entries = Vec::with_capacity(count);
        for _ in 0..count {
            let mut lo = [0.0; 3];
            let mut hi = [0.0; 3];
            for v in &mut lo {
                *v = r.get_f64()?;
            }
            for v in &mut hi {
                *v = r.get_f64()?;
            }
            let ptr = r.get_u64()?;
            if lo[0] > hi[0] || lo[1] > hi[1] || lo[2] > hi[2] {
                return Err(CodecError::InvalidValue("reversed rectangle in node entry"));
            }
            entries.push(Entry {
                rect: Rect3 { lo, hi },
                ptr,
            });
        }
        Ok(Self { level, entries })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(v: f64, ptr: u64) -> Entry {
        Entry {
            rect: Rect3::new([v, v, v], [v + 0.1, v + 0.2, v + 0.3]),
            ptr,
        }
    }

    #[test]
    fn params_derived_values() {
        let p = RStarParams::default();
        p.validate();
        assert_eq!(p.min_entries(), 20);
        assert_eq!(p.reinsert_count(), 15);
    }

    #[test]
    fn fifty_entries_fit_a_page() {
        assert!(Node::encoded_size(50) <= PAGE_SIZE);
        // and the hard cap:
        assert!(Node::encoded_size(73) <= PAGE_SIZE);
        assert!(Node::encoded_size(74) > PAGE_SIZE);
    }

    #[test]
    fn encode_decode_round_trip() {
        let node = Node {
            level: 3,
            entries: (0..50).map(|i| entry(i as f64 * 0.01, 1000 + i)).collect(),
        };
        let mut page = Page::zeroed();
        node.encode(&mut page);
        let back = Node::decode(&page).unwrap();
        assert_eq!(back, node);
    }

    #[test]
    fn encode_zeroes_stale_tail() {
        let big = Node {
            level: 0,
            entries: (0..10).map(|i| entry(0.0, i)).collect(),
        };
        let small = Node {
            level: 0,
            entries: vec![entry(0.5, 9)],
        };
        let mut page = Page::zeroed();
        big.encode(&mut page);
        small.encode(&mut page);
        let back = Node::decode(&page).unwrap();
        assert_eq!(back.entries.len(), 1);
        assert_eq!(back, small);
    }

    #[test]
    fn decode_rejects_garbage_count() {
        let mut page = Page::zeroed();
        // level 0, count 60000
        page.bytes_mut()[4] = 0x60;
        page.bytes_mut()[5] = 0xea;
        assert!(Node::decode(&page).is_err());
    }

    #[test]
    fn decode_rejects_reversed_rect() {
        let node = Node {
            level: 0,
            entries: vec![entry(0.1, 1)],
        };
        let mut page = Page::zeroed();
        node.encode(&mut page);
        // Corrupt lo[0] (offset 6) to be huge.
        let bytes = 1e9f64.to_le_bytes();
        page.bytes_mut()[6..14].copy_from_slice(&bytes);
        assert!(matches!(
            Node::decode(&page),
            Err(CodecError::InvalidValue(_))
        ));
    }

    #[test]
    fn mbr_covers_entries() {
        let node = Node {
            level: 1,
            entries: vec![entry(0.0, 1), entry(0.5, 2)],
        };
        let m = node.mbr();
        assert!(m.contains(&node.entries[0].rect));
        assert!(m.contains(&node.entries[1].rect));
        assert_eq!(Node::new(0).mbr(), Rect3::EMPTY);
    }

    #[test]
    fn child_page_round_trip() {
        let e = Entry::child(Rect3::new([0.0; 3], [1.0; 3]), 42);
        assert_eq!(e.child_page(), 42);
    }
}
