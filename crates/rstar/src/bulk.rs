//! Bulk loading (packing) algorithms for the R\*-Tree.
//!
//! The paper explicitly declined to pack its R\*-Tree: "packing does not
//! help substantially with datasets of moving objects. Packing algorithms
//! tend to cluster together objects that might be consecutive in order
//! even though they may correspond to large and small intervals. This
//! leads to more overlapping and empty space" (§V). These two classic
//! packers exist to *test* that claim (see the `ablation_packing` bench
//! target):
//!
//! * [`PackingAlgorithm::Str`] — Sort-Tile-Recursive (Leutenegger, Lopez
//!   & Edgington, ICDE 1997 — reference \[15\]): recursively tile the
//!   space into vertical slabs by x, then y within slabs, then t.
//! * [`PackingAlgorithm::Hilbert`] — Hilbert packing (Kamel & Faloutsos,
//!   VLDB 1994 — reference \[9\]): order records by the Hilbert value of
//!   their centers and chunk.
//!
//! Both produce fully packed nodes bottom-up; the resulting tree is a
//! regular [`RStarTree`] and answers queries identically.

use crate::node::{Entry, Node, RStarParams};
use crate::tree::RStarTree;
use sti_geom::{hilbert3, Rect3};
use sti_storage::{Page, PageStore, ScratchPool, StorageError};

/// Which packing order to use for bulk loading.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PackingAlgorithm {
    /// Sort-Tile-Recursive.
    Str,
    /// Hilbert-curve ordering of box centers.
    Hilbert,
}

impl std::fmt::Display for PackingAlgorithm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PackingAlgorithm::Str => write!(f, "STR"),
            PackingAlgorithm::Hilbert => write!(f, "Hilbert"),
        }
    }
}

impl RStarTree {
    /// Bulk load a tree from `(id, box)` records with the given packing
    /// order. Nodes are filled to capacity, as the classic packers do.
    ///
    /// # Errors
    /// A [`StorageError`] if writing a packed page fails (only possible
    /// with a fallible backend; the default in-memory store cannot fail).
    ///
    /// # Panics
    /// On an empty input or an empty rectangle.
    pub fn bulk_load(
        records: &[(u64, Rect3)],
        params: RStarParams,
        algo: PackingAlgorithm,
    ) -> Result<Self, StorageError> {
        params.validate();
        assert!(!records.is_empty(), "cannot bulk load an empty record set");
        let mut store = PageStore::new(params.buffer_pages);

        let mut entries: Vec<Entry> = records
            .iter()
            .map(|&(id, rect)| {
                assert!(!rect.is_empty(), "cannot index an empty rectangle");
                Entry { rect, ptr: id }
            })
            .collect();
        order_entries(&mut entries, algo, params.max_entries);

        // Pack level by level until a single node remains.
        let mut level = 0u32;
        loop {
            if entries.len() <= params.max_entries {
                let root_node = Node { level, entries };
                let root = store.allocate()?;
                let mut page = Page::zeroed();
                root_node.encode(&mut page);
                store.write(root, &page.bytes()[..])?;
                let len = records.len() as u64;
                return Ok(Self {
                    store,
                    params,
                    root,
                    root_level: level,
                    len,
                    scratch: ScratchPool::new(),
                });
            }
            let mut parents: Vec<Entry> =
                Vec::with_capacity(entries.len() / params.max_entries + 1);
            for chunk in entries.chunks(params.max_entries) {
                let node = Node {
                    level,
                    entries: chunk.to_vec(),
                };
                let page = store.allocate()?;
                let mut buf = Page::zeroed();
                node.encode(&mut buf);
                store.write(page, &buf.bytes()[..])?;
                parents.push(Entry::child(node.mbr(), page));
            }
            // Upper levels keep the lower level's ordering for STR (the
            // parents inherit the tiling); re-ordering by Hilbert value of
            // parent centers keeps the Hilbert variant faithful.
            if algo == PackingAlgorithm::Hilbert {
                order_entries(&mut parents, algo, params.max_entries);
            }
            entries = parents;
            level += 1;
        }
    }
}

/// Order entries for packing.
fn order_entries(entries: &mut [Entry], algo: PackingAlgorithm, cap: usize) {
    match algo {
        PackingAlgorithm::Hilbert => {
            entries.sort_by_key(|e| {
                let c = e.rect.center();
                hilbert3(c[0], c[1], c[2])
            });
        }
        PackingAlgorithm::Str => str_tile(entries, cap),
    }
}

/// Sort-Tile-Recursive ordering in 3D: sort by x-center, cut into
/// vertical slabs of `S²·cap` records (S = #slabs per axis), sort each
/// slab by y-center, cut into runs of `S·cap`, sort each run by t-center.
fn str_tile(entries: &mut [Entry], cap: usize) {
    let n = entries.len();
    let leaves = n.div_ceil(cap);
    let s = (leaves as f64).powf(1.0 / 3.0).ceil() as usize;
    let center = |e: &Entry, d: usize| (e.rect.lo[d] + e.rect.hi[d]) / 2.0;

    entries.sort_by(|a, b| center(a, 0).total_cmp(&center(b, 0)));
    let slab = (s * s * cap).max(1);
    for xs in entries.chunks_mut(slab) {
        xs.sort_by(|a, b| center(a, 1).total_cmp(&center(b, 1)));
        let run = (s * cap).max(1);
        for ys in xs.chunks_mut(run) {
            ys.sort_by(|a, b| center(a, 2).total_cmp(&center(b, 2)));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn params() -> RStarParams {
        RStarParams {
            max_entries: 8,
            buffer_pages: 4,
            ..RStarParams::default()
        }
    }

    fn random_records(n: usize, seed: u64) -> Vec<(u64, Rect3)> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n as u64)
            .map(|id| {
                let lo = [
                    rng.random::<f64>(),
                    rng.random::<f64>(),
                    rng.random::<f64>(),
                ];
                let e = rng.random::<f64>() * 0.05;
                (id, Rect3::new(lo, [lo[0] + e, lo[1] + e, lo[2] + e]))
            })
            .collect()
    }

    #[test]
    fn single_node_load() {
        let recs = random_records(5, 1);
        for algo in [PackingAlgorithm::Str, PackingAlgorithm::Hilbert] {
            let mut t = RStarTree::bulk_load(&recs, params(), algo).unwrap();
            assert_eq!(t.height(), 0);
            assert_eq!(t.len(), 5);
            t.validate_packed();
            let mut out = Vec::new();
            t.query(&Rect3::new([0.0; 3], [1.0; 3]), &mut out).unwrap();
            assert_eq!(out.len(), 5);
        }
    }

    #[test]
    fn queries_match_brute_force() {
        let recs = random_records(700, 7);
        let mut rng = StdRng::seed_from_u64(8);
        for algo in [PackingAlgorithm::Str, PackingAlgorithm::Hilbert] {
            let mut t = RStarTree::bulk_load(&recs, params(), algo).unwrap();
            assert!(t.height() >= 2, "{algo}: tree should be tall");
            t.validate_packed();
            for _ in 0..40 {
                let lo = [
                    rng.random::<f64>(),
                    rng.random::<f64>(),
                    rng.random::<f64>(),
                ];
                let q = Rect3::new(lo, [lo[0] + 0.1, lo[1] + 0.1, lo[2] + 0.1]);
                let mut got = Vec::new();
                t.query(&q, &mut got).unwrap();
                got.sort_unstable();
                let mut want: Vec<u64> = recs
                    .iter()
                    .filter(|(_, r)| r.intersects(&q))
                    .map(|&(id, _)| id)
                    .collect();
                want.sort_unstable();
                assert_eq!(got, want, "{algo}");
            }
        }
    }

    #[test]
    fn packed_tree_is_smaller_than_inserted_tree() {
        let recs = random_records(700, 3);
        let packed = RStarTree::bulk_load(&recs, params(), PackingAlgorithm::Str).unwrap();
        let mut inserted = RStarTree::new(params());
        for &(id, r) in &recs {
            inserted.insert(id, r).unwrap();
        }
        assert!(
            packed.num_pages() < inserted.num_pages(),
            "full nodes should need fewer pages: {} vs {}",
            packed.num_pages(),
            inserted.num_pages()
        );
    }

    #[test]
    fn bulk_loaded_tree_accepts_further_inserts() {
        let recs = random_records(200, 11);
        let mut t = RStarTree::bulk_load(&recs, params(), PackingAlgorithm::Hilbert).unwrap();
        for i in 0..100u64 {
            let v = i as f64 / 100.0;
            t.insert(
                1000 + i,
                Rect3::new([v, v, v], [v + 0.01, v + 0.01, v + 0.01]),
            )
            .unwrap();
        }
        assert_eq!(t.len(), 300);
        let mut out = Vec::new();
        t.query(&Rect3::new([0.0; 3], [1.0; 3]), &mut out).unwrap();
        assert_eq!(out.len(), 300);
    }

    #[test]
    #[should_panic(expected = "empty record set")]
    fn rejects_empty_input() {
        let _ = RStarTree::bulk_load(&[], params(), PackingAlgorithm::Str);
    }

    #[test]
    fn str_tiling_produces_spatial_runs() {
        // After STR ordering, consecutive chunks should have much less
        // x-spread than the whole set.
        let mut entries: Vec<Entry> = random_records(512, 21)
            .into_iter()
            .map(|(id, rect)| Entry { rect, ptr: id })
            .collect();
        str_tile(&mut entries, 8);
        let spread = |es: &[Entry]| {
            let mut lo = f64::INFINITY;
            let mut hi = f64::NEG_INFINITY;
            for e in es {
                lo = lo.min(e.rect.lo[0]);
                hi = hi.max(e.rect.hi[0]);
            }
            hi - lo
        };
        let whole = spread(&entries);
        let avg_chunk: f64 =
            entries.chunks(8).map(spread).sum::<f64>() / entries.chunks(8).count() as f64;
        assert!(
            avg_chunk < whole * 0.5,
            "chunks not localized: {avg_chunk} vs {whole}"
        );
    }
}
