//! A hybrid timestamp/interval index in the spirit of the MV3R-Tree
//! (Tao & Papadias, VLDB 2001 — reference \[25\] of the paper).
//!
//! The PPR-Tree is unbeatable for snapshot and *small*-interval queries
//! (its I/O tracks the objects alive at one instant), but an interval
//! query must walk every root whose span it touches, so its cost grows
//! linearly with the window — by ~duration 40 the plain 3D R\*-Tree
//! overtakes it (see the `ablation_hybrid` bench). The MV3R insight is to
//! keep *both* structures over the same records and route each query by
//! its duration. Storage costs the sum of the two (≈ 3× the R\*-Tree
//! alone); query latency gets the minimum of the two curves.

use crate::index::{IndexBackend, IndexConfig, SpatioTemporalIndex};
use crate::plan::ObjectRecord;
use std::sync::atomic::{AtomicU64, Ordering};
use sti_geom::{Rect2, Time, TimeInterval};
use sti_pprtree::PprParams;
use sti_rstar::RStarParams;
use sti_storage::{IoStats, StorageError};

/// Configuration of the hybrid index.
#[derive(Debug, Clone)]
pub struct HybridConfig {
    /// Queries spanning fewer instants than this go to the PPR-Tree;
    /// the rest go to the 3D R\*-Tree. The `ablation_hybrid` sweep puts
    /// the crossover near 40 instants for the paper's workloads.
    pub duration_threshold: u32,
    /// Evolution length (time scaling for the R\*-Tree side).
    pub time_extent: Time,
    /// PPR-Tree parameters.
    pub ppr: PprParams,
    /// R\*-Tree parameters.
    pub rstar: RStarParams,
}

impl Default for HybridConfig {
    fn default() -> Self {
        Self {
            duration_threshold: 40,
            time_extent: 1000,
            ppr: PprParams::default(),
            rstar: RStarParams::default(),
        }
    }
}

/// Both structures over the same records, queries routed by duration.
pub struct HybridIndex {
    ppr: SpatioTemporalIndex,
    rstar: SpatioTemporalIndex,
    threshold: u32,
    // Atomic so routing stays observable from `&self` queries running
    // concurrently (relaxed: counters only, no ordering dependencies).
    short_queries: AtomicU64,
    long_queries: AtomicU64,
}

impl HybridIndex {
    /// Build both component indexes over the record set.
    ///
    /// # Errors
    /// A [`StorageError`] if either component's ingest fails.
    pub fn build(records: &[ObjectRecord], config: &HybridConfig) -> Result<Self, StorageError> {
        assert!(config.duration_threshold >= 1);
        let ppr = SpatioTemporalIndex::build(
            records,
            &IndexConfig {
                backend: IndexBackend::PprTree,
                time_extent: config.time_extent,
                ppr: config.ppr,
                rstar: config.rstar,
            },
        )?;
        let rstar = SpatioTemporalIndex::build(
            records,
            &IndexConfig {
                backend: IndexBackend::RStar,
                time_extent: config.time_extent,
                ppr: config.ppr,
                rstar: config.rstar,
            },
        )?;
        Ok(Self {
            ppr,
            rstar,
            threshold: config.duration_threshold,
            short_queries: AtomicU64::new(0),
            long_queries: AtomicU64::new(0),
        })
    }

    /// Answer a topological query through whichever component is cheaper
    /// for its duration.
    ///
    /// # Errors
    /// A [`StorageError`] if the routed component's page reads fail.
    pub fn query(&self, area: &Rect2, range: &TimeInterval) -> Result<Vec<u64>, StorageError> {
        Ok(self.query_with_stats(area, range)?.0)
    }

    /// Like [`HybridIndex::query`], but also report the routed
    /// component's per-query [`sti_obs::QueryStats`] delta.
    ///
    /// # Errors
    /// A [`StorageError`] if the routed component's page reads fail.
    /// The routing counters still record the attempt.
    pub fn query_with_stats(
        &self,
        area: &Rect2,
        range: &TimeInterval,
    ) -> Result<(Vec<u64>, sti_obs::QueryStats), StorageError> {
        if range.len() < u64::from(self.threshold) {
            // ordering: independent routing counter; read only for reporting.
            self.short_queries.fetch_add(1, Ordering::Relaxed);
            self.ppr.query_with_stats(area, range)
        } else {
            // ordering: independent routing counter; read only for reporting.
            self.long_queries.fetch_add(1, Ordering::Relaxed);
            self.rstar.query_with_stats(area, range)
        }
    }

    /// Queries routed to the PPR-Tree so far.
    pub fn short_queries(&self) -> u64 {
        // ordering: relaxed counter snapshot; stats are advisory.
        self.short_queries.load(Ordering::Relaxed)
    }

    /// Queries routed to the R\*-Tree so far.
    pub fn long_queries(&self) -> u64 {
        // ordering: relaxed counter snapshot; stats are advisory.
        self.long_queries.load(Ordering::Relaxed)
    }

    /// Combined disk footprint (the price of hybridization).
    pub fn num_pages(&self) -> usize {
        self.ppr.num_pages() + self.rstar.num_pages()
    }

    /// Combined I/O counters of both components.
    pub fn io_stats(&self) -> IoStats {
        let a = self.ppr.io_stats();
        let b = self.rstar.io_stats();
        IoStats {
            reads: a.reads + b.reads,
            writes: a.writes + b.writes,
            buffer_hits: a.buffer_hits + b.buffer_hits,
        }
    }

    /// Zero both components' I/O counters without touching residency
    /// (shared — safe under concurrent `&self` queries).
    pub fn reset_counters(&self) {
        self.ppr.reset_counters();
        self.rstar.reset_counters();
    }

    /// Empty both components' buffer pools (exclusive).
    pub fn clear_buffer(&mut self) {
        self.ppr.clear_buffer();
        self.rstar.clear_buffer();
    }

    /// Reset both components before a measured query.
    pub fn reset_for_query(&mut self) {
        self.reset_counters();
        self.clear_buffer();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::unsplit_records;
    use sti_geom::Point2;
    use sti_trajectory::RasterizedObject;

    fn dataset() -> Vec<RasterizedObject> {
        (0..60u64)
            .map(|id| {
                let start = ((id * 13) % 800) as u32;
                let rects = (0..40)
                    .map(|i| {
                        let x = 0.02 + 0.9 * ((id as f64 / 60.0) + 0.005 * i as f64).fract();
                        Rect2::centered(Point2::new(x, 0.5), 0.02, 0.02)
                    })
                    .collect();
                RasterizedObject::new(id, start, rects)
            })
            .collect()
    }

    #[test]
    fn routes_by_duration_and_agrees_with_components() {
        let records = unsplit_records(&dataset());
        let hybrid = HybridIndex::build(&records, &HybridConfig::default()).unwrap();
        let ppr = SpatioTemporalIndex::build(&records, &IndexConfig::paper(IndexBackend::PprTree))
            .unwrap();
        let area = Rect2::from_bounds(0.2, 0.4, 0.7, 0.6);

        let short = TimeInterval::new(100, 105);
        assert_eq!(
            hybrid.query(&area, &short).unwrap(),
            ppr.query(&area, &short).unwrap()
        );
        assert_eq!(hybrid.short_queries(), 1);
        assert_eq!(hybrid.long_queries(), 0);

        let long = TimeInterval::new(100, 400);
        let got = hybrid.query(&area, &long).unwrap();
        assert_eq!(hybrid.long_queries(), 1);
        // Long answers still agree with the PPR component (both exact).
        assert_eq!(got, ppr.query(&area, &long).unwrap());
    }

    #[test]
    fn pages_are_the_sum_of_components() {
        let records = unsplit_records(&dataset());
        let hybrid = HybridIndex::build(&records, &HybridConfig::default()).unwrap();
        let ppr = SpatioTemporalIndex::build(&records, &IndexConfig::paper(IndexBackend::PprTree))
            .unwrap();
        let rstar =
            SpatioTemporalIndex::build(&records, &IndexConfig::paper(IndexBackend::RStar)).unwrap();
        assert_eq!(hybrid.num_pages(), ppr.num_pages() + rstar.num_pages());
    }

    #[test]
    fn threshold_one_always_uses_rstar() {
        let records = unsplit_records(&dataset());
        let hybrid = HybridIndex::build(
            &records,
            &HybridConfig {
                duration_threshold: 1,
                ..HybridConfig::default()
            },
        )
        .unwrap();
        let _ = hybrid
            .query(&Rect2::UNIT, &TimeInterval::instant(50))
            .unwrap();
        assert_eq!(hybrid.long_queries(), 1);
        assert_eq!(hybrid.short_queries(), 0);
    }
}
