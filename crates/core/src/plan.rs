//! End-to-end split planning: from a collection of objects to the
//! space-time boxes an index ingests.

use crate::multi::{DistributionAlgorithm, SplitAllocation};
use crate::parallel::{map_chunked, Parallelism};
use crate::single::dpsplit::DpTable;
use crate::single::mergesplit::MergeHierarchy;
use crate::single::{piecewise_cuts, SingleSplitAlgorithm};
use crate::VolumeCurve;
use std::time::{Duration, Instant};
use sti_geom::StBox;
use sti_trajectory::RasterizedObject;

/// How many splits to spend on a dataset.
///
/// The paper expresses budgets as percentages of the object count:
/// "`a%` splits means we use `a/100 · N` total splits on a dataset with
/// `N` objects" (§V, budgets from 1% to 150%).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SplitBudget {
    /// An absolute number of splits.
    Count(usize),
    /// A percentage of the number of objects (150.0 means 1.5 splits per
    /// object on average).
    Percent(f64),
}

impl SplitBudget {
    /// Resolve to an absolute split count for `n` objects.
    pub fn resolve(&self, n: usize) -> usize {
        match *self {
            SplitBudget::Count(k) => k,
            SplitBudget::Percent(p) => {
                assert!(p >= 0.0, "negative split percentage");
                (p / 100.0 * n as f64).round() as usize
            }
        }
    }
}

/// One index-ready record: a space-time box tagged with the identifier of
/// the object it came from. Splitting produces several records per object
/// with the same `id`; interval queries de-duplicate on it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ObjectRecord {
    /// Identifier of the originating object.
    pub id: u64,
    /// The box: spatial MBR over the piece's lifetime.
    pub stbox: StBox,
}

impl ObjectRecord {
    /// The 3D box the R\*-Tree stores for this record: spatial MBR plus
    /// the *closed* time slab `[start, end − 1] / time_scale`, so closed
    /// 3D intersection matches half-open lifetime overlap exactly
    /// (instants are integers).
    ///
    /// # Panics
    /// On an empty or still-open lifetime.
    pub fn to_rect3(&self, time_scale: f64) -> sti_geom::Rect3 {
        let life = self.stbox.lifetime;
        assert!(
            !life.is_empty() && !life.is_open(),
            "finite non-empty lifetime required"
        );
        sti_geom::Rect3::new(
            [
                self.stbox.rect.lo.x,
                self.stbox.rect.lo.y,
                f64::from(life.start) / time_scale,
            ],
            [
                self.stbox.rect.hi.x,
                self.stbox.rect.hi.y,
                f64::from(life.end - 1) / time_scale,
            ],
        )
    }
}

/// Per-object split state retained by a [`SplitPlan`] so cut positions for
/// the allocated split counts can be emitted without re-running the
/// splitter.
pub(crate) enum SplitSource {
    Dp(DpTable),
    Merge(MergeHierarchy),
}

impl SplitSource {
    fn build(obj: &RasterizedObject, algo: SingleSplitAlgorithm, cap: usize) -> Self {
        match algo {
            SingleSplitAlgorithm::DpSplit => SplitSource::Dp(DpTable::build(obj, cap)),
            SingleSplitAlgorithm::MergeSplit => SplitSource::Merge(MergeHierarchy::build(obj)),
        }
    }

    fn curve(&self, cap: usize) -> VolumeCurve {
        match self {
            SplitSource::Dp(t) => t.curve(), // already capped at build time
            SplitSource::Merge(h) => h.curve(cap),
        }
    }

    fn cuts(&self, k: usize) -> Vec<usize> {
        match self {
            SplitSource::Dp(t) => t.cuts(k),
            SplitSource::Merge(h) => h.cuts(k),
        }
    }
}

/// A fully-resolved splitting decision for a collection of objects.
///
/// ```
/// use sti_core::{DistributionAlgorithm, SingleSplitAlgorithm, SplitBudget, SplitPlan};
/// use sti_geom::{Point2, Rect2};
/// use sti_trajectory::RasterizedObject;
///
/// // One object drifting right for 20 instants.
/// let rects = (0..20)
///     .map(|i| Rect2::centered(Point2::new(0.1 + 0.02 * i as f64, 0.5), 0.02, 0.02))
///     .collect();
/// let objects = vec![RasterizedObject::new(0, 100, rects)];
///
/// let plan = SplitPlan::build(
///     &objects,
///     SingleSplitAlgorithm::MergeSplit,
///     DistributionAlgorithm::LaGreedy,
///     SplitBudget::Count(3),
///     None,
/// );
/// let records = plan.records(&objects);
/// assert_eq!(records.len(), 4); // 3 splits → 4 pieces
/// assert!(plan.total_volume() < objects[0].unsplit_volume());
/// ```
pub struct SplitPlan {
    single: SingleSplitAlgorithm,
    distribution: DistributionAlgorithm,
    allocation: SplitAllocation,
    sources: Vec<SplitSource>,
    stats: PlanStats,
}

/// Timing breakdown of a [`SplitPlan::build_with`] call.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PlanStats {
    /// Worker threads the curve phase resolved to.
    pub workers: usize,
    /// Wall-clock spent building per-object split sources and curves
    /// (the data-parallel phase).
    pub curve_time: Duration,
    /// Wall-clock spent distributing the budget (sequential by nature:
    /// the algorithms make globally ordered greedy/DP decisions).
    pub distribute_time: Duration,
}

impl SplitPlan {
    /// Build the per-object split sources and volume curves once; the
    /// tuner re-distributes different budgets over the same curves.
    ///
    /// Each object's source is a pure function of that object, so the
    /// per-object work fans out over [`map_chunked`]; results come back
    /// in object order and are identical for every `parallelism`.
    pub(crate) fn prepare(
        objects: &[RasterizedObject],
        single: SingleSplitAlgorithm,
        max_splits_per_object: Option<usize>,
        parallelism: Parallelism,
    ) -> (Vec<SplitSource>, Vec<VolumeCurve>) {
        map_chunked(objects, parallelism, |_, o| {
            let cap = max_splits_per_object
                .unwrap_or(o.len() - 1)
                .min(o.len() - 1);
            let source = SplitSource::build(o, single, cap);
            let curve = source.curve(cap);
            (source, curve)
        })
        .into_iter()
        .unzip()
    }

    /// Assemble a plan from prepared parts plus a distribution result.
    pub(crate) fn from_parts(
        single: SingleSplitAlgorithm,
        distribution: DistributionAlgorithm,
        allocation: SplitAllocation,
        sources: Vec<SplitSource>,
        stats: PlanStats,
    ) -> Self {
        Self {
            single,
            distribution,
            allocation,
            sources,
            stats,
        }
    }

    /// Plan the splits: build per-object volume curves with `single`,
    /// then distribute the resolved budget with `distribution`.
    ///
    /// `max_splits_per_object` caps each object's curve; `None` allows up
    /// to `n − 1` splits per object (exact, but makes `DpSplit` cubic in
    /// the lifetime — the reason the paper's fig. 11 DPSplit bars reach a
    /// day of CPU).
    ///
    /// Single-threaded; [`SplitPlan::build_with`] takes a
    /// [`Parallelism`] knob and produces byte-identical output.
    pub fn build(
        objects: &[RasterizedObject],
        single: SingleSplitAlgorithm,
        distribution: DistributionAlgorithm,
        budget: SplitBudget,
        max_splits_per_object: Option<usize>,
    ) -> Self {
        Self::build_with(
            objects,
            single,
            distribution,
            budget,
            max_splits_per_object,
            Parallelism::Sequential,
        )
    }

    /// [`SplitPlan::build`] with an explicit [`Parallelism`] for the
    /// curve phase. Output (allocation, volumes, records) is identical
    /// for every setting; only wall-clock differs. Timings land in
    /// [`SplitPlan::stats`].
    pub fn build_with(
        objects: &[RasterizedObject],
        single: SingleSplitAlgorithm,
        distribution: DistributionAlgorithm,
        budget: SplitBudget,
        max_splits_per_object: Option<usize>,
        parallelism: Parallelism,
    ) -> Self {
        let k = budget.resolve(objects.len());
        let start = Instant::now();
        let (sources, curves) = Self::prepare(objects, single, max_splits_per_object, parallelism);
        let curve_time = start.elapsed();
        let start = Instant::now();
        let allocation = distribution.distribute(&curves, k);
        let stats = PlanStats {
            workers: parallelism.workers(),
            curve_time,
            distribute_time: start.elapsed(),
        };
        Self::from_parts(single, distribution, allocation, sources, stats)
    }

    /// Timing breakdown of the build that produced this plan.
    pub fn stats(&self) -> &PlanStats {
        &self.stats
    }

    /// The single-object algorithm used.
    pub fn single_algorithm(&self) -> SingleSplitAlgorithm {
        self.single
    }

    /// The distribution algorithm used.
    pub fn distribution_algorithm(&self) -> DistributionAlgorithm {
        self.distribution
    }

    /// The split allocation (per-object counts and total volume).
    pub fn allocation(&self) -> &SplitAllocation {
        &self.allocation
    }

    /// Total volume of the planned representation.
    pub fn total_volume(&self) -> f64 {
        self.allocation.total_volume
    }

    /// Materialize the records: each object contributes `splits + 1`
    /// boxes, in object order, pieces in time order.
    ///
    /// # Panics
    /// If `objects` is not the same collection the plan was built from
    /// (length mismatch).
    pub fn records(&self, objects: &[RasterizedObject]) -> Vec<ObjectRecord> {
        records_for(objects, &self.sources, &self.allocation.splits)
    }
}

/// Materialize records from prepared sources and a per-object split
/// allocation (shared by [`SplitPlan::records`] and the tuner, which
/// re-distributes many budgets over the same sources).
pub(crate) fn records_for(
    objects: &[RasterizedObject],
    sources: &[SplitSource],
    splits: &[usize],
) -> Vec<ObjectRecord> {
    assert_eq!(objects.len(), splits.len(), "plan/object mismatch");
    let mut out = Vec::with_capacity(objects.len() + splits.iter().sum::<usize>());
    for ((obj, src), &s) in objects.iter().zip(sources).zip(splits) {
        let cuts = src.cuts(s);
        for stbox in obj.boxes_for_cuts(&cuts) {
            out.push(ObjectRecord {
                id: obj.id(),
                stbox,
            });
        }
    }
    out
}

/// One timestamped update in a record stream: partially persistent
/// structures ingest records as insert/delete events in time order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum RecordEvent {
    /// The record's lifetime ends at this instant (applied first at equal
    /// timestamps so an object's consecutive pieces never coexist).
    Delete,
    /// The record's lifetime starts at this instant.
    Insert,
}

/// Expand records into the time-ordered update stream the partially
/// persistent structures consume: `(time, event, record index)`, deletes
/// before inserts at equal instants.
///
/// # Panics
/// On an empty or still-open record lifetime (offline datasets are
/// finite).
pub fn record_events(records: &[ObjectRecord]) -> Vec<(sti_geom::Time, RecordEvent, usize)> {
    let mut events = Vec::with_capacity(records.len() * 2);
    for (i, r) in records.iter().enumerate() {
        let life = r.stbox.lifetime;
        assert!(!life.is_empty(), "record {} has an empty lifetime", r.id);
        assert!(!life.is_open(), "offline datasets have finite lifetimes");
        events.push((life.start, RecordEvent::Insert, i));
        events.push((life.end, RecordEvent::Delete, i));
    }
    events.sort_unstable();
    events
}

/// Records for the *unsplit* baseline: one MBR per object.
pub fn unsplit_records(objects: &[RasterizedObject]) -> Vec<ObjectRecord> {
    objects
        .iter()
        .map(|o| ObjectRecord {
            id: o.id(),
            stbox: StBox::new(o.mbr_range(0, o.len()), o.lifetime()),
        })
        .collect()
}

/// Records for the *piecewise* baseline: one box per motion segment
/// (splits at every movement change point; unbudgeted).
pub fn piecewise_records(objects: &[RasterizedObject]) -> Vec<ObjectRecord> {
    let mut out = Vec::new();
    for obj in objects {
        for stbox in obj.boxes_for_cuts(&piecewise_cuts(obj)) {
            out.push(ObjectRecord {
                id: obj.id(),
                stbox,
            });
        }
    }
    out
}

/// Total volume of a record set — the objective the paper minimizes.
pub fn total_volume(records: &[ObjectRecord]) -> f64 {
    records.iter().map(|r| r.stbox.volume()).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::single::testutil::{diagonal_mover, stationary, two_jump};

    fn objects() -> Vec<RasterizedObject> {
        vec![diagonal_mover(12), two_jump(4), stationary(8)]
    }

    #[test]
    fn budget_resolution() {
        assert_eq!(SplitBudget::Count(7).resolve(100), 7);
        assert_eq!(SplitBudget::Percent(50.0).resolve(100), 50);
        assert_eq!(SplitBudget::Percent(150.0).resolve(10), 15);
        assert_eq!(SplitBudget::Percent(1.0).resolve(50), 1); // 0.5 rounds up
    }

    #[test]
    fn plan_produces_consistent_records() {
        let objs = objects();
        for single in [
            SingleSplitAlgorithm::DpSplit,
            SingleSplitAlgorithm::MergeSplit,
        ] {
            for dist in [
                DistributionAlgorithm::Optimal,
                DistributionAlgorithm::Greedy,
                DistributionAlgorithm::LaGreedy,
            ] {
                let plan = SplitPlan::build(&objs, single, dist, SplitBudget::Count(5), None);
                let records = plan.records(&objs);
                assert_eq!(records.len(), plan.allocation().record_count());
                // Materialized volume equals the planned volume.
                let v = total_volume(&records);
                assert!(
                    (v - plan.total_volume()).abs() < 1e-9,
                    "{single}/{dist}: {v} vs {}",
                    plan.total_volume()
                );
            }
        }
    }

    #[test]
    fn splitting_reduces_volume_vs_unsplit() {
        let objs = objects();
        let unsplit = total_volume(&unsplit_records(&objs));
        let plan = SplitPlan::build(
            &objs,
            SingleSplitAlgorithm::MergeSplit,
            DistributionAlgorithm::LaGreedy,
            SplitBudget::Percent(150.0),
            None,
        );
        assert!(plan.total_volume() < unsplit);
    }

    #[test]
    fn optimal_dominates_heuristics_on_the_same_curves() {
        let objs = objects();
        let k = SplitBudget::Count(6);
        let opt = SplitPlan::build(
            &objs,
            SingleSplitAlgorithm::DpSplit,
            DistributionAlgorithm::Optimal,
            k,
            None,
        );
        let gre = SplitPlan::build(
            &objs,
            SingleSplitAlgorithm::DpSplit,
            DistributionAlgorithm::Greedy,
            k,
            None,
        );
        let la = SplitPlan::build(
            &objs,
            SingleSplitAlgorithm::DpSplit,
            DistributionAlgorithm::LaGreedy,
            k,
            None,
        );
        assert!(opt.total_volume() <= la.total_volume() + 1e-9);
        assert!(la.total_volume() <= gre.total_volume() + 1e-9);
    }

    #[test]
    fn records_cover_every_lifetime_instant_exactly_once() {
        let objs = objects();
        let plan = SplitPlan::build(
            &objs,
            SingleSplitAlgorithm::MergeSplit,
            DistributionAlgorithm::Greedy,
            SplitBudget::Percent(100.0),
            None,
        );
        let records = plan.records(&objs);
        for obj in &objs {
            let mine: Vec<_> = records.iter().filter(|r| r.id == obj.id()).collect();
            let life = obj.lifetime();
            for t in life.start..life.end {
                let covering = mine.iter().filter(|r| r.stbox.lifetime.contains(t)).count();
                assert_eq!(covering, 1, "object {} instant {t}", obj.id());
            }
        }
    }

    #[test]
    fn cap_limits_per_object_splits() {
        let objs = objects();
        let plan = SplitPlan::build(
            &objs,
            SingleSplitAlgorithm::MergeSplit,
            DistributionAlgorithm::Greedy,
            SplitBudget::Count(1000),
            Some(2),
        );
        assert!(plan.allocation().splits.iter().all(|&s| s <= 2));
    }

    #[test]
    fn parallel_build_is_byte_identical_to_sequential() {
        use crate::parallel::Parallelism;
        let objs = objects();
        let seq = SplitPlan::build(
            &objs,
            SingleSplitAlgorithm::MergeSplit,
            DistributionAlgorithm::LaGreedy,
            SplitBudget::Count(5),
            None,
        );
        for workers in [2, 3, 8] {
            let par = SplitPlan::build_with(
                &objs,
                SingleSplitAlgorithm::MergeSplit,
                DistributionAlgorithm::LaGreedy,
                SplitBudget::Count(5),
                None,
                Parallelism::fixed(workers),
            );
            assert_eq!(par.allocation().splits, seq.allocation().splits);
            assert_eq!(
                par.total_volume().to_bits(),
                seq.total_volume().to_bits(),
                "{workers} workers"
            );
            assert_eq!(par.records(&objs), seq.records(&objs));
            assert_eq!(par.stats().workers, workers);
        }
    }

    #[test]
    fn unsplit_and_piecewise_baselines() {
        let objs = objects();
        let u = unsplit_records(&objs);
        assert_eq!(u.len(), objs.len());
        // diagonal_mover/two_jump/stationary are built raster-first and
        // carry no change points, so piecewise degenerates to unsplit.
        let p = piecewise_records(&objs);
        assert_eq!(p.len(), objs.len());
        assert!((total_volume(&p) - total_volume(&u)).abs() < 1e-12);
    }
}
