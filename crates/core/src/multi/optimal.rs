//! Optimal split distribution by dynamic programming (paper §III-B.1).

use crate::multi::SplitAllocation;
use crate::VolumeCurve;

/// Distribute `k` splits over the objects optimally.
///
/// Implements `TV_l[i] = min_{0 ≤ j ≤ l} { TV_{l−j}[i−1] + V_j[i] }`
/// (Theorem 2). The inner minimum only ranges over
/// `j ≤ min(l, max_splits_i)`, so the running time is
/// O(N · K · min(K, n_max)) — the paper's O(N·K²) bound with the
/// per-object cap made explicit. Unassigned splits are allowed (wasting a
/// split never helps but must not be infeasible: the budget "might not be
/// enough to split every object", and conversely can exceed what the
/// objects can absorb).
///
/// Memory: O(N·K) `u16` entries for allocation reconstruction; per-object
/// split counts above `u16::MAX` are rejected (no real lifetime is that
/// long).
pub fn distribute_optimal(curves: &[VolumeCurve], k: usize) -> SplitAllocation {
    let n = curves.len();
    if n == 0 {
        return SplitAllocation {
            splits: Vec::new(),
            total_volume: 0.0,
        };
    }
    for c in curves {
        assert!(
            c.max_splits() <= usize::from(u16::MAX),
            "per-object split cap exceeds u16 reconstruction range"
        );
    }

    // tv[l] = optimal volume of the objects processed so far using ≤ l
    // splits; rolling over objects.
    let mut tv = vec![0.0f64; k + 1];
    let mut tv_next = vec![0.0f64; k + 1];
    // choice[i * (k+1) + l] = splits given to object i in the optimum for
    // budget l.
    let mut choice = vec![0u16; n * (k + 1)];

    for (i, curve) in curves.iter().enumerate() {
        let cap = curve.max_splits();
        for l in 0..=k {
            let mut best = f64::INFINITY;
            let mut best_j = 0u16;
            for j in 0..=l.min(cap) {
                let cand = tv[l - j] + curve.volume(j);
                if cand < best {
                    best = cand;
                    best_j = j as u16;
                }
            }
            tv_next[l] = best;
            choice[i * (k + 1) + l] = best_j;
        }
        std::mem::swap(&mut tv, &mut tv_next);
    }

    // Backtrack the allocation.
    let mut splits = vec![0usize; n];
    let mut l = k;
    for i in (0..n).rev() {
        let j = usize::from(choice[i * (k + 1) + l]);
        splits[i] = j;
        l -= j;
    }

    SplitAllocation {
        splits,
        total_volume: tv[k],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::multi::testutil::*;
    use proptest::prelude::*;

    #[test]
    fn empty_input() {
        let a = distribute_optimal(&[], 5);
        assert!(a.splits.is_empty());
        assert_eq!(a.total_volume, 0.0);
    }

    #[test]
    fn zero_budget_keeps_unsplit_volumes() {
        let curves = [concave(), trap(), flat()];
        let a = distribute_optimal(&curves, 0);
        assert_eq!(a.splits, vec![0, 0, 0]);
        assert!((a.total_volume - 25.0).abs() < 1e-12);
    }

    #[test]
    fn prefers_the_trap_object_with_two_splits() {
        // With budget 2 the optimum is to give both splits to the trap
        // curve (gain 9.0) rather than two concave first-splits (4 + 2).
        let curves = [concave(), trap()];
        let a = distribute_optimal(&curves, 2);
        assert_eq!(a.splits, vec![0, 2]);
        assert!((a.total_volume - (10.0 + 1.0)).abs() < 1e-12);
    }

    #[test]
    fn oversized_budget_saturates_gracefully() {
        let curves = [concave(), flat()];
        let a = distribute_optimal(&curves, 100);
        // concave saturates at 4 splits, flat gains nothing anywhere.
        assert!((a.total_volume - (3.0 + 5.0)).abs() < 1e-12);
        assert!(a.splits[0] <= 4 && a.splits[1] <= 2);
    }

    #[test]
    fn matches_brute_force_on_mixed_curves() {
        let curves = [concave(), trap(), flat(), concave()];
        for k in 0..=8 {
            let a = distribute_optimal(&curves, k);
            let bf = brute_force(&curves, k);
            assert!((a.total_volume - bf).abs() < 1e-9, "k={k}");
            assert!((a.recompute_volume(&curves) - a.total_volume).abs() < 1e-9);
            assert!(a.splits_used() <= k);
        }
    }

    fn arb_curve() -> impl Strategy<Value = VolumeCurve> {
        prop::collection::vec(0.0..5.0f64, 1..6).prop_map(|drops| {
            // Build a non-increasing curve from random drops.
            let mut v = 20.0;
            let mut vols = vec![v];
            for d in drops {
                v -= d;
                vols.push(v);
            }
            VolumeCurve::new(vols)
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn equals_brute_force(curves in prop::collection::vec(arb_curve(), 1..5), k in 0usize..7) {
            let a = distribute_optimal(&curves, k);
            let bf = brute_force(&curves, k);
            prop_assert!((a.total_volume - bf).abs() < 1e-9);
            prop_assert!((a.recompute_volume(&curves) - a.total_volume).abs() < 1e-9);
        }

        #[test]
        fn monotone_in_budget(curves in prop::collection::vec(arb_curve(), 1..5), k in 0usize..7) {
            let a = distribute_optimal(&curves, k);
            let b = distribute_optimal(&curves, k + 1);
            prop_assert!(b.total_volume <= a.total_volume + 1e-9);
        }
    }
}
