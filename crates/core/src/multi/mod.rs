//! Distributing a split budget among a collection of objects
//! (paper §III-B).
//!
//! Sub-problem B: *given a collection of objects and a predetermined
//! number of splits `K`, distribute the splits among the objects to
//! minimize the total volume* (and thereby the query cost of the index
//! built over the resulting boxes).
//!
//! All three algorithms consume the objects through their
//! [`VolumeCurve`]s, which a single-object splitter precomputes
//! ("First, each object is split with DPSplit and MergeSplit and the
//! results are stored", §V).

pub mod greedy;
pub mod lagreedy;
pub mod optimal;

pub use greedy::distribute_greedy;
pub use lagreedy::distribute_lagreedy;
pub use optimal::distribute_optimal;

use crate::VolumeCurve;

/// Result of a split-distribution algorithm.
#[derive(Debug, Clone, PartialEq)]
pub struct SplitAllocation {
    /// Splits assigned to each object (same order as the input curves).
    pub splits: Vec<usize>,
    /// Total volume of the resulting representation,
    /// `Σ_i curve_i.volume(splits[i])`.
    pub total_volume: f64,
}

impl SplitAllocation {
    /// Total number of splits actually assigned.
    pub fn splits_used(&self) -> usize {
        self.splits.iter().sum()
    }

    /// Number of records after splitting: every object contributes
    /// `splits + 1` boxes.
    pub fn record_count(&self) -> usize {
        self.splits.len() + self.splits_used()
    }

    /// Recompute the total volume from scratch (used by tests to check
    /// the incrementally-maintained value).
    pub fn recompute_volume(&self, curves: &[VolumeCurve]) -> f64 {
        assert_eq!(curves.len(), self.splits.len());
        self.splits
            .iter()
            .zip(curves)
            .map(|(&s, c)| c.volume(s))
            .sum()
    }
}

/// Selector for the three distribution algorithms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DistributionAlgorithm {
    /// Optimal dynamic programming, O(N·K²) (§III-B.1, Theorem 2).
    Optimal,
    /// Plain greedy by marginal gain, O((K + N) lg N) (§III-B.2, fig. 9).
    Greedy,
    /// Greedy plus the look-ahead-2 exchange refinement (§III-B.3, fig. 10).
    LaGreedy,
}

impl DistributionAlgorithm {
    /// Run the selected algorithm.
    pub fn distribute(self, curves: &[VolumeCurve], k: usize) -> SplitAllocation {
        match self {
            DistributionAlgorithm::Optimal => distribute_optimal(curves, k),
            DistributionAlgorithm::Greedy => distribute_greedy(curves, k),
            DistributionAlgorithm::LaGreedy => distribute_lagreedy(curves, k),
        }
    }
}

impl std::fmt::Display for DistributionAlgorithm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DistributionAlgorithm::Optimal => write!(f, "Optimal"),
            DistributionAlgorithm::Greedy => write!(f, "Greedy"),
            DistributionAlgorithm::LaGreedy => write!(f, "LAGreedy"),
        }
    }
}

#[cfg(test)]
pub(crate) mod testutil {
    use crate::VolumeCurve;

    /// A concave (monotone-gain) curve: volumes 10, 6, 4, 3, 3, …
    pub fn concave() -> VolumeCurve {
        VolumeCurve::new(vec![10.0, 6.0, 4.0, 3.0, 3.0])
    }

    /// A fig.-4 style curve: first split nearly useless, second huge.
    pub fn trap() -> VolumeCurve {
        VolumeCurve::new(vec![10.0, 9.9, 1.0, 0.9])
    }

    /// A flat curve (stationary object).
    pub fn flat() -> VolumeCurve {
        VolumeCurve::new(vec![5.0, 5.0, 5.0])
    }

    /// Brute-force optimal allocation by full enumeration (tiny inputs).
    pub fn brute_force(curves: &[VolumeCurve], k: usize) -> f64 {
        fn rec(curves: &[VolumeCurve], k: usize, i: usize, acc: f64, best: &mut f64) {
            if i == curves.len() {
                if acc < *best {
                    *best = acc;
                }
                return;
            }
            for j in 0..=k.min(curves[i].max_splits()) {
                rec(curves, k - j, i + 1, acc + curves[i].volume(j), best);
            }
        }
        let mut best = f64::INFINITY;
        rec(curves, k, 0, 0.0, &mut best);
        best
    }
}
