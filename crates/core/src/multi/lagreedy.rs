//! The look-ahead-2 greedy distribution algorithm
//! (paper §III-B.3, fig. 10).

use crate::multi::{distribute_greedy, SplitAllocation};
use crate::util::OrdF64;
use crate::VolumeCurve;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Safety bound on exchange iterations; each exchange strictly reduces
/// the total volume so the loop terminates on its own, but a cap keeps a
/// float-pathological input from looping long.
fn max_exchanges(k: usize) -> usize {
    10 * k + 100
}

/// Greedy distribution followed by the look-ahead-2 exchange refinement.
///
/// After the plain greedy pass, two priority queues are maintained
/// (fig. 10):
///
/// * `PQ_la1` — min-queue over allocated objects keyed by the gain of
///   their *last* assigned split,
/// * `PQ_la2` — max-queue over objects keyed by the gain of *two more*
///   splits.
///
/// While the top of `PQ_la2` (an object `O3`) gains more than the two
/// cheapest last-splits (`O1`, `O2`) combined, one split is taken from
/// each of `O1`, `O2` and both are given to `O3`. This rescues
/// fig.-4-style objects whose first split is poor but whose second is
/// excellent — exactly the objects the plain greedy starves. Worst-case
/// complexity matches the greedy; the paper measured ≈10% extra time.
pub fn distribute_lagreedy(curves: &[VolumeCurve], k: usize) -> SplitAllocation {
    let seed = distribute_greedy(curves, k);
    let mut splits = seed.splits;
    let mut total = seed.total_volume;

    // Entries carry the object's split count at push time; an entry is
    // stale when the count has since changed.
    type MinEntry = Reverse<(OrdF64, usize, usize)>;
    type MaxEntry = (OrdF64, usize, usize);
    let mut la1: BinaryHeap<MinEntry> = BinaryHeap::new();
    let mut la2: BinaryHeap<MaxEntry> = BinaryHeap::new();

    let push_both = |la1: &mut BinaryHeap<MinEntry>,
                     la2: &mut BinaryHeap<MaxEntry>,
                     curves: &[VolumeCurve],
                     splits: &[usize],
                     i: usize| {
        let s = splits[i];
        if s >= 1 {
            la1.push(Reverse((OrdF64(curves[i].gain(s)), i, s)));
        }
        if s + 2 <= curves[i].max_splits() {
            la2.push((OrdF64(curves[i].gain_between(s, s + 2)), i, s));
        }
    };

    for i in 0..curves.len() {
        push_both(&mut la1, &mut la2, curves, &splits, i);
    }

    for _ in 0..max_exchanges(k) {
        // Pop the two valid, distinct objects with the cheapest last splits.
        let mut donors: Vec<(f64, usize)> = Vec::with_capacity(2);
        while donors.len() < 2 {
            let Some(Reverse((OrdF64(g), i, stamp))) = la1.pop() else {
                break;
            };
            if stamp != splits[i] {
                continue; // stale
            }
            if donors.iter().any(|&(_, d)| d == i) {
                // Same object twice cannot happen (one valid stamp per
                // object), but keep the guard cheap and explicit.
                continue;
            }
            donors.push((g, i));
        }
        if donors.len() < 2 {
            // Not enough allocated objects; restore and finish.
            for (g, i) in donors {
                la1.push(Reverse((OrdF64(g), i, splits[i])));
            }
            break;
        }
        let (g1, o1) = donors[0];
        let (g2, o2) = donors[1];

        // Pop the best valid la2 object distinct from the donors,
        // remembering valid-but-excluded entries for reinsertion.
        let mut excluded: Vec<MaxEntry> = Vec::new();
        let mut receiver: Option<(f64, usize)> = None;
        while let Some((OrdF64(g), i, stamp)) = la2.pop() {
            if stamp != splits[i] {
                continue;
            }
            if i == o1 || i == o2 {
                excluded.push((OrdF64(g), i, stamp));
                continue;
            }
            receiver = Some((g, i));
            break;
        }
        for e in excluded {
            la2.push(e);
        }

        let improves = match receiver {
            Some((g3, _)) => g3 > g1 + g2 + 1e-12 * (1.0 + total.abs()),
            None => false,
        };
        let viable = if improves { receiver } else { None };
        let Some((g3, o3)) = viable else {
            // Put everything back (the receiver entry, if any, is still
            // valid) and stop: no further exchange helps.
            la1.push(Reverse((OrdF64(g1), o1, splits[o1])));
            la1.push(Reverse((OrdF64(g2), o2, splits[o2])));
            if let Some((g3, o3)) = receiver {
                la2.push((OrdF64(g3), o3, splits[o3]));
            }
            break;
        };

        // Execute the exchange: o1, o2 each give back their last split,
        // o3 receives two.
        total += g1 + g2 - g3;
        splits[o1] -= 1;
        splits[o2] -= 1;
        splits[o3] += 2;
        for i in [o1, o2, o3] {
            push_both(&mut la1, &mut la2, curves, &splits, i);
        }
    }

    SplitAllocation {
        splits,
        total_volume: total,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::multi::testutil::*;
    use crate::multi::{distribute_greedy, distribute_optimal};
    use proptest::prelude::*;

    #[test]
    fn rescues_the_trap_object() {
        // Greedy gives one split to each concave curve (gain 4 + 4 = 8)
        // and starves the trap, whose two-split gain is 9. The exchange
        // must take both splits back and hand them to the trap — the
        // optimum. (The paper's exchange needs two *distinct* donors,
        // hence two concave curves here.)
        let curves = [concave(), concave(), trap()];
        let g = distribute_greedy(&curves, 2);
        assert_eq!(g.splits, vec![1, 1, 0]);
        let la = distribute_lagreedy(&curves, 2);
        let opt = distribute_optimal(&curves, 2);
        assert_eq!(la.splits, vec![0, 0, 2]);
        assert!((la.total_volume - opt.total_volume).abs() < 1e-9);
    }

    #[test]
    fn never_worse_than_greedy() {
        let curves = [concave(), trap(), flat(), trap(), concave()];
        for k in 0..12 {
            let g = distribute_greedy(&curves, k);
            let la = distribute_lagreedy(&curves, k);
            assert!(la.total_volume <= g.total_volume + 1e-9, "k={k}");
            assert!((la.recompute_volume(&curves) - la.total_volume).abs() < 1e-9);
        }
    }

    #[test]
    fn conserves_the_split_budget() {
        let curves = [concave(), trap(), trap()];
        for k in 0..10 {
            let g = distribute_greedy(&curves, k);
            let la = distribute_lagreedy(&curves, k);
            // Exchanges move splits around but never create or destroy them.
            assert_eq!(la.splits_used(), g.splits_used(), "k={k}");
        }
    }

    #[test]
    fn no_allocated_objects_is_a_noop() {
        let curves = [flat()];
        let la = distribute_lagreedy(&curves, 0);
        assert_eq!(la.splits, vec![0]);
    }

    #[test]
    fn matches_optimal_on_monotone_curves() {
        // With monotone gains greedy is already optimal; LAGreedy must not
        // disturb it.
        let curves = [concave(), concave(), concave()];
        for k in 0..=12 {
            let la = distribute_lagreedy(&curves, k);
            let opt = distribute_optimal(&curves, k);
            assert!((la.total_volume - opt.total_volume).abs() < 1e-9, "k={k}");
        }
    }

    fn arb_curve() -> impl Strategy<Value = VolumeCurve> {
        prop::collection::vec(0.0..5.0f64, 1..6).prop_map(|drops| {
            let mut v = 25.0;
            let mut vols = vec![v];
            for d in drops {
                v -= d;
                vols.push(v);
            }
            VolumeCurve::new(vols)
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn sandwiched_between_optimal_and_greedy(
            curves in prop::collection::vec(arb_curve(), 1..6),
            k in 0usize..8,
        ) {
            let opt = distribute_optimal(&curves, k);
            let la = distribute_lagreedy(&curves, k);
            let g = distribute_greedy(&curves, k);
            prop_assert!(la.total_volume <= g.total_volume + 1e-9);
            prop_assert!(la.total_volume + 1e-9 >= opt.total_volume);
            prop_assert!((la.recompute_volume(&curves) - la.total_volume).abs() < 1e-9);
        }
    }
}
