//! The plain greedy split-distribution algorithm (paper §III-B.2, fig. 9).

use crate::multi::SplitAllocation;
use crate::util::OrdF64;
use crate::VolumeCurve;
use std::collections::BinaryHeap;

/// Distribute `k` splits greedily: repeatedly give the next split to the
/// object whose *next* split yields the largest volume reduction.
///
/// A max priority queue keyed by marginal gain drives the loop:
/// O(N lg N) to seed plus O(K lg N) for the assignments (fig. 9). Entries
/// are invalidated lazily by tagging them with the object's split count at
/// push time.
///
/// With non-monotone gain curves (general motion, Claim 1 violated) this
/// can be arbitrarily suboptimal — an object whose first split is poor but
/// whose second is excellent never surfaces. That is precisely the gap
/// [`distribute_lagreedy`](crate::multi::distribute_lagreedy) closes.
pub fn distribute_greedy(curves: &[VolumeCurve], k: usize) -> SplitAllocation {
    let n = curves.len();
    let mut splits = vec![0usize; n];
    let mut total: f64 = curves.iter().map(|c| c.volume(0)).sum();

    // (gain of next split, object, split count when pushed)
    let mut heap: BinaryHeap<(OrdF64, usize, usize)> = BinaryHeap::with_capacity(n);
    for (i, c) in curves.iter().enumerate() {
        if c.max_splits() >= 1 {
            heap.push((OrdF64(c.gain(1)), i, 0));
        }
    }

    let mut remaining = k;
    while remaining > 0 {
        let Some((OrdF64(gain), i, stamp)) = heap.pop() else {
            break; // all objects saturated
        };
        if stamp != splits[i] {
            continue; // stale entry
        }
        splits[i] += 1;
        total -= gain;
        remaining -= 1;
        if splits[i] < curves[i].max_splits() {
            heap.push((OrdF64(curves[i].gain(splits[i] + 1)), i, splits[i]));
        }
    }

    SplitAllocation {
        splits,
        total_volume: total,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::multi::distribute_optimal;
    use crate::multi::testutil::*;

    #[test]
    fn empty_and_zero_budget() {
        assert_eq!(distribute_greedy(&[], 3).splits.len(), 0);
        let curves = [concave()];
        let a = distribute_greedy(&curves, 0);
        assert_eq!(a.splits, vec![0]);
        assert!((a.total_volume - 10.0).abs() < 1e-12);
    }

    #[test]
    fn follows_marginal_gains_on_concave_curves() {
        // Two identical concave curves, gains 4, 2, 1, 0 each.
        let curves = [concave(), concave()];
        let a = distribute_greedy(&curves, 4);
        // Greedy alternates: both objects get 2 splits (gains 4+4+2+2).
        assert_eq!(a.splits, vec![2, 2]);
        assert!((a.total_volume - 8.0).abs() < 1e-12);
        // On monotone curves greedy IS optimal.
        let o = distribute_optimal(&curves, 4);
        assert!((a.total_volume - o.total_volume).abs() < 1e-12);
    }

    #[test]
    fn falls_into_the_trap() {
        // Budget 2: optimal gives both splits to the trap curve (gain 9);
        // greedy takes concave's first two gains (4 + 2 = 6) because the
        // trap's *first* split gains only 0.1.
        let curves = [concave(), trap()];
        let g = distribute_greedy(&curves, 2);
        let o = distribute_optimal(&curves, 2);
        assert_eq!(g.splits, vec![2, 0]);
        assert!(g.total_volume > o.total_volume + 1.0);
    }

    #[test]
    fn saturates_and_stops() {
        let curves = [concave()]; // max 4 splits
        let a = distribute_greedy(&curves, 100);
        assert_eq!(a.splits, vec![4]);
        assert!((a.total_volume - 3.0).abs() < 1e-12);
    }

    #[test]
    fn incremental_volume_matches_recompute() {
        let curves = [concave(), trap(), flat(), concave()];
        for k in 0..10 {
            let a = distribute_greedy(&curves, k);
            assert!((a.recompute_volume(&curves) - a.total_volume).abs() < 1e-9);
            assert!(a.total_volume + 1e-9 >= distribute_optimal(&curves, k).total_volume);
        }
    }

    #[test]
    fn flat_curves_still_receive_splits_last() {
        // Zero-gain splits are assigned only after all positive gains are
        // exhausted (max-heap property); the volume is unaffected.
        let curves = [flat(), concave()];
        let a = distribute_greedy(&curves, 6);
        assert_eq!(a.splits[1], 4); // concave saturated first
        assert_eq!(a.splits[0], 2); // flat absorbed the remainder
        assert!((a.total_volume - (5.0 + 3.0)).abs() < 1e-12);
    }
}
