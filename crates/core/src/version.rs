//! Versioned snapshot publication for the live-ingestion pipeline.
//!
//! The single-writer/multi-reader design in [`crate::pipeline`] never
//! lets a reader observe a half-applied batch: the committer applies
//! updates to a *private* tree and publishes the result as an immutable
//! [`PublishedIndex`] behind an atomic pointer swap. This module holds
//! the pieces that define what "published" means:
//!
//! * [`VersionStamp`] — the monotonic identity of one published
//!   snapshot (commit number + query watermark),
//! * [`BatchState`] / [`BatchEvent`] / [`transition`] — the explicit
//!   state machine a batch of queued operations moves through
//!   (queued → batched → committing → committed → published, with
//!   rolled-back as the only failure exit), kept as a *pure* function
//!   so the property tests can model-check every path the pipeline
//!   takes,
//! * [`PublishedIndex`] — a frozen tree + stamp pair readers share via
//!   `Arc` with zero coordination against the writer.

use sti_geom::Time;
use sti_pprtree::PprTree;

/// Identity of one published snapshot.
///
/// `version` increments by exactly one per successful commit (a
/// rolled-back batch consumes no version number), so readers can detect
/// staleness by comparing stamps. `watermark` is the first instant that
/// is *not* yet final: every query strictly before it reads fully
/// committed history and will return the same answer forever.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VersionStamp {
    /// Monotonic commit number (0 = the empty initial version).
    pub version: u64,
    /// Queries strictly before this instant are final.
    pub watermark: Time,
}

impl VersionStamp {
    /// The stamp of the empty, never-committed index.
    pub const INITIAL: VersionStamp = VersionStamp {
        version: 0,
        watermark: 0,
    };
}

impl std::fmt::Display for VersionStamp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "v{} (watermark {})", self.version, self.watermark)
    }
}

/// Where a batch of ingest operations currently is in its lifecycle.
///
/// ```text
///              drain            begin           applied
///   Queued ──────────▶ Batched ───────▶ Committing ─────▶ Committed
///                                            │                │
///                                            │ fail           │ publish
///                                            ▼                ▼
///                                       RolledBack        Published
/// ```
///
/// Only [`transition`] may move a batch between states; the pipeline
/// threads every step through it so an illegal hop (e.g. publishing a
/// batch that never committed) is a typed error, not a silent bug.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BatchState {
    /// Operations sit in the ingest queue; nothing is drained yet.
    Queued,
    /// The committer drained the queue and validated the operations
    /// (malformed ones were rejected with typed errors).
    Batched,
    /// The batch is being applied to the committer's private tree under
    /// a batch transaction.
    Committing,
    /// The batch transaction committed; the private tree holds the new
    /// version but readers cannot see it yet.
    Committed,
    /// The new version was atomically swapped into the published slot;
    /// readers acquire it from now on.
    Published,
    /// The batch failed mid-commit and was fully undone; the published
    /// version never changed. Terminal for this batch — its operations
    /// go back to the pending set and re-enter as a *new* batch.
    RolledBack,
}

impl std::fmt::Display for BatchState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            BatchState::Queued => "queued",
            BatchState::Batched => "batched",
            BatchState::Committing => "committing",
            BatchState::Committed => "committed",
            BatchState::Published => "published",
            BatchState::RolledBack => "rolled-back",
        };
        f.write_str(s)
    }
}

/// What happened to a batch, driving [`transition`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BatchEvent {
    /// The committer drained the queue into a validated batch.
    Drain,
    /// The batch transaction opened on the private tree.
    Begin,
    /// Every event in the batch applied; the transaction committed.
    Applied,
    /// A storage fault aborted the batch; everything was undone.
    Fail,
    /// The committed version was swapped into the published slot.
    Publish,
}

impl std::fmt::Display for BatchEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            BatchEvent::Drain => "drain",
            BatchEvent::Begin => "begin",
            BatchEvent::Applied => "applied",
            BatchEvent::Fail => "fail",
            BatchEvent::Publish => "publish",
        };
        f.write_str(s)
    }
}

/// A [`BatchEvent`] that is illegal in the batch's current state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InvalidTransition {
    /// The state the batch was in.
    pub state: BatchState,
    /// The event that is not legal there.
    pub event: BatchEvent,
}

impl std::fmt::Display for InvalidTransition {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "batch event '{}' illegal in state '{}'",
            self.event, self.state
        )
    }
}

impl std::error::Error for InvalidTransition {}

/// The pure batch state machine: the single source of truth for which
/// lifecycle hops exist. The pipeline calls this for its real batches;
/// the property tests replay recorded event traces through it to prove
/// the implementation never takes an edge this function does not have.
pub fn transition(state: BatchState, event: BatchEvent) -> Result<BatchState, InvalidTransition> {
    use BatchEvent as E;
    use BatchState as S;
    match (state, event) {
        (S::Queued, E::Drain) => Ok(S::Batched),
        (S::Batched, E::Begin) => Ok(S::Committing),
        // Failure exists only while pages are being touched: the
        // catch-up replay and the batch itself run inside one batch
        // transaction, so there is nothing fallible before `Begin` and
        // nothing left to fail after `Applied`.
        (S::Committing, E::Fail) => Ok(S::RolledBack),
        (S::Committing, E::Applied) => Ok(S::Committed),
        (S::Committed, E::Publish) => Ok(S::Published),
        (state, event) => Err(InvalidTransition { state, event }),
    }
}

/// One immutable published version of the index: a frozen PPR-Tree plus
/// the [`VersionStamp`] identifying it.
///
/// Readers obtain an `Arc<PublishedIndex>` from the pipeline and query
/// it with plain `&self` — the tree inside will never change again, so
/// there is nothing to coordinate with. The committer reclaims the
/// tree's pages for the next version only once every reader's `Arc` is
/// dropped (left-right publication; see [`crate::pipeline`]).
pub struct PublishedIndex {
    tree: PprTree,
    stamp: VersionStamp,
}

impl std::fmt::Debug for PublishedIndex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PublishedIndex")
            .field("stamp", &self.stamp)
            .field("records", &self.tree.total_records())
            .finish_non_exhaustive()
    }
}

impl PublishedIndex {
    /// Freeze `tree` as the published version identified by `stamp`.
    pub(crate) fn new(tree: PprTree, stamp: VersionStamp) -> Self {
        Self { tree, stamp }
    }

    /// The frozen tree. Queries take `&self`; updates are impossible
    /// because no `&mut` can be formed through the shared `Arc`.
    pub fn tree(&self) -> &PprTree {
        &self.tree
    }

    /// This version's identity.
    pub fn stamp(&self) -> VersionStamp {
        self.stamp
    }

    /// Tear the version back into its tree (committer-side reclaim;
    /// callable only once no other `Arc` clone exists).
    pub(crate) fn into_tree(self) -> PprTree {
        self.tree
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ALL_STATES: [BatchState; 6] = [
        BatchState::Queued,
        BatchState::Batched,
        BatchState::Committing,
        BatchState::Committed,
        BatchState::Published,
        BatchState::RolledBack,
    ];
    const ALL_EVENTS: [BatchEvent; 5] = [
        BatchEvent::Drain,
        BatchEvent::Begin,
        BatchEvent::Applied,
        BatchEvent::Fail,
        BatchEvent::Publish,
    ];

    #[test]
    fn happy_path_reaches_published() {
        let mut s = BatchState::Queued;
        for e in [
            BatchEvent::Drain,
            BatchEvent::Begin,
            BatchEvent::Applied,
            BatchEvent::Publish,
        ] {
            s = transition(s, e).unwrap();
        }
        assert_eq!(s, BatchState::Published);
    }

    #[test]
    fn failure_is_only_reachable_while_applying() {
        assert_eq!(
            transition(BatchState::Committing, BatchEvent::Fail).unwrap(),
            BatchState::RolledBack
        );
        for s in [
            BatchState::Queued,
            BatchState::Batched,
            BatchState::Committed,
            BatchState::Published,
            BatchState::RolledBack,
        ] {
            assert!(
                transition(s, BatchEvent::Fail).is_err(),
                "{s} must not fail"
            );
        }
    }

    /// Exactly 5 of the 30 (state, event) pairs are legal; terminal
    /// states accept nothing.
    #[test]
    fn transition_table_is_exactly_the_documented_edges() {
        let mut legal = Vec::new();
        for s in ALL_STATES {
            for e in ALL_EVENTS {
                if let Ok(next) = transition(s, e) {
                    legal.push((s, e, next));
                } else {
                    let err = transition(s, e).unwrap_err();
                    assert_eq!((err.state, err.event), (s, e));
                }
            }
        }
        assert_eq!(legal.len(), 5);
        for s in [BatchState::Published, BatchState::RolledBack] {
            assert!(legal.iter().all(|&(from, ..)| from != s), "{s} is terminal");
        }
    }

    #[test]
    fn stamps_order_by_version_then_watermark() {
        let a = VersionStamp {
            version: 1,
            watermark: 50,
        };
        let b = VersionStamp {
            version: 2,
            watermark: 10,
        };
        assert!(a < b);
        assert_eq!(VersionStamp::INITIAL.version, 0);
    }
}
