//! The paper's primary contribution: algorithms that decide *where* to
//! artificially split spatiotemporal objects and *how* to distribute a
//! split budget across a collection, so that the total volume (empty
//! space) of the indexed MBRs — and with it the query cost — is minimized.
//!
//! Pipeline:
//!
//! 1. rasterize trajectories ([`sti_trajectory`]),
//! 2. build per-object [`VolumeCurve`]s with a [`single`] splitter
//!    (`DPSplit` optimal / `MergeSplit` greedy),
//! 3. distribute the budget with a [`multi`] algorithm
//!    (`Optimal` / `Greedy` / `LAGreedy`),
//! 4. materialize [`plan::ObjectRecord`]s and hand them to an index — the
//!    [`SpatioTemporalIndex`] facade wires steps 2–4 to the partially
//!    persistent R-Tree or the 3D R\*-Tree baseline.

pub mod curve;
pub mod executor;
pub mod hybrid;
pub mod index;
pub mod multi;
pub mod online;
pub mod parallel;
pub mod pipeline;
pub mod plan;
pub mod recover;
pub mod single;
pub mod tuning;
mod util;
pub mod version;

pub use curve::VolumeCurve;
pub use executor::{QueryExecutor, QueryOutcome, QueryRequest};
pub use hybrid::{HybridConfig, HybridIndex};
pub use index::{BuildStats, IndexBackend, IndexConfig, SpatioTemporalIndex};
pub use multi::{DistributionAlgorithm, SplitAllocation};
pub use online::{
    FinishError, ObserveError, OnlineError, OnlineIndexer, OnlineSplitConfig, OnlineSplitter,
};
pub use parallel::{map_chunked, Parallelism};
pub use pipeline::{CommitReport, IngestOp, IngestPipeline, IngestQueue, IngestReader, RejectedOp};
pub use plan::{
    piecewise_records, record_events, total_volume, unsplit_records, ObjectRecord, PlanStats,
    RecordEvent, SplitBudget, SplitPlan,
};
pub use recover::{
    decode_op, encode_op, CheckpointReport, CrashPoint, DurabilityError, RecoverError,
    RecoveryReport,
};
pub use single::{SingleObjectSplitter, SingleSplitAlgorithm};
pub use tuning::{QueryProfile, TuningResult};
pub use version::{
    transition, BatchEvent, BatchState, InvalidTransition, PublishedIndex, VersionStamp,
};
