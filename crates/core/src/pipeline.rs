//! The single-writer/multi-reader live-ingestion pipeline.
//!
//! [`crate::online::OnlineIndexer`] streams updates into *one* tree, so
//! every reader must go through the same `&mut` choke point as the
//! writer. This module removes that coupling with a left-right
//! publication scheme built from three parts:
//!
//! * an [`IngestQueue`] of [`IngestOp`]s — producers enqueue position
//!   updates and disappearances without touching any tree,
//! * a committer ([`IngestPipeline::commit`]) that drains the queue,
//!   validates operations through the [`OnlineSplitter`] (malformed
//!   streams surface as typed rejects, never panics), reorders closed
//!   pieces under the watermark, and applies the finalized batch to a
//!   **private** tree inside a page-level batch transaction,
//! * an atomically published [`PublishedIndex`] — on success the
//!   private tree is frozen behind an `Arc` and swapped into the shared
//!   slot with a bumped [`VersionStamp`]; readers that grabbed the old
//!   `Arc` keep reading the old version undisturbed, new readers see
//!   the new one. Readers never lock anything the writer holds during
//!   page work.
//!
//! The scheme keeps **two** trees, both over one shared buffer pool
//! (tagged residency keys, see [`sti_storage::PageStore::with_backend_shared`]):
//! while version `N` is published from tree A, the committer owns tree
//! B, replays the batch A already has but B missed (the *lag*), applies
//! the new batch, and publishes B as `N+1`. Tree A becomes the next
//! private tree once the last reader of version `N` drops its handle.
//! Each batch is therefore applied exactly twice — once per tree —
//! instead of deep-copying pages on every publish.
//!
//! A storage fault mid-commit rolls the whole batch (including the lag
//! replay) back via [`sti_pprtree::PprTree::rollback_batch`]: the
//! published version is untouched, the finalized events stay pending,
//! and the next [`IngestPipeline::commit`] retries them. Every batch
//! walks the explicit [`BatchState`] machine in [`crate::version`] and
//! reports the traversal in its [`CommitReport::trace`], which the
//! property suite replays against the pure [`transition`] function.

use crate::online::{Ev, ObserveError, OnlineError, OnlineSplitConfig, OnlineSplitter};
use crate::plan::RecordEvent;
use crate::recover::{
    decode_op, encode_op, idx_path, meta_path, prune_below, scan_generations, CheckpointMeta,
    CheckpointReport, CrashPoint, Durability, DurabilityError, RecoverError, RecoveryReport,
};
use crate::version::{transition, BatchEvent, BatchState, PublishedIndex, VersionStamp};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use std::io::Write;
use std::path::Path;
use std::sync::{Arc, Mutex, PoisonError};
use sti_geom::{Rect2, Time};
use sti_obs::MetricSet;
use sti_pprtree::{DeleteError, PprParams, PprTree};
use sti_storage::{MemBackend, PageBackend, StorageError, Wal, WalConfig, WalStats};

/// One queued ingest operation, mirroring the [`crate::online`] calls.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum IngestOp {
    /// Object `id` occupies `rect` during instant `t`.
    Update {
        /// Object id.
        id: u64,
        /// Position during the instant.
        rect: Rect2,
        /// The observed instant.
        t: Time,
    },
    /// Object `id` disappears; `end` is one past its last observation.
    Finish {
        /// Object id.
        id: u64,
        /// Half-open lifetime end.
        end: Time,
    },
}

/// FIFO of operations awaiting the next commit. Producers only touch
/// this; all tree work happens in the committer.
#[derive(Debug, Default)]
pub struct IngestQueue {
    ops: VecDeque<IngestOp>,
}

impl IngestQueue {
    /// An empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Enqueue one operation.
    pub fn push(&mut self, op: IngestOp) {
        self.ops.push_back(op);
    }

    /// Operations waiting to be drained.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    fn drain_all(&mut self) -> Vec<IngestOp> {
        self.ops.drain(..).collect()
    }
}

/// An operation the committer refused, with the typed reason. The
/// splitter state is untouched by a rejected operation (the satellite
/// guarantee of [`OnlineSplitter::observe`]), so one malformed producer
/// cannot poison the batch of a well-behaved one.
#[derive(Debug, Clone, PartialEq)]
pub struct RejectedOp {
    /// The operation as it was queued.
    pub op: IngestOp,
    /// Why it was refused.
    pub error: OnlineError,
}

/// What one [`IngestPipeline::commit`] call did.
#[derive(Debug)]
pub struct CommitReport {
    /// Where the batch ended: [`BatchState::Published`] on success,
    /// [`BatchState::RolledBack`] on a storage fault, or
    /// [`BatchState::Queued`] when nothing was *finalized* — drained
    /// operations may still have been absorbed into open pieces or the
    /// reordering buffer (`drained` and `rejected` record that work),
    /// but no event crossed the watermark and no version was published.
    pub state: BatchState,
    /// The published stamp after this call (unchanged unless `state`
    /// is `Published`).
    pub stamp: VersionStamp,
    /// Operations drained from the queue by this call.
    pub drained: usize,
    /// Operations refused with typed errors.
    pub rejected: Vec<RejectedOp>,
    /// Finalized events this batch tried to apply (0 for a pure
    /// watermark/catch-up publish).
    pub batch_events: usize,
    /// Catch-up events replayed onto the reclaimed tree first.
    pub lag_events: usize,
    /// The storage fault that rolled the batch back, if any.
    pub error: Option<StorageError>,
    /// Set only by [`IngestPipeline::seal`]: `true` when it gave up
    /// because a commit made no forward progress (nothing drained,
    /// finalized, rolled back, or published) while events were still
    /// pending — a diagnosable report instead of an infinite loop.
    pub stalled: bool,
    /// The durability failure that blocked or followed this commit, if
    /// any: a WAL sync error aborts the commit *before* any tree work
    /// (published state must never run ahead of the durable log), and
    /// an injected crash at the publish boundary lands here *after* a
    /// successful publish.
    pub durability: Option<DurabilityError>,
    /// Every [`BatchState`] the batch passed through, `Queued` first —
    /// the trace the property tests replay through [`transition`].
    pub trace: Vec<BatchState>,
}

/// A cloneable, `Send + Sync` handle readers use to acquire the current
/// published version without touching the pipeline (or each other).
///
/// [`IngestReader::current`] is one mutex-protected pointer clone; the
/// mutex is held for nanoseconds and never while any page I/O runs, so
/// readers effectively coordinate with nothing. The returned
/// [`PublishedIndex`] is immutable — a reader can keep it across
/// commits and will simply (and consistently) see the old version.
#[derive(Debug, Clone)]
pub struct IngestReader {
    slot: Arc<Mutex<Arc<PublishedIndex>>>,
}

impl IngestReader {
    /// The currently published version.
    pub fn current(&self) -> Arc<PublishedIndex> {
        Arc::clone(&self.slot.lock().unwrap_or_else(PoisonError::into_inner))
    }
}

/// Which tree the committer will apply the next batch to.
enum Standby {
    /// The committer already owns it (initially, or after a rollback).
    Owned(Box<PprTree>),
    /// It is the version published before the current one; reclaimable
    /// once every reader handle to it is dropped.
    Retired(Arc<PublishedIndex>),
}

/// The single-writer side of the pipeline: owns the queue, the
/// splitter, the reordering buffer, and both trees. See the module docs
/// for the full data flow; the external surface is
/// [`IngestPipeline::enqueue`] / [`IngestPipeline::commit`] /
/// [`IngestPipeline::reader`].
pub struct IngestPipeline {
    queue: IngestQueue,
    splitter: OnlineSplitter,
    /// Closed pieces whose events are not yet below the watermark.
    reorder: BinaryHeap<Reverse<Ev>>,
    /// Finalized events (popped in order) awaiting a successful commit.
    pending: Vec<Ev>,
    /// Events the published tree has that the standby has not seen.
    lag: Vec<Ev>,
    /// Event sequence counter (orders equal-time events).
    seq: u64,
    /// The pipeline clock: largest accepted operation time.
    now: Time,
    standby: Standby,
    slot: Arc<Mutex<Arc<PublishedIndex>>>,
    /// Successful commits (also the published version number).
    commits: u64,
    /// Batches undone by storage faults.
    rollbacks: u64,
    /// Operations refused with typed errors, ever.
    rejected_total: u64,
    /// Test hook: force [`IngestPipeline::seal`] to take its stalled
    /// exit (see [`IngestPipeline::wedge_seal_for_test`]).
    wedge_seal: bool,
    /// The durable half, when attached: WAL handle, retained
    /// checkpoints, crash-injection state (see [`crate::recover`]).
    durability: Option<Durability>,
}

impl IngestPipeline {
    /// A pipeline over in-memory backends.
    pub fn new(config: OnlineSplitConfig, params: PprParams) -> Self {
        Self::with_backends(
            config,
            params,
            Box::new(MemBackend::new()),
            Box::new(MemBackend::new()),
        )
    }

    /// A pipeline whose two tree versions sit on the given backends —
    /// the fault suites pass [`sti_storage::FaultyBackend`]s here to
    /// storm the commit path. Both trees share one buffer pool sized by
    /// `params.buffer_pages` (tags 0 and 1), so publication does not
    /// silently double the paper's buffer budget.
    pub fn with_backends(
        config: OnlineSplitConfig,
        params: PprParams,
        published_backend: Box<dyn PageBackend>,
        standby_backend: Box<dyn PageBackend>,
    ) -> Self {
        let published = PprTree::with_backend(params, published_backend);
        let standby =
            PprTree::with_backend_shared(params, standby_backend, published.share_buffer(), 1);
        Self {
            queue: IngestQueue::new(),
            splitter: OnlineSplitter::new(config),
            reorder: BinaryHeap::new(),
            pending: Vec::new(),
            lag: Vec::new(),
            seq: 0,
            now: 0,
            standby: Standby::Owned(Box::new(standby)),
            slot: Arc::new(Mutex::new(Arc::new(PublishedIndex::new(
                published,
                VersionStamp::INITIAL,
            )))),
            commits: 0,
            rollbacks: 0,
            rejected_total: 0,
            wedge_seal: false,
            durability: None,
        }
    }

    /// Force the next [`IngestPipeline::seal`] to take its stalled exit
    /// even though the queue could drain, in the spirit of the storage
    /// layer's `SaveCrash` fault injection: the genuine stall — a
    /// reorder buffer that cannot drain — is unreachable from valid
    /// input by construction, but callers still must handle the
    /// [`CommitReport::stalled`] flag, and this hook lets tests pin
    /// that handling end-to-end with real queue-depth diagnostics.
    #[doc(hidden)]
    pub fn wedge_seal_for_test(&mut self) {
        self.wedge_seal = true;
    }

    /// Enqueue one operation (no validation happens here — the
    /// committer validates at drain time and reports typed rejects).
    pub fn enqueue(&mut self, op: IngestOp) {
        self.queue.push(op);
    }

    /// Convenience: enqueue an [`IngestOp::Update`].
    pub fn enqueue_update(&mut self, id: u64, rect: Rect2, t: Time) {
        self.enqueue(IngestOp::Update { id, rect, t });
    }

    /// Convenience: enqueue an [`IngestOp::Finish`].
    pub fn enqueue_finish(&mut self, id: u64, end: Time) {
        self.enqueue(IngestOp::Finish { id, end });
    }

    /// Operations waiting for the next commit.
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Finalized-but-uncommitted events (nonzero after a rollback, or
    /// when a commit left events above the watermark).
    pub fn pending_events(&self) -> usize {
        self.pending.len() + self.reorder.len()
    }

    /// The pipeline clock (largest accepted operation time).
    pub fn now(&self) -> Time {
        self.now
    }

    /// A reader handle; clone it freely across threads.
    pub fn reader(&self) -> IngestReader {
        IngestReader {
            slot: Arc::clone(&self.slot),
        }
    }

    /// The currently published version (writer-side convenience).
    pub fn published(&self) -> Arc<PublishedIndex> {
        Arc::clone(&self.slot.lock().unwrap_or_else(PoisonError::into_inner))
    }

    /// Successful commits so far.
    pub fn commits(&self) -> u64 {
        self.commits
    }

    /// Rolled-back batches so far.
    pub fn rollbacks(&self) -> u64 {
        self.rollbacks
    }

    /// Export pipeline health as metrics: commit/rollback/reject
    /// counters, queue and reorder depths, the published version and
    /// watermark, and the commit lag (instants between the clock and
    /// the published watermark — how far behind live time a reader is).
    pub fn record_metrics(&self, set: &mut MetricSet) {
        let stamp = self.published().stamp();
        set.counter(
            "ingest_commits_total",
            "successful commits",
            self.commits as f64,
        );
        set.counter(
            "ingest_rollbacks_total",
            "batches undone by storage faults",
            self.rollbacks as f64,
        );
        set.counter(
            "ingest_rejected_ops_total",
            "operations refused with typed errors",
            self.rejected_total as f64,
        );
        set.gauge(
            "ingest_queue_depth",
            "operations awaiting drain",
            self.queue.len() as f64,
        );
        set.gauge(
            "ingest_pending_events",
            "finalized or reordering events awaiting commit",
            self.pending_events() as f64,
        );
        set.gauge(
            "ingest_published_version",
            "version number of the published snapshot",
            stamp.version as f64,
        );
        set.gauge(
            "ingest_published_watermark",
            "first non-final instant of the published snapshot",
            f64::from(stamp.watermark),
        );
        set.gauge(
            "ingest_commit_lag_instants",
            "clock minus published watermark",
            f64::from(self.now.saturating_sub(stamp.watermark)),
        );
        if let Some(d) = &self.durability {
            let wal = d.wal.stats();
            set.counter(
                "wal_appends_total",
                "operations appended to the write-ahead log",
                wal.appends as f64,
            );
            set.counter(
                "wal_bytes_total",
                "bytes written to the write-ahead log",
                wal.bytes as f64,
            );
            set.counter(
                "wal_fsyncs_total",
                "fsync calls issued by the write-ahead log",
                wal.fsyncs as f64,
            );
            set.counter(
                "wal_segments_created_total",
                "log segments opened",
                wal.segments_created as f64,
            );
            set.counter(
                "wal_segments_deleted_total",
                "log segments reclaimed by checkpoints",
                wal.segments_deleted as f64,
            );
            set.gauge(
                "wal_segments",
                "log segments currently on disk",
                d.wal.segment_count() as f64,
            );
            set.gauge(
                "wal_next_lsn",
                "next log sequence number to be assigned",
                d.wal.next_lsn() as f64,
            );
            set.counter(
                "checkpoints_total",
                "checkpoints committed since attach or recovery",
                d.checkpoints_total as f64,
            );
        }
    }

    /// Drain the queue, validate, and commit one batch; on success the
    /// new version is atomically published. See the module docs for the
    /// full lifecycle and [`CommitReport`] for what comes back — this
    /// method returns `Ok` even when the batch rolls back (the report
    /// carries the fault), because a rolled-back batch is a *retryable*
    /// outcome, not a broken pipeline.
    ///
    /// Blocks only if the version published *before* the current one
    /// still has a live reader handle (two-version concurrency: readers
    /// of the current version never block anyone).
    pub fn commit(&mut self) -> CommitReport {
        let mut trace = vec![BatchState::Queued];
        let mut state = BatchState::Queued;

        // Durable prelude: everything this commit may publish must be
        // on disk first, whatever the fsync policy — a published
        // version must never run ahead of the durable log. A sync
        // failure (or an injected crash) aborts the commit before any
        // tree work; the queue and buffers are untouched and the next
        // commit retries.
        if let Some(d) = self.durability.as_mut() {
            let prelude = d
                .crash_check(CrashPoint::BeforeCommitSync)
                .and_then(|()| d.wal.sync().map_err(DurabilityError::from))
                .and_then(|()| d.crash_check(CrashPoint::AfterCommitSync));
            if let Err(e) = prelude {
                return CommitReport {
                    state,
                    stamp: self.published().stamp(),
                    drained: 0,
                    rejected: Vec::new(),
                    batch_events: 0,
                    lag_events: 0,
                    error: None,
                    stalled: false,
                    durability: Some(e),
                    trace,
                };
            }
        }

        // Drain + validate through the splitter (typed rejects).
        let ops = self.queue.drain_all();
        let drained = ops.len();
        let mut rejected = Vec::new();
        for op in ops {
            if let Err(error) = self.absorb(op) {
                rejected.push(RejectedOp { op, error });
            }
        }
        self.rejected_total += rejected.len() as u64;

        // Finalize: everything strictly below the watermark is final.
        // With no open piece left there is no bound at all — every
        // buffered event is final (this is what lets `seal` flush the
        // deletes sitting exactly at the stream end).
        let flush_bound = self.splitter.watermark();
        while let Some(top) = self.reorder.peek() {
            if flush_bound.is_some_and(|w| top.0.time >= w) {
                break;
            }
            if let Some(Reverse(ev)) = self.reorder.pop() {
                self.pending.push(ev);
            }
        }
        let watermark = flush_bound.unwrap_or(self.now);

        let stamp = self.published().stamp();
        if self.pending.is_empty() && self.lag.is_empty() && watermark == stamp.watermark {
            // Nothing finalized and no watermark motion: don't spin
            // version numbers on no-ops. Drained operations (if any)
            // were still absorbed into open pieces and the reordering
            // buffer above — `state: Queued` means "nothing published",
            // not "nothing happened".
            return CommitReport {
                state,
                stamp,
                drained,
                rejected,
                batch_events: 0,
                lag_events: 0,
                error: None,
                stalled: false,
                durability: None,
                trace,
            };
        }
        Self::step(&mut state, BatchEvent::Drain, &mut trace);

        // Reclaim the standby tree and catch it up + apply, all inside
        // one batch transaction.
        let mut tree = self.reclaim_standby();
        Self::step(&mut state, BatchEvent::Begin, &mut trace);
        tree.begin_batch();
        let lag_events = self.lag.len();
        let batch_events = self.pending.len();
        let applied: Result<(), StorageError> = self
            .lag
            .iter()
            .chain(self.pending.iter())
            .try_for_each(|ev| apply_event(&mut tree, ev));

        match applied {
            Err(e) => {
                tree.rollback_batch();
                self.standby = Standby::Owned(tree);
                self.rollbacks += 1;
                Self::step(&mut state, BatchEvent::Fail, &mut trace);
                CommitReport {
                    state,
                    stamp,
                    drained,
                    rejected,
                    batch_events,
                    lag_events,
                    error: Some(e),
                    stalled: false,
                    durability: None,
                    trace,
                }
            }
            Ok(()) => {
                tree.commit_batch();
                Self::step(&mut state, BatchEvent::Applied, &mut trace);
                self.commits += 1;
                let new_stamp = VersionStamp {
                    version: stamp.version + 1,
                    watermark,
                };
                // The standby has now seen everything the old published
                // tree saw *plus* this batch; next cycle the old tree
                // must replay exactly this batch.
                self.lag = std::mem::take(&mut self.pending);
                let fresh = Arc::new(PublishedIndex::new(*tree, new_stamp));
                let old = {
                    let mut slot = self.slot.lock().unwrap_or_else(PoisonError::into_inner);
                    std::mem::replace(&mut *slot, fresh)
                };
                self.standby = Standby::Retired(old);
                Self::step(&mut state, BatchEvent::Publish, &mut trace);
                // The publish boundary: an armed crash here models a
                // process dying with the new version already visible —
                // recovery must converge to this same published state.
                let durability = self
                    .durability
                    .as_mut()
                    .and_then(|d| d.crash_check(CrashPoint::AfterPublish).err());
                CommitReport {
                    state,
                    stamp: new_stamp,
                    drained,
                    rejected,
                    batch_events,
                    lag_events,
                    error: None,
                    stalled: false,
                    durability,
                    trace,
                }
            }
        }
    }

    /// Close every still-open piece (each at one past its last
    /// observation — stragglers whose last observation is behind the
    /// pipeline clock included) and commit until nothing is pending, so
    /// the final published version covers the whole stream. Returns the
    /// last commit's report, with the rejects of *every* commit this
    /// call made folded in; stops early (reporting the fault) if a
    /// commit rolls back twice in a row, or (flagging
    /// [`CommitReport::stalled`]) if a commit makes no forward progress.
    pub fn seal(&mut self) -> CommitReport {
        if self.wedge_seal {
            // Fault injection: report the genuine stalled exit before
            // any draining commit runs, so the queue/pending
            // diagnostics reflect the wedged state the caller sees.
            return CommitReport {
                state: BatchState::Queued,
                stamp: self.published().stamp(),
                drained: 0,
                rejected: Vec::new(),
                batch_events: 0,
                lag_events: 0,
                error: None,
                stalled: true,
                durability: None,
                trace: vec![BatchState::Queued],
            };
        }
        // Drain whatever producers queued first — the open-piece
        // snapshot below must reflect every operation actually sent
        // (a queued finish not yet absorbed would otherwise earn its
        // object a stale duplicate finish here).
        let mut report = self.commit();
        let mut rejected = std::mem::take(&mut report.rejected);
        for (id, last) in self.splitter.open_last_instants() {
            self.enqueue_finish(id, last + 1);
        }
        let mut consecutive_failures = 0u32;
        while (self.pending_events() > 0 || !self.queue.is_empty()) && consecutive_failures < 2 {
            let before = (self.pending_events(), self.queue_len());
            report = self.commit();
            rejected.extend(std::mem::take(&mut report.rejected));
            if report.state == BatchState::RolledBack {
                consecutive_failures += 1;
            } else {
                consecutive_failures = 0;
                if report.state != BatchState::Published
                    && (self.pending_events(), self.queue_len()) == before
                {
                    // No rollback, no publish, and nothing moved: the
                    // reorder buffer cannot drain. Surface the stuck
                    // state instead of spinning on no-op commits.
                    report.stalled = true;
                    break;
                }
            }
        }
        report.rejected = rejected;
        report
    }

    /// Consume the pipeline and return the published tree, e.g. to save
    /// it to a file after [`IngestPipeline::seal`]. Uncommitted state
    /// (queued ops, pending events) is discarded. If a reader handle to
    /// the published version is still alive somewhere, it keeps its
    /// version and this returns an independent deep copy.
    pub fn into_published_tree(self) -> PprTree {
        drop(self.standby);
        match Arc::try_unwrap(self.slot) {
            Ok(mutex) => {
                let inner = mutex.into_inner().unwrap_or_else(PoisonError::into_inner);
                match Arc::try_unwrap(inner) {
                    Ok(published) => published.into_tree(),
                    Err(arc) => arc.tree().clone(),
                }
            }
            Err(slot) => {
                let inner = Arc::clone(&slot.lock().unwrap_or_else(PoisonError::into_inner));
                inner.tree().clone()
            }
        }
    }

    /// Attach a write-ahead log rooted at `dir` (created if missing) to
    /// this pipeline. From here on, [`IngestPipeline::enqueue_durable`]
    /// logs every accepted operation before acknowledging it, every
    /// commit syncs the log before publishing, and
    /// [`IngestPipeline::checkpoint`] persists restartable state.
    ///
    /// Fails with [`DurabilityError::DirNotInitial`] if `dir` already
    /// holds WAL records or checkpoints: attaching a *fresh* pipeline
    /// to a *used* directory would silently shadow recoverable history
    /// — that directory belongs to [`IngestPipeline::recover`].
    pub fn attach_durability(
        &mut self,
        dir: &Path,
        config: WalConfig,
    ) -> Result<(), DurabilityError> {
        if self.durability.is_some() {
            return Err(DurabilityError::AlreadyAttached);
        }
        let opened = Wal::open(dir, config)?;
        let generations = scan_generations(dir)?;
        if !opened.records.is_empty() || opened.torn.is_some() || !generations.is_empty() {
            return Err(DurabilityError::DirNotInitial);
        }
        self.durability = Some(Durability {
            dir: dir.to_path_buf(),
            wal: opened.wal,
            retained: Vec::new(),
            next_generation: 1,
            crash: None,
            dead: false,
            checkpoints_total: 0,
        });
        Ok(())
    }

    /// Arm one [`CrashPoint`]: the next durable call that reaches it
    /// "kills" the pipeline (the crash-matrix hook, in the spirit of
    /// [`sti_storage::SaveCrash`]). Requires an attached WAL.
    #[doc(hidden)]
    pub fn arm_crash_point(&mut self, point: CrashPoint) -> Result<(), DurabilityError> {
        match self.durability.as_mut() {
            Some(d) => {
                d.crash = Some(point);
                Ok(())
            }
            None => Err(DurabilityError::NotAttached),
        }
    }

    /// Accumulated WAL counters, when a log is attached.
    pub fn wal_stats(&self) -> Option<WalStats> {
        self.durability.as_ref().map(|d| d.wal.stats())
    }

    /// Enqueue one operation durably: the op is appended to the WAL
    /// (fsynced per the configured policy) *before* it enters the
    /// queue, so an `Ok` return is an acknowledgment recovery honors.
    /// Returns the op's log sequence number.
    pub fn enqueue_durable(&mut self, op: IngestOp) -> Result<u64, DurabilityError> {
        let Some(d) = self.durability.as_mut() else {
            return Err(DurabilityError::NotAttached);
        };
        d.crash_check(CrashPoint::BeforeWalAppend)?;
        let lsn = d.wal.append(&encode_op(&op))?;
        // A crash here leaves the op logged but unacknowledged: the
        // caller saw an error, yet recovery may legitimately replay it
        // (at-least-once for unacknowledged ops, exactly-once for
        // acknowledged ones).
        d.crash_check(CrashPoint::AfterWalAppend)?;
        self.queue.push(op);
        Ok(lsn)
    }

    /// Persist a restartable snapshot: sync the WAL, save the published
    /// tree to `checkpoint-<g>.idx` (via the crash-safe `save_to`
    /// path), then commit the generation by renaming its meta file into
    /// place. Keeps the last two generations and truncates WAL segments
    /// every retained checkpoint already covers.
    pub fn checkpoint(&mut self) -> Result<CheckpointReport, DurabilityError> {
        // Phase 1 (durability borrow): sync and capture the cut.
        let (generation, wal_lsn, dir) = {
            let Some(d) = self.durability.as_mut() else {
                return Err(DurabilityError::NotAttached);
            };
            d.crash_check(CrashPoint::CheckpointBegin)?;
            d.wal.sync()?;
            (d.next_generation, d.wal.next_lsn(), d.dir.clone())
        };
        let idx = idx_path(&dir, generation);

        // Phase 2: the index image. The published tree sits behind an
        // `Arc`, so the save works on a deep copy (recovery tolerates
        // the copy's private buffer pool — DESIGN.md §8). An armed
        // mid-save crash leaves a torn image at the final path; no meta
        // ever points at it, so recovery never reads it.
        if let Some(d) = self.durability.as_mut() {
            if let Err(e) = d.crash_check(CrashPoint::CheckpointMidTreeSave) {
                if matches!(e, DurabilityError::InjectedCrash(_)) {
                    std::fs::write(&idx, b"torn checkpoint image").ok();
                }
                return Err(e);
            }
        }
        let meta = self.build_checkpoint_meta(generation, wal_lsn)?;
        let published = self.published();
        let mut tree = published.tree().clone();
        tree.save_to_file(&idx)?;
        drop(published);

        // Phase 3: commit the generation — meta temp, fsync, rename.
        let meta_target = meta_path(&dir, generation);
        let meta_tmp = {
            let mut os = meta_target.as_os_str().to_os_string();
            os.push(".tmp");
            std::path::PathBuf::from(os)
        };
        {
            let Some(d) = self.durability.as_mut() else {
                return Err(DurabilityError::NotAttached);
            };
            let image = meta.encode()?;
            let mut f = std::fs::File::create(&meta_tmp)?;
            f.write_all(&image)?;
            f.sync_all()?;
            drop(f);
            d.crash_check(CrashPoint::CheckpointBeforeMetaRename)?;
            std::fs::rename(&meta_tmp, &meta_target)?;
            std::fs::File::open(&dir)?.sync_all()?;
            d.crash_check(CrashPoint::CheckpointAfterMetaRename)?;
        }

        // Phase 4: retention. Keep two generations; prune everything
        // older (including crash orphans) and drop WAL segments fully
        // covered by the *oldest* retained cut, so a one-generation
        // fallback always finds its replay tail.
        let Some(d) = self.durability.as_mut() else {
            return Err(DurabilityError::NotAttached);
        };
        d.retained.push((generation, wal_lsn));
        while d.retained.len() > 2 {
            d.retained.remove(0);
        }
        let (keep_generation, keep_lsn) = match d.retained.first() {
            Some(&pair) => pair,
            None => (generation, wal_lsn), // unreachable: pushed above
        };
        let pruned_generations = prune_below(&dir, keep_generation)?;
        let wal_segments_deleted = d.wal.truncate_below(keep_lsn)?;
        d.next_generation = generation + 1;
        d.checkpoints_total += 1;
        d.crash_check(CrashPoint::CheckpointEnd)?;
        Ok(CheckpointReport {
            generation,
            wal_lsn,
            pruned_generations,
            wal_segments_deleted,
        })
    }

    /// Snapshot the committer's volatile state (everything a restart
    /// cannot re-derive from the saved tree alone).
    fn build_checkpoint_meta(
        &self,
        generation: u64,
        wal_lsn: u64,
    ) -> Result<CheckpointMeta, DurabilityError> {
        let mut reorder: Vec<Ev> = self.reorder.iter().map(|Reverse(ev)| ev.clone()).collect();
        // Heap iteration order is arbitrary; sort so identical states
        // always serialize to identical bytes.
        reorder.sort();
        Ok(CheckpointMeta {
            generation,
            wal_lsn,
            stamp: self.published().stamp(),
            now: self.now,
            seq: self.seq,
            commits: self.commits,
            rollbacks: self.rollbacks,
            rejected_total: self.rejected_total,
            splits_issued: self.splitter.splits_issued(),
            open_pieces: self.splitter.snapshot_open_pieces(),
            reorder,
            pending: self.pending.clone(),
            queued: self.queue.ops.iter().copied().collect(),
        })
    }

    /// Rebuild a pipeline from the WAL directory `dir`: load the newest
    /// usable checkpoint (meta + index), restore the committer's state
    /// exactly, then replay the WAL tail (`lsn >= wal_lsn`) into the
    /// queue — through the same validate/absorb path as live traffic,
    /// at the next commit. With no checkpoint yet, the whole WAL
    /// replays onto an empty pipeline.
    ///
    /// Nothing is committed here: the restored queue and buffers stay
    /// visible (non-zero `ingest_queue_depth` / `ingest_pending_events`
    /// gauges are how a dashboard tells a recovered process from a
    /// fresh one). Torn artifacts of a crash are truncated or skipped
    /// by design; genuine corruption is a typed [`RecoverError`].
    pub fn recover(
        dir: &Path,
        config: OnlineSplitConfig,
        params: PprParams,
        wal_config: WalConfig,
    ) -> Result<(Self, RecoveryReport), RecoverError> {
        let generations = scan_generations(dir)?;
        let mut checkpoints_skipped = 0u64;
        let mut chosen: Option<(CheckpointMeta, PprTree)> = None;
        for &g in generations.iter().rev() {
            let Ok(bytes) = std::fs::read(meta_path(dir, g)) else {
                checkpoints_skipped += 1;
                continue;
            };
            let Ok(meta) = CheckpointMeta::decode(&bytes) else {
                checkpoints_skipped += 1;
                continue;
            };
            let Ok(tree) = PprTree::open_file(&idx_path(dir, g)) else {
                checkpoints_skipped += 1;
                continue;
            };
            chosen = Some((meta, tree));
            break;
        }
        if chosen.is_none() && !generations.is_empty() {
            return Err(RecoverError::NoUsableCheckpoint {
                tried: generations.len(),
            });
        }

        let opened = Wal::open(dir, wal_config)?;
        let torn_tail = opened.torn.is_some();
        let (mut pipeline, meta) = match chosen {
            Some((meta, tree)) => {
                // Both trees start from the checkpointed content (the
                // standby is a deep copy), so there is no lag to
                // replay; the clone's buffer pool is private, a
                // documented deviation from the live shared pool.
                let standby = tree.clone();
                let mut reorder = BinaryHeap::new();
                for ev in &meta.reorder {
                    reorder.push(Reverse(ev.clone()));
                }
                let pipeline = Self {
                    queue: IngestQueue::new(),
                    splitter: OnlineSplitter::restore(
                        config,
                        &meta.open_pieces,
                        meta.splits_issued,
                    ),
                    reorder,
                    pending: meta.pending.clone(),
                    lag: Vec::new(),
                    seq: meta.seq,
                    now: meta.now,
                    standby: Standby::Owned(Box::new(standby)),
                    slot: Arc::new(Mutex::new(Arc::new(PublishedIndex::new(tree, meta.stamp)))),
                    commits: meta.commits,
                    rollbacks: meta.rollbacks,
                    rejected_total: meta.rejected_total,
                    wedge_seal: false,
                    durability: None,
                };
                (pipeline, Some(meta))
            }
            None => (Self::new(config, params), None),
        };

        // Restore the queue in arrival order: the checkpoint's queued
        // ops (all logged below `wal_lsn`) first, then the WAL tail.
        let mut queued_restored = 0u64;
        if let Some(m) = &meta {
            for op in &m.queued {
                pipeline.queue.push(*op);
                queued_restored += 1;
            }
        }
        let cut = meta.as_ref().map_or(0, |m| m.wal_lsn);
        let mut wal_records_replayed = 0u64;
        for record in &opened.records {
            if record.lsn < cut {
                continue;
            }
            let op = decode_op(&record.payload).map_err(|what| RecoverError::BadWalRecord {
                lsn: record.lsn,
                what,
            })?;
            pipeline.queue.push(op);
            wal_records_replayed += 1;
        }

        let report = RecoveryReport {
            checkpoint_generation: meta.as_ref().map(|m| m.generation),
            checkpoints_skipped,
            stamp: pipeline.published().stamp(),
            wal_records_replayed,
            torn_tail,
            queued_restored,
            pending_restored: meta
                .as_ref()
                .map_or(0, |m| (m.reorder.len() + m.pending.len()) as u64),
        };
        pipeline.durability = Some(Durability {
            dir: dir.to_path_buf(),
            wal: opened.wal,
            retained: meta
                .as_ref()
                .map_or_else(Vec::new, |m| vec![(m.generation, m.wal_lsn)]),
            next_generation: generations.last().map_or(1, |g| g + 1),
            crash: None,
            dead: false,
            checkpoints_total: 0,
        });
        Ok((pipeline, report))
    }

    /// Feed one operation into the splitter, buffering any closed
    /// pieces. The pipeline clock and splitter are untouched on error.
    fn absorb(&mut self, op: IngestOp) -> Result<(), OnlineError> {
        match op {
            IngestOp::Update { id, rect, t } => {
                if t < self.now {
                    return Err(ObserveError::OutOfOrder {
                        id,
                        t,
                        last: self.now,
                    }
                    .into());
                }
                if let Some(record) = self.splitter.observe(id, rect, t)? {
                    self.push_record_events(record);
                }
                self.now = t;
            }
            IngestOp::Finish { id, end } => {
                // A finish validates against the *object's own* stream
                // (the splitter demands `end == last + 1`), not the
                // global clock: a straggler whose last observation is
                // behind `self.now` can only legally finish in the
                // past, and its events cannot undercut the published
                // watermark — they start at the piece's start, which
                // the watermark never passes while the piece is open.
                let record = self.splitter.finish(id, end)?;
                self.now = self.now.max(end);
                self.push_record_events(record);
            }
        }
        Ok(())
    }

    fn push_record_events(&mut self, record: crate::plan::ObjectRecord) {
        let life = record.stbox.lifetime;
        self.reorder.push(Reverse(Ev {
            time: life.start,
            kind: RecordEvent::Insert,
            seq: self.seq,
            record,
        }));
        self.reorder.push(Reverse(Ev {
            time: life.end,
            kind: RecordEvent::Delete,
            seq: self.seq + 1,
            record,
        }));
        self.seq += 2;
    }

    /// Take ownership of the tree the next batch applies to.
    ///
    /// Normally the retired version's readers are gone and its tree is
    /// reclaimed for free (an `Arc` unwrap). If a reader still pins it
    /// after a bounded yield-spin, the committer refuses to block
    /// ingest on that reader: it deep-copies the retired tree and
    /// abandons the pinned `Arc` (the reader frees it whenever it
    /// drops the handle). The copy costs O(pages) and its buffer pool
    /// is private from then on — the price of a reader holding a
    /// version across two later commits, not of normal operation.
    ///
    /// The placeholder parked in `self.standby` is never observable:
    /// every `commit` path overwrites it before returning.
    fn reclaim_standby(&mut self) -> Box<PprTree> {
        const RECLAIM_SPINS: u32 = 1024;
        let placeholder = Standby::Retired(self.published());
        let mut slot = std::mem::replace(&mut self.standby, placeholder);
        let mut spins = 0u32;
        loop {
            match slot {
                Standby::Owned(tree) => return tree,
                Standby::Retired(arc) => match Arc::try_unwrap(arc) {
                    Ok(published) => return Box::new(published.into_tree()),
                    Err(arc) => {
                        if spins >= RECLAIM_SPINS {
                            return Box::new(arc.tree().clone());
                        }
                        spins += 1;
                        std::thread::yield_now();
                        slot = Standby::Retired(arc);
                    }
                },
            }
        }
    }

    /// Advance the batch state machine through the pure transition
    /// table, recording the hop.
    fn step(state: &mut BatchState, event: BatchEvent, trace: &mut Vec<BatchState>) {
        match transition(*state, event) {
            Ok(next) => {
                *state = next;
                trace.push(next);
            }
            Err(e) => {
                // stilint::allow(no_panic, "the pipeline only drives documented edges; an illegal hop is a logic bug the state-machine tests exist to catch")
                panic!("{e}");
            }
        }
    }
}

/// Apply one finalized event to a tree. Mirrors
/// [`crate::online::OnlineIndexer`]'s apply step: a delete that finds
/// nothing is a bug (every buffered delete pairs with the insert
/// buffered before it), not an I/O condition.
fn apply_event(tree: &mut PprTree, ev: &Ev) -> Result<(), StorageError> {
    match ev.kind {
        RecordEvent::Insert => tree.insert(ev.record.id, ev.record.stbox.rect, ev.time),
        RecordEvent::Delete => match tree.delete(ev.record.id, ev.record.stbox.rect, ev.time) {
            Ok(()) => Ok(()),
            Err(DeleteError::Storage(e)) => Err(e),
            Err(e @ DeleteError::NotFound { .. }) => {
                // stilint::allow(no_panic, "record events pair each delete with the insert buffered before it, and deletes sort first at equal times")
                panic!("every buffered delete matches an earlier insert: {e}")
            }
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sti_geom::{Point2, Rect2, TimeInterval};

    fn params() -> PprParams {
        PprParams {
            max_entries: 10,
            p_version: 0.22,
            p_svo: 0.8,
            p_svu: 0.4,
            buffer_pages: 8,
        }
    }

    fn config() -> OnlineSplitConfig {
        OnlineSplitConfig {
            min_piece_instants: 2,
            max_piece_instants: Some(8),
            ..OnlineSplitConfig::default()
        }
    }

    fn rect_at(id: u64, t: Time) -> Rect2 {
        let x = 0.05 + 0.8 * (0.13 * id as f64 + 0.011 * f64::from(t)).fract();
        Rect2::centered(Point2::new(x, 0.5), 0.02, 0.02)
    }

    /// Drive instants `range` of `n` objects, committing every
    /// `commit_every` instants.
    fn drive(
        pipeline: &mut IngestPipeline,
        n: u64,
        range: std::ops::Range<Time>,
        commit_every: Time,
    ) {
        for t in range {
            for id in 0..n {
                pipeline.enqueue_update(id, rect_at(id, t), t);
            }
            if (t + 1) % commit_every == 0 {
                let report = pipeline.commit();
                assert!(report.rejected.is_empty());
                assert_ne!(report.state, BatchState::RolledBack);
            }
        }
    }

    #[test]
    fn initial_version_is_empty_and_stamped_zero() {
        let p = IngestPipeline::new(config(), params());
        let v = p.published();
        assert_eq!(v.stamp(), VersionStamp::INITIAL);
        assert_eq!(v.tree().total_records(), 0);
    }

    #[test]
    fn committed_history_is_queryable_through_the_published_version() {
        let mut p = IngestPipeline::new(config(), params());
        drive(&mut p, 6, 0..40, 10);
        let report = p.seal();
        assert_eq!(report.state, BatchState::Published);
        let v = p.published();
        assert!(v.stamp().version >= 1);
        assert_eq!(v.stamp().watermark, 40);
        let mut out = Vec::new();
        v.tree()
            .query_interval(&Rect2::UNIT, &TimeInterval::new(0, 40), &mut out)
            .unwrap();
        out.sort_unstable();
        out.dedup();
        assert_eq!(out, (0..6).collect::<Vec<u64>>());
        v.tree().validate();
    }

    #[test]
    fn versions_are_immutable_across_later_commits() {
        let mut p = IngestPipeline::new(config(), params());
        drive(&mut p, 4, 0..20, 10);
        let v1 = p.published();
        let w = v1.stamp().watermark;
        assert!(w > 0, "twenty instants must finalize something");
        let probe = TimeInterval::new(0, w);
        let mut before = Vec::new();
        v1.tree()
            .query_interval(&Rect2::UNIT, &probe, &mut before)
            .unwrap();
        // Keep reading v1 while later commits publish v2, v3, ...
        drive(&mut p, 4, 20..40, 5);
        let mut after = Vec::new();
        v1.tree()
            .query_interval(&Rect2::UNIT, &probe, &mut after)
            .unwrap();
        // Interval answers are dedup sets (unordered by contract).
        before.sort_unstable();
        after.sort_unstable();
        assert_eq!(before, after, "a held version must never change");
        drop(v1);
        let _ = p.seal();
    }

    #[test]
    fn malformed_ops_are_rejected_without_poisoning_the_batch() {
        let mut p = IngestPipeline::new(config(), params());
        for t in 0..6 {
            p.enqueue_update(1, rect_at(1, t), t);
            p.enqueue_update(2, rect_at(2, t), t);
        }
        p.enqueue_update(1, rect_at(1, 9), 9); // gap for object 1
        p.enqueue_finish(7, 3); // never observed + behind clock
        let report = p.commit();
        assert_eq!(report.rejected.len(), 2);
        assert!(matches!(
            report.rejected[0].error,
            OnlineError::Observe(ObserveError::Gap { id: 1, .. })
        ));
        // Both well-formed streams stay open and ingestible.
        p.enqueue_update(1, rect_at(1, 6), 6);
        p.enqueue_update(2, rect_at(2, 6), 6);
        let report = p.commit();
        assert!(report.rejected.is_empty());
        let report = p.seal();
        assert_eq!(report.state, BatchState::Published);
        let mut out = Vec::new();
        p.published()
            .tree()
            .query_interval(&Rect2::UNIT, &TimeInterval::new(0, 7), &mut out)
            .unwrap();
        out.sort_unstable();
        assert_eq!(out, vec![1, 2]);
    }

    /// The review repro: object 1 stops reporting at t=3 while object 2
    /// keeps going to t=10. Seal must close object 1's piece at 4 —
    /// *behind* the pipeline clock — and terminate instead of spinning
    /// on rejected straggler finishes.
    #[test]
    fn seal_closes_stragglers_behind_the_clock() {
        let mut p = IngestPipeline::new(config(), params());
        for t in 0..11 {
            if t < 4 {
                p.enqueue_update(1, rect_at(1, t), t);
            }
            p.enqueue_update(2, rect_at(2, t), t);
        }
        let report = p.commit();
        assert!(report.rejected.is_empty());
        let report = p.seal();
        assert_eq!(report.state, BatchState::Published);
        assert!(report.rejected.is_empty(), "{:?}", report.rejected);
        assert!(!report.stalled);
        assert_eq!(p.pending_events(), 0);
        let v = p.published();
        assert_eq!(v.stamp().watermark, 11);
        let mut out = Vec::new();
        v.tree().query_snapshot(&Rect2::UNIT, 3, &mut out).unwrap();
        out.sort_unstable();
        assert_eq!(out, vec![1, 2], "both objects alive at t=3");
        out.clear();
        v.tree().query_snapshot(&Rect2::UNIT, 7, &mut out).unwrap();
        assert_eq!(out, vec![2], "object 1 finished at 4");
    }

    /// The wedge hook forces seal down its stalled exit: the report
    /// must carry `stalled = true` and leave the undrained queue depth
    /// visible, so callers can surface real diagnostics instead of
    /// silently saving a truncated index.
    #[test]
    fn wedged_seal_reports_stalled_with_undrained_work() {
        let mut p = IngestPipeline::new(config(), params());
        for t in 0..6 {
            p.enqueue_update(1, rect_at(1, t), t);
        }
        p.wedge_seal_for_test();
        let report = p.seal();
        assert!(report.stalled, "wedge must surface as a stall");
        assert!(report.error.is_none(), "a stall is not a storage fault");
        assert!(
            p.queue_len() + p.pending_events() > 0,
            "a stalled seal leaves undrained work behind for diagnostics"
        );
    }

    /// A producer-enqueued finish for a straggler object (end behind
    /// the pipeline clock but exactly one past the object's own last
    /// observation) is accepted, not rejected as out of order.
    #[test]
    fn straggler_finish_behind_the_clock_is_accepted() {
        let mut p = IngestPipeline::new(config(), params());
        for t in 0..8 {
            if t < 3 {
                p.enqueue_update(1, rect_at(1, t), t);
            }
            p.enqueue_update(2, rect_at(2, t), t);
        }
        p.enqueue_finish(1, 3); // clock is at 7 by drain time
        let report = p.commit();
        assert!(report.rejected.is_empty(), "{:?}", report.rejected);
        assert_eq!(p.now(), 7, "a past finish must not move the clock");
        let report = p.seal();
        assert_eq!(report.state, BatchState::Published);
        let mut out = Vec::new();
        p.published()
            .tree()
            .query_snapshot(&Rect2::UNIT, 5, &mut out)
            .unwrap();
        assert_eq!(out, vec![2]);
    }

    #[test]
    fn empty_commit_is_a_no_op_and_burns_no_version() {
        let mut p = IngestPipeline::new(config(), params());
        let r1 = p.commit();
        assert_eq!(r1.state, BatchState::Queued);
        assert_eq!(r1.trace, vec![BatchState::Queued]);
        assert_eq!(p.published().stamp().version, 0);
    }

    #[test]
    fn successful_trace_matches_the_state_machine() {
        let mut p = IngestPipeline::new(config(), params());
        drive(&mut p, 3, 0..30, 30);
        let report = p.seal();
        assert_eq!(
            report.trace,
            vec![
                BatchState::Queued,
                BatchState::Batched,
                BatchState::Committing,
                BatchState::Committed,
                BatchState::Published,
            ]
        );
        // Replay through the pure transition function.
        let mut s = report.trace[0];
        for (next, ev) in report.trace[1..].iter().zip([
            BatchEvent::Drain,
            BatchEvent::Begin,
            BatchEvent::Applied,
            BatchEvent::Publish,
        ]) {
            s = transition(s, ev).unwrap();
            assert_eq!(s, *next);
        }
    }

    #[test]
    fn metrics_report_version_and_lag() {
        let mut p = IngestPipeline::new(config(), params());
        drive(&mut p, 3, 0..20, 10);
        let mut set = MetricSet::new();
        p.record_metrics(&mut set);
        let json = set.to_json();
        assert!(json.contains("ingest_commits_total"));
        assert!(json.contains("ingest_published_version"));
        assert!(json.contains("ingest_commit_lag_instants"));
    }
}
