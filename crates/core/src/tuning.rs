//! Choosing the number of splits (paper §IV).
//!
//! Two strategies are provided, mirroring the paper's proposals:
//!
//! * [`choose_splits_analytical`] — for each candidate budget, plan the
//!   splits, summarize the resulting record set, and feed the summary to
//!   an analytical cost model ([`sti_costmodel::RTreeCostModel`]); pick
//!   the budget with the lowest predicted average query cost.
//! * [`choose_splits_by_sampling`] — build real (small) indexes over a
//!   sample of the dataset, run representative queries against each, and
//!   pick the budget with the lowest measured I/O, normalizing the
//!   budget back to the full dataset.

use crate::index::{IndexBackend, IndexConfig, SpatioTemporalIndex};
use crate::multi::DistributionAlgorithm;
use crate::parallel::{map_chunked, Parallelism};
use crate::plan::{SplitBudget, SplitPlan};
use crate::single::SingleSplitAlgorithm;
use sti_costmodel::{BoxStats, RTreeCostModel};
use sti_geom::{Rect2, Time, TimeInterval};
use sti_trajectory::RasterizedObject;

/// The average query the tuner optimizes for: spatial window extents
/// (fractions of the space) and duration in instants.
#[derive(Debug, Clone, Copy)]
pub struct QueryProfile {
    /// Mean query window extents.
    pub extents: (f64, f64),
    /// Mean query duration in instants.
    pub duration: u32,
}

/// Outcome of a tuning run: the chosen budget plus the full cost table
/// for inspection/plotting.
#[derive(Debug, Clone)]
pub struct TuningResult {
    /// Index into `candidates` of the winner.
    pub best: usize,
    /// `(budget, predicted-or-measured cost)` per candidate.
    pub costs: Vec<(SplitBudget, f64)>,
}

impl TuningResult {
    /// The winning budget.
    pub fn best_budget(&self) -> SplitBudget {
        self.costs[self.best].0
    }
}

/// §IV, method 1: predict the average query cost per candidate budget
/// with an analytical model and pick the minimum.
///
/// The PPR-Tree answers a snapshot query like an ephemeral 2D R-Tree over
/// the records alive at that instant, and an interval query touches the
/// records alive during the window; the model is therefore applied in 2D
/// with the *alive-per-instant* cardinality (splitting leaves this
/// unchanged while shrinking spatial extents — exactly why it pays off,
/// cf. §I).
pub fn choose_splits_analytical(
    objects: &[RasterizedObject],
    single: SingleSplitAlgorithm,
    distribution: DistributionAlgorithm,
    candidates: &[SplitBudget],
    profile: QueryProfile,
    time_extent: Time,
    parallelism: Parallelism,
) -> TuningResult {
    assert!(!candidates.is_empty(), "no candidate budgets");
    assert!(profile.duration >= 1, "queries span at least one instant");
    let model = RTreeCostModel::default();
    // Split sources depend only on the objects and the single-object
    // algorithm: build them once (fanning per-object work out over
    // `parallelism`) and re-distribute per candidate. Candidates are
    // themselves independent, so the candidate loop fans out too;
    // results come back in candidate order either way.
    let (sources, curves) = SplitPlan::prepare(objects, single, None, parallelism);
    let costs = map_chunked(candidates, parallelism, |_, &budget| {
        let k = budget.resolve(objects.len());
        let allocation = distribution.distribute(&curves, k);
        let records = crate::plan::records_for(objects, &sources, &allocation.splits);
        let stats = BoxStats::compute(records.iter().map(|r| &r.stbox), time_extent);
        // Records alive during the query window ≈ alive-per-instant
        // scaled by (1 + duration / avg record duration) to account for
        // turnover across the interval.
        let turnover = 1.0
            + f64::from(profile.duration - 1)
                / (stats.avg_duration * f64::from(time_extent)).max(1.0);
        let n_eff = (stats.alive_per_instant * turnover).ceil() as usize;
        let cost = model.estimate(
            n_eff.max(1),
            &[stats.avg_extent.0, stats.avg_extent.1],
            &[profile.extents.0, profile.extents.1],
        );
        (budget, cost)
    });
    let best = argmin(&costs);
    TuningResult { best, costs }
}

/// §IV, method 2: sample the dataset (`1 / sample_denominator` of the
/// objects), build a real index per candidate budget, measure the average
/// query I/O over `queries`, and pick the minimum. Budgets expressed as
/// [`SplitBudget::Percent`] transfer to the full dataset unchanged; the
/// paper's "the number of splits should be normalized to the full
/// dataset" is exactly this.
#[allow(clippy::too_many_arguments)]
pub fn choose_splits_by_sampling(
    objects: &[RasterizedObject],
    single: SingleSplitAlgorithm,
    distribution: DistributionAlgorithm,
    candidates: &[SplitBudget],
    queries: &[(Rect2, TimeInterval)],
    backend: IndexBackend,
    sample_denominator: usize,
    parallelism: Parallelism,
) -> TuningResult {
    assert!(!candidates.is_empty(), "no candidate budgets");
    assert!(sample_denominator >= 1);
    let sample: Vec<RasterizedObject> = objects
        .iter()
        .step_by(sample_denominator)
        .cloned()
        .collect();
    assert!(!sample.is_empty(), "sample is empty");

    // Split sources depend only on the sample and the single-object
    // algorithm: build them once and re-distribute per candidate. Each
    // candidate owns its (small) index, so the build-and-measure pass
    // fans out over `parallelism`; measured I/O is deterministic per
    // candidate and comes back in candidate order.
    let (sample_sources, sample_curves) = SplitPlan::prepare(&sample, single, None, parallelism);
    let costs = map_chunked(candidates, parallelism, |_, &budget| {
        // Percent budgets transfer to the sample unchanged; absolute
        // counts must shrink with it, or the sampled index would carry
        // `denominator`× the intended splits per object.
        let sampled_budget = match budget {
            SplitBudget::Percent(_) => budget,
            SplitBudget::Count(k) => SplitBudget::Count(k / sample_denominator),
        };
        let k = sampled_budget.resolve(sample.len());
        let allocation = distribution.distribute(&sample_curves, k);
        let records = crate::plan::records_for(&sample, &sample_sources, &allocation.splits);
        let mut idx = SpatioTemporalIndex::build(&records, &IndexConfig::paper(backend))
            // stilint::allow(no_panic, "the sampling tuner builds over the default in-memory store, which cannot fail")
            .expect("in-memory build cannot fail");
        let mut total_io = 0u64;
        for (area, range) in queries {
            idx.reset_for_query();
            // stilint::allow(no_panic, "in-memory reads cannot fail; a skipped query would silently skew the measured cost")
            let _ = idx.query(area, range).expect("in-memory query cannot fail");
            total_io += idx.io_stats().reads;
        }
        (budget, total_io as f64 / queries.len().max(1) as f64)
    });
    let best = argmin(&costs);
    TuningResult { best, costs }
}

fn argmin(costs: &[(SplitBudget, f64)]) -> usize {
    costs
        .iter()
        .enumerate()
        .min_by(|a, b| a.1 .1.total_cmp(&b.1 .1))
        .map(|(i, _)| i)
        // stilint::allow(no_panic, "choose_splits_by_sampling asserts the candidate list is non-empty before building costs")
        .expect("nonempty")
}

#[cfg(test)]
mod tests {
    use super::*;
    use sti_geom::Point2;

    /// Fast-moving objects: splitting should clearly pay off.
    fn movers(n: usize) -> Vec<RasterizedObject> {
        (0..n as u64)
            .map(|id| {
                let start = ((id * 31) % 900) as u32;
                let len = 40 + (id % 20) as usize;
                let rects = (0..len)
                    .map(|i| {
                        let x = 0.01 + 0.9 * ((id as f64 * 0.37 + 0.015 * i as f64).fract());
                        Rect2::centered(Point2::new(x + 0.01, 0.5), 0.02, 0.02)
                    })
                    .collect();
                RasterizedObject::new(id, start, rects)
            })
            .collect()
    }

    #[test]
    fn analytical_tuner_prefers_splitting_for_movers() {
        // Large enough that the tree has real levels — with a handful of
        // objects everything fits the root and all budgets tie.
        let objs = movers(2000);
        let candidates = [
            SplitBudget::Percent(0.0),
            SplitBudget::Percent(50.0),
            SplitBudget::Percent(150.0),
        ];
        let result = choose_splits_analytical(
            &objs,
            SingleSplitAlgorithm::MergeSplit,
            DistributionAlgorithm::Greedy,
            &candidates,
            QueryProfile {
                extents: (0.01, 0.01),
                duration: 1,
            },
            1000,
            Parallelism::Sequential,
        );
        assert_eq!(result.costs.len(), 3);
        // Costs must be monotone non-increasing in the split budget for
        // this workload: splitting shrinks extents at constant alive
        // cardinality.
        assert!(result.costs[1].1 <= result.costs[0].1 + 1e-9);
        assert!(
            result.best != 0,
            "tuner should not pick zero splits for fast movers"
        );
    }

    #[test]
    fn sampling_tuner_runs_and_picks_a_candidate() {
        let objs = movers(80);
        let candidates = [SplitBudget::Percent(0.0), SplitBudget::Percent(100.0)];
        let queries: Vec<(Rect2, TimeInterval)> = (0..10)
            .map(|i| {
                (
                    Rect2::from_bounds(
                        0.1 * (i % 8) as f64,
                        0.45,
                        0.1 * (i % 8) as f64 + 0.05,
                        0.55,
                    ),
                    TimeInterval::new(i * 80, i * 80 + 1),
                )
            })
            .collect();
        let result = choose_splits_by_sampling(
            &objs,
            SingleSplitAlgorithm::MergeSplit,
            DistributionAlgorithm::Greedy,
            &candidates,
            &queries,
            IndexBackend::PprTree,
            2,
            Parallelism::Sequential,
        );
        assert_eq!(result.costs.len(), 2);
        assert!(result.best < 2);
        let _ = result.best_budget();
    }

    #[test]
    fn analytical_tuner_is_parallelism_invariant() {
        let objs = movers(60);
        let candidates = [
            SplitBudget::Percent(0.0),
            SplitBudget::Percent(50.0),
            SplitBudget::Percent(100.0),
        ];
        let profile = QueryProfile {
            extents: (0.05, 0.05),
            duration: 3,
        };
        let run = |par| {
            choose_splits_analytical(
                &objs,
                SingleSplitAlgorithm::MergeSplit,
                DistributionAlgorithm::Greedy,
                &candidates,
                profile,
                1000,
                par,
            )
        };
        let seq = run(Parallelism::Sequential);
        for workers in [2, 4] {
            let par = run(Parallelism::fixed(workers));
            assert_eq!(par.best, seq.best);
            for (a, b) in par.costs.iter().zip(&seq.costs) {
                assert_eq!(a.0, b.0);
                assert_eq!(a.1.to_bits(), b.1.to_bits(), "{workers} workers");
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one instant")]
    fn rejects_zero_duration_profile() {
        let objs = movers(5);
        let _ = choose_splits_analytical(
            &objs,
            SingleSplitAlgorithm::MergeSplit,
            DistributionAlgorithm::Greedy,
            &[SplitBudget::Percent(50.0)],
            QueryProfile {
                extents: (0.01, 0.01),
                duration: 0,
            },
            1000,
            Parallelism::Sequential,
        );
    }

    #[test]
    fn sampling_scales_absolute_budgets() {
        // A Count budget equal to the full dataset's object count should
        // behave like ~100% splits on the sample, not like
        // denominator×100%.
        let objs = movers(40);
        let queries: Vec<(Rect2, TimeInterval)> = vec![(Rect2::UNIT, TimeInterval::instant(100))];
        let result = choose_splits_by_sampling(
            &objs,
            SingleSplitAlgorithm::MergeSplit,
            DistributionAlgorithm::Greedy,
            &[SplitBudget::Count(objs.len())],
            &queries,
            IndexBackend::PprTree,
            4,
            Parallelism::Sequential,
        );
        // It ran and produced a cost for the (scaled) candidate.
        assert_eq!(result.costs.len(), 1);
        assert!(result.costs[0].1 >= 0.0);
    }

    #[test]
    #[should_panic(expected = "no candidate budgets")]
    fn rejects_empty_candidates() {
        let objs = movers(5);
        let _ = choose_splits_analytical(
            &objs,
            SingleSplitAlgorithm::MergeSplit,
            DistributionAlgorithm::Greedy,
            &[],
            QueryProfile {
                extents: (0.01, 0.01),
                duration: 1,
            },
            1000,
            Parallelism::Sequential,
        );
    }
}
