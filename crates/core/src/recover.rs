//! Durability types for the ingest pipeline: WAL payload codecs, the
//! checkpoint file format, the crash-injection plan, and the recovery
//! reports (DESIGN.md §8).
//!
//! The mechanics live in [`crate::pipeline`] (which owns the private
//! pipeline state); this module owns everything serializable and every
//! typed error on the durability path:
//!
//! * **WAL payloads** — each accepted [`IngestOp`] is encoded with
//!   [`encode_op`] and appended to a [`sti_storage::Wal`] *before* the
//!   enqueue is acknowledged; [`decode_op`] is the replay side.
//! * **Checkpoints** — a generation `g` is two files in the WAL
//!   directory: `checkpoint-<g:016x>.idx` (the published tree via the
//!   crash-safe `save_to` path) and `checkpoint-<g:016x>.meta` (a
//!   `CheckpointMeta`: the committer's exact volatile state plus the
//!   WAL cut `wal_lsn`). The meta rename is the commit point — a crash
//!   anywhere earlier leaves the generation invisible and recovery
//!   falls back to the previous one.
//! * **Recovery** — load the newest generation whose meta decodes and
//!   whose index opens, restore the committer state byte-for-byte, then
//!   replay WAL records with `lsn >= wal_lsn` through the normal
//!   validate/absorb path. The LSN cut makes replay idempotent at the
//!   operation level; the recorded [`VersionStamp`] watermark is the
//!   event-level guard (every event below it lives only in the
//!   checkpointed tree, never in the restored buffers).
//!
//! Meta layout (all little-endian, trailing XXH64 over everything
//! before it):
//!
//! ```text
//! magic "STICKPT1" · generation: u64 · wal_lsn: u64 ·
//! version: u64 · watermark: u32 · now: u32 · seq: u64 ·
//! commits: u64 · rollbacks: u64 · rejected_total: u64 ·
//! splits_issued: u64 ·
//! open_count: u32 · open_count × open_piece ·
//! reorder_count: u32 · reorder_count × event ·
//! pending_count: u32 · pending_count × event ·
//! queued_count: u32 · queued_count × op ·
//! meta_xxh: u64
//! ```

use crate::online::{Ev, OpenPieceSnapshot};
use crate::pipeline::IngestOp;
use crate::plan::{ObjectRecord, RecordEvent};
use crate::version::VersionStamp;
use std::io;
use std::path::{Path, PathBuf};
use sti_geom::{Point2, Rect2, StBox, Time, TimeInterval};
use sti_obs::MetricSet;
use sti_storage::{xxh64, ByteReader, CodecError, Wal, WalError};

/// Magic prefix of a checkpoint meta file (format version 1).
pub const CHECKPOINT_MAGIC: &[u8; 8] = b"STICKPT1";

/// Upper bound on one buffer count in a meta file; anything larger with
/// a valid checksum is corruption that got lucky, so it fails closed.
const MAX_META_COUNT: u32 = 1 << 24;

/// Where an injected crash kills the pipeline — one point per
/// WAL/checkpoint/publish boundary the crash matrix exercises. The
/// pipeline "dies" at the armed point: the durability call returns
/// [`DurabilityError::InjectedCrash`] once, and every later durable
/// call returns [`DurabilityError::Dead`], modelling a process that is
/// gone until [`crate::pipeline::IngestPipeline::recover`] runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashPoint {
    /// In `enqueue_durable`, before the op reaches the WAL: the op is
    /// lost and was never acknowledged.
    BeforeWalAppend,
    /// In `enqueue_durable`, after the WAL append but before the queue
    /// push: the op is logged but unacknowledged — recovery may
    /// legitimately resurrect it.
    AfterWalAppend,
    /// In `commit`, before the commit-time WAL sync.
    BeforeCommitSync,
    /// In `commit`, after the WAL sync but before any tree work.
    AfterCommitSync,
    /// In `commit`, immediately after the new version is published.
    AfterPublish,
    /// In `checkpoint`, before anything is written.
    CheckpointBegin,
    /// In `checkpoint`, mid-way through the index save: a torn `.idx`
    /// image lands at the final path, but no meta ever points at it.
    CheckpointMidTreeSave,
    /// In `checkpoint`, after the index file is complete but before the
    /// meta rename (the generation stays invisible).
    CheckpointBeforeMetaRename,
    /// In `checkpoint`, after the meta rename (the generation is live)
    /// but before old generations are pruned and the WAL truncated.
    CheckpointAfterMetaRename,
    /// In `checkpoint`, after pruning and truncation complete.
    CheckpointEnd,
}

impl CrashPoint {
    /// Every kill point, in pipeline order — what the crash matrix
    /// iterates over.
    pub const ALL: [CrashPoint; 10] = [
        CrashPoint::BeforeWalAppend,
        CrashPoint::AfterWalAppend,
        CrashPoint::BeforeCommitSync,
        CrashPoint::AfterCommitSync,
        CrashPoint::AfterPublish,
        CrashPoint::CheckpointBegin,
        CrashPoint::CheckpointMidTreeSave,
        CrashPoint::CheckpointBeforeMetaRename,
        CrashPoint::CheckpointAfterMetaRename,
        CrashPoint::CheckpointEnd,
    ];
}

impl std::fmt::Display for CrashPoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            CrashPoint::BeforeWalAppend => "before-wal-append",
            CrashPoint::AfterWalAppend => "after-wal-append",
            CrashPoint::BeforeCommitSync => "before-commit-sync",
            CrashPoint::AfterCommitSync => "after-commit-sync",
            CrashPoint::AfterPublish => "after-publish",
            CrashPoint::CheckpointBegin => "checkpoint-begin",
            CrashPoint::CheckpointMidTreeSave => "checkpoint-mid-tree-save",
            CrashPoint::CheckpointBeforeMetaRename => "checkpoint-before-meta-rename",
            CrashPoint::CheckpointAfterMetaRename => "checkpoint-after-meta-rename",
            CrashPoint::CheckpointEnd => "checkpoint-end",
        };
        f.write_str(name)
    }
}

/// Why a durable operation failed. Everything is typed; an injected
/// crash is an error like any other, so the matrix can drop the
/// "process" and recover from disk.
#[derive(Debug)]
pub enum DurabilityError {
    /// The pipeline has no WAL attached.
    NotAttached,
    /// The pipeline already has a WAL attached.
    AlreadyAttached,
    /// `attach_durability` found existing WAL records or checkpoints —
    /// attaching a *fresh* pipeline to a *used* directory would
    /// silently shadow recoverable history; use `recover` instead.
    DirNotInitial,
    /// The write-ahead log failed.
    Wal(WalError),
    /// A checkpoint file operation failed.
    Io(io::Error),
    /// The armed [`CrashPoint`] fired: the simulated process just died.
    InjectedCrash(CrashPoint),
    /// A durable call after an injected crash: the process is dead
    /// until recovery.
    Dead,
}

impl std::fmt::Display for DurabilityError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DurabilityError::NotAttached => f.write_str("no write-ahead log attached"),
            DurabilityError::AlreadyAttached => {
                f.write_str("a write-ahead log is already attached")
            }
            DurabilityError::DirNotInitial => f.write_str(
                "wal directory already holds records or checkpoints; recover instead of attaching",
            ),
            DurabilityError::Wal(e) => write!(f, "write-ahead log failure: {e}"),
            DurabilityError::Io(e) => write!(f, "checkpoint I/O failure: {e}"),
            DurabilityError::InjectedCrash(p) => write!(f, "injected crash at {p}"),
            DurabilityError::Dead => f.write_str("pipeline killed by an injected crash"),
        }
    }
}

impl std::error::Error for DurabilityError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DurabilityError::Wal(e) => Some(e),
            DurabilityError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<WalError> for DurabilityError {
    fn from(e: WalError) -> Self {
        DurabilityError::Wal(e)
    }
}

impl From<io::Error> for DurabilityError {
    fn from(e: io::Error) -> Self {
        DurabilityError::Io(e)
    }
}

/// Why recovery failed. Torn artifacts of a crash are *not* errors
/// (they are truncated or skipped by design); these are the genuinely
/// unrecoverable shapes — corruption past the checksums' reach, or a
/// directory whose every checkpoint is damaged.
#[derive(Debug)]
pub enum RecoverError {
    /// The write-ahead log was rejected (corruption, chain gap).
    Wal(WalError),
    /// A directory/file operation failed.
    Io(io::Error),
    /// Checkpoint metas exist but none pairs a decodable meta with an
    /// openable index file.
    NoUsableCheckpoint {
        /// How many generations were tried (newest first).
        tried: usize,
    },
    /// A replayed WAL record did not decode as an [`IngestOp`].
    BadWalRecord {
        /// The record's log sequence number.
        lsn: u64,
        /// What was wrong with it.
        what: &'static str,
    },
}

impl std::fmt::Display for RecoverError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecoverError::Wal(e) => write!(f, "cannot recover: {e}"),
            RecoverError::Io(e) => write!(f, "cannot recover: {e}"),
            RecoverError::NoUsableCheckpoint { tried } => write!(
                f,
                "cannot recover: all {tried} checkpoint generation(s) are damaged"
            ),
            RecoverError::BadWalRecord { lsn, what } => {
                write!(
                    f,
                    "cannot recover: wal record {lsn} is not an ingest op ({what})"
                )
            }
        }
    }
}

impl std::error::Error for RecoverError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RecoverError::Wal(e) => Some(e),
            RecoverError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<WalError> for RecoverError {
    fn from(e: WalError) -> Self {
        RecoverError::Wal(e)
    }
}

impl From<io::Error> for RecoverError {
    fn from(e: io::Error) -> Self {
        RecoverError::Io(e)
    }
}

/// What one [`crate::pipeline::IngestPipeline::checkpoint`] call did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckpointReport {
    /// The generation this checkpoint created.
    pub generation: u64,
    /// The WAL cut: every record below this LSN is covered by the
    /// checkpointed state.
    pub wal_lsn: u64,
    /// Old generations whose files were deleted.
    pub pruned_generations: u64,
    /// Obsolete WAL segment files deleted by the truncation.
    pub wal_segments_deleted: u64,
}

/// What [`crate::pipeline::IngestPipeline::recover`] reconstructed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryReport {
    /// The generation recovery started from (`None`: no checkpoint yet,
    /// the whole WAL was replayed onto an empty pipeline).
    pub checkpoint_generation: Option<u64>,
    /// Newer generations skipped because their meta or index was
    /// damaged (0 in every pure crash scenario: a crash can only leave
    /// an *invisible* generation, not a damaged one).
    pub checkpoints_skipped: u64,
    /// The published stamp immediately after recovery.
    pub stamp: VersionStamp,
    /// WAL records replayed into the queue (`lsn >= wal_lsn`).
    pub wal_records_replayed: u64,
    /// Whether the WAL's last segment ended in a torn append (truncated
    /// fail-closed during replay).
    pub torn_tail: bool,
    /// Queued-but-unabsorbed ops restored from the checkpoint meta
    /// (they re-enter the queue *ahead* of the replayed WAL tail,
    /// preserving arrival order).
    pub queued_restored: u64,
    /// Reordering/pending events restored from the checkpoint meta.
    pub pending_restored: u64,
}

impl RecoveryReport {
    /// Export the recovery outcome as `recovery_*` metrics, so a
    /// dashboard can tell a recovered process from a fresh one.
    pub fn record_metrics(&self, set: &mut MetricSet) {
        set.counter(
            "recovery_wal_records_replayed",
            "wal records replayed through absorb at recovery",
            self.wal_records_replayed as f64,
        );
        set.counter(
            "recovery_checkpoints_skipped",
            "damaged checkpoint generations skipped at recovery",
            self.checkpoints_skipped as f64,
        );
        set.gauge(
            "recovery_checkpoint_generation",
            "checkpoint generation recovery started from (0: none)",
            self.checkpoint_generation.unwrap_or(0) as f64,
        );
        set.gauge(
            "recovery_torn_tail",
            "whether the wal tail was torn and truncated (0/1)",
            f64::from(u8::from(self.torn_tail)),
        );
        set.gauge(
            "recovery_queued_restored",
            "queued ops restored from the checkpoint meta",
            self.queued_restored as f64,
        );
        set.gauge(
            "recovery_pending_restored",
            "reordering and pending events restored from the checkpoint meta",
            self.pending_restored as f64,
        );
    }
}

/// The durable half of a pipeline: the WAL handle, the retained
/// checkpoint generations, and the crash-injection state. Owned by
/// [`crate::pipeline::IngestPipeline`]; every field is crate-private
/// because only the pipeline drives it.
#[derive(Debug)]
pub(crate) struct Durability {
    /// The directory holding WAL segments and checkpoint files.
    pub(crate) dir: PathBuf,
    pub(crate) wal: Wal,
    /// `(generation, wal_lsn)` of retained checkpoints, oldest first;
    /// at most two. The WAL is truncated below the *oldest* retained
    /// cut, so falling back one generation always finds its tail.
    pub(crate) retained: Vec<(u64, u64)>,
    /// The generation the next checkpoint will write.
    pub(crate) next_generation: u64,
    /// The armed kill point, if any.
    pub(crate) crash: Option<CrashPoint>,
    /// Set once the armed point fires; every durable call afterwards
    /// returns [`DurabilityError::Dead`].
    pub(crate) dead: bool,
    /// Checkpoints completed through this handle.
    pub(crate) checkpoints_total: u64,
}

impl Durability {
    /// Fail if dead; fire (and die at) the armed point if it matches.
    pub(crate) fn crash_check(&mut self, point: CrashPoint) -> Result<(), DurabilityError> {
        if self.dead {
            return Err(DurabilityError::Dead);
        }
        if self.crash == Some(point) {
            self.dead = true;
            return Err(DurabilityError::InjectedCrash(point));
        }
        Ok(())
    }
}

/// `dir/checkpoint-<generation>.meta`.
pub(crate) fn meta_path(dir: &Path, generation: u64) -> PathBuf {
    dir.join(format!("checkpoint-{generation:016x}.meta"))
}

/// `dir/checkpoint-<generation>.idx`.
pub(crate) fn idx_path(dir: &Path, generation: u64) -> PathBuf {
    dir.join(format!("checkpoint-{generation:016x}.idx"))
}

/// Every generation with a *committed* meta file in `dir`, ascending.
/// Index files without a meta (a crash before the meta rename) are
/// invisible here by design; they are garbage a later prune removes.
pub(crate) fn scan_generations(dir: &Path) -> Result<Vec<u64>, io::Error> {
    let mut out = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some(middle) = name
            .strip_prefix("checkpoint-")
            .and_then(|rest| rest.strip_suffix(".meta"))
        else {
            continue;
        };
        if let Ok(generation) = u64::from_str_radix(middle, 16) {
            out.push(generation);
        }
    }
    out.sort_unstable();
    Ok(out)
}

/// Delete every checkpoint file — meta, index, or stale save temp —
/// whose generation is below `keep_from`. Scanning the directory (and
/// not just the generations the live process remembers) also collects
/// orphans: torn index images a crash left without a meta, and damaged
/// generations recovery skipped. Returns how many files were removed.
pub(crate) fn prune_below(dir: &Path, keep_from: u64) -> Result<u64, io::Error> {
    let mut removed = 0u64;
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some(rest) = name.strip_prefix("checkpoint-") else {
            continue;
        };
        let Some(hex) = rest
            .strip_suffix(".meta")
            .or_else(|| rest.strip_suffix(".idx"))
            .or_else(|| rest.strip_suffix(".meta.tmp"))
            .or_else(|| rest.strip_suffix(".idx.tmp"))
        else {
            continue;
        };
        let Ok(generation) = u64::from_str_radix(hex, 16) else {
            continue;
        };
        if generation < keep_from {
            std::fs::remove_file(entry.path())?;
            removed += 1;
        }
    }
    Ok(removed)
}

/// The committer's complete volatile state at checkpoint time — enough
/// to restore a pipeline that behaves exactly like the one that wrote
/// it (given the paired `.idx` tree and the WAL tail past `wal_lsn`).
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct CheckpointMeta {
    pub(crate) generation: u64,
    /// First WAL LSN *not* covered by this state: everything below was
    /// either absorbed into the splitter/buffers/tree or sits in
    /// `queued` below.
    pub(crate) wal_lsn: u64,
    pub(crate) stamp: VersionStamp,
    pub(crate) now: Time,
    pub(crate) seq: u64,
    pub(crate) commits: u64,
    pub(crate) rollbacks: u64,
    pub(crate) rejected_total: u64,
    pub(crate) splits_issued: u64,
    pub(crate) open_pieces: Vec<OpenPieceSnapshot>,
    pub(crate) reorder: Vec<Ev>,
    pub(crate) pending: Vec<Ev>,
    pub(crate) queued: Vec<IngestOp>,
}

impl CheckpointMeta {
    /// Serialize with the trailing checksum.
    pub(crate) fn encode(&self) -> Result<Vec<u8>, DurabilityError> {
        let mut out = Vec::with_capacity(
            128 + 48 * self.open_pieces.len()
                + 61 * (self.reorder.len() + self.pending.len())
                + 45 * self.queued.len(),
        );
        out.extend_from_slice(CHECKPOINT_MAGIC);
        out.extend_from_slice(&self.generation.to_le_bytes());
        out.extend_from_slice(&self.wal_lsn.to_le_bytes());
        out.extend_from_slice(&self.stamp.version.to_le_bytes());
        out.extend_from_slice(&self.stamp.watermark.to_le_bytes());
        out.extend_from_slice(&self.now.to_le_bytes());
        out.extend_from_slice(&self.seq.to_le_bytes());
        out.extend_from_slice(&self.commits.to_le_bytes());
        out.extend_from_slice(&self.rollbacks.to_le_bytes());
        out.extend_from_slice(&self.rejected_total.to_le_bytes());
        out.extend_from_slice(&self.splits_issued.to_le_bytes());

        put_count(&mut out, self.open_pieces.len())?;
        for p in &self.open_pieces {
            out.extend_from_slice(&p.id.to_le_bytes());
            out.extend_from_slice(&p.start.to_le_bytes());
            out.extend_from_slice(&p.last.to_le_bytes());
            put_rect(&mut out, &p.mbr);
            out.extend_from_slice(&p.area_sum.to_le_bytes());
        }
        put_count(&mut out, self.reorder.len())?;
        for ev in &self.reorder {
            put_ev(&mut out, ev);
        }
        put_count(&mut out, self.pending.len())?;
        for ev in &self.pending {
            put_ev(&mut out, ev);
        }
        put_count(&mut out, self.queued.len())?;
        for op in &self.queued {
            out.extend_from_slice(&encode_op(op));
        }

        let sum = xxh64(&out);
        out.extend_from_slice(&sum.to_le_bytes());
        Ok(out)
    }

    /// Validate the checksum and decode, failing closed on anything
    /// short, long, or structurally impossible.
    pub(crate) fn decode(bytes: &[u8]) -> Result<Self, &'static str> {
        if bytes.len() < CHECKPOINT_MAGIC.len() + 8 {
            return Err("shorter than magic plus checksum");
        }
        let (body, sum_bytes) = bytes.split_at(bytes.len() - 8);
        let mut sum = [0u8; 8];
        sum.copy_from_slice(sum_bytes);
        if xxh64(body) != u64::from_le_bytes(sum) {
            return Err("checksum mismatch");
        }
        let mut r = ByteReader::new(body);
        let mut magic = [0u8; 8];
        for b in &mut magic {
            *b = r.get_u8().map_err(|_| "truncated magic")?;
        }
        if &magic != CHECKPOINT_MAGIC {
            return Err("bad magic");
        }
        let take = |e: CodecError| -> &'static str {
            match e {
                CodecError::OutOfBounds { .. } => "truncated meta",
                CodecError::InvalidValue(what) => what,
            }
        };
        let generation = r.get_u64().map_err(take)?;
        let wal_lsn = r.get_u64().map_err(take)?;
        let version = r.get_u64().map_err(take)?;
        let watermark = r.get_u32().map_err(take)?;
        let now = r.get_u32().map_err(take)?;
        let seq = r.get_u64().map_err(take)?;
        let commits = r.get_u64().map_err(take)?;
        let rollbacks = r.get_u64().map_err(take)?;
        let rejected_total = r.get_u64().map_err(take)?;
        let splits_issued = r.get_u64().map_err(take)?;

        let open_count = get_count(&mut r)?;
        let mut open_pieces = Vec::with_capacity(open_count);
        for _ in 0..open_count {
            let id = r.get_u64().map_err(take)?;
            let start = r.get_u32().map_err(take)?;
            let last = r.get_u32().map_err(take)?;
            let mbr = get_rect(&mut r)?;
            let area_sum = r.get_f64().map_err(take)?;
            if last < start {
                return Err("open piece ends before it starts");
            }
            open_pieces.push(OpenPieceSnapshot {
                id,
                start,
                last,
                mbr,
                area_sum,
            });
        }
        let reorder_count = get_count(&mut r)?;
        let mut reorder = Vec::with_capacity(reorder_count);
        for _ in 0..reorder_count {
            reorder.push(get_ev(&mut r)?);
        }
        let pending_count = get_count(&mut r)?;
        let mut pending = Vec::with_capacity(pending_count);
        for _ in 0..pending_count {
            pending.push(get_ev(&mut r)?);
        }
        let queued_count = get_count(&mut r)?;
        let mut queued = Vec::with_capacity(queued_count);
        for _ in 0..queued_count {
            queued.push(get_op(&mut r)?);
        }
        if r.position() != body.len() {
            return Err("trailing bytes after the last queued op");
        }
        Ok(Self {
            generation,
            wal_lsn,
            stamp: VersionStamp { version, watermark },
            now,
            seq,
            commits,
            rollbacks,
            rejected_total,
            splits_issued,
            open_pieces,
            reorder,
            pending,
            queued,
        })
    }
}

/// Encode one [`IngestOp`] as a WAL payload.
///
/// ```text
/// update := 0x01 · id: u64 · t: u32 · rect: 4 × f64
/// finish := 0x02 · id: u64 · end: u32
/// ```
pub fn encode_op(op: &IngestOp) -> Vec<u8> {
    match op {
        IngestOp::Update { id, rect, t } => {
            let mut out = Vec::with_capacity(45);
            out.push(1);
            out.extend_from_slice(&id.to_le_bytes());
            out.extend_from_slice(&t.to_le_bytes());
            put_rect(&mut out, rect);
            out
        }
        IngestOp::Finish { id, end } => {
            let mut out = Vec::with_capacity(13);
            out.push(2);
            out.extend_from_slice(&id.to_le_bytes());
            out.extend_from_slice(&end.to_le_bytes());
            out
        }
    }
}

/// Decode a WAL payload back into an [`IngestOp`], failing closed on
/// unknown tags, short frames, trailing bytes, or reversed rectangles.
pub fn decode_op(bytes: &[u8]) -> Result<IngestOp, &'static str> {
    let mut r = ByteReader::new(bytes);
    let op = get_op(&mut r)?;
    if r.position() != bytes.len() {
        return Err("trailing bytes after the op");
    }
    Ok(op)
}

fn get_op(r: &mut ByteReader<'_>) -> Result<IngestOp, &'static str> {
    let tag = r.get_u8().map_err(|_| "empty op")?;
    match tag {
        1 => {
            let id = r.get_u64().map_err(|_| "truncated update op")?;
            let t = r.get_u32().map_err(|_| "truncated update op")?;
            let rect = get_rect(r)?;
            Ok(IngestOp::Update { id, rect, t })
        }
        2 => {
            let id = r.get_u64().map_err(|_| "truncated finish op")?;
            let end = r.get_u32().map_err(|_| "truncated finish op")?;
            Ok(IngestOp::Finish { id, end })
        }
        _ => Err("unknown op tag"),
    }
}

fn put_rect(out: &mut Vec<u8>, rect: &Rect2) {
    out.extend_from_slice(&rect.lo.x.to_le_bytes());
    out.extend_from_slice(&rect.lo.y.to_le_bytes());
    out.extend_from_slice(&rect.hi.x.to_le_bytes());
    out.extend_from_slice(&rect.hi.y.to_le_bytes());
}

/// Decode a rectangle, refusing reversed corners instead of letting
/// [`Rect2::new`]'s assertion fire on hostile bytes.
fn get_rect(r: &mut ByteReader<'_>) -> Result<Rect2, &'static str> {
    let x_lo = r.get_f64().map_err(|_| "truncated rect")?;
    let y_lo = r.get_f64().map_err(|_| "truncated rect")?;
    let x_hi = r.get_f64().map_err(|_| "truncated rect")?;
    let y_hi = r.get_f64().map_err(|_| "truncated rect")?;
    if !(x_lo <= x_hi && y_lo <= y_hi) {
        return Err("reversed or NaN rectangle");
    }
    Ok(Rect2 {
        lo: Point2 { x: x_lo, y: y_lo },
        hi: Point2 { x: x_hi, y: y_hi },
    })
}

fn put_ev(out: &mut Vec<u8>, ev: &Ev) {
    out.extend_from_slice(&ev.time.to_le_bytes());
    out.push(match ev.kind {
        RecordEvent::Delete => 0,
        RecordEvent::Insert => 1,
    });
    out.extend_from_slice(&ev.seq.to_le_bytes());
    out.extend_from_slice(&ev.record.id.to_le_bytes());
    put_rect(out, &ev.record.stbox.rect);
    out.extend_from_slice(&ev.record.stbox.lifetime.start.to_le_bytes());
    out.extend_from_slice(&ev.record.stbox.lifetime.end.to_le_bytes());
}

fn get_ev(r: &mut ByteReader<'_>) -> Result<Ev, &'static str> {
    let time = r.get_u32().map_err(|_| "truncated event")?;
    let kind = match r.get_u8().map_err(|_| "truncated event")? {
        0 => RecordEvent::Delete,
        1 => RecordEvent::Insert,
        _ => return Err("unknown event kind"),
    };
    let seq = r.get_u64().map_err(|_| "truncated event")?;
    let id = r.get_u64().map_err(|_| "truncated event")?;
    let rect = get_rect(r)?;
    let start = r.get_u32().map_err(|_| "truncated event")?;
    let end = r.get_u32().map_err(|_| "truncated event")?;
    if end < start {
        return Err("event lifetime ends before it starts");
    }
    Ok(Ev {
        time,
        kind,
        seq,
        record: ObjectRecord {
            id,
            stbox: StBox {
                rect,
                lifetime: TimeInterval { start, end },
            },
        },
    })
}

fn put_count(out: &mut Vec<u8>, n: usize) -> Result<(), DurabilityError> {
    let n = u32::try_from(n)
        .map_err(|_| DurabilityError::Wal(WalError::Malformed("buffer count exceeds u32")))?;
    out.extend_from_slice(&n.to_le_bytes());
    Ok(())
}

fn get_count(r: &mut ByteReader<'_>) -> Result<usize, &'static str> {
    let n = r.get_u32().map_err(|_| "truncated count")?;
    if n > MAX_META_COUNT {
        return Err("implausible buffer count");
    }
    Ok(n as usize)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_ops() -> Vec<IngestOp> {
        vec![
            IngestOp::Update {
                id: 7,
                rect: Rect2::from_bounds(0.1, 0.2, 0.3, 0.4),
                t: 42,
            },
            IngestOp::Finish { id: 7, end: 43 },
            IngestOp::Update {
                id: u64::MAX,
                rect: Rect2::from_bounds(-1.5, -2.5, 3.5, 4.5),
                t: Time::MAX,
            },
        ]
    }

    fn sample_ev(seq: u64) -> Ev {
        Ev {
            time: 10 + u32::try_from(seq).unwrap(),
            kind: if seq.is_multiple_of(2) {
                RecordEvent::Insert
            } else {
                RecordEvent::Delete
            },
            seq,
            record: ObjectRecord {
                id: 100 + seq,
                stbox: StBox {
                    rect: Rect2::from_bounds(0.0, 0.0, 0.5, 0.5),
                    lifetime: TimeInterval { start: 10, end: 20 },
                },
            },
        }
    }

    fn sample_meta() -> CheckpointMeta {
        CheckpointMeta {
            generation: 3,
            wal_lsn: 777,
            stamp: VersionStamp {
                version: 12,
                watermark: 340,
            },
            now: 350,
            seq: 96,
            commits: 12,
            rollbacks: 1,
            rejected_total: 2,
            splits_issued: 9,
            open_pieces: vec![OpenPieceSnapshot {
                id: 4,
                start: 330,
                last: 350,
                mbr: Rect2::from_bounds(0.1, 0.1, 0.2, 0.2),
                area_sum: 0.21,
            }],
            reorder: vec![sample_ev(0), sample_ev(1)],
            pending: vec![sample_ev(2)],
            queued: sample_ops(),
        }
    }

    #[test]
    fn ops_round_trip() {
        for op in sample_ops() {
            let bytes = encode_op(&op);
            assert_eq!(decode_op(&bytes).unwrap(), op);
        }
    }

    #[test]
    fn op_decode_fails_closed() {
        let bytes = encode_op(&sample_ops()[0]);
        // Every strict prefix is refused.
        for cut in 0..bytes.len() {
            assert!(decode_op(&bytes[..cut]).is_err(), "prefix {cut} accepted");
        }
        // Trailing garbage is refused.
        let mut long = bytes.clone();
        long.push(0);
        assert!(decode_op(&long).is_err());
        // Unknown tag is refused.
        let mut bad = bytes.clone();
        bad[0] = 9;
        assert!(decode_op(&bad).is_err());
        // A reversed rectangle is a typed error, not an assert.
        let reversed = encode_op(&IngestOp::Update {
            id: 1,
            rect: Rect2::from_bounds(0.0, 0.0, 1.0, 1.0),
            t: 5,
        });
        let mut reversed = reversed;
        // Swap lo.x (bytes 13..21) and hi.x (bytes 29..37).
        for i in 0..8 {
            reversed.swap(13 + i, 29 + i);
        }
        assert_eq!(
            decode_op(&reversed).unwrap_err(),
            "reversed or NaN rectangle"
        );
    }

    #[test]
    fn meta_round_trips() {
        let meta = sample_meta();
        let bytes = meta.encode().unwrap();
        let back = CheckpointMeta::decode(&bytes).unwrap();
        assert_eq!(back, meta);
    }

    #[test]
    fn meta_every_byte_flip_fails_closed() {
        let bytes = sample_meta().encode().unwrap();
        for at in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[at] ^= 0x10;
            assert!(
                CheckpointMeta::decode(&bad).is_err(),
                "flip at byte {at} went unnoticed"
            );
        }
    }

    #[test]
    fn meta_truncations_fail_closed() {
        let bytes = sample_meta().encode().unwrap();
        for cut in 0..bytes.len() {
            assert!(
                CheckpointMeta::decode(&bytes[..cut]).is_err(),
                "prefix {cut} accepted"
            );
        }
        let mut long = bytes.clone();
        long.push(0);
        assert!(CheckpointMeta::decode(&long).is_err());
    }

    #[test]
    fn crash_points_fire_once_then_stay_dead() {
        let dir = std::env::temp_dir().join(format!("sti-recover-dur-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let opened = Wal::open(&dir, sti_storage::WalConfig::default()).unwrap();
        let mut d = Durability {
            dir: dir.clone(),
            wal: opened.wal,
            retained: Vec::new(),
            next_generation: 1,
            crash: Some(CrashPoint::AfterWalAppend),
            dead: false,
            checkpoints_total: 0,
        };
        assert!(d.crash_check(CrashPoint::BeforeWalAppend).is_ok());
        assert!(matches!(
            d.crash_check(CrashPoint::AfterWalAppend),
            Err(DurabilityError::InjectedCrash(CrashPoint::AfterWalAppend))
        ));
        // Dead means dead: even unarmed points now fail.
        assert!(matches!(
            d.crash_check(CrashPoint::BeforeWalAppend),
            Err(DurabilityError::Dead)
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn generation_scan_sees_only_committed_metas() {
        let dir = std::env::temp_dir().join(format!("sti-recover-scan-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(meta_path(&dir, 2), b"x").unwrap();
        std::fs::write(meta_path(&dir, 1), b"x").unwrap();
        // Orphan idx (crash before meta rename) and temp are invisible.
        std::fs::write(idx_path(&dir, 3), b"x").unwrap();
        std::fs::write(dir.join("checkpoint-0000000000000004.meta.tmp"), b"x").unwrap();
        std::fs::write(dir.join("wal-0000000000000000.seg"), b"x").unwrap();
        assert_eq!(scan_generations(&dir).unwrap(), vec![1, 2]);
        std::fs::remove_dir_all(&dir).ok();
    }
}
