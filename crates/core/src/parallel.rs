//! Data-parallel fan-out for the split-planning pipeline.
//!
//! The planning phase — one [`crate::VolumeCurve`] per object via
//! `DPSplit` (O(n²k)) or `MergeSplit` (O(n lg n)) — dominates build
//! wall-clock (the paper's fig. 11 DPSplit bars reach a day of CPU) and
//! is embarrassingly parallel across objects. [`map_chunked`] fans an
//! index-ordered slice across scoped threads and reassembles results in
//! input order, so every parallel caller is **byte-identical** to its
//! sequential equivalent: per-item work is a pure function of the item,
//! and no result ever observes scheduling order.
//!
//! Std-only by design (`std::thread::scope`): the registry is unreliable
//! in CI, so no rayon.

use std::num::NonZeroUsize;

/// How many worker threads a parallel stage may use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Parallelism {
    /// One worker, on the calling thread. The baseline every other
    /// setting must match byte-for-byte.
    Sequential,
    /// One worker per available hardware thread
    /// ([`std::thread::available_parallelism`]).
    Auto,
    /// Exactly this many workers.
    Fixed(NonZeroUsize),
}

impl Parallelism {
    /// A fixed worker count; `0` is promoted to `1`.
    pub fn fixed(n: usize) -> Self {
        match NonZeroUsize::new(n) {
            Some(n) => Parallelism::Fixed(n),
            None => Parallelism::Sequential,
        }
    }

    /// The number of workers this setting resolves to on this machine.
    pub fn workers(self) -> usize {
        match self {
            Parallelism::Sequential => 1,
            Parallelism::Auto => std::thread::available_parallelism()
                .map(NonZeroUsize::get)
                .unwrap_or(1),
            Parallelism::Fixed(n) => n.get(),
        }
    }

    /// Parse a CLI flag value: `auto`, `seq`, or a thread count.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "auto" => Ok(Parallelism::Auto),
            "seq" | "sequential" | "1" => Ok(Parallelism::Sequential),
            n => n
                .parse::<usize>()
                .ok()
                .filter(|&n| n >= 1)
                .map(Parallelism::fixed)
                .ok_or_else(|| format!("expected auto, seq, or a thread count ≥ 1, got {n}")),
        }
    }
}

impl std::fmt::Display for Parallelism {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Parallelism::Sequential => write!(f, "seq"),
            Parallelism::Auto => write!(f, "auto({})", self.workers()),
            Parallelism::Fixed(n) => write!(f, "{n}"),
        }
    }
}

/// Apply `f` to every item and collect the results **in input order**.
///
/// Items are dealt to workers in fixed index-order chunks (worker `w`
/// gets the `w`-th contiguous slice), each worker maps its chunk, and
/// the chunks are concatenated in chunk order. `f` receives the item's
/// global index alongside the item. For any `parallelism` the output is
/// identical to `items.iter().enumerate().map(|(i, t)| f(i, t))` — the
/// property the split-planning determinism tests pin down.
///
/// Panics in `f` propagate to the caller (after all workers have been
/// joined), preserving the panic payload.
pub fn map_chunked<T, R, F>(items: &[T], parallelism: Parallelism, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let workers = parallelism.workers().min(items.len());
    if workers <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let chunk_len = items.len().div_ceil(workers);
    let mut out = Vec::with_capacity(items.len());
    std::thread::scope(|scope| {
        let handles: Vec<_> = items
            .chunks(chunk_len)
            .enumerate()
            .map(|(c, slice)| {
                let f = &f;
                scope.spawn(move || {
                    let base = c * chunk_len;
                    slice
                        .iter()
                        .enumerate()
                        .map(|(j, t)| f(base + j, t))
                        .collect::<Vec<R>>()
                })
            })
            .collect();
        // Join in chunk order; a worker panic is re-raised only after
        // every thread has stopped (scope guarantees the join).
        let mut panic: Option<Box<dyn std::any::Any + Send>> = None;
        for handle in handles {
            match handle.join() {
                Ok(part) => out.extend(part),
                Err(payload) => panic = Some(payload),
            }
        }
        if let Some(payload) = panic {
            std::panic::resume_unwind(payload);
        }
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workers_resolve_sensibly() {
        assert_eq!(Parallelism::Sequential.workers(), 1);
        assert_eq!(Parallelism::fixed(3).workers(), 3);
        assert_eq!(Parallelism::fixed(0).workers(), 1);
        assert!(Parallelism::Auto.workers() >= 1);
    }

    #[test]
    fn parse_accepts_the_documented_forms() {
        assert_eq!(Parallelism::parse("auto"), Ok(Parallelism::Auto));
        assert_eq!(Parallelism::parse("seq"), Ok(Parallelism::Sequential));
        assert_eq!(Parallelism::parse("1"), Ok(Parallelism::Sequential));
        assert_eq!(Parallelism::parse("8"), Ok(Parallelism::fixed(8)));
        assert!(Parallelism::parse("0").is_err());
        assert!(Parallelism::parse("fast").is_err());
    }

    #[test]
    fn output_order_matches_sequential_for_every_worker_count() {
        let items: Vec<usize> = (0..101).collect();
        let expect: Vec<(usize, usize)> = items.iter().map(|&x| (x, x * x)).collect();
        for par in [
            Parallelism::Sequential,
            Parallelism::Auto,
            Parallelism::fixed(2),
            Parallelism::fixed(3),
            Parallelism::fixed(8),
            Parallelism::fixed(1000), // more workers than items
        ] {
            let got = map_chunked(&items, par, |i, &x| (i, x * x));
            assert_eq!(got, expect, "parallelism {par}");
        }
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let empty: Vec<u32> = Vec::new();
        assert!(map_chunked(&empty, Parallelism::fixed(8), |_, &x| x).is_empty());
        assert_eq!(map_chunked(&[7u32], Parallelism::fixed(8), |_, &x| x), [7]);
    }

    #[test]
    fn indices_are_global() {
        let items = vec![0u8; 57];
        let got = map_chunked(&items, Parallelism::fixed(4), |i, _| i);
        assert_eq!(got, (0..57).collect::<Vec<_>>());
    }

    #[test]
    fn worker_panics_propagate() {
        let items: Vec<usize> = (0..32).collect();
        let result = std::panic::catch_unwind(|| {
            map_chunked(&items, Parallelism::fixed(4), |i, _| {
                assert!(i != 17, "boom at 17");
                i
            })
        });
        assert!(result.is_err());
    }
}
