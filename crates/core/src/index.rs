//! The high-level spatiotemporal index: split records + a disk-based
//! index backend, queried uniformly.

use crate::multi::DistributionAlgorithm;
use crate::parallel::Parallelism;
use crate::plan::{ObjectRecord, SplitBudget, SplitPlan};
use crate::single::SingleSplitAlgorithm;
use std::time::Duration;
use sti_geom::{Rect2, Rect3, Time, TimeInterval};
use sti_obs::{QueryStats, Span, SpanSink, SpanTimer};
use sti_pprtree::{BulkError, BulkLoader, BulkPiece, BulkStats, DeleteError, PprParams, PprTree};
use sti_rstar::{RStarParams, RStarTree};
use sti_storage::{BufferPolicy, FaultStats, IoStats, PageStore, ReadaheadStats, StorageError};
use sti_trajectory::RasterizedObject;

/// Which index structure backs a [`SpatioTemporalIndex`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IndexBackend {
    /// The partially persistent R-Tree (the paper's proposal).
    PprTree,
    /// The 3D R\*-Tree (the straightforward baseline).
    RStar,
}

impl std::fmt::Display for IndexBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IndexBackend::PprTree => write!(f, "PPR-Tree"),
            IndexBackend::RStar => write!(f, "R*-Tree"),
        }
    }
}

/// Build configuration for [`SpatioTemporalIndex::build`].
#[derive(Debug, Clone)]
pub struct IndexConfig {
    /// Backend selection.
    pub backend: IndexBackend,
    /// Evolution length in instants; the R\*-Tree scales time into the
    /// unit range by this (§V), and query ranges are interpreted in it.
    pub time_extent: Time,
    /// PPR-Tree parameters (used when `backend == PprTree`).
    pub ppr: PprParams,
    /// R\*-Tree parameters (used when `backend == RStar`).
    pub rstar: RStarParams,
}

impl IndexConfig {
    /// The paper's setup for the given backend: 50-entry pages, 10-page
    /// LRU buffer, `P_version = 0.22`, `P_svo = 0.8`, `P_svu = 0.4`,
    /// 1000-instant evolution.
    pub fn paper(backend: IndexBackend) -> Self {
        Self {
            backend,
            time_extent: 1000,
            ppr: PprParams::default(),
            rstar: RStarParams::default(),
        }
    }
}

/// Timing breakdown of an end-to-end [`SpatioTemporalIndex::build_from_objects`]
/// call, reported by every figure binary and the `stidx` CLI.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct BuildStats {
    /// Worker threads the data-parallel curve phase resolved to.
    pub workers: usize,
    /// Wall-clock building per-object split sources and volume curves.
    pub curve_time: Duration,
    /// Wall-clock distributing the split budget across objects.
    pub distribute_time: Duration,
    /// Wall-clock materializing records and ingesting them into the
    /// backend structure.
    pub tree_build_time: Duration,
    /// Number of [`ObjectRecord`]s the plan emitted (= objects + splits).
    pub records_emitted: usize,
}

impl BuildStats {
    /// The phase timings as named [`Span`]s, in execution order:
    /// `split_planning` (per-object curves), `distribute` (budget
    /// distribution / packing), `tree_build` (record materialization and
    /// backend ingest).
    pub fn spans(&self) -> Vec<Span> {
        vec![
            Span::from_duration("split_planning", self.curve_time),
            Span::from_duration("distribute", self.distribute_time),
            Span::from_duration("tree_build", self.tree_build_time),
        ]
    }

    /// Deliver the phase spans to a pluggable [`SpanSink`] (metrics
    /// collectors, the bench JSON writer, ...).
    pub fn emit_spans(&self, sink: &mut dyn SpanSink) {
        for span in self.spans() {
            sink.record(span);
        }
    }
}

impl std::fmt::Display for BuildStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "workers={} curves={:.3}s distribute={:.3}s tree={:.3}s records={}",
            self.workers,
            self.curve_time.as_secs_f64(),
            self.distribute_time.as_secs_f64(),
            self.tree_build_time.as_secs_f64(),
            self.records_emitted
        )
    }
}

enum Backend {
    Ppr(PprTree),
    RStar { tree: RStarTree, time_scale: f64 },
}

/// A built index over split spatiotemporal records, answering topological
/// snapshot and interval queries with faithful I/O accounting.
///
/// Construction follows §V: the PPR-Tree ingests the records as a
/// time-ordered stream of insertions and (logical) deletions; the
/// R\*-Tree receives one 3D box per record, in deterministic pseudo-random
/// order, with the time axis scaled to the unit range.
pub struct SpatioTemporalIndex {
    backend: Backend,
    record_count: usize,
}

impl SpatioTemporalIndex {
    /// Build an index over the record set.
    ///
    /// # Errors
    /// A [`StorageError`] if the backend's page store fails during
    /// ingest (only possible with a fallible backing store; the default
    /// in-memory store cannot fail).
    pub fn build(records: &[ObjectRecord], config: &IndexConfig) -> Result<Self, StorageError> {
        let backend = match config.backend {
            IndexBackend::PprTree => Backend::Ppr(build_ppr(records, config.ppr)?),
            IndexBackend::RStar => {
                let time_scale = f64::from(config.time_extent);
                Backend::RStar {
                    tree: build_rstar(records, config.rstar, time_scale)?,
                    time_scale,
                }
            }
        };
        Ok(Self {
            backend,
            record_count: records.len(),
        })
    }

    /// Bulk-load a PPR-Tree bottom-up from a record stream, writing
    /// packed pages straight into `store` (pass a
    /// [`sti_storage::FileBackend`]-backed store for an out-of-core
    /// build). Peak memory is one external-sort chunk plus the pending
    /// directory edges — the record stream itself is spooled to sorted
    /// runs under `spool_dir`, so million-record datasets never reside
    /// in memory at once. The resulting index passes the same
    /// full-history sanitizer as an incrementally built one.
    ///
    /// # Errors
    /// Any [`BulkError`] from the loader (invalid piece, spool I/O, or
    /// page store failure).
    pub fn bulk_build_ppr(
        records: impl IntoIterator<Item = ObjectRecord>,
        config: &IndexConfig,
        store: PageStore,
        spool_dir: &std::path::Path,
    ) -> Result<(Self, BulkStats), BulkError> {
        let mut loader = BulkLoader::new(config.ppr, config.time_extent, spool_dir);
        let mut count = 0usize;
        for r in records {
            loader.push(BulkPiece {
                rect: r.stbox.rect,
                ptr: r.id,
                insertion: r.stbox.lifetime.start,
                deletion: r.stbox.lifetime.end,
            })?;
            count += 1;
        }
        let (tree, stats) = loader.finish(store)?;
        Ok((
            Self {
                backend: Backend::Ppr(tree),
                record_count: count,
            },
            stats,
        ))
    }

    /// Split the objects and build an index in one step, reporting a
    /// per-phase [`BuildStats`].
    ///
    /// The curve phase fans out over `parallelism`
    /// ([`crate::parallel::map_chunked`]); the resulting plan, records,
    /// and index are byte-identical for every setting.
    ///
    /// # Errors
    /// A [`StorageError`] if ingest fails (see
    /// [`SpatioTemporalIndex::build`]).
    #[allow(clippy::too_many_arguments)]
    pub fn build_from_objects(
        objects: &[RasterizedObject],
        single: SingleSplitAlgorithm,
        distribution: DistributionAlgorithm,
        budget: SplitBudget,
        max_splits_per_object: Option<usize>,
        config: &IndexConfig,
        parallelism: Parallelism,
    ) -> Result<(Self, BuildStats), StorageError> {
        let plan = SplitPlan::build_with(
            objects,
            single,
            distribution,
            budget,
            max_splits_per_object,
            parallelism,
        );
        let timer = SpanTimer::start("tree_build");
        let records = plan.records(objects);
        let index = Self::build(&records, config)?;
        let plan_stats = plan.stats();
        let stats = BuildStats {
            workers: plan_stats.workers,
            curve_time: plan_stats.curve_time,
            distribute_time: plan_stats.distribute_time,
            tree_build_time: timer.finish_span().elapsed,
            records_emitted: records.len(),
        };
        Ok((index, stats))
    }

    /// Open a saved index, sniffing the backend from the file's
    /// metadata tag: the PPR-Tree decoder is tried first and the
    /// R\*-Tree decoder on its tag mismatch, mirroring how `stidx`
    /// inspects saved images. An R\*-Tree is interpreted with the
    /// paper's 1000-instant time extent; use
    /// [`SpatioTemporalIndex::open_file_with`] when the index was built
    /// against a different evolution length.
    ///
    /// # Errors
    /// The PPR decoder's error when neither backend accepts the file
    /// (the first byte names the backend, so the PPR error is the
    /// authoritative one for a file that is not an index at all).
    pub fn open_file(path: &std::path::Path) -> std::io::Result<Self> {
        Self::open_file_with(path, 1000)
    }

    /// [`SpatioTemporalIndex::open_file`] with an explicit evolution
    /// length for interpreting R\*-Tree query times.
    ///
    /// # Errors
    /// See [`SpatioTemporalIndex::open_file`].
    pub fn open_file_with(path: &std::path::Path, time_extent: Time) -> std::io::Result<Self> {
        match PprTree::open_file(path) {
            Ok(tree) => {
                let record_count = usize::try_from(tree.total_records()).unwrap_or(usize::MAX);
                Ok(Self {
                    backend: Backend::Ppr(tree),
                    record_count,
                })
            }
            Err(first) => match RStarTree::open_file(path) {
                Ok(tree) => {
                    let record_count = usize::try_from(tree.len()).unwrap_or(usize::MAX);
                    Ok(Self {
                        backend: Backend::RStar {
                            tree,
                            time_scale: f64::from(time_extent),
                        },
                        record_count,
                    })
                }
                Err(_) => Err(first),
            },
        }
    }

    /// Borrow the underlying PPR-Tree, when that backend is active.
    pub fn as_ppr(&self) -> Option<&PprTree> {
        match &self.backend {
            Backend::Ppr(t) => Some(t),
            Backend::RStar { .. } => None,
        }
    }

    /// Mutably borrow the underlying PPR-Tree, when that backend is
    /// active (e.g. to persist it with [`PprTree::save_to_file`], which
    /// needs `&mut` to flush and stamp the store).
    pub fn as_ppr_mut(&mut self) -> Option<&mut PprTree> {
        match &mut self.backend {
            Backend::Ppr(t) => Some(t),
            Backend::RStar { .. } => None,
        }
    }

    /// Borrow the underlying R\*-Tree, when that backend is active.
    pub fn as_rstar(&self) -> Option<&RStarTree> {
        match &self.backend {
            Backend::RStar { tree, .. } => Some(tree),
            Backend::Ppr(_) => None,
        }
    }

    /// Mutably borrow the underlying R\*-Tree, when that backend is
    /// active.
    pub fn as_rstar_mut(&mut self) -> Option<&mut RStarTree> {
        match &mut self.backend {
            Backend::RStar { tree, .. } => Some(tree),
            Backend::Ppr(_) => None,
        }
    }

    /// Which backend this index uses.
    pub fn backend(&self) -> IndexBackend {
        match self.backend {
            Backend::Ppr(_) => IndexBackend::PprTree,
            Backend::RStar { .. } => IndexBackend::RStar,
        }
    }

    /// Number of records indexed.
    pub fn record_count(&self) -> usize {
        self.record_count
    }

    /// Disk footprint in pages (fig. 16).
    pub fn num_pages(&self) -> usize {
        match &self.backend {
            Backend::Ppr(t) => t.num_pages(),
            Backend::RStar { tree, .. } => tree.num_pages(),
        }
    }

    /// Accumulated I/O counters.
    pub fn io_stats(&self) -> IoStats {
        match &self.backend {
            Backend::Ppr(t) => t.io_stats(),
            Backend::RStar { tree, .. } => tree.io_stats(),
        }
    }

    /// Accumulated fault/retry counters from the backing store (all
    /// zero unless a fault-injecting backend is attached).
    pub fn fault_stats(&self) -> FaultStats {
        match &self.backend {
            Backend::Ppr(t) => t.fault_stats(),
            Backend::RStar { tree, .. } => tree.fault_stats(),
        }
    }

    /// Zero the I/O and fault counters without touching buffer
    /// residency. Shared: counters are interior-mutable, so a bench can
    /// open a fresh accounting window while other threads still hold
    /// `&self` for querying.
    pub fn reset_counters(&self) {
        match &self.backend {
            Backend::Ppr(t) => t.reset_counters(),
            Backend::RStar { tree, .. } => tree.reset_counters(),
        }
    }

    /// Empty the buffer pool (cold-buffer methodology). Exclusive so
    /// residency cannot be yanked out from under concurrent readers.
    pub fn clear_buffer(&mut self) {
        match &mut self.backend {
            Backend::Ppr(t) => t.clear_buffer(),
            Backend::RStar { tree, .. } => tree.clear_buffer(),
        }
    }

    /// Reset I/O counters and buffer pool before a measured query — the
    /// union of [`SpatioTemporalIndex::reset_counters`] and
    /// [`SpatioTemporalIndex::clear_buffer`].
    pub fn reset_for_query(&mut self) {
        self.reset_counters();
        self.clear_buffer();
    }

    /// Re-stripe the backend's buffer pool across `shards` lock shards
    /// (clears residency, preserves counters). One shard — the default —
    /// reproduces the paper's single LRU exactly; more shards reduce
    /// lock contention between concurrent `&self` queries.
    pub fn set_buffer_shards(&mut self, shards: usize) {
        match &mut self.backend {
            Backend::Ppr(t) => t.set_buffer_shards(shards),
            Backend::RStar { tree, .. } => tree.set_buffer_shards(shards),
        }
    }

    /// Switch the buffer pool eviction policy (LRU is the paper's
    /// default; 2Q resists one-shot interval scans). The R\*-Tree
    /// baseline keeps the paper's LRU regardless — the knob exists for
    /// the PPR backend's scale tier.
    pub fn set_buffer_policy(&mut self, policy: BufferPolicy) {
        if let Backend::Ppr(t) = &mut self.backend {
            t.set_buffer_policy(policy);
        }
    }

    /// Enable or disable interval-query readahead (PPR backend only;
    /// the R\*-Tree has no equivalent descent shape).
    pub fn set_readahead(&mut self, on: bool) {
        if let Backend::Ppr(t) = &mut self.backend {
            t.set_readahead(on);
        }
    }

    /// Readahead effectiveness counters (all zero for the R\*-Tree
    /// backend and whenever readahead is off).
    pub fn readahead_stats(&self) -> ReadaheadStats {
        match &self.backend {
            Backend::Ppr(t) => t.readahead_stats(),
            Backend::RStar { .. } => ReadaheadStats::default(),
        }
    }

    /// Probation evictions the 2Q policy absorbed while protected pages
    /// stayed resident (0 under LRU and for the R\*-Tree backend).
    pub fn scan_evictions_avoided(&self) -> u64 {
        match &self.backend {
            Backend::Ppr(t) => t.scan_evictions_avoided(),
            Backend::RStar { .. } => 0,
        }
    }

    /// Answer a topological query: ids of objects intersecting `area`
    /// at any instant of `range`, de-duplicated and sorted.
    ///
    /// # Errors
    /// A [`StorageError`] if a page read fails after retries; the index
    /// is unchanged (queries are read-only).
    pub fn query(&self, area: &Rect2, range: &TimeInterval) -> Result<Vec<u64>, StorageError> {
        Ok(self.query_with_stats(area, range)?.0)
    }

    /// Like [`SpatioTemporalIndex::query`], but also report the
    /// per-query [`QueryStats`] delta. `results` reflects the
    /// de-duplicated result count the caller receives; the I/O fields
    /// reconcile exactly with the global [`IoStats`] counters.
    ///
    /// # Errors
    /// A [`StorageError`] if a page read fails after retries.
    pub fn query_with_stats(
        &self,
        area: &Rect2,
        range: &TimeInterval,
    ) -> Result<(Vec<u64>, QueryStats), StorageError> {
        assert!(!range.is_empty(), "empty query range");
        let mut out = Vec::new();
        let mut stats = match &self.backend {
            Backend::Ppr(t) => {
                if range.len() == 1 {
                    t.query_snapshot(area, range.start, &mut out)?
                } else {
                    t.query_interval(area, range, &mut out)?
                }
            }
            Backend::RStar { tree, time_scale } => {
                tree.query(&Rect3::from_query(area, range, *time_scale), &mut out)?
            }
        };
        out.sort_unstable();
        out.dedup();
        stats.results = out.len() as u64;
        Ok((out, stats))
    }

    /// Answer a batch of queries, fanned across `parallelism` worker
    /// threads over this one shared index (queries are `&self` end to
    /// end). Outcomes come back in request order and are byte-identical
    /// for every `parallelism` setting; each query's [`QueryStats`] is
    /// attributed to that query alone, so the batch sum reconciles with
    /// the global [`IoStats`] delta even under concurrency.
    ///
    /// # Panics
    /// If any request's `range` is empty (the
    /// [`SpatioTemporalIndex::query`] caller contract).
    pub fn query_batch_with_stats(
        &self,
        requests: &[crate::executor::QueryRequest],
        parallelism: crate::parallel::Parallelism,
    ) -> Vec<crate::executor::QueryOutcome> {
        crate::executor::QueryExecutor::new(parallelism).run(self, requests)
    }
}

/// Ingest records into a PPR-Tree as a time-ordered update stream.
/// Deletions at an instant are applied before insertions so an object's
/// consecutive split pieces never coexist.
fn build_ppr(records: &[ObjectRecord], params: PprParams) -> Result<PprTree, StorageError> {
    let mut tree = PprTree::new(params);
    for (t, ev, i) in crate::plan::record_events(records) {
        let r = &records[i];
        match ev {
            crate::plan::RecordEvent::Insert => tree.insert(r.id, r.stbox.rect, t)?,
            crate::plan::RecordEvent::Delete => match tree.delete(r.id, r.stbox.rect, t) {
                Ok(()) => {}
                Err(DeleteError::Storage(e)) => return Err(e),
                Err(e @ DeleteError::NotFound { .. }) => {
                    // stilint::allow(no_panic, "record_events derives every delete from a record it also emits an insert for, and deletes sort before inserts at equal times")
                    panic!("every delete event matches an earlier insert: {e}")
                }
            },
        }
    }
    Ok(tree)
}

/// Ingest records into a 3D R\*-Tree in deterministic pseudo-random order
/// (the paper inserts "in random order"), time scaled to the unit range.
fn build_rstar(
    records: &[ObjectRecord],
    params: RStarParams,
    time_scale: f64,
) -> Result<RStarTree, StorageError> {
    let mut order: Vec<usize> = (0..records.len()).collect();
    // Multiplicative-hash shuffle: deterministic, dependency-free.
    order.sort_by_key(|&i| {
        (i as u64)
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .rotate_left(17)
    });
    let mut tree = RStarTree::new(params);
    for i in order {
        let r = &records[i];
        tree.insert(r.id, r.to_rect3(time_scale))?;
    }
    Ok(tree)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{unsplit_records, SplitBudget, SplitPlan};
    use crate::{DistributionAlgorithm, SingleSplitAlgorithm};
    use sti_geom::Rect2;
    use sti_trajectory::RasterizedObject;

    fn small_config(backend: IndexBackend) -> IndexConfig {
        IndexConfig {
            backend,
            time_extent: 1000,
            ppr: PprParams {
                max_entries: 10,
                buffer_pages: 4,
                ..PprParams::default()
            },
            rstar: RStarParams {
                max_entries: 8,
                buffer_pages: 4,
                ..RStarParams::default()
            },
        }
    }

    /// A small synthetic dataset of movers at staggered times.
    fn dataset() -> Vec<RasterizedObject> {
        (0..40u64)
            .map(|id| {
                let start = ((id * 17) % 800) as u32;
                let n = 20 + (id % 30) as usize;
                let rects = (0..n)
                    .map(|i| {
                        let x = 0.02 + 0.9 * ((id as f64 / 40.0) + 0.01 * i as f64).fract();
                        let y = 0.02 + 0.9 * ((id as f64 / 13.0) + 0.008 * i as f64).fract();
                        Rect2::from_bounds(x, y, (x + 0.02).min(1.0), (y + 0.02).min(1.0))
                    })
                    .collect();
                RasterizedObject::new(id, start, rects)
            })
            .collect()
    }

    /// Brute-force oracle over the raw per-instant geometry.
    fn oracle(objs: &[RasterizedObject], area: &Rect2, range: &TimeInterval) -> Vec<u64> {
        let mut out: Vec<u64> = objs
            .iter()
            .filter(|o| {
                let life = o.lifetime();
                life.overlaps(range)
                    && (range.start.max(life.start)..range.end.min(life.end))
                        .any(|t| o.rect((t - life.start) as usize).intersects(area))
            })
            .map(|o| o.id())
            .collect();
        out.sort_unstable();
        out
    }

    /// `open_file` sniffs the backend from the saved image and answers
    /// the same queries as the in-memory index it came from.
    #[test]
    fn open_file_round_trips_both_backends() {
        let objs = dataset();
        let records = unsplit_records(&objs);
        let area = Rect2::from_bounds(0.2, 0.2, 0.6, 0.5);
        let range = TimeInterval::new(100, 300);
        for backend in [IndexBackend::PprTree, IndexBackend::RStar] {
            let mut idx = SpatioTemporalIndex::build(&records, &small_config(backend)).unwrap();
            let want = idx.query(&area, &range).unwrap();
            let path = std::env::temp_dir().join(format!(
                "sti-core-open-{backend:?}-{}.idx",
                std::process::id()
            ));
            match backend {
                IndexBackend::PprTree => idx.as_ppr_mut().unwrap().save_to_file(&path).unwrap(),
                IndexBackend::RStar => idx.as_rstar_mut().unwrap().save_to_file(&path).unwrap(),
            }
            let opened = SpatioTemporalIndex::open_file(&path).unwrap();
            assert_eq!(opened.backend(), backend);
            assert_eq!(opened.record_count(), idx.record_count());
            assert_eq!(opened.query(&area, &range).unwrap(), want, "{backend}");
            let _ = std::fs::remove_file(&path);
        }
    }

    /// A file that is not an index at all reports the PPR decoder's
    /// error (the authoritative one for an unrecognized image).
    #[test]
    fn open_file_rejects_garbage() {
        let path =
            std::env::temp_dir().join(format!("sti-core-garbage-{}.idx", std::process::id()));
        std::fs::write(&path, b"not an index").unwrap();
        assert!(SpatioTemporalIndex::open_file(&path).is_err());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn both_backends_have_no_false_negatives_on_unsplit_data() {
        let objs = dataset();
        let records = unsplit_records(&objs);
        for backend in [IndexBackend::PprTree, IndexBackend::RStar] {
            let idx = SpatioTemporalIndex::build(&records, &small_config(backend)).unwrap();
            for (cx, cy, t) in [(0.3, 0.3, 100u32), (0.7, 0.2, 400), (0.1, 0.9, 750)] {
                let area = Rect2::from_bounds(cx, cy, cx + 0.2, cy + 0.08);
                let range = TimeInterval::new(t, t + 1);
                let got = idx.query(&area, &range).unwrap();
                // Unsplit MBRs over-approximate: every true hit must be
                // reported, because an object's MBR contains the object.
                for id in oracle(&objs, &area, &range) {
                    assert!(got.contains(&id), "{backend}: missing object {id}");
                }
            }
        }
    }

    #[test]
    fn split_records_answer_exactly_and_backends_agree() {
        let objs = dataset();
        let plan = SplitPlan::build(
            &objs,
            SingleSplitAlgorithm::MergeSplit,
            DistributionAlgorithm::LaGreedy,
            SplitBudget::Percent(150.0),
            None,
        );
        let records = plan.records(&objs);
        let ppr =
            SpatioTemporalIndex::build(&records, &small_config(IndexBackend::PprTree)).unwrap();
        let rstar =
            SpatioTemporalIndex::build(&records, &small_config(IndexBackend::RStar)).unwrap();

        let brute = |area: &Rect2, range: &TimeInterval| -> Vec<u64> {
            let mut v: Vec<u64> = records
                .iter()
                .filter(|r| r.stbox.matches(area, range))
                .map(|r| r.id)
                .collect();
            v.sort_unstable();
            v.dedup();
            v
        };

        for i in 0..20u32 {
            let x = 0.05 * f64::from(i % 10);
            let area = Rect2::from_bounds(x, 0.1, x + 0.15, 0.5);
            let range = TimeInterval::new(i * 40, i * 40 + 1 + (i % 7));
            let want = brute(&area, &range);
            assert_eq!(ppr.query(&area, &range).unwrap(), want, "PPR query {i}");
            assert_eq!(rstar.query(&area, &range).unwrap(), want, "R* query {i}");
        }
    }

    #[test]
    fn splitting_never_loses_objects() {
        // The split representation covers each object's true geometry, so
        // any object the oracle reports must still be found.
        let objs = dataset();
        let plan = SplitPlan::build(
            &objs,
            SingleSplitAlgorithm::DpSplit,
            DistributionAlgorithm::Greedy,
            SplitBudget::Percent(100.0),
            Some(8),
        );
        let records = plan.records(&objs);
        let idx =
            SpatioTemporalIndex::build(&records, &small_config(IndexBackend::PprTree)).unwrap();
        for t in (0..900).step_by(97) {
            let area = Rect2::from_bounds(0.2, 0.2, 0.6, 0.6);
            let range = TimeInterval::new(t, t + 1);
            let got = idx.query(&area, &range).unwrap();
            for id in oracle(&objs, &area, &range) {
                assert!(got.contains(&id), "missing object {id} at t={t}");
            }
        }
    }

    #[test]
    fn io_counting_is_wired_through() {
        let objs = dataset();
        let records = unsplit_records(&objs);
        let mut idx =
            SpatioTemporalIndex::build(&records, &small_config(IndexBackend::PprTree)).unwrap();
        idx.reset_for_query();
        let _ = idx
            .query(&Rect2::UNIT, &TimeInterval::new(100, 101))
            .unwrap();
        assert!(idx.io_stats().reads > 0, "queries must cost I/O");
        assert!(idx.num_pages() > 0);
        assert_eq!(idx.record_count(), records.len());
        assert_eq!(idx.backend(), IndexBackend::PprTree);
    }

    #[test]
    #[should_panic(expected = "empty query range")]
    fn rejects_empty_range() {
        let objs = dataset();
        let records = unsplit_records(&objs);
        let idx = SpatioTemporalIndex::build(&records, &small_config(IndexBackend::RStar)).unwrap();
        let _ = idx.query(&Rect2::UNIT, &TimeInterval::new(5, 5));
    }
}
