//! The *on-line* version of the splitting problem (paper §VII: "an
//! interesting avenue for future work is addressing the on-line version
//! of the problem").
//!
//! Offline, the splitting algorithms see every object's whole trajectory
//! before placing cuts. Online, position updates arrive one instant at a
//! time and the split decision must be made immediately:
//!
//! * [`OnlineSplitter`] — one-pass piece construction: an object's
//!   current piece is closed (an artificial update is issued) as soon as
//!   its MBR's *empty-space overhead* crosses a threshold. No lookahead,
//!   O(1) state per alive object.
//! * [`OnlineIndexer`] — feeds the emitted pieces into a [`PprTree`]
//!   while updates stream in, using a watermark reordering buffer: a
//!   piece's insertion time lies in the past by construction (its start),
//!   so events are buffered until no still-open piece could precede them.
//!
//! The `ablation_online` bench target compares the one-pass splitter
//! against the offline LAGreedy plan in both total volume and query I/O.

use crate::plan::{ObjectRecord, RecordEvent};
use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap, HashMap};
use sti_geom::{Rect2, StBox, Time, TimeInterval};
use sti_obs::QueryStats;
use sti_pprtree::{DeleteError, PprParams, PprTree};
use sti_storage::StorageError;

/// Failure of an [`OnlineSplitter::observe`] (or
/// [`OnlineIndexer::update`]) call: the observation stream violated
/// per-instant contiguity for the object. The splitter (and indexer) are
/// left exactly as they were — the offending observation is absorbed
/// nowhere, so a corrected retry at the expected instant succeeds.
///
/// Observation streams come from outside the library (network feeds,
/// replayed logs), so a malformed stream must surface as a value, not a
/// panic (DESIGN.md §6, "Failure model").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ObserveError {
    /// `t` skips past the object's next expected instant: observations
    /// must be per-instant contiguous.
    Gap {
        /// The object whose stream gapped.
        id: u64,
        /// The instant the caller supplied.
        t: Time,
        /// The only instant the stream can continue at (`last + 1`).
        expected: Time,
    },
    /// `t` repeats the instant already observed for this object.
    Duplicate {
        /// The object observed twice at one instant.
        id: u64,
        /// The repeated instant.
        t: Time,
    },
    /// `t` precedes an instant this stream has already absorbed —
    /// either the object's own last observation or, at the indexer
    /// level, the global stream clock.
    OutOfOrder {
        /// The object whose observation ran backwards.
        id: u64,
        /// The instant the caller supplied.
        t: Time,
        /// The latest instant already absorbed.
        last: Time,
    },
}

impl std::fmt::Display for ObserveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ObserveError::Gap { id, t, expected } => {
                write!(
                    f,
                    "object {id}: observation gap at {t}, expected {expected}"
                )
            }
            ObserveError::Duplicate { id, t } => {
                write!(f, "object {id}: duplicate observation at instant {t}")
            }
            ObserveError::OutOfOrder { id, t, last } => write!(
                f,
                "object {id}: out-of-order observation at {t}, stream already at {last}"
            ),
        }
    }
}

impl std::error::Error for ObserveError {}

/// Failure of an [`OnlineSplitter::finish`] (or [`OnlineIndexer::finish`])
/// call. The splitter is left unchanged.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FinishError {
    /// The object has no open piece: it was never observed, or was
    /// already finished.
    NotOpen {
        /// The id the caller tried to finish.
        id: u64,
    },
    /// `end` does not follow the object's last observation — lifetimes
    /// are half-open, so a valid `end` is exactly `last observation + 1`.
    WrongEnd {
        /// The id the caller tried to finish.
        id: u64,
        /// The lifetime end the caller supplied.
        end: Time,
        /// The only end consistent with the observation stream.
        expected: Time,
    },
}

impl std::fmt::Display for FinishError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FinishError::NotOpen { id } => write!(f, "object {id} not open"),
            FinishError::WrongEnd { id, end, expected } => write!(
                f,
                "object {id}: finish({end}) after instant {}, expected end {expected}",
                expected - 1
            ),
        }
    }
}

impl std::error::Error for FinishError {}

/// Failure of an [`OnlineIndexer`] operation: either the splitter
/// rejected the call (a caller error) or the backing page store failed
/// (an I/O error, possibly after retries).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OnlineError {
    /// The observation stream was malformed; see [`ObserveError`].
    Observe(ObserveError),
    /// The splitter rejected the call; see [`FinishError`].
    Split(FinishError),
    /// The tree's page store failed; the affected events stay buffered
    /// and are retried on the next flush.
    Storage(StorageError),
}

impl From<ObserveError> for OnlineError {
    fn from(e: ObserveError) -> Self {
        OnlineError::Observe(e)
    }
}

impl From<FinishError> for OnlineError {
    fn from(e: FinishError) -> Self {
        OnlineError::Split(e)
    }
}

impl From<StorageError> for OnlineError {
    fn from(e: StorageError) -> Self {
        OnlineError::Storage(e)
    }
}

impl std::fmt::Display for OnlineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OnlineError::Observe(e) => write!(f, "{e}"),
            OnlineError::Split(e) => write!(f, "{e}"),
            OnlineError::Storage(e) => write!(f, "indexing halted by storage error: {e}"),
        }
    }
}

impl std::error::Error for OnlineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            OnlineError::Observe(e) => Some(e),
            OnlineError::Split(e) => Some(e),
            OnlineError::Storage(e) => Some(e),
        }
    }
}

/// Tuning of the online split decision.
#[derive(Debug, Clone, Copy)]
pub struct OnlineSplitConfig {
    /// Close the current piece when
    /// `volume(piece MBR) / Σ per-instant volumes ≥ overhead_threshold`.
    /// 1.0 splits on any empty space at all. The right value is
    /// workload-dependent: for an object of spatial extent `w` moving `v`
    /// per instant, pieces close after roughly `(θ−1)·w/v` instants, so
    /// pick θ to hit the record budget you can afford (the
    /// `ablation_online` bench sweeps it).
    pub overhead_threshold: f64,
    /// Never close a piece before it covers this many instants (keeps the
    /// record count bounded: at most `lifetime / min_piece_instants`
    /// pieces per object).
    pub min_piece_instants: u32,
    /// Close any piece reaching this length regardless of overhead.
    /// This bounds the indexer's watermark staleness — without it a
    /// single stationary object would freeze the queryable horizon
    /// forever — so it defaults to `Some(64)`; set `None` only for pure
    /// volume-optimization experiments.
    pub max_piece_instants: Option<u32>,
    /// Absolute spatial-area trigger: close when the piece MBR's area
    /// crosses this value. The relative criterion is blind to objects
    /// with (near-)zero extent — moving *points* have zero per-instant
    /// volume — so point workloads rely on this knob (and on
    /// `max_piece_instants` for purely axis-parallel motion, whose MBR
    /// area also stays zero).
    pub max_piece_area: Option<f64>,
}

impl Default for OnlineSplitConfig {
    fn default() -> Self {
        Self {
            overhead_threshold: 8.0,
            min_piece_instants: 5,
            max_piece_instants: Some(64),
            max_piece_area: None,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
struct OpenPiece {
    start: Time,
    /// Last instant observed (inclusive).
    last: Time,
    mbr: Rect2,
    /// Σ per-instant areas, the denominator of the overhead ratio.
    area_sum: f64,
}

impl OpenPiece {
    fn to_record(self, id: u64) -> ObjectRecord {
        ObjectRecord {
            id,
            stbox: StBox::new(self.mbr, TimeInterval::new(self.start, self.last + 1)),
        }
    }

    fn instants(&self) -> u32 {
        self.last - self.start + 1
    }
}

/// One-pass artificial-split decisions over a stream of per-instant
/// position updates.
///
/// ```
/// use sti_core::online::{OnlineSplitConfig, OnlineSplitter};
/// use sti_geom::{Point2, Rect2};
///
/// let mut splitter = OnlineSplitter::new(OnlineSplitConfig::default());
/// let mut pieces = Vec::new();
/// for t in 0..60 {
///     let center = Point2::new(0.1 + 0.01 * f64::from(t), 0.5);
///     if let Some(piece) = splitter
///         .observe(1, Rect2::centered(center, 0.02, 0.02), t)
///         .unwrap()
///     {
///         pieces.push(piece);
///     }
/// }
/// pieces.push(splitter.finish(1, 60).unwrap());
/// assert!(pieces.len() >= 2, "a steady mover splits at least once");
/// assert_eq!(pieces.last().unwrap().stbox.lifetime.end, 60);
/// ```
#[derive(Debug)]
pub struct OnlineSplitter {
    config: OnlineSplitConfig,
    open: HashMap<u64, OpenPiece>,
    /// Multiset of open-piece start times, so the watermark (minimum
    /// start) is O(log n) per update instead of a full scan — the
    /// indexer consults it after every observation.
    open_starts: BTreeMap<Time, usize>,
    splits_issued: u64,
}

impl OnlineSplitter {
    /// Create a splitter with the given thresholds.
    pub fn new(config: OnlineSplitConfig) -> Self {
        assert!(
            config.overhead_threshold >= 1.0,
            "threshold below 1 splits every instant"
        );
        assert!(config.min_piece_instants >= 1);
        if let Some(max) = config.max_piece_instants {
            assert!(max >= config.min_piece_instants);
        }
        Self {
            config,
            open: HashMap::new(),
            open_starts: BTreeMap::new(),
            splits_issued: 0,
        }
    }

    /// Observe object `id` occupying `rect` at instant `t`. Returns the
    /// closed piece when this observation triggers an artificial split.
    ///
    /// Observations for one object must be per-instant contiguous
    /// (`t` follows the previous observation by exactly 1).
    ///
    /// # Errors
    /// A typed [`ObserveError`] when `t` breaks contiguity — a gap, a
    /// duplicate instant, or a backwards step. The splitter is unchanged
    /// on error: the open piece, the watermark, and the split counter
    /// all stay as they were, so the stream can resume at the expected
    /// instant.
    pub fn observe(
        &mut self,
        id: u64,
        rect: Rect2,
        t: Time,
    ) -> Result<Option<ObjectRecord>, ObserveError> {
        let Some(piece) = self.open.get_mut(&id) else {
            self.open.insert(
                id,
                OpenPiece {
                    start: t,
                    last: t,
                    mbr: rect,
                    area_sum: rect.area(),
                },
            );
            *self.open_starts.entry(t).or_insert(0) += 1;
            return Ok(None);
        };
        if t != piece.last + 1 {
            return Err(if t == piece.last {
                ObserveError::Duplicate { id, t }
            } else if t < piece.last {
                ObserveError::OutOfOrder {
                    id,
                    t,
                    last: piece.last,
                }
            } else {
                ObserveError::Gap {
                    id,
                    t,
                    expected: piece.last + 1,
                }
            });
        }

        let grown = piece.mbr.union(&rect);
        let instants = f64::from(piece.instants() + 1);
        let area_sum = piece.area_sum + rect.area();
        let overhead = if area_sum > 0.0 {
            grown.area() * instants / area_sum
        } else {
            1.0 // zero-extent objects never trip the relative criterion
        };

        let long_enough = piece.instants() >= self.config.min_piece_instants;
        let too_long = self
            .config
            .max_piece_instants
            .is_some_and(|m| piece.instants() >= m);
        let too_big = self
            .config
            .max_piece_area
            .is_some_and(|a| grown.area() >= a);
        let should_split =
            long_enough && (too_long || (overhead >= self.config.overhead_threshold) || too_big);

        if should_split {
            let closed = piece.to_record(id);
            let old_start = piece.start;
            *piece = OpenPiece {
                start: t,
                last: t,
                mbr: rect,
                area_sum: rect.area(),
            };
            remove_start(&mut self.open_starts, old_start);
            *self.open_starts.entry(t).or_insert(0) += 1;
            self.splits_issued += 1;
            Ok(Some(closed))
        } else {
            piece.mbr = grown;
            piece.last = t;
            piece.area_sum = area_sum;
            Ok(None)
        }
    }

    /// The object died: `end` is its half-open lifetime end (one past the
    /// last observed instant). Returns the final piece.
    ///
    /// # Errors
    /// [`FinishError::NotOpen`] if the object was never observed (or was
    /// already finished); [`FinishError::WrongEnd`] if `end` does not
    /// follow its last observation. The splitter is unchanged on error.
    pub fn finish(&mut self, id: u64, end: Time) -> Result<ObjectRecord, FinishError> {
        let Some(&piece) = self.open.get(&id) else {
            return Err(FinishError::NotOpen { id });
        };
        if end != piece.last + 1 {
            return Err(FinishError::WrongEnd {
                id,
                end,
                expected: piece.last + 1,
            });
        }
        self.open.remove(&id);
        remove_start(&mut self.open_starts, piece.start);
        Ok(piece.to_record(id))
    }

    /// Number of artificial splits issued so far.
    pub fn splits_issued(&self) -> u64 {
        self.splits_issued
    }

    /// Number of objects with an open piece.
    pub fn open_objects(&self) -> usize {
        self.open.len()
    }

    /// Earliest start time among open pieces — nothing emitted in the
    /// future can precede this (the indexer's watermark).
    pub fn watermark(&self) -> Option<Time> {
        self.open_starts.keys().next().copied()
    }

    /// `(id, last observed instant)` for every open piece — what a
    /// seal/flush pass must finish (each at `last + 1`).
    pub(crate) fn open_last_instants(&self) -> Vec<(u64, Time)> {
        self.open.iter().map(|(&id, p)| (id, p.last)).collect()
    }

    /// Serializable image of every open piece, sorted by object id, for
    /// checkpointing (see [`crate::recover`]).
    pub(crate) fn snapshot_open_pieces(&self) -> Vec<OpenPieceSnapshot> {
        let mut out: Vec<OpenPieceSnapshot> = self
            .open
            .iter()
            .map(|(&id, p)| OpenPieceSnapshot {
                id,
                start: p.start,
                last: p.last,
                mbr: p.mbr,
                area_sum: p.area_sum,
            })
            .collect();
        out.sort_unstable_by_key(|p| p.id);
        out
    }

    /// Rebuild a splitter from a checkpointed image: the inverse of
    /// [`OnlineSplitter::snapshot_open_pieces`]. The start-time multiset
    /// is re-derived from the pieces, so the watermark invariant holds
    /// by construction.
    pub(crate) fn restore(
        config: OnlineSplitConfig,
        pieces: &[OpenPieceSnapshot],
        splits_issued: u64,
    ) -> Self {
        let mut s = Self::new(config);
        for p in pieces {
            s.open.insert(
                p.id,
                OpenPiece {
                    start: p.start,
                    last: p.last,
                    mbr: p.mbr,
                    area_sum: p.area_sum,
                },
            );
        }
        for piece in s.open.values() {
            *s.open_starts.entry(piece.start).or_insert(0) += 1;
        }
        s.splits_issued = splits_issued;
        s
    }
}

/// One open piece as captured by a checkpoint — the same fields as the
/// private [`OpenPiece`], plus the owning object id.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct OpenPieceSnapshot {
    pub(crate) id: u64,
    pub(crate) start: Time,
    pub(crate) last: Time,
    pub(crate) mbr: Rect2,
    pub(crate) area_sum: f64,
}

/// Remove one occurrence of `start` from the open-piece multiset.
fn remove_start(starts: &mut BTreeMap<Time, usize>, start: Time) {
    match starts.get_mut(&start) {
        Some(n) if *n > 1 => *n -= 1,
        Some(_) => {
            starts.remove(&start);
        }
        // stilint::allow(no_panic, "every open piece registers its start on open and unregisters exactly once on finish")
        None => unreachable!("open piece start {start} missing from the multiset"),
    }
}

/// A buffered event awaiting its watermark. `RecordEvent`'s ordering
/// (deletes before inserts at equal times) keeps an object's consecutive
/// pieces from coexisting. Shared with [`crate::pipeline`], whose
/// reordering buffer needs the identical ordering law.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct Ev {
    pub(crate) time: Time,
    pub(crate) kind: RecordEvent,
    pub(crate) seq: u64,
    pub(crate) record: ObjectRecord,
}

impl Eq for Ev {}

impl Ord for Ev {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.kind, self.seq).cmp(&(other.time, other.kind, other.seq))
    }
}

impl PartialOrd for Ev {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Streams position updates straight into a partially persistent R-Tree.
///
/// The PPR-Tree only accepts time-ordered updates, but an online piece is
/// only *known* once it closes — at which point its insertion timestamp
/// (the piece start) lies in the past. The indexer therefore holds closed
/// pieces in a reordering buffer and flushes every event strictly older
/// than the **watermark** (the earliest start among still-open pieces):
/// no future closure can produce an earlier event, so the flushed prefix
/// is final. Historical queries are answered for any time before the
/// watermark.
pub struct OnlineIndexer {
    splitter: OnlineSplitter,
    tree: PprTree,
    buffer: BinaryHeap<Reverse<Ev>>,
    seq: u64,
    now: Time,
}

impl OnlineIndexer {
    /// Create an indexer with the given split decision and tree
    /// parameters.
    pub fn new(config: OnlineSplitConfig, params: PprParams) -> Self {
        Self {
            splitter: OnlineSplitter::new(config),
            tree: PprTree::new(params),
            buffer: BinaryHeap::new(),
            seq: 0,
            now: 0,
        }
    }

    /// Observe object `id` at `rect` during instant `t`.
    ///
    /// # Errors
    /// [`OnlineError::Observe`] if the observation breaks stream order —
    /// `t` behind the indexer's clock, or gapped/duplicated/backwards
    /// for this object. The indexer is unchanged: the clock, watermark,
    /// open pieces, and buffered events all stay as they were.
    /// [`OnlineError::Storage`] if flushing finalized events into the
    /// tree fails. The observation itself is absorbed either way; the
    /// events that could not be applied stay buffered and are retried on
    /// the next flush (each failed tree update rolls back atomically).
    pub fn update(&mut self, id: u64, rect: Rect2, t: Time) -> Result<(), OnlineError> {
        if t < self.now {
            return Err(ObserveError::OutOfOrder {
                id,
                t,
                last: self.now,
            }
            .into());
        }
        if let Some(record) = self.splitter.observe(id, rect, t)? {
            self.push_record(record);
        }
        self.now = t;
        self.flush()?;
        Ok(())
    }

    /// Object `id` disappears; `end` is one past its last observed
    /// instant. The finish validates against the *object's own* stream,
    /// not the indexer clock: a straggler whose last observation is
    /// behind `now` legally finishes in the past (its events start at
    /// its open piece, which the watermark never passes while open).
    ///
    /// # Errors
    /// [`OnlineError::Split`] if the object is not open or `end` does
    /// not follow its last observation; the indexer is unchanged (in
    /// particular, time does not advance). [`OnlineError::Storage`] if
    /// flushing into the tree fails; the finish itself is recorded and
    /// its events stay buffered for the next flush.
    pub fn finish(&mut self, id: u64, end: Time) -> Result<(), OnlineError> {
        let record = self.splitter.finish(id, end)?;
        self.now = self.now.max(end);
        self.push_record(record);
        self.flush()?;
        Ok(())
    }

    fn push_record(&mut self, record: ObjectRecord) {
        let life = record.stbox.lifetime;
        self.buffer.push(Reverse(Ev {
            time: life.start,
            kind: RecordEvent::Insert,
            seq: self.seq,
            record,
        }));
        self.buffer.push(Reverse(Ev {
            time: life.end,
            kind: RecordEvent::Delete,
            seq: self.seq + 1,
            record,
        }));
        self.seq += 2;
    }

    /// All history strictly before this instant is queryable.
    pub fn watermark(&self) -> Time {
        self.splitter.watermark().unwrap_or(self.now)
    }

    fn apply_event(&mut self, ev: &Ev) -> Result<(), StorageError> {
        match ev.kind {
            RecordEvent::Insert => self
                .tree
                .insert(ev.record.id, ev.record.stbox.rect, ev.time),
            RecordEvent::Delete => {
                match self
                    .tree
                    .delete(ev.record.id, ev.record.stbox.rect, ev.time)
                {
                    Ok(()) => Ok(()),
                    Err(DeleteError::Storage(e)) => Err(e),
                    Err(e @ DeleteError::NotFound { .. }) => {
                        // stilint::allow(no_panic, "record_events pairs each delete with the insert it buffered earlier, and deletes sort before inserts at equal times")
                        panic!("every buffered delete matches an earlier insert: {e}")
                    }
                }
            }
        }
    }

    fn flush(&mut self) -> Result<(), StorageError> {
        let w = self.watermark();
        loop {
            let Some(top) = self.buffer.peek_mut() else {
                break;
            };
            if top.0.time >= w {
                break;
            }
            let Reverse(ev) = std::collections::binary_heap::PeekMut::pop(top);
            if let Err(e) = self.apply_event(&ev) {
                // The tree update rolled back; requeue the event (same
                // seq, so ordering is preserved) and surface the error.
                self.buffer.push(Reverse(ev));
                return Err(e);
            }
        }
        Ok(())
    }

    /// Snapshot query at instant `t`, which must lie before the
    /// watermark (later history is still buffered).
    ///
    /// # Errors
    /// A [`StorageError`] if a page read fails after retries.
    ///
    /// # Panics
    /// If `t` is at or past the watermark.
    pub fn query_snapshot(
        &mut self,
        area: &Rect2,
        t: Time,
        out: &mut Vec<u64>,
    ) -> Result<QueryStats, StorageError> {
        assert!(
            t < self.watermark(),
            "instant {t} not yet final (watermark {})",
            self.watermark()
        );
        self.tree.query_snapshot(area, t, out)
    }

    /// Number of artificial splits issued so far.
    pub fn splits_issued(&self) -> u64 {
        self.splitter.splits_issued()
    }

    /// Close every remaining piece at `end` and return the finished tree.
    ///
    /// # Errors
    /// A [`StorageError`] if the final flush fails; the indexer is
    /// consumed either way (a fallible backend that keeps failing leaves
    /// nothing worth resuming — rebuild from the stream instead).
    pub fn seal(mut self, end: Time) -> Result<PprTree, StorageError> {
        assert!(end >= self.now);
        let open: Vec<(u64, Time)> = self
            .splitter
            .open
            .iter()
            .map(|(&id, p)| (id, p.last))
            .collect();
        for (id, last) in open {
            // `finish` keeps the splitter's start multiset consistent;
            // each object's final piece ends one past its last
            // observation.
            let record = self
                .splitter
                .finish(id, last + 1)
                // stilint::allow(no_panic, "the id/last pairs were snapshotted from the open map, and last + 1 is exactly the end finish accepts")
                .expect("open piece finishes at last + 1");
            self.push_record(record);
        }
        // Everything is closed: flush the buffer completely, in order.
        while let Some(Reverse(ev)) = self.buffer.pop() {
            self.apply_event(&ev)?;
        }
        Ok(self.tree)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::total_volume;
    use sti_geom::Point2;
    use sti_trajectory::RasterizedObject;

    fn mover(n: usize) -> Vec<Rect2> {
        (0..n)
            .map(|i| Rect2::centered(Point2::new(0.05 + 0.01 * i as f64, 0.5), 0.02, 0.02))
            .collect()
    }

    /// A splitter restored from its own snapshot is behaviourally
    /// identical to the original — the foundation of checkpoint
    /// recovery (DESIGN.md §8).
    #[test]
    fn snapshot_restore_round_trip_preserves_split_decisions() {
        let config = OnlineSplitConfig::default();
        let mut original = OnlineSplitter::new(config);
        let rects = mover(40);
        for (t, r) in rects.iter().enumerate().take(20) {
            original.observe(1, *r, t as Time).unwrap();
            original
                .observe(2, Rect2::from_bounds(0.8, 0.8, 0.85, 0.85), t as Time)
                .unwrap();
        }

        let pieces = original.snapshot_open_pieces();
        let mut restored = OnlineSplitter::restore(config, &pieces, original.splits_issued());
        assert_eq!(restored.watermark(), original.watermark());
        assert_eq!(restored.open_objects(), original.open_objects());
        assert_eq!(restored.splits_issued(), original.splits_issued());

        // Identical future inputs produce identical outputs.
        for (t, r) in rects.iter().enumerate().skip(20) {
            let a = original.observe(1, *r, t as Time).unwrap();
            let b = restored.observe(1, *r, t as Time).unwrap();
            assert_eq!(a, b, "diverged at t={t}");
            assert_eq!(restored.watermark(), original.watermark());
        }
        assert_eq!(
            original.finish(1, 40).unwrap(),
            restored.finish(1, 40).unwrap()
        );
        assert_eq!(
            original.finish(2, 20).unwrap(),
            restored.finish(2, 20).unwrap()
        );
    }

    #[test]
    fn stationary_objects_split_only_at_the_length_cap() {
        // With the cap disabled a stationary object never splits.
        let uncapped = OnlineSplitConfig {
            max_piece_instants: None,
            ..OnlineSplitConfig::default()
        };
        let mut s = OnlineSplitter::new(uncapped);
        let r = Rect2::from_bounds(0.4, 0.4, 0.45, 0.45);
        for t in 0..100 {
            assert!(
                s.observe(7, r, t).unwrap().is_none(),
                "stationary object split at {t}"
            );
        }
        let last = s.finish(7, 100).unwrap();
        assert_eq!(last.stbox.lifetime, TimeInterval::new(0, 100));
        assert_eq!(s.splits_issued(), 0);

        // The default cap bounds piece length (and thereby the streaming
        // indexer's watermark staleness).
        let mut s = OnlineSplitter::new(OnlineSplitConfig::default());
        let mut splits = 0;
        for t in 0..200 {
            if s.observe(7, r, t).unwrap().is_some() {
                splits += 1;
            }
        }
        assert!(splits >= 2, "length cap should fire, got {splits}");
    }

    #[test]
    fn movers_split_and_pieces_partition_lifetime() {
        let mut s = OnlineSplitter::new(OnlineSplitConfig::default());
        let rects = mover(80);
        let mut pieces = Vec::new();
        for (i, r) in rects.iter().enumerate() {
            if let Some(p) = s.observe(1, *r, 10 + i as Time).unwrap() {
                pieces.push(p);
            }
        }
        pieces.push(s.finish(1, 90).unwrap());
        assert!(
            pieces.len() >= 3,
            "a steady mover should split several times"
        );
        // Consecutive lifetimes partition [10, 90).
        assert_eq!(pieces[0].stbox.lifetime.start, 10);
        assert_eq!(pieces.last().expect("nonempty").stbox.lifetime.end, 90);
        for w in pieces.windows(2) {
            assert_eq!(w[0].stbox.lifetime.end, w[1].stbox.lifetime.start);
        }
        // Each piece's MBR covers the instants it claims.
        for p in &pieces {
            for t in p.stbox.lifetime.start..p.stbox.lifetime.end {
                let r = rects[(t - 10) as usize];
                assert!(
                    p.stbox.rect.contains_rect(&r),
                    "piece does not cover instant {t}"
                );
            }
        }
    }

    #[test]
    fn min_piece_length_is_respected() {
        let cfg = OnlineSplitConfig {
            min_piece_instants: 10,
            ..OnlineSplitConfig::default()
        };
        let mut s = OnlineSplitter::new(cfg);
        let mut pieces = Vec::new();
        for (i, r) in mover(60).iter().enumerate() {
            if let Some(p) = s.observe(1, *r, i as Time).unwrap() {
                pieces.push(p);
            }
        }
        pieces.push(s.finish(1, 60).unwrap());
        for p in &pieces[..pieces.len() - 1] {
            assert!(
                p.stbox.lifetime.len() >= 10,
                "piece shorter than minimum: {}",
                p.stbox
            );
        }
    }

    #[test]
    fn max_piece_length_forces_splits() {
        let cfg = OnlineSplitConfig {
            max_piece_instants: Some(5),
            min_piece_instants: 1,
            overhead_threshold: 1e9, // relative criterion never fires
            ..OnlineSplitConfig::default()
        };
        let mut s = OnlineSplitter::new(cfg);
        let r = Rect2::from_bounds(0.1, 0.1, 0.12, 0.12);
        let mut count = 0;
        for t in 0..20 {
            if s.observe(3, r, t).unwrap().is_some() {
                count += 1;
            }
        }
        assert!(
            count >= 3,
            "length cap should force periodic splits, got {count}"
        );
    }

    #[test]
    fn zero_extent_points_use_area_cap() {
        // Relative overhead is undefined for points; the area cap drives.
        let cfg = OnlineSplitConfig {
            max_piece_area: Some(0.001),
            min_piece_instants: 1,
            ..OnlineSplitConfig::default()
        };
        let mut s = OnlineSplitter::new(cfg);
        let mut splits = 0;
        for t in 0..50u32 {
            // Diagonal motion: the piece MBR's area genuinely grows.
            let p = Point2::new(0.01 * f64::from(t), 0.01 * f64::from(t));
            if s.observe(9, Rect2::point(p), t).unwrap().is_some() {
                splits += 1;
            }
        }
        assert!(
            splits >= 5,
            "moving point should split via the area cap, got {splits}"
        );
    }

    #[test]
    fn finish_errors_are_typed_and_leave_state_intact() {
        let mut s = OnlineSplitter::new(OnlineSplitConfig::default());
        assert_eq!(s.finish(5, 10), Err(FinishError::NotOpen { id: 5 }));

        let r = Rect2::from_bounds(0.1, 0.1, 0.2, 0.2);
        for t in 0..4 {
            s.observe(5, r, t).unwrap();
        }
        // Wrong end: the piece stays open and keeps accepting updates.
        assert_eq!(
            s.finish(5, 10),
            Err(FinishError::WrongEnd {
                id: 5,
                end: 10,
                expected: 4
            })
        );
        assert_eq!(s.open_objects(), 1);
        s.observe(5, r, 4).unwrap();
        let rec = s.finish(5, 5).unwrap();
        assert_eq!(rec.stbox.lifetime, TimeInterval::new(0, 5));
        assert_eq!(s.open_objects(), 0);
        // Double finish: the piece is gone.
        assert_eq!(s.finish(5, 5), Err(FinishError::NotOpen { id: 5 }));
    }

    #[test]
    fn indexer_propagates_finish_errors_without_advancing_time() {
        let params = PprParams {
            max_entries: 10,
            buffer_pages: 4,
            ..PprParams::default()
        };
        let mut idx = OnlineIndexer::new(OnlineSplitConfig::default(), params);
        idx.update(1, Rect2::from_bounds(0.1, 0.1, 0.2, 0.2), 0)
            .unwrap();
        assert!(matches!(
            idx.finish(2, 5),
            Err(OnlineError::Split(FinishError::NotOpen { id: 2 }))
        ));
        // The failed finish must not have advanced the clock past 0.
        idx.update(1, Rect2::from_bounds(0.1, 0.1, 0.2, 0.2), 1)
            .unwrap();
        idx.finish(1, 2).unwrap();
    }

    /// Each contiguity violation maps to its own [`ObserveError`]
    /// variant, and a rejected observation changes nothing: the stream
    /// resumes at the expected instant as if the bad call never happened.
    #[test]
    fn rejects_gaps_duplicates_and_backwards_steps_with_typed_errors() {
        let mut s = OnlineSplitter::new(OnlineSplitConfig::default());
        let r = Rect2::from_bounds(0.1, 0.1, 0.2, 0.2);
        s.observe(1, r, 0).unwrap();
        s.observe(1, r, 1).unwrap();

        assert_eq!(
            s.observe(1, r, 3),
            Err(ObserveError::Gap {
                id: 1,
                t: 3,
                expected: 2
            })
        );
        assert_eq!(
            s.observe(1, r, 1),
            Err(ObserveError::Duplicate { id: 1, t: 1 })
        );
        assert_eq!(
            s.observe(1, r, 0),
            Err(ObserveError::OutOfOrder {
                id: 1,
                t: 0,
                last: 1
            })
        );

        // State is untouched by the three rejections: the watermark, the
        // open set, and the split counter still describe [0, 1], and the
        // stream continues at instant 2.
        assert_eq!(s.open_objects(), 1);
        assert_eq!(s.watermark(), Some(0));
        assert_eq!(s.splits_issued(), 0);
        s.observe(1, r, 2).unwrap();
        let rec = s.finish(1, 3).unwrap();
        assert_eq!(rec.stbox.lifetime, TimeInterval::new(0, 3));
    }

    /// A gap on one object must not disturb *another* object's open
    /// piece (the error path borrows only the offender's entry).
    #[test]
    fn observe_error_is_scoped_to_the_offending_object() {
        let mut s = OnlineSplitter::new(OnlineSplitConfig::default());
        let r = Rect2::from_bounds(0.1, 0.1, 0.2, 0.2);
        s.observe(1, r, 0).unwrap();
        s.observe(2, r, 0).unwrap();
        assert!(s.observe(1, r, 5).is_err());
        s.observe(2, r, 1).unwrap();
        assert_eq!(s.open_objects(), 2);
        assert_eq!(s.finish(2, 2).unwrap().stbox.lifetime.end, 2);
    }

    /// The indexer rejects a stream-clock regression with a typed error
    /// and does not advance time, absorb the observation, or buffer
    /// events.
    #[test]
    fn indexer_rejects_backwards_stream_with_typed_error() {
        let params = PprParams {
            max_entries: 10,
            buffer_pages: 4,
            ..PprParams::default()
        };
        let mut idx = OnlineIndexer::new(OnlineSplitConfig::default(), params);
        let r = Rect2::from_bounds(0.1, 0.1, 0.2, 0.2);
        idx.update(1, r, 7).unwrap();
        assert_eq!(
            idx.update(2, r, 3),
            Err(OnlineError::Observe(ObserveError::OutOfOrder {
                id: 2,
                t: 3,
                last: 7
            }))
        );
        assert_eq!(
            idx.finish(1, 5),
            Err(OnlineError::Split(FinishError::WrongEnd {
                id: 1,
                end: 5,
                expected: 8
            }))
        );
        // Object 2 was never absorbed; object 1 still finishes cleanly.
        idx.update(1, r, 8).unwrap();
        idx.finish(1, 9).unwrap();
        let tree = idx.seal(9).unwrap();
        assert!(sti_pprtree::check::validate(&tree).is_ok());
    }

    #[test]
    fn online_volume_between_optimal_and_unsplit() {
        use crate::multi::DistributionAlgorithm;
        use crate::plan::{SplitBudget, SplitPlan};
        use crate::single::SingleSplitAlgorithm;

        // A batch of movers; compare one-pass splits against offline.
        let objects: Vec<RasterizedObject> = (0..20)
            .map(|id| {
                let rects = mover(50 + (id as usize % 17));
                RasterizedObject::new(id, (id * 13) as Time, rects)
            })
            .collect();

        let mut s = OnlineSplitter::new(OnlineSplitConfig::default());
        let mut online_records = Vec::new();
        // Replay by global time order (interleaved objects).
        let mut events: Vec<(Time, u64, usize)> = Vec::new();
        for o in &objects {
            for i in 0..o.len() {
                events.push((o.start() + i as Time, o.id(), i));
            }
        }
        events.sort_unstable();
        for (t, id, i) in events {
            let o = &objects[id as usize];
            if let Some(p) = s.observe(id, o.rect(i), t).unwrap() {
                online_records.push(p);
            }
        }
        for o in &objects {
            online_records.push(s.finish(o.id(), o.lifetime().end).unwrap());
        }

        let online_vol = total_volume(&online_records);
        let online_splits = online_records.len() - objects.len();
        let offline = SplitPlan::build(
            &objects,
            SingleSplitAlgorithm::DpSplit,
            DistributionAlgorithm::Optimal,
            SplitBudget::Count(online_splits),
            None,
        );
        let unsplit_vol: f64 = objects.iter().map(|o| o.unsplit_volume()).sum();
        assert!(
            online_vol + 1e-9 >= offline.total_volume(),
            "online cannot beat the offline optimum at equal budget"
        );
        assert!(
            online_vol < unsplit_vol * 0.7,
            "online splitting should remove real empty space: {online_vol} vs {unsplit_vol}"
        );
    }

    #[test]
    fn indexer_streams_and_answers_history() {
        let params = PprParams {
            max_entries: 10,
            buffer_pages: 4,
            ..PprParams::default()
        };
        let mut idx = OnlineIndexer::new(OnlineSplitConfig::default(), params);

        // Two staggered movers and one stationary anchor.
        let a = mover(40);
        let b = mover(40);
        for t in 0..60u32 {
            if t < 40 {
                idx.update(1, a[t as usize], t).unwrap();
            }
            if t == 40 {
                idx.finish(1, 40).unwrap();
            }
            if (10..50).contains(&t) {
                idx.update(2, b[(t - 10) as usize], t).unwrap();
            }
            if t == 50 {
                idx.finish(2, 50).unwrap();
            }
            idx.update(3, Rect2::from_bounds(0.9, 0.9, 0.95, 0.95), t)
                .unwrap();
        }
        // Anchor still open from t=0: watermark is its piece start, so
        // only a prefix is queryable mid-stream; sealing finishes all.
        let splits = idx.splits_issued();
        assert!(splits >= 2, "movers should have split, got {splits}");
        let tree = idx.seal(60).unwrap();
        tree.validate();
        let mut out = Vec::new();
        tree.query_snapshot(&Rect2::UNIT, 5, &mut out).unwrap();
        out.sort_unstable();
        assert_eq!(out, vec![1, 3]);
        out.clear();
        tree.query_snapshot(&Rect2::UNIT, 45, &mut out).unwrap();
        out.sort_unstable();
        assert_eq!(out, vec![2, 3]);
        out.clear();
        // Object 1's pieces: found once over its whole life.
        tree.query_interval(&Rect2::UNIT, &TimeInterval::new(0, 60), &mut out)
            .unwrap();
        out.sort_unstable();
        assert_eq!(out, vec![1, 2, 3]);
    }

    #[test]
    fn indexer_watermark_gates_queries() {
        let params = PprParams {
            max_entries: 10,
            buffer_pages: 4,
            ..PprParams::default()
        };
        let mut idx = OnlineIndexer::new(
            OnlineSplitConfig {
                max_piece_instants: Some(4),
                min_piece_instants: 1,
                ..OnlineSplitConfig::default()
            },
            params,
        );
        for (i, r) in mover(30).iter().enumerate() {
            idx.update(1, *r, i as Time).unwrap();
        }
        let w = idx.watermark();
        assert!(w > 0, "length-capped pieces must advance the watermark");
        let mut out = Vec::new();
        idx.query_snapshot(&Rect2::UNIT, w - 1, &mut out).unwrap();
        assert_eq!(out, vec![1]);
    }

    #[test]
    #[should_panic(expected = "not yet final")]
    fn indexer_rejects_queries_past_watermark() {
        let params = PprParams {
            max_entries: 10,
            buffer_pages: 4,
            ..PprParams::default()
        };
        let mut idx = OnlineIndexer::new(OnlineSplitConfig::default(), params);
        idx.update(1, Rect2::from_bounds(0.1, 0.1, 0.2, 0.2), 0)
            .unwrap();
        let mut out = Vec::new();
        let _ = idx.query_snapshot(&Rect2::UNIT, 0, &mut out);
    }

    /// Failed finishes are typed errors and leave the splitter's open
    /// pieces, watermark, and split counter exactly as they were.
    #[test]
    fn splitter_finish_errors_leave_state_unchanged() {
        let mut s = OnlineSplitter::new(OnlineSplitConfig::default());
        let r = Rect2::from_bounds(0.4, 0.4, 0.45, 0.45);
        for t in 0..10 {
            assert!(s.observe(7, r, t).unwrap().is_none());
        }

        assert_eq!(s.finish(99, 10), Err(FinishError::NotOpen { id: 99 }));
        assert_eq!(
            s.finish(7, 25),
            Err(FinishError::WrongEnd {
                id: 7,
                end: 25,
                expected: 10
            })
        );
        assert_eq!(s.open_objects(), 1, "failed finish must not close pieces");
        assert_eq!(s.watermark(), Some(0));
        assert_eq!(s.splits_issued(), 0);

        // The piece is still finishable with the correct end...
        let rec = s.finish(7, 10).unwrap();
        assert_eq!(rec.stbox.lifetime, TimeInterval::new(0, 10));
        assert_eq!(s.open_objects(), 0);
        assert_eq!(s.watermark(), None);
        // ...and exactly once.
        assert_eq!(s.finish(7, 10), Err(FinishError::NotOpen { id: 7 }));
    }

    /// The indexer propagates finish errors without corrupting the
    /// stream: the failed call changes nothing, the corrected call
    /// succeeds, and the sealed tree passes the full-history sanitizer.
    #[test]
    fn indexer_finish_error_then_recovery() {
        let params = PprParams {
            max_entries: 10,
            buffer_pages: 4,
            ..PprParams::default()
        };
        let mut idx = OnlineIndexer::new(OnlineSplitConfig::default(), params);
        let r = Rect2::from_bounds(0.3, 0.3, 0.35, 0.35);
        for t in 0..10 {
            idx.update(5, r, t).unwrap();
        }
        let w = idx.watermark();

        assert_eq!(
            idx.finish(5, 25),
            Err(OnlineError::Split(FinishError::WrongEnd {
                id: 5,
                end: 25,
                expected: 10
            }))
        );
        assert_eq!(
            idx.finish(6, 10),
            Err(OnlineError::Split(FinishError::NotOpen { id: 6 }))
        );
        assert_eq!(
            idx.watermark(),
            w,
            "failed finish must not move the watermark"
        );

        idx.finish(5, 10).unwrap();
        let tree = idx.seal(10).unwrap();
        assert_eq!(tree.alive_records(), 0);
        assert!(sti_pprtree::check::validate(&tree).is_ok());
    }

    /// Everything externally observable about an [`OnlineIndexer`],
    /// captured with same-module access to the private fields so the
    /// equality below really is "nothing moved", not "the accessors
    /// still agree".
    #[derive(Debug, PartialEq)]
    struct IndexerSnapshot {
        now: Time,
        seq: u64,
        watermark: Time,
        splits_issued: u64,
        open: Vec<(u64, OpenPiece)>,
        open_starts: Vec<(Time, usize)>,
        buffered: Vec<Ev>,
        tree_alive: u64,
        tree_pages: usize,
    }

    impl IndexerSnapshot {
        fn of(idx: &OnlineIndexer) -> Self {
            let mut open: Vec<(u64, OpenPiece)> =
                idx.splitter.open.iter().map(|(&id, &p)| (id, p)).collect();
            open.sort_by_key(|&(id, _)| id);
            let mut buffered: Vec<Ev> = idx.buffer.iter().map(|r| r.0.clone()).collect();
            buffered.sort();
            Self {
                now: idx.now,
                seq: idx.seq,
                watermark: idx.watermark(),
                splits_issued: idx.splitter.splits_issued,
                open,
                open_starts: idx
                    .splitter
                    .open_starts
                    .iter()
                    .map(|(&t, &n)| (t, n))
                    .collect(),
                buffered,
                tree_alive: idx.tree.alive_records(),
                tree_pages: idx.tree.num_pages(),
            }
        }
    }

    use proptest::prelude::*;
    use rand::{rngs::StdRng, RngExt, SeedableRng};

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Satellite 3: drive a live stream and, interleaved with the
        /// valid traffic, throw every class of malformed call at the
        /// indexer. Each must return the right typed error and leave the
        /// watermark, the open-piece set, and the buffered/emitted
        /// records bit-identical; the stream then carries on and the
        /// sealed tree passes the full-history sanitizer.
        #[test]
        fn malformed_calls_leave_the_indexer_unchanged(seed in any::<u64>()) {
            let mut rng = StdRng::seed_from_u64(seed);
            let params = PprParams { max_entries: 10, buffer_pages: 4, ..PprParams::default() };
            let cfg = OnlineSplitConfig {
                min_piece_instants: 2,
                max_piece_instants: Some(6),
                ..OnlineSplitConfig::default()
            };
            let mut idx = OnlineIndexer::new(cfg, params);
            let mut alive: Vec<u64> = Vec::new();
            let mut next_id = 0u64;
            let horizon = 30 + (seed % 20) as Time;

            for t in 0..horizon {
                // Sprinkle malformed calls before the valid traffic. At
                // this point every id in `alive` has been observed at
                // least once (spawning happens below), so each call
                // really is a stream violation, not a first observation.
                if t > 2 {
                    let before = IndexerSnapshot::of(&idx);
                    let pick = rng.random_range(0..5u32);
                    let outcome = match (pick, alive.first()) {
                        (0, Some(&id)) => idx.update(id, Rect2::UNIT, t + 4), // gap
                        (1, Some(&id)) => idx.update(id, Rect2::UNIT, t - 1), // behind the clock
                        (2, Some(&id)) => idx.finish(id, t + 7),              // wrong end
                        (3, _) => idx.finish(9_999, t),                       // never observed
                        _ => idx.finish(alive.first().copied().unwrap_or(0), t.saturating_sub(3)), // backwards
                    };
                    prop_assert!(outcome.is_err(), "malformed call accepted at t={t}");
                    prop_assert!(
                        !matches!(outcome, Err(OnlineError::Storage(_))),
                        "malformed input misreported as an I/O failure"
                    );
                    prop_assert_eq!(&IndexerSnapshot::of(&idx), &before,
                        "rejected call at t={} moved indexer state", t);
                }
                // Maybe bring a new object into the world at this instant.
                if alive.len() < 4 && rng.random::<f64>() < 0.5 {
                    alive.push(next_id);
                    next_id += 1;
                }
                // The valid stream: every alive object observes this instant.
                for &id in &alive {
                    let x = ((id as f64) * 0.17 + f64::from(t) * 0.013).fract() * 0.9;
                    idx.update(id, Rect2::from_bounds(x, 0.4, x + 0.02, 0.45), t).unwrap();
                }
                // Maybe retire one object (end = t + 1 follows its last
                // observation; later updates resume at t + 1).
                if alive.len() > 1 && rng.random::<f64>() < 0.2 {
                    let victim = alive.swap_remove(rng.random_range(0..alive.len()));
                    idx.finish(victim, t + 1).unwrap();
                }
            }
            for &id in &alive {
                idx.finish(id, horizon).unwrap();
            }
            let tree = idx.seal(horizon).unwrap();
            prop_assert!(sti_pprtree::check::validate(&tree).is_ok());
        }
    }
}
