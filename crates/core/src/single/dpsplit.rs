//! `DPSplit`: optimal single-object splitting by dynamic programming
//! (paper §III-A.1).

use crate::single::SingleObjectSplitter;
use crate::VolumeCurve;
use sti_trajectory::RasterizedObject;

/// The optimal splitter.
///
/// Computes `V_l[0, i] = min_{0 ≤ j < i} { V_{l−1}[0, j] + V[j, i] }`
/// where `V[j, i]` is the volume of the single MBR covering instants
/// `[j, i)`. Splitting one object optimally with `k` splits costs
/// O(n²·k) time (Theorem 1) and O(n·k) space for cut reconstruction.
///
/// The inner `V[j, i]` values are produced by a suffix-union sweep per
/// endpoint `i` (O(n) each), so they never dominate the DP.
#[derive(Debug, Clone, Copy, Default)]
pub struct DpSplit;

/// Full DP state for one object: optimal volumes *and* cut positions for
/// every split count `0..=max_splits`. Computing the table once and
/// querying it repeatedly is how the distribution algorithms amortize the
/// quadratic cost.
#[derive(Debug, Clone)]
pub struct DpTable {
    n: usize,
    /// `vol[l]` = optimal total volume with `l` splits.
    vols: Vec<f64>,
    /// `choice[l][i]` = the optimal last-cut position `j` for `V_l[0, i]`
    /// (flattened `l * (n + 1) + i`); `usize::MAX` marks unreachable
    /// states.
    choice: Vec<u32>,
}

impl DpTable {
    /// Run the dynamic program for split counts up to `max_splits`
    /// (silently capped at `n − 1`, past which every instant is its own
    /// piece and no further gain exists).
    pub fn build(obj: &RasterizedObject, max_splits: usize) -> Self {
        let n = obj.len();
        let kmax = max_splits.min(n - 1);
        // dp[l][i] for l in 0..=kmax, i in 0..=n; flattened.
        let width = n + 1;
        let mut dp = vec![f64::INFINITY; (kmax + 1) * width];
        let mut choice = vec![u32::MAX; (kmax + 1) * width];
        dp[0] = 0.0; // V_0[0, 0]: empty prefix

        // Row l = 0: one box over [0, i). Prefix union sweep.
        {
            let mut mbr = sti_geom::Rect2::EMPTY;
            for (i, slot) in dp.iter_mut().enumerate().take(n + 1).skip(1) {
                mbr.expand(&obj.rect(i - 1));
                *slot = mbr.area() * i as f64;
            }
        }

        // suffix_area[j] = area of MBR over [j, i) for the current i.
        let mut suffix_area = vec![0.0f64; n];
        for i in 2..=n {
            // One O(i) sweep computing all V[j, i) for j < i.
            let mut mbr = sti_geom::Rect2::EMPTY;
            for j in (0..i).rev() {
                mbr.expand(&obj.rect(j));
                suffix_area[j] = mbr.area();
            }
            let lcap = kmax.min(i - 1);
            for l in 1..=lcap {
                // Last piece is [j, i) with j ≥ l (need l pieces before it).
                let mut best = f64::INFINITY;
                let mut best_j = u32::MAX;
                for j in l..i {
                    let prev = dp[(l - 1) * width + j];
                    if prev == f64::INFINITY {
                        continue;
                    }
                    let cand = prev + suffix_area[j] * (i - j) as f64;
                    if cand < best {
                        best = cand;
                        best_j = j as u32;
                    }
                }
                dp[l * width + i] = best;
                choice[l * width + i] = best_j;
            }
        }

        // Optimal volumes are non-increasing in l by construction, but a
        // too-large l for small prefixes stays INFINITY; at i = n all
        // l ≤ kmax ≤ n − 1 are feasible.
        let vols = (0..=kmax).map(|l| dp[l * width + n]).collect();
        Self { n, vols, choice }
    }

    /// Number of instants of the underlying object.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Largest split count covered by this table.
    pub fn max_splits(&self) -> usize {
        self.vols.len() - 1
    }

    /// Optimal total volume for `l` splits (clamped to the table).
    pub fn volume(&self, l: usize) -> f64 {
        self.vols[l.min(self.vols.len() - 1)]
    }

    /// Reconstruct the optimal cut positions for `l` splits (clamped).
    pub fn cuts(&self, l: usize) -> Vec<usize> {
        let l = l.min(self.vols.len() - 1);
        let width = self.n + 1;
        let mut cuts = Vec::with_capacity(l);
        let mut i = self.n;
        let mut lev = l;
        while lev > 0 {
            let j = self.choice[lev * width + i] as usize;
            cuts.push(j);
            i = j;
            lev -= 1;
        }
        cuts.reverse();
        cuts
    }

    /// The whole optimal volume curve.
    pub fn curve(&self) -> VolumeCurve {
        VolumeCurve::new(self.vols.clone())
    }
}

impl SingleObjectSplitter for DpSplit {
    fn cuts(&self, obj: &RasterizedObject, k: usize) -> Vec<usize> {
        DpTable::build(obj, k).cuts(k)
    }

    fn volume_curve(&self, obj: &RasterizedObject, max_splits: usize) -> VolumeCurve {
        DpTable::build(obj, max_splits).curve()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::single::testutil::*;
    use proptest::prelude::*;
    use sti_geom::Rect2;

    #[test]
    fn zero_splits_is_unsplit_volume() {
        let o = diagonal_mover(10);
        let t = DpTable::build(&o, 0);
        assert!((t.volume(0) - o.unsplit_volume()).abs() < 1e-12);
        assert!(t.cuts(0).is_empty());
    }

    #[test]
    fn full_splits_is_sum_of_instants() {
        let o = diagonal_mover(6);
        let t = DpTable::build(&o, 5);
        let per_instant: f64 = (0..6).map(|i| o.rect(i).area()).sum();
        assert!((t.volume(5) - per_instant).abs() < 1e-12);
        assert_eq!(t.cuts(5), vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn matches_brute_force_on_small_objects() {
        for obj in [diagonal_mover(8), two_jump(3), stationary(7)] {
            for k in 0..=4 {
                let t = DpTable::build(&obj, k);
                let bf = brute_force_optimal(&obj, k);
                assert!(
                    (t.volume(k) - bf).abs() < 1e-9,
                    "k={k}: dp={} bf={bf}",
                    t.volume(k)
                );
                // And the reconstructed cuts must realize the DP volume.
                let realized = obj.volume_for_cuts(&t.cuts(k));
                assert!((realized - t.volume(k)).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn two_jump_object_violates_monotonicity() {
        // The paper's fig. 4: with phases far apart, one split gains far
        // less than two. DPSplit's curve must expose this.
        let o = two_jump(5);
        let curve = DpTable::build(&o, 4).curve();
        assert!(!curve.has_monotone_gains(), "gain(2) should exceed gain(1)");
        assert!(curve.gain(2) > curve.gain(1));
    }

    #[test]
    fn budget_capped_at_n_minus_1() {
        let o = diagonal_mover(4);
        let t = DpTable::build(&o, 100);
        assert_eq!(t.max_splits(), 3);
        assert_eq!(t.cuts(100).len(), 3);
    }

    #[test]
    fn single_instant_object() {
        let o = RasterizedObject::new(1, 0, vec![Rect2::from_bounds(0.0, 0.0, 0.5, 0.5)]);
        let t = DpTable::build(&o, 3);
        assert_eq!(t.max_splits(), 0);
        assert!(t.cuts(3).is_empty());
        assert!((t.volume(0) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn trait_methods_agree_with_table() {
        let o = two_jump(4);
        let s = DpSplit;
        let cuts = s.cuts(&o, 2);
        let curve = s.volume_curve(&o, 2);
        assert!((o.volume_for_cuts(&cuts) - curve.volume(2)).abs() < 1e-9);
    }

    fn arb_object() -> impl Strategy<Value = sti_trajectory::RasterizedObject> {
        prop::collection::vec((0.0..0.9f64, 0.0..0.9f64), 2..14).prop_map(|pts| {
            let rects = pts
                .into_iter()
                .map(|(x, y)| Rect2::from_bounds(x, y, x + 0.05, y + 0.05))
                .collect();
            sti_trajectory::RasterizedObject::new(1, 0, rects)
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn dp_equals_brute_force(obj in arb_object(), k in 0usize..4) {
            let t = DpTable::build(&obj, k);
            let bf = brute_force_optimal(&obj, k);
            prop_assert!((t.volume(k.min(obj.len() - 1)) - bf).abs() < 1e-9);
        }

        #[test]
        fn curve_non_increasing_and_cuts_valid(obj in arb_object()) {
            let kmax = obj.len() - 1;
            let t = DpTable::build(&obj, kmax);
            let curve = t.curve(); // constructor checks non-increasing
            for l in 0..=kmax {
                let cuts = t.cuts(l);
                prop_assert_eq!(cuts.len(), l);
                let realized = obj.volume_for_cuts(&cuts);
                prop_assert!((realized - curve.volume(l)).abs() < 1e-9);
            }
        }
    }
}
