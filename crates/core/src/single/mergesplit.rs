//! `MergeSplit`: the greedy merge heuristic for single-object splitting
//! (paper §III-A.2, fig. 8).

use crate::single::SingleObjectSplitter;
use crate::util::OrdF64;
use crate::VolumeCurve;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use sti_geom::Rect2;
use sti_trajectory::RasterizedObject;

/// The greedy merge splitter.
///
/// Starts with `n` boxes — one per time instant — and repeatedly merges
/// the pair of *consecutive* boxes whose union causes the smallest
/// increase in volume, maintaining the frontier in a priority queue.
/// O(n lg n) with lazy invalidation.
///
/// Because merging is agglomerative, one run produces a *nested
/// hierarchy*: the piece set for `k` splits refines the set for `k − 1`
/// splits. [`MergeHierarchy`] captures the whole run so distribution
/// algorithms can query any split count without re-running.
#[derive(Debug, Clone, Copy, Default)]
pub struct MergeSplit;

/// The complete result of one greedy merge run over an object.
#[derive(Debug, Clone)]
pub struct MergeHierarchy {
    n: usize,
    /// Cut indices (`1..n`) removed by successive merges, in merge order.
    removal_order: Vec<usize>,
    /// `vols[s]` = total volume with `s` splits under this hierarchy.
    vols: Vec<f64>,
}

impl MergeHierarchy {
    /// Run the greedy merge to completion (from `n` pieces down to 1).
    pub fn build(obj: &RasterizedObject) -> Self {
        let n = obj.len();
        if n == 1 {
            return Self {
                n,
                removal_order: Vec::new(),
                vols: vec![obj.unsplit_volume()],
            };
        }

        // Piece slots: slot i initially holds instant i. A live piece is
        // identified by its slot; merging (p, q) keeps slot p.
        let mut mbr: Vec<Rect2> = obj.rects().to_vec();
        let start: Vec<usize> = (0..n).collect();
        let mut end: Vec<usize> = (1..=n).collect();
        let mut next: Vec<usize> = (1..=n).collect(); // next[n-1] == n (sentinel)
        let mut prev: Vec<usize> = (0..n).map(|i| i.wrapping_sub(1)).collect();
        let mut alive = vec![true; n];
        let mut version = vec![0u32; n];

        let piece_vol = |mbr: &Rect2, s: usize, e: usize| -> f64 { mbr.area() * (e - s) as f64 };

        // Min-heap of merge candidates keyed by volume increase.
        type Cand = Reverse<(OrdF64, usize, u32, u32)>;
        let mut heap: BinaryHeap<Cand> = BinaryHeap::with_capacity(2 * n);
        let push_candidate = |heap: &mut BinaryHeap<Cand>,
                              mbr: &[Rect2],
                              start: &[usize],
                              end: &[usize],
                              version: &[u32],
                              p: usize,
                              q: usize| {
            let u = mbr[p].union(&mbr[q]);
            let cost = piece_vol(&u, start[p], end[q])
                - piece_vol(&mbr[p], start[p], end[p])
                - piece_vol(&mbr[q], start[q], end[q]);
            heap.push(Reverse((OrdF64(cost), p, version[p], version[q])));
        };

        for p in 0..n - 1 {
            push_candidate(&mut heap, &mbr, &start, &end, &version, p, p + 1);
        }

        let mut total: f64 = obj.rects().iter().map(Rect2::area).sum();
        let mut vols = vec![0.0f64; n];
        vols[n - 1] = total;
        let mut removal_order = Vec::with_capacity(n - 1);

        let mut merges = 0usize;
        while merges < n - 1 {
            // stilint::allow(no_panic, "every merge posts a fresh candidate for the surviving pair, so the heap cannot run dry before n-1 merges")
            let Reverse((OrdF64(cost), p, vp, vq)) = heap.pop().expect("candidates remain");
            if !alive[p] || version[p] != vp {
                continue;
            }
            let q = next[p];
            if q >= n || version[q] != vq {
                continue;
            }
            // Merge q into p.
            mbr[p] = mbr[p].union(&mbr[q]);
            end[p] = end[q];
            alive[q] = false;
            version[p] += 1;
            let after = next[q];
            next[p] = after;
            if after < n {
                prev[after] = p;
            }
            removal_order.push(start[q]);
            total += cost;
            merges += 1;
            vols[n - 1 - merges] = total;

            // New frontier candidates around the merged piece.
            if prev[p] != usize::MAX && prev[p] < n {
                let pp = prev[p];
                push_candidate(&mut heap, &mbr, &start, &end, &version, pp, p);
            }
            if after < n {
                push_candidate(&mut heap, &mbr, &start, &end, &version, p, after);
            }
        }

        // Greedy totals can accumulate float error; clamp tiny inversions
        // so the curve stays non-increasing.
        for s in 1..n {
            if vols[s] > vols[s - 1] {
                vols[s] = vols[s - 1];
            }
        }
        Self {
            n,
            removal_order,
            vols,
        }
    }

    /// Number of instants of the underlying object.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Cut positions after restricting the hierarchy to `k` splits: all
    /// interior boundaries except the first `n − 1 − k` removed by merges.
    pub fn cuts(&self, k: usize) -> Vec<usize> {
        let k = k.min(self.n - 1);
        let keep = &self.removal_order[self.n - 1 - k..];
        let mut cuts: Vec<usize> = keep.to_vec();
        cuts.sort_unstable();
        cuts
    }

    /// Total volume with `k` splits (clamped to `n − 1`).
    pub fn volume(&self, k: usize) -> f64 {
        self.vols[k.min(self.n - 1)]
    }

    /// The volume curve truncated to `max_splits`.
    pub fn curve(&self, max_splits: usize) -> VolumeCurve {
        let hi = max_splits.min(self.n - 1);
        VolumeCurve::new(self.vols[..=hi].to_vec())
    }
}

impl SingleObjectSplitter for MergeSplit {
    fn cuts(&self, obj: &RasterizedObject, k: usize) -> Vec<usize> {
        MergeHierarchy::build(obj).cuts(k)
    }

    fn volume_curve(&self, obj: &RasterizedObject, max_splits: usize) -> VolumeCurve {
        MergeHierarchy::build(obj).curve(max_splits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::single::dpsplit::DpTable;
    use crate::single::testutil::*;
    use proptest::prelude::*;

    #[test]
    fn endpoints_match_exact_values() {
        let o = diagonal_mover(8);
        let h = MergeHierarchy::build(&o);
        // 0 splits: one MBR over everything.
        assert!((h.volume(0) - o.unsplit_volume()).abs() < 1e-9);
        // n-1 splits: per-instant boxes.
        let per_instant: f64 = (0..8).map(|i| o.rect(i).area()).sum();
        assert!((h.volume(7) - per_instant).abs() < 1e-9);
    }

    #[test]
    fn cuts_realize_reported_volume() {
        let o = two_jump(4); // n = 12
        let h = MergeHierarchy::build(&o);
        for k in 0..=11 {
            let cuts = h.cuts(k);
            assert_eq!(cuts.len(), k);
            let realized = o.volume_for_cuts(&cuts);
            assert!(
                (realized - h.volume(k)).abs() < 1e-9,
                "k={k}: realized={realized} reported={}",
                h.volume(k)
            );
        }
    }

    #[test]
    fn finds_the_obvious_jump_cuts() {
        // two_jump has huge gaps at indices 4 and 8; with 2 splits the
        // greedy must cut exactly there (those merges cost the most).
        let o = two_jump(4);
        let h = MergeHierarchy::build(&o);
        assert_eq!(h.cuts(2), vec![4, 8]);
        // and matches the optimum there
        let dp = DpTable::build(&o, 2);
        assert!((h.volume(2) - dp.volume(2)).abs() < 1e-9);
    }

    #[test]
    fn never_beats_optimal() {
        for o in [diagonal_mover(10), two_jump(3), stationary(9)] {
            let h = MergeHierarchy::build(&o);
            let dp = DpTable::build(&o, o.len() - 1);
            for k in 0..o.len() {
                assert!(
                    h.volume(k) >= dp.volume(k) - 1e-9,
                    "greedy beat optimal at k={k}"
                );
            }
        }
    }

    #[test]
    fn stationary_curve_is_flat() {
        let o = stationary(6);
        let h = MergeHierarchy::build(&o);
        for k in 0..6 {
            assert!((h.volume(k) - h.volume(0)).abs() < 1e-12);
        }
    }

    #[test]
    fn single_instant_object() {
        let o = stationary(1);
        let h = MergeHierarchy::build(&o);
        assert_eq!(h.n(), 1);
        assert!(h.cuts(5).is_empty());
        assert!((h.volume(0) - o.unsplit_volume()).abs() < 1e-12);
    }

    #[test]
    fn trait_object_usable() {
        let s: Box<dyn SingleObjectSplitter> = Box::new(MergeSplit);
        let o = diagonal_mover(5);
        let curve = s.volume_curve(&o, 4);
        assert_eq!(curve.max_splits(), 4);
        assert_eq!(s.cuts(&o, 2).len(), 2);
    }

    fn arb_object() -> impl Strategy<Value = RasterizedObject> {
        prop::collection::vec((0.0..0.9f64, 0.0..0.9f64), 1..24).prop_map(|pts| {
            let rects = pts
                .into_iter()
                .map(|(x, y)| sti_geom::Rect2::from_bounds(x, y, x + 0.05, y + 0.05))
                .collect();
            RasterizedObject::new(1, 0, rects)
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn hierarchy_is_consistent(o in arb_object()) {
            let h = MergeHierarchy::build(&o);
            let n = o.len();
            // Curve is checked non-increasing by the constructor.
            let _ = h.curve(n - 1);
            // Every k: cuts are k strictly increasing interior indices and
            // realize the reported volume.
            for k in (0..n).step_by(1 + n / 8) {
                let cuts = h.cuts(k);
                prop_assert_eq!(cuts.len(), k);
                prop_assert!(cuts.windows(2).all(|w| w[0] < w[1]));
                let realized = o.volume_for_cuts(&cuts);
                prop_assert!((realized - h.volume(k)).abs() < 1e-9);
            }
        }

        #[test]
        fn greedy_at_least_optimal(o in arb_object(), k in 0usize..6) {
            let h = MergeHierarchy::build(&o);
            let dp = DpTable::build(&o, k);
            let k = k.min(o.len() - 1);
            prop_assert!(h.volume(k) >= dp.volume(k) - 1e-9);
        }
    }
}
