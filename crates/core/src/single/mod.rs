//! Splitting a single spatiotemporal object (paper §III-A).
//!
//! Sub-problem A: *given an object and an upper limit on the number of
//! splits, find how to split the object so that the maximum possible gain
//! in empty space is obtained.*
//!
//! Two budgeted algorithms are provided behind the
//! [`SingleObjectSplitter`] trait — the optimal dynamic program
//! [`DpSplit`] and the greedy merge heuristic [`MergeSplit`] — plus the
//! unbudgeted [`piecewise`] baseline the paper compares against in §V.

pub mod dpsplit;
pub mod mergesplit;
pub mod piecewise;

pub use dpsplit::DpSplit;
pub use mergesplit::MergeSplit;
pub use piecewise::{piecewise_boxes, piecewise_cuts};

use crate::VolumeCurve;
use sti_trajectory::RasterizedObject;

/// A strategy for splitting one object along the time axis.
///
/// Implementations must produce *cuts*: strictly increasing interior
/// raster indices (`1..n`); `k` cuts yield `k + 1` boxes via
/// [`RasterizedObject::boxes_for_cuts`].
pub trait SingleObjectSplitter {
    /// Cut positions for at most `k` splits. Fewer cuts may be returned
    /// when the object cannot use the full budget (`k > n − 1`).
    fn cuts(&self, obj: &RasterizedObject, k: usize) -> Vec<usize>;

    /// The volume curve `vol[0..=max_splits]`, where `max_splits` is
    /// capped at `n − 1`.
    fn volume_curve(&self, obj: &RasterizedObject, max_splits: usize) -> VolumeCurve;
}

/// Selector for the two budgeted single-object algorithms, used by the
/// high-level facade and the benchmark harness.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SingleSplitAlgorithm {
    /// Optimal dynamic programming, O(n²k) (§III-A.1).
    DpSplit,
    /// Greedy bottom-up merging, O(n lg n) (§III-A.2).
    MergeSplit,
}

impl SingleSplitAlgorithm {
    /// Instantiate the corresponding splitter.
    pub fn splitter(self) -> Box<dyn SingleObjectSplitter> {
        match self {
            SingleSplitAlgorithm::DpSplit => Box::new(DpSplit),
            SingleSplitAlgorithm::MergeSplit => Box::new(MergeSplit),
        }
    }
}

impl std::fmt::Display for SingleSplitAlgorithm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SingleSplitAlgorithm::DpSplit => write!(f, "DPSplit"),
            SingleSplitAlgorithm::MergeSplit => write!(f, "MergeSplit"),
        }
    }
}

#[cfg(test)]
pub(crate) mod testutil {
    use sti_geom::{Point2, Rect2};
    use sti_trajectory::RasterizedObject;

    /// Object moving diagonally at constant speed — convex gain curve.
    pub fn diagonal_mover(n: usize) -> RasterizedObject {
        let rects = (0..n)
            .map(|i| Rect2::centered(Point2::new(0.1 * i as f64, 0.1 * i as f64), 0.1, 0.1))
            .collect();
        RasterizedObject::new(1, 0, rects)
    }

    /// Object that sits still, jumps far away, then jumps *back*: one
    /// split leaves a piece that still spans the whole excursion, so the
    /// second split is worth far more than the first (fig. 4 —
    /// monotonicity violated).
    pub fn two_jump(n_per_phase: usize) -> RasterizedObject {
        let mut rects = Vec::new();
        for phase in 0..3 {
            let base = if phase == 1 { 3.0 } else { 0.0 };
            for _ in 0..n_per_phase {
                rects.push(Rect2::from_bounds(base, 0.0, base + 0.1, 0.1));
            }
        }
        RasterizedObject::new(2, 0, rects)
    }

    /// Stationary object — every split is worthless.
    pub fn stationary(n: usize) -> RasterizedObject {
        RasterizedObject::new(3, 5, vec![Rect2::from_bounds(0.4, 0.4, 0.5, 0.5); n])
    }

    /// Brute-force optimal total volume for `k` splits by enumerating all
    /// cut sets (exponential; keep n small).
    pub fn brute_force_optimal(obj: &RasterizedObject, k: usize) -> f64 {
        fn rec(obj: &RasterizedObject, start: usize, k: usize, best: &mut f64, acc: f64) {
            let n = obj.len();
            if k == 0 {
                let total = acc + obj.volume_range(start, n);
                if total < *best {
                    *best = total;
                }
                return;
            }
            for c in start + 1..n {
                // Need k-1 further cuts to fit in (c, n): c + (k-1) <= n - 1
                if c + k > n {
                    break;
                }
                rec(obj, c, k - 1, best, acc + obj.volume_range(start, c));
            }
        }
        let k = k.min(obj.len() - 1);
        let mut best = f64::INFINITY;
        rec(obj, 0, k, &mut best, 0.0);
        best
    }
}
