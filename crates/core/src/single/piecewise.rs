//! The piecewise baseline: split wherever the movement "changes
//! characteristics".
//!
//! §V of the paper compares against "the simpler approach of splitting the
//! objects in a piecewise manner, i.e., at the points in time where the
//! polynomial representing the movement changes characteristics, which is
//! the same as representing the movements with piecewise linear functions
//! as in \[21\]". This splitter ignores any budget — it produced ~400% of
//! the object count in splits for the paper's datasets — and is shown in
//! figures 17/18 to *hurt* the R\*-Tree for snapshot queries.

use sti_geom::StBox;
use sti_trajectory::RasterizedObject;

/// Cut positions of the piecewise baseline: exactly the recorded movement
/// change points of the object.
pub fn piecewise_cuts(obj: &RasterizedObject) -> Vec<usize> {
    obj.boundaries().to_vec()
}

/// Space-time boxes of the piecewise representation (one box per motion
/// segment of the original trajectory).
pub fn piecewise_boxes(obj: &RasterizedObject) -> Vec<StBox> {
    obj.boxes_for_cuts(obj.boundaries())
}

#[cfg(test)]
mod tests {
    use super::*;
    use sti_geom::{Point2, TimeInterval};
    use sti_trajectory::{MotionSegment, Polynomial, Trajectory};

    fn zigzag() -> RasterizedObject {
        // Three linear segments with a direction change at t=5 and t=10.
        let s1 = MotionSegment::linear_between(
            TimeInterval::new(0, 5),
            Point2::new(0.0, 0.0),
            Point2::new(0.5, 0.0),
            0.05,
            0.05,
        );
        let s2 = MotionSegment::linear_between(
            TimeInterval::new(5, 10),
            Point2::new(0.5, 0.0),
            Point2::new(0.5, 0.5),
            0.05,
            0.05,
        );
        let s3 = MotionSegment::linear_between(
            TimeInterval::new(10, 15),
            Point2::new(0.5, 0.5),
            Point2::new(0.0, 0.5),
            0.05,
            0.05,
        );
        Trajectory::new(1, vec![s1, s2, s3]).rasterize()
    }

    #[test]
    fn cuts_are_segment_boundaries() {
        let o = zigzag();
        assert_eq!(piecewise_cuts(&o), vec![5, 10]);
    }

    #[test]
    fn boxes_cover_lifetime_consecutively() {
        let o = zigzag();
        let boxes = piecewise_boxes(&o);
        assert_eq!(boxes.len(), 3);
        assert_eq!(boxes[0].lifetime, TimeInterval::new(0, 5));
        assert_eq!(boxes[1].lifetime, TimeInterval::new(5, 10));
        assert_eq!(boxes[2].lifetime, TimeInterval::new(10, 15));
        // Each piece of a straight-line segment is much tighter than the
        // single-MBR representation.
        let total: f64 = boxes.iter().map(|b| b.volume()).sum();
        assert!(total < o.unsplit_volume());
    }

    #[test]
    fn object_without_changes_yields_single_box() {
        let seg = MotionSegment::moving_point(
            TimeInterval::new(3, 9),
            Polynomial::linear(0.1, 0.05),
            Polynomial::constant(0.5),
        );
        let o = Trajectory::new(2, vec![seg]).rasterize();
        let boxes = piecewise_boxes(&o);
        assert_eq!(boxes.len(), 1);
        assert_eq!(boxes[0].lifetime, TimeInterval::new(3, 9));
    }
}
