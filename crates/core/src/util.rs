//! Small internal utilities shared by the algorithms.

/// An `f64` with total ordering, usable as a `BinaryHeap` key.
///
/// The splitting algorithms never produce NaN (volumes are products and
/// sums of finite coordinates), but `total_cmp` keeps the ordering a
/// lawful `Ord` regardless.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct OrdF64(pub f64);

impl Eq for OrdF64 {}

impl PartialOrd for OrdF64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrdF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BinaryHeap;

    #[test]
    fn heap_pops_max_first() {
        let mut h = BinaryHeap::new();
        for v in [0.5, -1.0, 3.25, 2.0] {
            h.push(OrdF64(v));
        }
        assert_eq!(h.pop(), Some(OrdF64(3.25)));
        assert_eq!(h.pop(), Some(OrdF64(2.0)));
    }

    #[test]
    fn reverse_gives_min_heap() {
        use std::cmp::Reverse;
        let mut h = BinaryHeap::new();
        for v in [0.5, -1.0, 3.25] {
            h.push(Reverse(OrdF64(v)));
        }
        assert_eq!(h.pop(), Some(Reverse(OrdF64(-1.0))));
    }
}
