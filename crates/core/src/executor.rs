//! Parallel query execution over one shared index.
//!
//! Queries take `&self` all the way down (tree → page store → sharded
//! buffer), so a single [`SpatioTemporalIndex`] can serve many reader
//! threads at once: the only coordination is the buffer pool's lock
//! shards. [`QueryExecutor`] packages that capability: it fans a batch
//! of [`QueryRequest`]s across [`map_chunked`] workers and reassembles
//! the per-query outcomes **in request order**, so for every
//! [`Parallelism`] setting the output is byte-identical to running the
//! batch sequentially (the property `tests/concurrent_queries.rs` pins).
//!
//! Per-query [`QueryStats`] are attributed through thread-local
//! [`sti_storage::ReadProbe`]s rather than global counter snapshots, so
//! summing the outcomes of a concurrent batch still reconciles exactly
//! with the store's global [`sti_storage::IoStats`] delta.

use crate::index::SpatioTemporalIndex;
use crate::parallel::{map_chunked, Parallelism};
use sti_geom::{Rect2, TimeInterval};
use sti_obs::QueryStats;
use sti_storage::StorageError;

/// One topological query in a batch: ids of objects intersecting `area`
/// at any instant of `range`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueryRequest {
    /// Spatial window.
    pub area: Rect2,
    /// Temporal window (must be non-empty, like
    /// [`SpatioTemporalIndex::query`]).
    pub range: TimeInterval,
}

impl QueryRequest {
    /// A snapshot request: the single instant `t`.
    pub fn snapshot(area: Rect2, t: sti_geom::Time) -> Self {
        Self {
            area,
            range: TimeInterval::new(t, t + 1),
        }
    }
}

/// The outcome of one query in a batch: the de-duplicated, sorted result
/// ids plus the per-query I/O attribution, or the typed storage error
/// that aborted it. Errors are per-query — one failing read never
/// poisons its batch siblings.
pub type QueryOutcome = Result<(Vec<u64>, QueryStats), StorageError>;

/// Fans query batches across worker threads with deterministic output.
///
/// Stateless apart from its [`Parallelism`] setting; cheap to copy.
/// Results always come back in request order, so changing the worker
/// count can never change what a caller observes (only how fast).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueryExecutor {
    parallelism: Parallelism,
}

impl QueryExecutor {
    /// An executor with the given worker setting.
    pub fn new(parallelism: Parallelism) -> Self {
        Self { parallelism }
    }

    /// The single-threaded baseline every other setting must match.
    pub fn sequential() -> Self {
        Self::new(Parallelism::Sequential)
    }

    /// The worker count this executor resolves to on this machine.
    pub fn workers(&self) -> usize {
        self.parallelism.workers()
    }

    /// Run every request against one shared index, returning one
    /// [`QueryOutcome`] per request, in request order.
    ///
    /// # Panics
    /// If a request's `range` is empty (the same caller contract as
    /// [`SpatioTemporalIndex::query`]); worker panics propagate to the
    /// caller after all workers have been joined.
    pub fn run(&self, index: &SpatioTemporalIndex, requests: &[QueryRequest]) -> Vec<QueryOutcome> {
        self.run_with(requests, |req| {
            index.query_with_stats(&req.area, &req.range)
        })
    }

    /// Fan any per-item query closure across the executor's workers,
    /// collecting results in input order. The generalization behind
    /// [`QueryExecutor::run`]: benches use it to drive raw trees or the
    /// hybrid index with the same scheduling.
    pub fn run_with<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        map_chunked(items, self.parallelism, |_, item| f(item))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::{IndexBackend, IndexConfig};
    use crate::plan::unsplit_records;
    use sti_geom::Point2;
    use sti_trajectory::RasterizedObject;

    fn build(backend: IndexBackend) -> SpatioTemporalIndex {
        let objects: Vec<RasterizedObject> = (0..40u64)
            .map(|id| {
                let start = ((id * 17) % 600) as u32;
                let rects = (0..30)
                    .map(|i| {
                        let x = 0.05 + 0.85 * ((id as f64 / 40.0) + 0.01 * f64::from(i)).fract();
                        Rect2::centered(Point2::new(x, 0.5), 0.03, 0.03)
                    })
                    .collect();
                RasterizedObject::new(id, start, rects)
            })
            .collect();
        let records = unsplit_records(&objects);
        SpatioTemporalIndex::build(&records, &IndexConfig::paper(backend)).unwrap()
    }

    fn requests() -> Vec<QueryRequest> {
        (0..25u32)
            .map(|i| {
                let x = 0.1 + 0.03 * f64::from(i);
                let t = 20 * i;
                QueryRequest {
                    area: Rect2::from_bounds(x.min(0.8), 0.3, (x + 0.15).min(0.99), 0.7),
                    range: TimeInterval::new(t, t + 1 + 10 * (i % 4)),
                }
            })
            .collect()
    }

    #[test]
    fn parallel_outcomes_match_sequential_exactly() {
        for backend in [IndexBackend::PprTree, IndexBackend::RStar] {
            let index = build(backend);
            let reqs = requests();
            let baseline = QueryExecutor::sequential().run(&index, &reqs);
            for workers in [2usize, 3, 8] {
                let got = QueryExecutor::new(Parallelism::fixed(workers)).run(&index, &reqs);
                assert_eq!(got.len(), baseline.len());
                for (g, b) in got.iter().zip(&baseline) {
                    let (g_ids, _) = g.as_ref().unwrap();
                    let (b_ids, _) = b.as_ref().unwrap();
                    assert_eq!(
                        g_ids, b_ids,
                        "{backend}: results must not depend on workers"
                    );
                }
            }
        }
    }

    #[test]
    fn outcome_stats_sum_to_the_global_io_delta() {
        for backend in [IndexBackend::PprTree, IndexBackend::RStar] {
            let index = build(backend);
            let reqs = requests();
            let before = index.io_stats();
            let outcomes = QueryExecutor::new(Parallelism::fixed(4)).run(&index, &reqs);
            let after = index.io_stats();
            let (mut reads, mut hits) = (0u64, 0u64);
            for o in &outcomes {
                let (_, stats) = o.as_ref().unwrap();
                reads += stats.disk_reads;
                hits += stats.buffer_hits;
            }
            assert_eq!(reads, after.reads - before.reads, "{backend}: disk reads");
            assert_eq!(
                hits,
                after.buffer_hits - before.buffer_hits,
                "{backend}: buffer hits"
            );
        }
    }

    #[test]
    fn run_with_preserves_input_order() {
        let exec = QueryExecutor::new(Parallelism::fixed(5));
        let items: Vec<u32> = (0..57).collect();
        let got = exec.run_with(&items, |&x| x * 2);
        assert_eq!(got, items.iter().map(|&x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn snapshot_constructor_is_a_single_instant() {
        let r = QueryRequest::snapshot(Rect2::from_bounds(0.0, 0.0, 1.0, 1.0), 42);
        assert_eq!(r.range, TimeInterval::new(42, 43));
        assert_eq!(r.range.len(), 1);
    }
}
