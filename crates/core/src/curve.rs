//! Volume curves: total representation volume as a function of the number
//! of splits applied to one object.

/// `vol[s]` = total volume of an object's representation when it is split
/// `s` times (into `s + 1` space-time boxes) by some single-object
/// splitter.
///
/// Every split-distribution algorithm consumes objects through this view:
/// the optimal DP needs the whole prefix of the curve, while the greedy
/// variants need marginal gains `vol[s] − vol[s+1]`.
///
/// ```
/// use sti_core::VolumeCurve;
/// let curve = VolumeCurve::new(vec![10.0, 6.0, 5.5]);
/// assert_eq!(curve.max_splits(), 2);
/// assert_eq!(curve.gain(1), 4.0);          // first split reclaims 4
/// assert_eq!(curve.volume(99), 5.5);       // clamped past the curve
/// assert!(curve.has_monotone_gains());     // 4 ≥ 0.5: Claim 1 holds
/// ```
///
/// Invariants enforced at construction:
/// * non-empty (at least the unsplit volume `vol[0]`),
/// * non-increasing: an extra split never increases an *optimal* volume,
///   and the [`MergeSplit`](crate::single::MergeSplit) hierarchy is nested
///   so its curve is non-increasing too (each merge only adds volume).
#[derive(Debug, Clone, PartialEq)]
pub struct VolumeCurve {
    vols: Vec<f64>,
}

impl VolumeCurve {
    /// Wrap a precomputed curve.
    ///
    /// # Panics
    /// If empty, or increasing beyond float tolerance.
    pub fn new(vols: Vec<f64>) -> Self {
        assert!(!vols.is_empty(), "volume curve must contain vol[0]");
        for w in vols.windows(2) {
            assert!(
                w[1] <= w[0] + 1e-9 * (1.0 + w[0].abs()),
                "volume curve must be non-increasing: {} -> {}",
                w[0],
                w[1]
            );
        }
        Self { vols }
    }

    /// Largest split count the curve knows about.
    pub fn max_splits(&self) -> usize {
        self.vols.len() - 1
    }

    /// Total volume with `s` splits. For `s` beyond the curve the last
    /// known value is returned (no further gain is assumed).
    pub fn volume(&self, s: usize) -> f64 {
        self.vols[s.min(self.vols.len() - 1)]
    }

    /// Volume gained by the `s`-th split (`s ≥ 1`): `vol[s−1] − vol[s]`.
    /// Zero beyond the curve.
    pub fn gain(&self, s: usize) -> f64 {
        assert!(s >= 1, "gain is defined for the 1st split onward");
        (self.volume(s - 1) - self.volume(s)).max(0.0)
    }

    /// Volume gained by going from `from` splits to `to` splits
    /// (`to ≥ from`). The look-ahead greedy uses `gain_between(s, s + 2)`.
    pub fn gain_between(&self, from: usize, to: usize) -> f64 {
        assert!(to >= from);
        (self.volume(from) - self.volume(to)).max(0.0)
    }

    /// The raw curve values.
    pub fn as_slice(&self) -> &[f64] {
        &self.vols
    }

    /// True when the monotonicity property of Claim 1 holds: marginal
    /// gains are non-increasing (concave curve). For *general* motion this
    /// frequently fails — exactly the situation LAGreedy exists for.
    pub fn has_monotone_gains(&self) -> bool {
        (2..self.vols.len()).all(|s| self.gain(s) <= self.gain(s - 1) + 1e-9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basics() {
        let c = VolumeCurve::new(vec![10.0, 6.0, 5.0, 5.0]);
        assert_eq!(c.max_splits(), 3);
        assert_eq!(c.volume(0), 10.0);
        assert_eq!(c.volume(2), 5.0);
        assert_eq!(c.volume(99), 5.0); // clamped
        assert_eq!(c.gain(1), 4.0);
        assert_eq!(c.gain(3), 0.0);
        assert_eq!(c.gain(50), 0.0);
        assert_eq!(c.gain_between(0, 2), 5.0);
    }

    #[test]
    #[should_panic(expected = "non-increasing")]
    fn rejects_increasing() {
        let _ = VolumeCurve::new(vec![5.0, 6.0]);
    }

    #[test]
    #[should_panic(expected = "must contain")]
    fn rejects_empty() {
        let _ = VolumeCurve::new(vec![]);
    }

    #[test]
    fn monotone_gain_detection() {
        // gains 4, 1 — monotone
        assert!(VolumeCurve::new(vec![10.0, 6.0, 5.0]).has_monotone_gains());
        // gains 1, 4 — the fig. 4 situation: second split much better
        assert!(!VolumeCurve::new(vec![10.0, 9.0, 5.0]).has_monotone_gains());
    }

    #[test]
    fn tolerates_float_noise() {
        let c = VolumeCurve::new(vec![1.0, 1.0 + 1e-12]);
        assert_eq!(c.gain(1), 0.0); // clamped to zero, not negative
    }
}
