//! End-to-end properties of the single-writer/multi-reader ingest
//! pipeline ([`sti_core::IngestPipeline`]):
//!
//! * **equivalence** — for any seeded op stream and any commit cadence,
//!   the final published version answers queries exactly like the
//!   synchronous [`OnlineIndexer`] fed the same stream (and never drops
//!   a raw observation: no false negatives vs a brute-force shadow),
//! * **conformance** — every [`CommitReport::trace`] replays through
//!   the pure [`transition`] state machine (only documented edges),
//! * **immutability** — a reader holding a published version across
//!   concurrent commits sees byte-identical answers forever,
//! * **fault tolerance** — seeded non-transient fault storms mid-commit
//!   roll the batch back to the exact published version (same `Arc`,
//!   same stamp), and retried commits still converge to the fault-free
//!   answer.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use sti_core::{
    transition, BatchEvent, BatchState, CommitReport, IngestOp, IngestPipeline, OnlineIndexer,
    OnlineSplitConfig, VersionStamp,
};
use sti_geom::{Rect2, Time, TimeInterval};
use sti_pprtree::{PprParams, PprTree};
use sti_storage::{FaultKind, FaultPlan, FaultyBackend, ScheduledFault};

fn params() -> PprParams {
    PprParams {
        max_entries: 10,
        buffer_pages: 8,
        ..PprParams::default()
    }
}

fn config() -> OnlineSplitConfig {
    OnlineSplitConfig {
        min_piece_instants: 2,
        max_piece_instants: Some(8),
        ..OnlineSplitConfig::default()
    }
}

/// A seeded stream of well-formed operations: objects spawn, observe a
/// gap-free position every instant they are alive (random walk), and
/// finish; every object is finished by the end. Some objects go dormant
/// first — they stop observing but stay unfinished, so their eventual
/// finish lands *behind* the stream clock (a straggler, legal because a
/// finish validates against the object's own last observation). The
/// stream always keeps at least one active object so the final instant
/// is observed and the sealed watermark reaches `horizon`. Also returns
/// the raw observations for the brute-force shadow.
fn gen_stream(
    seed: u64,
    max_objects: usize,
    horizon: Time,
) -> (Vec<IngestOp>, Vec<(u64, Rect2, Time)>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut ops = Vec::new();
    let mut raw = Vec::new();
    // (id, x, y, last observed instant, dormant)
    let mut alive: Vec<(u64, f64, f64, Time, bool)> = Vec::new();
    let mut next_id = 0u64;
    for t in 0..horizon {
        // Spawn; force one active object into existence when none is
        // (the invariants below then keep at least one active forever).
        while alive.len() < max_objects && (alive.iter().all(|o| o.4) || rng.random::<f64>() < 0.4)
        {
            alive.push((
                next_id,
                rng.random::<f64>() * 0.9,
                rng.random::<f64>() * 0.9,
                t,
                false,
            ));
            next_id += 1;
        }
        for obj in &mut alive {
            if obj.4 {
                continue;
            }
            obj.1 = (obj.1 + (rng.random::<f64>() - 0.5) * 0.08).clamp(0.0, 0.9);
            obj.2 = (obj.2 + (rng.random::<f64>() - 0.5) * 0.08).clamp(0.0, 0.9);
            let rect = Rect2::from_bounds(obj.1, obj.2, obj.1 + 0.05, obj.2 + 0.05);
            ops.push(IngestOp::Update { id: obj.0, rect, t });
            raw.push((obj.0, rect, t));
            obj.3 = t;
        }
        let mut active = alive.iter().filter(|o| !o.4).count();
        for obj in &mut alive {
            if !obj.4 && active > 1 && rng.random::<f64>() < 0.04 {
                obj.4 = true; // goes silent; finished later as a straggler
                active -= 1;
            }
        }
        let mut i = 0;
        while i < alive.len() {
            let is_active = !alive[i].4;
            // The last active object never finishes mid-stream: the
            // final instant must be observed for the sealed watermark
            // to reach `horizon`.
            let may_finish = !is_active || active > 1;
            if may_finish && rng.random::<f64>() < 0.05 {
                if is_active {
                    active -= 1;
                }
                let (id, _, _, last, _) = alive.swap_remove(i);
                ops.push(IngestOp::Finish { id, end: last + 1 });
            } else {
                i += 1;
            }
        }
    }
    for (id, _, _, last, _) in alive {
        ops.push(IngestOp::Finish { id, end: last + 1 });
    }
    (ops, raw)
}

/// The same stream through the synchronous indexer — the trusted shadow
/// the pipeline must agree with.
fn shadow_tree(ops: &[IngestOp], horizon: Time) -> PprTree {
    let mut idx = OnlineIndexer::new(config(), params());
    for op in ops {
        match *op {
            IngestOp::Update { id, rect, t } => idx.update(id, rect, t).expect("clean stream"),
            IngestOp::Finish { id, end } => idx.finish(id, end).expect("clean stream"),
        }
    }
    idx.seal(horizon).expect("in-memory seal cannot fault")
}

/// Sorted, deduplicated interval answer; retries because the fault
/// suites query trees on backends whose scheduled faults may fire
/// during the read itself (each fault fires once, so retrying always
/// terminates).
fn interval_ids(tree: &PprTree, area: &Rect2, range: &TimeInterval) -> Vec<u64> {
    for _ in 0..64 {
        let mut out = Vec::new();
        if tree.query_interval(area, range, &mut out).is_ok() {
            out.sort_unstable();
            out.dedup();
            return out;
        }
    }
    panic!("query faulted 64 times in a row; fault plans are finite");
}

fn snapshot_ids(tree: &PprTree, area: &Rect2, t: Time) -> Vec<u64> {
    for _ in 0..64 {
        let mut out = Vec::new();
        if tree.query_snapshot(area, t, &mut out).is_ok() {
            out.sort_unstable();
            out.dedup();
            return out;
        }
    }
    panic!("query faulted 64 times in a row; fault plans are finite");
}

const ALL_EVENTS: [BatchEvent; 5] = [
    BatchEvent::Drain,
    BatchEvent::Begin,
    BatchEvent::Applied,
    BatchEvent::Fail,
    BatchEvent::Publish,
];

/// Every hop in the recorded trace must be an edge of the pure state
/// machine, starting at `Queued` and ending where the report says.
fn assert_trace_conforms(report: &CommitReport) {
    assert_eq!(report.trace.first(), Some(&BatchState::Queued));
    assert_eq!(report.trace.last(), Some(&report.state));
    for w in report.trace.windows(2) {
        assert!(
            ALL_EVENTS.iter().any(|&e| transition(w[0], e) == Ok(w[1])),
            "trace takes an edge the state machine does not have: {} -> {}",
            w[0],
            w[1],
        );
    }
}

/// Probe rectangles that slice the unit square differently.
fn probe_areas() -> Vec<Rect2> {
    vec![
        Rect2::UNIT,
        Rect2::from_bounds(0.0, 0.0, 0.5, 0.5),
        Rect2::from_bounds(0.3, 0.2, 0.8, 0.9),
        Rect2::from_bounds(0.6, 0.6, 0.95, 0.95),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// For any stream and any commit cadence, the sealed pipeline's
    /// published version answers interval and snapshot queries exactly
    /// like the synchronous indexer — and never misses a raw
    /// observation (piece MBRs cover their instants, so the brute-force
    /// shadow is a lower bound on every snapshot answer).
    #[test]
    fn sealed_pipeline_matches_synchronous_indexer(
        seed in any::<u64>(),
        commit_every in 1usize..25,
    ) {
        let horizon: Time = 50;
        let (ops, raw) = gen_stream(seed, 6, horizon);
        let shadow = shadow_tree(&ops, horizon);

        let mut p = IngestPipeline::new(config(), params());
        let mut last_stamp = VersionStamp::INITIAL;
        for (i, op) in ops.iter().enumerate() {
            p.enqueue(*op);
            if i % commit_every == commit_every - 1 {
                let report = p.commit();
                prop_assert!(report.rejected.is_empty(), "clean stream: {:?}", report.rejected);
                prop_assert!(report.error.is_none());
                assert_trace_conforms(&report);
                prop_assert!(report.stamp >= last_stamp, "stamps regress");
                last_stamp = report.stamp;
            }
        }
        let report = p.seal();
        prop_assert_eq!(report.state, BatchState::Published);
        prop_assert!(!report.stalled);
        prop_assert_eq!(p.pending_events(), 0);
        assert_trace_conforms(&report);
        prop_assert_eq!(p.rollbacks(), 0);

        let v = p.published();
        prop_assert_eq!(v.stamp().watermark, horizon);
        v.tree().validate();

        for area in probe_areas() {
            for start in (0..horizon).step_by(7) {
                let range = TimeInterval::new(start, start + 1 + (start % 11));
                prop_assert_eq!(
                    interval_ids(v.tree(), &area, &range),
                    interval_ids(&shadow, &area, &range),
                    "interval {} / area {:?} disagrees with the shadow", range, area,
                );
            }
            for t in (0..horizon).step_by(9) {
                let got = snapshot_ids(v.tree(), &area, t);
                prop_assert_eq!(
                    got.clone(),
                    snapshot_ids(&shadow, &area, t),
                    "snapshot t={} / area {:?} disagrees with the shadow", t, area,
                );
                // No false negatives vs the raw observations.
                for (id, rect, rt) in raw.iter().filter(|&&(_, r, rt)| rt == t && r.intersects(&area)) {
                    prop_assert!(
                        got.binary_search(id).is_ok(),
                        "object {} observed at t={} in {:?} missing from the snapshot", id, rt, rect,
                    );
                }
            }
        }
    }

    /// Seeded non-transient fault storms on both tree backends: every
    /// rolled-back commit leaves the published slot untouched (the very
    /// same `Arc`, no stamp movement), and retrying converges to the
    /// fault-free shadow's answers.
    #[test]
    fn fault_storm_mid_commit_rolls_back_to_published_version(seed in any::<u64>()) {
        let horizon: Time = 40;
        let (ops, _) = gen_stream(seed, 5, horizon);
        let shadow = shadow_tree(&ops, horizon);

        let mut rng = StdRng::seed_from_u64(seed ^ 0x5717_feed);
        let mut plan = |salt: u64| {
            let _ = salt;
            FaultPlan::new(
                (0..5)
                    .map(|_| ScheduledFault {
                        at_op: rng.random_range(0..800),
                        kind: FaultKind::Fail { transient: false },
                    })
                    .collect(),
            )
        };
        let mut p = IngestPipeline::with_backends(
            config(),
            params(),
            Box::new(FaultyBackend::new_mem(plan(0))),
            Box::new(FaultyBackend::new_mem(plan(1))),
        );

        for (i, op) in ops.iter().enumerate() {
            p.enqueue(*op);
            if i % 6 == 5 {
                let before = p.published();
                let report = p.commit();
                prop_assert!(report.rejected.is_empty());
                assert_trace_conforms(&report);
                match report.state {
                    BatchState::Published => {
                        prop_assert!(report.stamp.version == before.stamp().version + 1);
                    }
                    BatchState::RolledBack => {
                        prop_assert!(report.error.is_some(), "rollback must carry the fault");
                        let after = p.published();
                        prop_assert!(
                            std::sync::Arc::ptr_eq(&before, &after),
                            "rollback must leave the published slot untouched",
                        );
                        prop_assert_eq!(after.stamp(), before.stamp());
                    }
                    BatchState::Queued => {} // no-op commit
                    other => prop_assert!(false, "commit cannot end in {}", other),
                }
            }
        }

        // Seal gives up after two consecutive rollbacks; the plans are
        // finite, so plain retries always finish the job.
        let mut report = p.seal();
        let mut retries = 0;
        while p.pending_events() > 0 {
            report = p.commit();
            retries += 1;
            prop_assert!(retries < 64, "fault plans are finite; commits must converge");
        }
        prop_assert_eq!(report.state, BatchState::Published);

        let v = p.published();
        prop_assert_eq!(v.stamp().watermark, horizon);
        for area in probe_areas() {
            for start in (0..horizon).step_by(9) {
                let range = TimeInterval::new(start, start + 5);
                prop_assert_eq!(
                    interval_ids(v.tree(), &area, &range),
                    interval_ids(&shadow, &area, &range),
                    "storm-surviving index disagrees with the fault-free shadow at {}", range,
                );
            }
        }
    }
}

/// Readers pinning a published version while the writer races commits:
/// the pinned version's snapshot answers are byte-identical on every
/// re-query (same frozen tree, same traversal — snapshot output order
/// is the deterministic stack order), interval answers are set-equal
/// (their output order is a dedup set's, by contract unordered), and
/// the stamps each reader observes never move backwards.
#[test]
fn pinned_versions_stay_byte_identical_while_commits_race() {
    use std::sync::atomic::{AtomicBool, Ordering};

    let (ops, _) = gen_stream(0x9e37_79b9, 8, 60);
    let mut p = IngestPipeline::new(config(), params());
    let reader = p.reader();
    let stop = AtomicBool::new(false);
    let area = Rect2::from_bounds(0.1, 0.1, 0.9, 0.9);
    let probe = TimeInterval::new(0, 30);

    std::thread::scope(|s| {
        for _ in 0..3 {
            let r = reader.clone();
            let stop = &stop;
            let (area, probe) = (area, probe);
            s.spawn(move || {
                let mut last_version = 0u64;
                while !stop.load(Ordering::Acquire) {
                    let v = r.current();
                    assert!(v.stamp().version >= last_version, "stamps moved backwards");
                    last_version = v.stamp().version;
                    let mut pinned_snap = Vec::new();
                    v.tree().query_snapshot(&area, 5, &mut pinned_snap).unwrap();
                    let pinned_ival = interval_ids(v.tree(), &area, &probe);
                    for _ in 0..4 {
                        let mut again = Vec::new();
                        v.tree().query_snapshot(&area, 5, &mut again).unwrap();
                        assert_eq!(pinned_snap, again, "a pinned snapshot answer changed bytes");
                        assert_eq!(
                            pinned_ival,
                            interval_ids(v.tree(), &area, &probe),
                            "a pinned interval answer changed under a reader",
                        );
                    }
                }
            });
        }

        for (i, op) in ops.iter().enumerate() {
            p.enqueue(*op);
            if i % 10 == 9 {
                let report = p.commit();
                assert!(report.rejected.is_empty());
                assert!(report.error.is_none());
            }
        }
        let report = p.seal();
        assert_eq!(report.state, BatchState::Published);
        stop.store(true, Ordering::Release);
    });

    // After the race: the final version agrees with the shadow.
    let shadow = shadow_tree(&ops, 60);
    let v = p.published();
    v.tree().validate();
    assert_eq!(
        interval_ids(v.tree(), &Rect2::UNIT, &TimeInterval::new(0, 60)),
        interval_ids(&shadow, &Rect2::UNIT, &TimeInterval::new(0, 60)),
    );
}

/// A reader that pins one version across *multiple* later commits never
/// deadlocks the writer: reclaim falls back to deep-copying the retired
/// tree, and the pinned version keeps answering identically.
#[test]
fn reader_pinning_a_version_across_many_commits_never_blocks_the_writer() {
    let (ops, _) = gen_stream(42, 6, 80);
    let mut p = IngestPipeline::new(config(), params());

    let mut pinned: Option<(std::sync::Arc<sti_core::PublishedIndex>, Vec<u64>)> = None;
    let probe = TimeInterval::new(0, 10);
    for (i, op) in ops.iter().enumerate() {
        p.enqueue(*op);
        if i % 8 == 7 {
            let report = p.commit();
            assert!(report.error.is_none());
            if pinned.is_none() && report.stamp.version >= 2 {
                let v = p.published();
                let answer = interval_ids(v.tree(), &Rect2::UNIT, &probe);
                pinned = Some((v, answer));
            }
        }
    }
    let report = p.seal();
    assert_eq!(report.state, BatchState::Published);

    let (v, answer) = pinned.expect("80 instants publish at least two versions");
    assert!(
        p.published().stamp().version > v.stamp().version + 1,
        "the pinned version must have been retired several commits ago",
    );
    assert_eq!(
        interval_ids(v.tree(), &Rect2::UNIT, &probe),
        answer,
        "a version pinned across many commits changed its answers",
    );
}
