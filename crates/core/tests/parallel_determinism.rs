//! Property tests for the data-parallel split planner: for ANY dataset
//! and ANY worker count, `SplitPlan::build_with` must produce output
//! byte-identical to the sequential path — same allocation vector, same
//! total volume (compared via `f64::to_bits`), same emitted records.
//!
//! Determinism is the contract that makes the `--threads` knob safe to
//! flip in experiments: figures regenerated in parallel are the *same*
//! figures, not statistically-similar ones.

use proptest::prelude::*;
use sti_core::{DistributionAlgorithm, Parallelism, SingleSplitAlgorithm, SplitBudget, SplitPlan};
use sti_geom::Rect2;
use sti_trajectory::RasterizedObject;

/// Worker counts the issue calls out explicitly (1, 2, 8), plus `Auto`.
fn parallelisms() -> Vec<Parallelism> {
    vec![
        Parallelism::fixed(1),
        Parallelism::fixed(2),
        Parallelism::fixed(8),
        Parallelism::Auto,
    ]
}

/// An arbitrary rasterized object: a random walk of small boxes so
/// volume curves are non-trivial (moving objects benefit from splits).
fn arb_object(id: u64) -> impl Strategy<Value = RasterizedObject> {
    (
        0u32..200,
        0.05f64..0.9,
        0.05f64..0.9,
        prop::collection::vec((-0.04f64..0.04, -0.04f64..0.04, 0.005f64..0.05), 1..24),
    )
        .prop_map(move |(start, x0, y0, steps)| {
            let (mut x, mut y) = (x0, y0);
            let rects: Vec<Rect2> = steps
                .into_iter()
                .map(|(dx, dy, s)| {
                    x = (x + dx).clamp(0.0, 0.95);
                    y = (y + dy).clamp(0.0, 0.95);
                    Rect2::from_bounds(x, y, x + s, y + s)
                })
                .collect();
            RasterizedObject::new(id, start, rects)
        })
}

fn arb_dataset(max_objects: usize) -> impl Strategy<Value = Vec<RasterizedObject>> {
    prop::collection::vec(0u64..1, 0..max_objects).prop_flat_map(|slots| {
        slots
            .into_iter()
            .enumerate()
            .map(|(i, _)| arb_object(i as u64))
            .collect::<Vec<_>>()
    })
}

/// Assert every observable of two plans matches bit-for-bit.
fn assert_plans_identical(
    objects: &[RasterizedObject],
    seq: &SplitPlan,
    par: &SplitPlan,
    label: &str,
) {
    assert_eq!(
        seq.allocation().splits,
        par.allocation().splits,
        "allocation vector diverged ({label})"
    );
    assert_eq!(
        seq.total_volume().to_bits(),
        par.total_volume().to_bits(),
        "total volume diverged ({label})"
    );
    assert_eq!(
        seq.records(objects),
        par.records(objects),
        "emitted records diverged ({label})"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// MergeSplit + LAGreedy (the paper's practical pipeline) is
    /// parallelism-invariant on arbitrary datasets.
    #[test]
    fn merge_split_lagreedy_is_parallelism_invariant(objects in arb_dataset(10)) {
        let seq = SplitPlan::build(
            &objects,
            SingleSplitAlgorithm::MergeSplit,
            DistributionAlgorithm::LaGreedy,
            SplitBudget::Percent(150.0),
            None,
        );
        for p in parallelisms() {
            let par = SplitPlan::build_with(
                &objects,
                SingleSplitAlgorithm::MergeSplit,
                DistributionAlgorithm::LaGreedy,
                SplitBudget::Percent(150.0),
                None,
                p,
            );
            assert_plans_identical(&objects, &seq, &par, &format!("{p}"));
        }
    }

    /// The exact pipeline (DPSplit + Optimal) too, on smaller inputs —
    /// it is the most numerically delicate path.
    #[test]
    fn dp_split_optimal_is_parallelism_invariant(objects in arb_dataset(6)) {
        let seq = SplitPlan::build(
            &objects,
            SingleSplitAlgorithm::DpSplit,
            DistributionAlgorithm::Optimal,
            SplitBudget::Count(2 * objects.len()),
            Some(4),
        );
        for p in [Parallelism::fixed(2), Parallelism::fixed(8)] {
            let par = SplitPlan::build_with(
                &objects,
                SingleSplitAlgorithm::DpSplit,
                DistributionAlgorithm::Optimal,
                SplitBudget::Count(2 * objects.len()),
                Some(4),
                p,
            );
            assert_plans_identical(&objects, &seq, &par, &format!("{p}"));
        }
    }
}

/// The issue's named edge cases: zero objects and one object must work
/// (and agree) at every worker count, including more workers than work.
#[test]
fn zero_and_one_object_edge_cases() {
    let empty: Vec<RasterizedObject> = Vec::new();
    let one = vec![RasterizedObject::new(
        0,
        3,
        vec![
            Rect2::from_bounds(0.1, 0.1, 0.2, 0.2),
            Rect2::from_bounds(0.5, 0.5, 0.6, 0.6),
            Rect2::from_bounds(0.8, 0.1, 0.9, 0.2),
        ],
    )];
    for objects in [&empty, &one] {
        let seq = SplitPlan::build(
            objects,
            SingleSplitAlgorithm::MergeSplit,
            DistributionAlgorithm::LaGreedy,
            SplitBudget::Count(2),
            None,
        );
        for p in [
            Parallelism::fixed(1),
            Parallelism::fixed(2),
            Parallelism::fixed(8),
            Parallelism::Auto,
        ] {
            let par = SplitPlan::build_with(
                objects,
                SingleSplitAlgorithm::MergeSplit,
                DistributionAlgorithm::LaGreedy,
                SplitBudget::Count(2),
                None,
                p,
            );
            assert_plans_identical(objects, &seq, &par, &format!("n={} {p}", objects.len()));
        }
    }
    // Sanity: the one-object plan actually emits records.
    let plan = SplitPlan::build(
        &one,
        SingleSplitAlgorithm::MergeSplit,
        DistributionAlgorithm::LaGreedy,
        SplitBudget::Count(2),
        None,
    );
    assert_eq!(plan.records(&one).len(), 1 + plan.allocation().splits[0]);
}
