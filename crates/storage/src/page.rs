//! Fixed-size disk pages.

/// Size of every simulated disk page in bytes.
///
/// 4 KiB comfortably holds a 50-entry tree node (the paper's page
/// capacity): a PPR-Tree entry is 57 bytes, so 50 entries plus the node
/// header is under 3 KiB.
pub const PAGE_SIZE: usize = 4096;

/// Identifier of a page within a [`crate::PageStore`]; also used directly
/// as the child pointer type in tree nodes.
pub type PageId = u32;

/// One fixed-size disk page.
///
/// Pages are heap-allocated so a large store does not blow the stack, and
/// cloning is explicit — the buffer pool hands out references.
#[derive(Clone, PartialEq, Eq)]
pub struct Page {
    data: Box<[u8; PAGE_SIZE]>,
}

impl Page {
    /// A zero-filled page.
    pub fn zeroed() -> Self {
        Self {
            data: Box::new([0u8; PAGE_SIZE]),
        }
    }

    /// Read access to the raw bytes.
    pub fn bytes(&self) -> &[u8; PAGE_SIZE] {
        &self.data
    }

    /// Write access to the raw bytes.
    pub fn bytes_mut(&mut self) -> &mut [u8; PAGE_SIZE] {
        &mut self.data
    }

    /// Overwrite the page content from a slice of at most `PAGE_SIZE`
    /// bytes; the remainder is zeroed.
    ///
    /// # Panics
    /// If `src` exceeds the page size.
    pub fn fill_from(&mut self, src: &[u8]) {
        assert!(
            src.len() <= PAGE_SIZE,
            "payload {} exceeds page size",
            src.len()
        );
        self.data[..src.len()].copy_from_slice(src);
        self.data[src.len()..].fill(0);
    }
}

impl Default for Page {
    fn default() -> Self {
        Self::zeroed()
    }
}

impl std::fmt::Debug for Page {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let used = PAGE_SIZE - self.data.iter().rev().take_while(|&&b| b == 0).count();
        write!(f, "Page({used} bytes used)")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeroed_page_is_all_zero() {
        let p = Page::zeroed();
        assert!(p.bytes().iter().all(|&b| b == 0));
    }

    #[test]
    fn fill_from_zeroes_tail() {
        let mut p = Page::zeroed();
        p.bytes_mut().fill(0xff);
        p.fill_from(&[1, 2, 3]);
        assert_eq!(&p.bytes()[..3], &[1, 2, 3]);
        assert!(p.bytes()[3..].iter().all(|&b| b == 0));
    }

    #[test]
    #[should_panic(expected = "exceeds page size")]
    fn fill_from_rejects_oversize() {
        let mut p = Page::zeroed();
        p.fill_from(&vec![0u8; PAGE_SIZE + 1]);
    }

    #[test]
    fn debug_reports_used_bytes() {
        let mut p = Page::zeroed();
        p.fill_from(&[9; 10]);
        assert_eq!(format!("{p:?}"), "Page(10 bytes used)");
    }
}
