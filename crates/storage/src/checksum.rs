//! Hand-rolled XXH64 page checksums (dependency-free, like
//! `sti-obs::json`).
//!
//! The 64-bit XXHash algorithm is implemented from its public
//! specification; it is not cryptographic, but detects every single-bit
//! flip and virtually all multi-byte corruption, which is exactly the
//! failure model of [`crate::fault`]. The same function protects
//! in-memory pages (verified on buffer-miss reads and after writes) and
//! the on-disk index format (`crate::persist`, one checksum per region
//! and per page).

const PRIME_1: u64 = 0x9E37_79B1_85EB_CA87;
const PRIME_2: u64 = 0xC2B2_AE3D_27D4_EB4F;
const PRIME_3: u64 = 0x1656_67B1_9E37_79F9;
const PRIME_4: u64 = 0x85EB_CA77_C2B2_AE63;
const PRIME_5: u64 = 0x27D4_EB2F_1656_67C5;

#[inline]
fn round(acc: u64, input: u64) -> u64 {
    acc.wrapping_add(input.wrapping_mul(PRIME_2))
        .rotate_left(31)
        .wrapping_mul(PRIME_1)
}

#[inline]
fn merge_round(acc: u64, val: u64) -> u64 {
    (acc ^ round(0, val))
        .wrapping_mul(PRIME_1)
        .wrapping_add(PRIME_4)
}

#[inline]
fn read_u64(b: &[u8], at: usize) -> u64 {
    let mut buf = [0u8; 8];
    buf.copy_from_slice(&b[at..at + 8]);
    u64::from_le_bytes(buf)
}

#[inline]
fn read_u32(b: &[u8], at: usize) -> u32 {
    let mut buf = [0u8; 4];
    buf.copy_from_slice(&b[at..at + 4]);
    u32::from_le_bytes(buf)
}

/// XXH64 of `data` with the given seed.
pub fn xxh64_seeded(data: &[u8], seed: u64) -> u64 {
    let len = data.len();
    let mut at = 0usize;
    let mut h: u64;
    if len >= 32 {
        let mut v1 = seed.wrapping_add(PRIME_1).wrapping_add(PRIME_2);
        let mut v2 = seed.wrapping_add(PRIME_2);
        let mut v3 = seed;
        let mut v4 = seed.wrapping_sub(PRIME_1);
        while at + 32 <= len {
            v1 = round(v1, read_u64(data, at));
            v2 = round(v2, read_u64(data, at + 8));
            v3 = round(v3, read_u64(data, at + 16));
            v4 = round(v4, read_u64(data, at + 24));
            at += 32;
        }
        h = v1
            .rotate_left(1)
            .wrapping_add(v2.rotate_left(7))
            .wrapping_add(v3.rotate_left(12))
            .wrapping_add(v4.rotate_left(18));
        h = merge_round(h, v1);
        h = merge_round(h, v2);
        h = merge_round(h, v3);
        h = merge_round(h, v4);
    } else {
        h = seed.wrapping_add(PRIME_5);
    }
    h = h.wrapping_add(len as u64);
    while at + 8 <= len {
        h ^= round(0, read_u64(data, at));
        h = h
            .rotate_left(27)
            .wrapping_mul(PRIME_1)
            .wrapping_add(PRIME_4);
        at += 8;
    }
    if at + 4 <= len {
        h ^= u64::from(read_u32(data, at)).wrapping_mul(PRIME_1);
        h = h
            .rotate_left(23)
            .wrapping_mul(PRIME_2)
            .wrapping_add(PRIME_3);
        at += 4;
    }
    while at < len {
        h ^= u64::from(data[at]).wrapping_mul(PRIME_5);
        h = h.rotate_left(11).wrapping_mul(PRIME_1);
        at += 1;
    }
    h ^= h >> 33;
    h = h.wrapping_mul(PRIME_2);
    h ^= h >> 29;
    h = h.wrapping_mul(PRIME_3);
    h ^= h >> 32;
    h
}

/// XXH64 with seed 0, the form used for page and region checksums.
pub fn xxh64(data: &[u8]) -> u64 {
    xxh64_seeded(data, 0)
}

/// Cached checksum of an all-zero page, the content every freshly
/// allocated page starts with.
pub fn zero_page_sum() -> u64 {
    static SUM: std::sync::OnceLock<u64> = std::sync::OnceLock::new();
    *SUM.get_or_init(|| xxh64(&[0u8; crate::PAGE_SIZE]))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference vectors computed with the canonical xxHash-64
    /// implementation (xxhsum 0.8, `xxhsum -H64`).
    #[test]
    fn matches_reference_vectors() {
        assert_eq!(xxh64(b""), 0xEF46_DB37_51D8_E999);
        assert_eq!(xxh64(b"a"), 0xD24E_C4F1_A98C_6E5B);
        assert_eq!(xxh64(b"abc"), 0x44BC_2CF5_AD77_0999);
        assert_eq!(
            xxh64(b"Nobody inspects the spammish repetition"),
            0xFBCE_A83C_8A37_8BF1
        );
    }

    #[test]
    fn seed_changes_the_digest() {
        assert_ne!(xxh64_seeded(b"abc", 0), xxh64_seeded(b"abc", 1));
    }

    #[test]
    fn every_single_bit_flip_changes_the_digest() {
        let mut page = vec![0u8; 256];
        for (i, b) in page.iter_mut().enumerate() {
            *b = (i % 251) as u8;
        }
        let clean = xxh64(&page);
        for byte in (0..page.len()).step_by(17) {
            for bit in 0..8 {
                let mut flipped = page.clone();
                flipped[byte] ^= 1 << bit;
                assert_ne!(xxh64(&flipped), clean, "flip at {byte}.{bit} undetected");
            }
        }
    }

    #[test]
    fn covers_all_length_classes() {
        // <4, 4..8, 8..32, >=32 bytes exercise every tail branch.
        let data: Vec<u8> = (0..100u8).collect();
        let mut seen = std::collections::HashSet::new();
        for len in [0, 1, 3, 4, 7, 8, 15, 31, 32, 33, 63, 100] {
            assert!(seen.insert(xxh64(&data[..len])), "collision at len {len}");
        }
    }

    #[test]
    fn zero_page_sum_is_cached_and_correct() {
        assert_eq!(zero_page_sum(), xxh64(&[0u8; crate::PAGE_SIZE]));
        assert_eq!(zero_page_sum(), zero_page_sum());
    }
}
