//! Bounded, deterministic retry for transient storage faults.
//!
//! The [`crate::PageStore`] re-attempts operations whose error is
//! [`crate::StorageError::is_transient`], waiting between attempts via an
//! injected [`RetryClock`] so tests control time completely: the default
//! [`SimClock`] only *records* the backoff it was asked to perform,
//! keeping every test instantaneous and every retry schedule a pure
//! function of the [`RetryPolicy`].

/// Retry budget and backoff schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts per operation, including the first (so `3` means
    /// one try plus up to two retries). `1` disables retry entirely.
    pub max_attempts: u32,
    /// Backoff before the first retry, in microseconds.
    pub base_delay_micros: u64,
    /// Cap on the exponentially growing backoff.
    pub max_delay_micros: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_attempts: 3,
            base_delay_micros: 100,
            max_delay_micros: 10_000,
        }
    }
}

impl RetryPolicy {
    /// No retries: every error is final on the first attempt.
    pub fn no_retry() -> Self {
        Self {
            max_attempts: 1,
            ..Self::default()
        }
    }

    /// Backoff after failed attempt number `attempt` (1-based): the
    /// base delay doubled per attempt, capped at the maximum.
    pub fn delay_for(&self, attempt: u32) -> u64 {
        let shift = attempt.saturating_sub(1).min(63);
        // checked_mul (not shl) so a doubling that overflows saturates
        // at the cap instead of wrapping bits away.
        self.base_delay_micros
            .checked_mul(1u64 << shift)
            .unwrap_or(self.max_delay_micros)
            .min(self.max_delay_micros)
    }
}

/// Where retry backoff "time" goes. Injected so the store never sleeps
/// for real in tests, yet the schedule stays observable.
pub trait RetryClock: std::fmt::Debug + Send + Sync {
    /// Spend `micros` of backoff.
    fn pause(&mut self, micros: u64);

    /// Total backoff spent, in microseconds.
    fn total_paused_micros(&self) -> u64;

    /// Number of pauses taken.
    fn pauses(&self) -> u64;

    /// Clone into a boxed clock.
    fn clone_box(&self) -> Box<dyn RetryClock>;
}

impl Clone for Box<dyn RetryClock> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

/// The default clock: records backoff without sleeping.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimClock {
    paused_micros: u64,
    pauses: u64,
}

impl SimClock {
    /// A clock that has paused zero times.
    pub fn new() -> Self {
        Self::default()
    }
}

impl RetryClock for SimClock {
    fn pause(&mut self, micros: u64) {
        self.paused_micros += micros;
        self.pauses += 1;
    }

    fn total_paused_micros(&self) -> u64 {
        self.paused_micros
    }

    fn pauses(&self) -> u64 {
        self.pauses
    }

    fn clone_box(&self) -> Box<dyn RetryClock> {
        Box::new(*self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_and_caps() {
        let p = RetryPolicy {
            max_attempts: 6,
            base_delay_micros: 100,
            max_delay_micros: 450,
        };
        assert_eq!(p.delay_for(1), 100);
        assert_eq!(p.delay_for(2), 200);
        assert_eq!(p.delay_for(3), 400);
        assert_eq!(p.delay_for(4), 450, "capped");
        assert_eq!(p.delay_for(63), 450, "shift overflow capped");
    }

    #[test]
    fn sim_clock_records_without_sleeping() {
        let mut c = SimClock::new();
        c.pause(100);
        c.pause(200);
        assert_eq!(c.total_paused_micros(), 300);
        assert_eq!(c.pauses(), 2);
        let boxed = c.clone_box();
        assert_eq!(boxed.total_paused_micros(), 300);
    }

    #[test]
    fn no_retry_policy_has_one_attempt() {
        assert_eq!(RetryPolicy::no_retry().max_attempts, 1);
    }
}
