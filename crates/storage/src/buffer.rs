//! A small LRU buffer pool.

use crate::PageId;

/// Tracks which pages are resident in the buffer pool, with
/// least-recently-used eviction.
///
/// The paper uses a 10-page LRU buffer, so the pool is tiny; a plain
/// `Vec` ordered most-recent-first is both simpler and faster than a
/// linked-list + hash-map LRU at this size. Operations are O(capacity).
///
/// The buffer only tracks *residency* — page bytes live in the
/// [`crate::PageStore`]; the store consults the buffer to decide whether a
/// read hits the (free) buffer or costs a disk access.
#[derive(Debug, Clone)]
pub struct LruBuffer {
    /// Resident pages, most recently used first.
    resident: Vec<PageId>,
    capacity: usize,
}

impl LruBuffer {
    /// Create a buffer holding at most `capacity` pages. A capacity of 0
    /// disables buffering (every read is a disk access).
    pub fn new(capacity: usize) -> Self {
        Self {
            resident: Vec::with_capacity(capacity),
            capacity,
        }
    }

    /// Maximum number of resident pages.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of currently resident pages.
    pub fn len(&self) -> usize {
        self.resident.len()
    }

    /// True when no pages are resident.
    pub fn is_empty(&self) -> bool {
        self.resident.is_empty()
    }

    /// True if `page` is resident (does not touch recency).
    pub fn contains(&self, page: PageId) -> bool {
        self.resident.contains(&page)
    }

    /// Record an access to `page`. Returns `true` on a buffer hit, `false`
    /// on a miss; on a miss the page becomes resident, evicting the least
    /// recently used page if the buffer is full.
    pub fn access(&mut self, page: PageId) -> bool {
        if self.capacity == 0 {
            return false;
        }
        if let Some(idx) = self.resident.iter().position(|&p| p == page) {
            // Move to front.
            let p = self.resident.remove(idx);
            self.resident.insert(0, p);
            true
        } else {
            if self.resident.len() == self.capacity {
                self.resident.pop();
            }
            self.resident.insert(0, page);
            false
        }
    }

    /// Drop a page from the buffer (e.g., when its content is rewritten
    /// from scratch and the caller wants the next read to count).
    pub fn invalidate(&mut self, page: PageId) {
        self.resident.retain(|&p| p != page);
    }

    /// Empty the buffer. The paper resets the buffer before every query.
    pub fn clear(&mut self) {
        self.resident.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_after_miss() {
        let mut b = LruBuffer::new(2);
        assert!(!b.access(1));
        assert!(b.access(1));
        assert_eq!(b.len(), 1);
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut b = LruBuffer::new(2);
        b.access(1);
        b.access(2);
        b.access(1); // 1 is now most recent
        b.access(3); // evicts 2
        assert!(b.contains(1));
        assert!(!b.contains(2));
        assert!(b.contains(3));
    }

    #[test]
    fn zero_capacity_never_hits() {
        let mut b = LruBuffer::new(0);
        assert!(!b.access(5));
        assert!(!b.access(5));
        assert!(b.is_empty());
    }

    #[test]
    fn clear_and_invalidate() {
        let mut b = LruBuffer::new(4);
        b.access(1);
        b.access(2);
        b.invalidate(1);
        assert!(!b.contains(1));
        assert!(b.contains(2));
        b.clear();
        assert!(b.is_empty());
        assert!(!b.access(2));
    }

    #[test]
    fn repeated_access_is_single_slot() {
        let mut b = LruBuffer::new(3);
        for _ in 0..10 {
            b.access(7);
        }
        assert_eq!(b.len(), 1);
    }

    #[test]
    fn lru_order_under_mixed_workload() {
        let mut b = LruBuffer::new(3);
        for p in [1, 2, 3, 4, 2, 5] {
            b.access(p);
        }
        // After: 4 inserted (evicts 1), 2 refreshed, 5 inserted (evicts 3).
        assert!(b.contains(5) && b.contains(2) && b.contains(4));
        assert!(!b.contains(1) && !b.contains(3));
    }
}
