//! A small LRU buffer pool, plus a scan-resistant 2Q variant.

use std::collections::{HashMap, VecDeque};

/// Residency key for the buffer pool.
///
/// Wider than [`crate::BufferKey`] on purpose: a pool shared by several
/// store versions (see `PageStore::share_buffer`) tags each store's
/// pages into a disjoint key range (`(tag << 32) | page`), so page 7 of
/// the latest tree and page 7 of the published tree are distinct
/// residents. A store that owns its pool privately uses the page id
/// verbatim.
pub type BufferKey = u64;

/// Largest capacity served by the plain-`Vec` scan implementation.
///
/// The paper's buffer is 10 pages, where a linear scan over a dense
/// `Vec` beats any pointer structure. `ablation_buffer` sweeps far past
/// that, and at hundreds of pages the O(capacity) scan per touch turns
/// quadratic-ish over a query batch — so larger capacities switch to an
/// index-arena linked list with a position map (O(1) per touch). The
/// two implementations are behaviorally identical; a test pins their
/// hit/miss/eviction sequences against each other across capacities.
const SCAN_MAX_CAPACITY: usize = 32;

/// Tracks which pages are resident in the buffer pool, with
/// least-recently-used eviction.
///
/// The buffer only tracks *residency* — page bytes live in the
/// [`crate::PageStore`]; the store consults the buffer to decide whether a
/// read hits the (free) buffer or costs a disk access.
#[derive(Debug, Clone)]
pub struct LruBuffer {
    capacity: usize,
    inner: Inner,
}

#[derive(Debug, Clone)]
enum Inner {
    /// Resident pages, most recently used first. O(capacity) per touch,
    /// fastest at the paper's tiny buffer sizes.
    Scan(Vec<BufferKey>),
    /// Doubly linked recency list over a slot arena plus a page→slot
    /// map. O(1) per touch, used above [`SCAN_MAX_CAPACITY`].
    Mapped(MappedLru),
}

impl LruBuffer {
    /// Create a buffer holding at most `capacity` pages. A capacity of 0
    /// disables buffering (every read is a disk access).
    pub fn new(capacity: usize) -> Self {
        let inner = if capacity <= SCAN_MAX_CAPACITY {
            Inner::Scan(Vec::with_capacity(capacity))
        } else {
            Inner::Mapped(MappedLru::new(capacity))
        };
        Self { capacity, inner }
    }

    /// Maximum number of resident pages.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of currently resident pages.
    pub fn len(&self) -> usize {
        match &self.inner {
            Inner::Scan(v) => v.len(),
            Inner::Mapped(m) => m.map.len(),
        }
    }

    /// True when no pages are resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True if `page` is resident (does not touch recency).
    pub fn contains(&self, page: BufferKey) -> bool {
        match &self.inner {
            Inner::Scan(v) => v.contains(&page),
            Inner::Mapped(m) => m.map.contains_key(&page),
        }
    }

    /// Record an access to `page`. Returns `true` on a buffer hit, `false`
    /// on a miss; on a miss the page becomes resident, evicting the least
    /// recently used page if the buffer is full.
    pub fn access(&mut self, page: BufferKey) -> bool {
        if self.capacity == 0 {
            return false;
        }
        let capacity = self.capacity;
        match &mut self.inner {
            Inner::Scan(resident) => {
                if let Some(idx) = resident.iter().position(|&p| p == page) {
                    // Move to front.
                    let p = resident.remove(idx);
                    resident.insert(0, p);
                    true
                } else {
                    if resident.len() == capacity {
                        resident.pop();
                    }
                    resident.insert(0, page);
                    false
                }
            }
            Inner::Mapped(m) => m.access(page, capacity),
        }
    }

    /// Make `page` resident at the most-recent position without reporting
    /// hit/miss. This is the write path's entry point: residency after a
    /// write is a caching policy (write-through), not a read outcome, so
    /// there is no hit/miss to account for — see `PageStore::write`.
    pub fn install(&mut self, page: BufferKey) {
        self.access(page);
    }

    /// Drop a page from the buffer (e.g., when its content is rewritten
    /// from scratch and the caller wants the next read to count).
    pub fn invalidate(&mut self, page: BufferKey) {
        match &mut self.inner {
            Inner::Scan(v) => v.retain(|&p| p != page),
            Inner::Mapped(m) => m.invalidate(page),
        }
    }

    /// Empty the buffer. The paper resets the buffer before every query.
    pub fn clear(&mut self) {
        match &mut self.inner {
            Inner::Scan(v) => v.clear(),
            Inner::Mapped(m) => m.clear(),
        }
    }

    /// Resident pages, most recently used first (diagnostics and tests).
    pub fn resident_mru(&self) -> Vec<BufferKey> {
        match &self.inner {
            Inner::Scan(v) => v.clone(),
            Inner::Mapped(m) => m.resident_mru(),
        }
    }

    /// Force the scan implementation regardless of capacity (tests).
    #[cfg(test)]
    fn new_scan(capacity: usize) -> Self {
        Self {
            capacity,
            inner: Inner::Scan(Vec::with_capacity(capacity)),
        }
    }

    /// Force the mapped implementation regardless of capacity (tests).
    #[cfg(test)]
    fn new_mapped(capacity: usize) -> Self {
        Self {
            capacity,
            inner: Inner::Mapped(MappedLru::new(capacity)),
        }
    }
}

/// One arena slot of the linked recency list.
#[derive(Debug, Clone, Copy)]
struct Slot {
    page: BufferKey,
    prev: Option<usize>,
    next: Option<usize>,
}

/// O(1) LRU: `map` finds a page's slot, the slot links maintain recency
/// order (`head` = most recent, `tail` = eviction victim), and `free`
/// recycles slots so the arena never exceeds the capacity.
#[derive(Debug, Clone)]
struct MappedLru {
    slots: Vec<Slot>,
    map: HashMap<BufferKey, usize>,
    free: Vec<usize>,
    head: Option<usize>,
    tail: Option<usize>,
}

impl MappedLru {
    fn new(capacity: usize) -> Self {
        Self {
            slots: Vec::with_capacity(capacity),
            map: HashMap::with_capacity(capacity),
            free: Vec::new(),
            head: None,
            tail: None,
        }
    }

    fn access(&mut self, page: BufferKey, capacity: usize) -> bool {
        if let Some(&slot) = self.map.get(&page) {
            if self.head != Some(slot) {
                self.unlink(slot);
                self.link_front(slot);
            }
            true
        } else {
            if self.map.len() == capacity {
                self.evict_tail();
            }
            let slot = if let Some(reused) = self.free.pop() {
                self.slots[reused].page = page;
                reused
            } else {
                self.slots.push(Slot {
                    page,
                    prev: None,
                    next: None,
                });
                self.slots.len() - 1
            };
            self.link_front(slot);
            self.map.insert(page, slot);
            false
        }
    }

    fn invalidate(&mut self, page: BufferKey) {
        if let Some(slot) = self.map.remove(&page) {
            self.unlink(slot);
            self.free.push(slot);
        }
    }

    fn clear(&mut self) {
        self.slots.clear();
        self.map.clear();
        self.free.clear();
        self.head = None;
        self.tail = None;
    }

    fn resident_mru(&self) -> Vec<BufferKey> {
        let mut out = Vec::with_capacity(self.map.len());
        let mut cursor = self.head;
        while let Some(i) = cursor {
            out.push(self.slots[i].page);
            cursor = self.slots[i].next;
        }
        out
    }

    fn unlink(&mut self, slot: usize) {
        let (prev, next) = (self.slots[slot].prev, self.slots[slot].next);
        match prev {
            Some(p) => self.slots[p].next = next,
            None => self.head = next,
        }
        match next {
            Some(n) => self.slots[n].prev = prev,
            None => self.tail = prev,
        }
    }

    fn link_front(&mut self, slot: usize) {
        self.slots[slot].prev = None;
        self.slots[slot].next = self.head;
        match self.head {
            Some(h) => self.slots[h].prev = Some(slot),
            None => self.tail = Some(slot),
        }
        self.head = Some(slot);
    }

    fn evict_tail(&mut self) {
        if let Some(victim) = self.tail {
            self.unlink(victim);
            self.map.remove(&self.slots[victim].page);
            self.free.push(victim);
        }
    }
}

/// Scan-resistant residency tracking: the 2Q policy of Johnson & Shasha
/// (VLDB 1994), simplified to the two resident queues plus a ghost list.
///
/// * `a1in` — a FIFO probation queue. First-touch pages land here, so a
///   long sequential scan churns through probation without touching the
///   protected set.
/// * `am` — the protected LRU. Pages graduate here on a second touch
///   (re-referenced while still in probation, or re-fetched while their
///   key lingers on the ghost list).
/// * `ghost` — recently evicted probation *keys* (no residency). A miss
///   whose key is remembered here is re-reference traffic, not scan
///   traffic, and installs straight into `am`.
///
/// Same residency surface as [`LruBuffer`]: `access`/`install`/
/// `invalidate`/`clear`/`contains`/`len`. Hit/miss accounting stays with
/// the caller ([`crate::ShardedBuffer`]), so swapping the policy cannot
/// perturb the conservation invariant Σ shard counters == `IoStats`.
#[derive(Debug, Clone)]
pub struct TwoQBuffer {
    capacity: usize,
    a1in_cap: usize,
    ghost_cap: usize,
    a1in: VecDeque<BufferKey>,
    am: LruBuffer,
    ghost: VecDeque<BufferKey>,
    scan_evictions_avoided: u64,
}

impl TwoQBuffer {
    /// A 2Q buffer holding at most `capacity` resident pages: ~1/4 in
    /// probation, the rest protected, with a ghost list of ~capacity/2
    /// keys. Capacity 0 disables buffering entirely.
    pub fn new(capacity: usize) -> Self {
        let a1in_cap = if capacity == 0 {
            0
        } else {
            (capacity / 4).max(1)
        };
        Self {
            capacity,
            a1in_cap,
            ghost_cap: if capacity == 0 {
                0
            } else {
                (capacity / 2).max(1)
            },
            a1in: VecDeque::with_capacity(a1in_cap),
            am: LruBuffer::new(capacity - a1in_cap),
            ghost: VecDeque::new(),
            scan_evictions_avoided: 0,
        }
    }

    /// Maximum number of resident pages across both queues.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of currently resident pages.
    pub fn len(&self) -> usize {
        self.a1in.len() + self.am.len()
    }

    /// True when no pages are resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True if `page` is resident in either queue (recency untouched).
    pub fn contains(&self, page: BufferKey) -> bool {
        self.a1in.contains(&page) || self.am.contains(page)
    }

    /// Probation evictions absorbed while the protected queue held pages
    /// — each one is a scan page that, under plain LRU over the same
    /// capacity, could have displaced a protected (hot) page instead.
    pub fn scan_evictions_avoided(&self) -> u64 {
        self.scan_evictions_avoided
    }

    /// Record an access. Returns `true` on a hit (the page was resident);
    /// on a miss the page becomes resident in probation — or directly in
    /// the protected queue when its key is still on the ghost list.
    pub fn access(&mut self, page: BufferKey) -> bool {
        if self.capacity == 0 {
            return false;
        }
        if self.am.contains(page) {
            self.am.access(page);
            return true;
        }
        if let Some(idx) = self.a1in.iter().position(|&p| p == page) {
            // Second touch while on probation: graduate to the protected
            // queue (unless the configuration has no protected room, in
            // which case probation keeps it).
            if self.am.capacity() > 0 {
                self.a1in.remove(idx);
                self.am.access(page);
            }
            return true;
        }
        if let Some(idx) = self.ghost.iter().position(|&p| p == page) {
            // Re-reference after a probation eviction: not scan traffic.
            self.ghost.remove(idx);
            if self.am.capacity() > 0 {
                self.am.access(page);
                return false;
            }
        }
        if self.a1in.len() == self.a1in_cap {
            if let Some(victim) = self.a1in.pop_front() {
                self.remember_ghost(victim);
                if !self.am.is_empty() {
                    self.scan_evictions_avoided += 1;
                }
            }
        }
        self.a1in.push_back(page);
        false
    }

    /// Make `page` resident without reporting hit/miss (write-through
    /// warming; mirrors [`LruBuffer::install`]).
    pub fn install(&mut self, page: BufferKey) {
        self.access(page);
    }

    /// Drop a page from both resident queues (ghost history is kept: it
    /// records reference recency, not content).
    pub fn invalidate(&mut self, page: BufferKey) {
        self.a1in.retain(|&p| p != page);
        self.am.invalidate(page);
    }

    /// Empty residency *and* ghost history, so post-clear behavior
    /// matches a fresh buffer deterministically. The scan counter is
    /// preserved: clearing is a cache event, not an accounting reset.
    pub fn clear(&mut self) {
        self.a1in.clear();
        self.am.clear();
        self.ghost.clear();
    }

    fn remember_ghost(&mut self, page: BufferKey) {
        if self.ghost_cap == 0 {
            return;
        }
        if self.ghost.len() == self.ghost_cap {
            self.ghost.pop_front();
        }
        self.ghost.push_back(page);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_after_miss() {
        let mut b = LruBuffer::new(2);
        assert!(!b.access(1));
        assert!(b.access(1));
        assert_eq!(b.len(), 1);
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut b = LruBuffer::new(2);
        b.access(1);
        b.access(2);
        b.access(1); // 1 is now most recent
        b.access(3); // evicts 2
        assert!(b.contains(1));
        assert!(!b.contains(2));
        assert!(b.contains(3));
    }

    #[test]
    fn zero_capacity_never_hits() {
        let mut b = LruBuffer::new(0);
        assert!(!b.access(5));
        assert!(!b.access(5));
        assert!(b.is_empty());
    }

    #[test]
    fn clear_and_invalidate() {
        let mut b = LruBuffer::new(4);
        b.access(1);
        b.access(2);
        b.invalidate(1);
        assert!(!b.contains(1));
        assert!(b.contains(2));
        b.clear();
        assert!(b.is_empty());
        assert!(!b.access(2));
    }

    #[test]
    fn repeated_access_is_single_slot() {
        let mut b = LruBuffer::new(3);
        for _ in 0..10 {
            b.access(7);
        }
        assert_eq!(b.len(), 1);
    }

    #[test]
    fn lru_order_under_mixed_workload() {
        let mut b = LruBuffer::new(3);
        for p in [1, 2, 3, 4, 2, 5] {
            b.access(p);
        }
        // After: 4 inserted (evicts 1), 2 refreshed, 5 inserted (evicts 3).
        assert!(b.contains(5) && b.contains(2) && b.contains(4));
        assert!(!b.contains(1) && !b.contains(3));
    }

    #[test]
    fn large_capacity_selects_mapped_impl() {
        let b = LruBuffer::new(256);
        assert!(matches!(b.inner, Inner::Mapped(_)));
        let b = LruBuffer::new(10);
        assert!(matches!(b.inner, Inner::Scan(_)));
    }

    #[test]
    fn mapped_basic_semantics() {
        let mut b = LruBuffer::new_mapped(2);
        assert!(!b.access(1));
        assert!(b.access(1));
        b.access(2);
        b.access(1); // refresh
        assert!(!b.access(3)); // evicts 2
        assert!(!b.contains(2));
        assert_eq!(b.resident_mru(), vec![3, 1]);
        b.invalidate(3);
        assert_eq!(b.resident_mru(), vec![1]);
        b.clear();
        assert!(b.is_empty());
    }

    /// A deterministic xorshift generator — no dependency needed for a
    /// reproducible trace.
    struct XorShift(u64);
    impl XorShift {
        fn next(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.0 = x;
            x
        }
    }

    // ------------------------------------------------------------------
    // 2Q policy
    // ------------------------------------------------------------------

    #[test]
    fn twoq_zero_capacity_never_hits() {
        let mut b = TwoQBuffer::new(0);
        assert!(!b.access(1));
        assert!(!b.access(1));
        assert!(b.is_empty());
        assert_eq!(b.scan_evictions_avoided(), 0);
    }

    #[test]
    fn twoq_second_touch_graduates_to_protected() {
        let mut b = TwoQBuffer::new(8); // a1in 2, am 6
        assert!(!b.access(1)); // probation
        assert!(b.access(1)); // graduates to am
                              // Flood probation with a scan; 1 must stay resident.
        for p in 10..30u64 {
            assert!(!b.access(p));
        }
        assert!(b.contains(1), "protected page survived the scan");
    }

    #[test]
    fn twoq_ghost_hit_installs_protected() {
        let mut b = TwoQBuffer::new(8); // a1in 2, ghost 4
        b.access(1); // probation
        b.access(2);
        b.access(3); // evicts 1 to ghost
        assert!(!b.contains(1));
        assert!(!b.access(1), "ghost hit is still a miss (page was gone)");
        // ...but it went straight to am: survives another probation flood.
        for p in 10..20u64 {
            b.access(p);
        }
        assert!(b.contains(1));
    }

    /// The satellite claim, side by side: a synthetic one-pass scan over
    /// a large page range leaves the hot (twice-touched) pages resident
    /// under 2Q, while plain LRU of the same capacity evicts them all.
    #[test]
    fn twoq_scan_leaves_hot_pages_resident_where_lru_evicts() {
        let capacity = 16;
        let hot: Vec<BufferKey> = (0..4).collect();
        let mut twoq = TwoQBuffer::new(capacity);
        let mut lru = LruBuffer::new(capacity);
        // Warm the hot set with two passes so 2Q promotes them.
        for _ in 0..2 {
            for &p in &hot {
                twoq.access(p);
                lru.access(p);
            }
        }
        // One sequential scan, 10x the capacity, touching each page once.
        for p in 100..100 + 10 * capacity as u64 {
            twoq.access(p);
            lru.access(p);
        }
        for &p in &hot {
            assert!(twoq.contains(p), "2Q kept hot page {p} through the scan");
            assert!(!lru.contains(p), "LRU evicted hot page {p} as expected");
        }
        assert!(
            twoq.scan_evictions_avoided() > 0,
            "probation absorbed the scan evictions"
        );
    }

    #[test]
    fn twoq_invalidate_and_clear() {
        let mut b = TwoQBuffer::new(8);
        b.access(1);
        b.access(1); // am
        b.access(2); // a1in
        b.invalidate(1);
        b.invalidate(2);
        assert!(!b.contains(1) && !b.contains(2));
        b.access(3);
        b.access(3);
        let counted = b.scan_evictions_avoided();
        b.clear();
        assert!(b.is_empty());
        assert_eq!(b.scan_evictions_avoided(), counted, "clear keeps counters");
        assert!(!b.access(3), "ghost history cleared: cold start");
    }

    #[test]
    fn twoq_capacity_one_degenerates_to_probation_only() {
        let mut b = TwoQBuffer::new(1);
        assert!(!b.access(7));
        assert!(b.access(7), "hit without a protected queue stays put");
        assert!(b.contains(7));
        assert!(!b.access(8)); // evicts 7
        assert!(!b.contains(7));
        assert_eq!(b.len(), 1);
    }

    #[test]
    fn twoq_resident_count_never_exceeds_capacity() {
        let mut b = TwoQBuffer::new(6);
        let mut rng = XorShift(0xfeed);
        for _ in 0..2_000 {
            let p = rng.next() % 19;
            b.access(p);
            assert!(b.len() <= 6);
        }
    }

    /// The satellite requirement: hit/miss/eviction sequences of the
    /// mapped implementation are byte-identical to the Vec scan across
    /// capacities 0, 1, 10, and 256.
    #[test]
    fn scan_and_mapped_are_byte_identical() {
        for capacity in [0usize, 1, 10, 256] {
            let mut scan = LruBuffer::new_scan(capacity);
            let mut mapped = LruBuffer::new_mapped(capacity);
            let mut rng = XorShift(0x5117_u64 + capacity as u64);
            // Page universe ~3× capacity keeps hits, misses, and
            // evictions all frequent.
            let universe = (3 * capacity.max(1)) as u64;
            for step in 0..4_000 {
                let roll = rng.next() % 100;
                let page = BufferKey::try_from(rng.next() % universe).unwrap();
                if roll < 80 {
                    assert_eq!(
                        scan.access(page),
                        mapped.access(page),
                        "access({page}) diverged at step {step}, capacity {capacity}"
                    );
                } else if roll < 90 {
                    scan.invalidate(page);
                    mapped.invalidate(page);
                } else if roll < 93 {
                    scan.clear();
                    mapped.clear();
                } else {
                    scan.install(page);
                    mapped.install(page);
                }
                assert_eq!(
                    scan.resident_mru(),
                    mapped.resident_mru(),
                    "residency order diverged at step {step}, capacity {capacity}"
                );
            }
        }
    }
}
