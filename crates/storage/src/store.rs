//! The simulated disk: a pluggable page backend behind a lock-striped
//! LRU buffer pool, with checksums, bounded retry, and an undo log for
//! atomic multi-page operations.
//!
//! Concurrency model (DESIGN.md §6): [`PageStore::read`] takes `&self`
//! so any number of readers can share one store; all mutation stays on
//! `&mut self`, so Rust's aliasing rules make reader/writer races
//! unrepresentable. Internally the backend, checksums, and retry clock
//! live under one `RwLock` (buffer hits take it shared; misses take it
//! exclusive for the fetch), while hit/miss accounting lives in the
//! sharded buffer pool itself and failure counters are atomics.

use crate::backend::{MemBackend, PageBackend};
use crate::buffer::BufferKey;
use crate::checksum::{xxh64, zero_page_sum};
use crate::error::{CorruptReason, IoOp, StorageError};
use crate::retry::{RetryClock, RetryPolicy, SimClock};
use crate::shard::{BufferPolicy, ReadProbe, ReadaheadStats, ShardedBuffer};
use crate::{Page, PageId, PAGE_SIZE};
use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, PoisonError, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// Residency key for page `id` of the store tagged `tag`: stores sharing
/// one pool occupy disjoint key ranges, so equal page ids in different
/// versions never alias.
fn buffer_key(tag: u32, id: PageId) -> BufferKey {
    (u64::from(tag) << 32) | u64::from(id)
}

/// Counters for logical disk traffic.
///
/// A *read* is counted whenever a page is fetched and misses the buffer
/// pool; buffer hits are free, matching how the paper reports "average
/// number of disk accesses" with a 10-page LRU buffer. These are the
/// paper's cost-model counters: a write that needed retries still counts
/// as one logical write (the physical re-attempts live in
/// [`FaultStats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IoStats {
    /// Page fetches that missed the buffer.
    pub reads: u64,
    /// Page writes (build-time traffic; not part of the query metric).
    pub writes: u64,
    /// Page fetches that hit the buffer (for diagnostics).
    pub buffer_hits: u64,
}

impl IoStats {
    /// Total disk accesses (reads + writes).
    pub fn total(&self) -> u64 {
        self.reads + self.writes
    }
}

/// Counters for the failure path, separate from the paper's cost model.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Operations re-attempted after a transient error.
    pub io_retries: u64,
    /// Faults the backend injected (zero for real backends).
    pub io_faults_injected: u64,
    /// Page verifications that failed (reads that did not match the
    /// recorded checksum, or writes whose stored bytes did not match the
    /// intended payload).
    pub checksum_failures: u64,
}

/// One recorded undo step; rollback applies them in reverse.
#[derive(Debug, Clone)]
enum UndoOp {
    /// First write to a page inside the transaction: its prior content.
    Image { id: PageId, bytes: Page, sum: u64 },
    /// `allocate` grew the backend by one page (always the current tail
    /// when undone in reverse order).
    Appended,
    /// `allocate` reused this page from the free list.
    ReusedFree { id: PageId },
    /// `free` pushed this page onto the free list.
    Freed { id: PageId },
}

#[derive(Debug, Clone, Default)]
struct Txn {
    ops: Vec<UndoOp>,
    /// Pages whose pre-image is already captured this transaction.
    imaged: HashSet<PageId>,
}

/// The state a buffer miss must mutate to fetch a page: the backend
/// (transfer, fault injection, quiesce), the recorded checksums, and the
/// retry clock. Shared-read (`&self`) paths take this under an `RwLock`;
/// exclusive (`&mut self`) paths go through `get_mut` and never lock.
#[derive(Debug, Clone)]
struct StoreCore {
    backend: Box<dyn PageBackend>,
    /// Checksum of each page's current intended content.
    sums: Vec<u64>,
    clock: Box<dyn RetryClock>,
}

impl StoreCore {
    /// Compare a page's current bytes against its recorded checksum.
    fn verify_against_sum(&self, id: PageId) -> Result<(), StorageError> {
        let actual = match self.backend.page(id) {
            Some(p) => xxh64(p.bytes()),
            None => {
                return Err(StorageError::Unallocated {
                    op: IoOp::Read,
                    page: id,
                    pages: self.backend.num_pages(),
                })
            }
        };
        if actual == self.sums[id as usize] {
            Ok(())
        } else {
            Err(StorageError::Corrupt {
                page: id,
                reason: CorruptReason::Checksum,
            })
        }
    }

    /// Compare the stored bytes after a write against the intended
    /// payload's checksum (detects silent write-side corruption).
    fn verify_written(&self, id: PageId, expected: u64) -> Result<(), StorageError> {
        let actual = match self.backend.page(id) {
            Some(p) => xxh64(p.bytes()),
            None => {
                return Err(StorageError::Unallocated {
                    op: IoOp::Write,
                    page: id,
                    pages: self.backend.num_pages(),
                })
            }
        };
        if actual == expected {
            Ok(())
        } else {
            Err(StorageError::Corrupt {
                page: id,
                reason: CorruptReason::Checksum,
            })
        }
    }
}

/// Whether an error is a checksum mismatch (the one failure the
/// `checksum_failures` counter tracks).
fn is_checksum_mismatch(e: &StorageError) -> bool {
    matches!(
        e,
        StorageError::Corrupt {
            reason: CorruptReason::Checksum,
            ..
        }
    )
}

/// Poison-tolerant `get_mut`: no code path panics while holding the
/// core lock (stilint's no_panic gate), and the core's invariants are
/// re-established before every unlock, so a poisoned lock carries no
/// broken state worth propagating.
fn core_mut(lock: &mut RwLock<StoreCore>) -> &mut StoreCore {
    lock.get_mut().unwrap_or_else(PoisonError::into_inner)
}

/// A simulated disk of fixed-size pages with a lock-striped LRU buffer
/// pool, I/O accounting, per-page checksums, bounded retry for transient
/// faults, and page-level undo.
///
/// The tree implementations own one `PageStore` each and route *all*
/// node traffic through it, so query-time I/O counts are faithful to a
/// disk-resident index: the paper's page capacity is enforced by the
/// node serializers (entries per node), and the buffer is reset before
/// every measured query via [`PageStore::reset_buffer`].
///
/// Failure discipline (DESIGN.md §6): every fallible method returns a
/// typed [`StorageError`]. A failed `write` restores the page's prior
/// bytes before returning, so a single write is atomic; multi-page
/// mutations bracket themselves with [`PageStore::begin_txn`] /
/// [`PageStore::rollback_txn`] so a failure midway leaves the store
/// exactly as it was.
///
/// Accounting invariant: `stats().reads` and `stats().buffer_hits` are
/// *defined* as the sum of the buffer shards' miss/hit counters, so no
/// code path (including test hooks) can move one without the other.
#[derive(Debug)]
pub struct PageStore {
    core: RwLock<StoreCore>,
    /// The residency pool. Normally uniquely owned; the versioned write
    /// pipeline shares one pool across store versions (see
    /// [`PageStore::share_buffer`]), with [`PageStore::buffer_tag`]
    /// keeping each version's pages in a disjoint key range.
    buffer: Arc<ShardedBuffer>,
    /// High 32 bits of this store's residency keys.
    tag: u32,
    free: Vec<PageId>,
    /// Logical writes. Atomic so [`PageStore::reset_stats`] can zero the
    /// counters from `&self` while readers run.
    writes: AtomicU64,
    io_retries: AtomicU64,
    checksum_failures: AtomicU64,
    /// Backend fault count when fault stats were last reset, so
    /// [`PageStore::fault_stats`] reports a delta.
    injected_at_reset: AtomicU64,
    policy: RetryPolicy,
    txn: Option<Txn>,
    /// How many `begin_txn` calls the open transaction has absorbed.
    /// Only the matching outermost `commit_txn` discards the undo log,
    /// so a batch can bracket many per-update transactions and still
    /// roll the whole batch back (see `PprTree::begin_batch`).
    txn_depth: u32,
    /// Monotonic save epoch (bumped by `persist::save`).
    epoch: u64,
}

impl Clone for PageStore {
    fn clone(&self) -> Self {
        Self {
            core: RwLock::new(self.core_read().clone()),
            // A clone is an independent store: it gets a private deep
            // copy of the pool even if the original was sharing one.
            buffer: Arc::new((*self.buffer).clone()),
            tag: self.tag,
            free: self.free.clone(),
            // ordering: relaxed snapshot of independent stat counters; the
            // clone starts from whatever each counter held, no cross-counter
            // consistency is promised.
            writes: AtomicU64::new(self.writes.load(Ordering::Relaxed)),
            io_retries: AtomicU64::new(self.io_retries.load(Ordering::Relaxed)),
            checksum_failures: AtomicU64::new(self.checksum_failures.load(Ordering::Relaxed)),
            injected_at_reset: AtomicU64::new(self.injected_at_reset.load(Ordering::Relaxed)),
            policy: self.policy,
            txn: self.txn.clone(),
            txn_depth: self.txn_depth,
            epoch: self.epoch,
        }
    }
}

impl PageStore {
    /// Create an empty in-memory store with a buffer pool of
    /// `buffer_capacity` pages.
    pub fn new(buffer_capacity: usize) -> Self {
        Self::with_backend(Box::new(MemBackend::new()), buffer_capacity)
    }

    /// Create a store over an explicit backend (in-memory, file-backed,
    /// or fault-injecting).
    pub fn with_backend(backend: Box<dyn PageBackend>, buffer_capacity: usize) -> Self {
        Self::with_backend_shared(backend, Arc::new(ShardedBuffer::new(buffer_capacity)), 0)
    }

    /// Create a store over `backend` that shares `buffer` with other
    /// store versions. `tag` must be unique among the sharing stores: it
    /// prefixes this store's residency keys so equal page ids in
    /// different versions stay distinct residents. Hit/miss counters are
    /// pool-wide (the versions compete for — and are accounted against —
    /// the same capacity); per-store `writes` stay per-store.
    pub fn with_backend_shared(
        backend: Box<dyn PageBackend>,
        buffer: Arc<ShardedBuffer>,
        tag: u32,
    ) -> Self {
        let sums = (0..backend.num_pages())
            .map(|i| {
                backend
                    .page(PageId::try_from(i).unwrap_or(PageId::MAX))
                    .map_or_else(zero_page_sum, |p| xxh64(p.bytes()))
            })
            .collect();
        let injected = backend.faults_injected();
        Self {
            core: RwLock::new(StoreCore {
                backend,
                sums,
                clock: Box::new(SimClock::new()),
            }),
            buffer,
            tag,
            free: Vec::new(),
            writes: AtomicU64::new(0),
            io_retries: AtomicU64::new(0),
            checksum_failures: AtomicU64::new(0),
            injected_at_reset: AtomicU64::new(injected),
            policy: RetryPolicy::default(),
            txn: None,
            txn_depth: 0,
            epoch: 0,
        }
    }

    /// A handle to this store's buffer pool, for constructing another
    /// version over the same residency/capacity via
    /// [`PageStore::with_backend_shared`].
    pub fn share_buffer(&self) -> Arc<ShardedBuffer> {
        Arc::clone(&self.buffer)
    }

    /// The tag prefixing this store's residency keys (0 for a store
    /// that owns its pool privately).
    pub fn buffer_tag(&self) -> u32 {
        self.tag
    }

    fn core_read(&self) -> RwLockReadGuard<'_, StoreCore> {
        // See `core_mut` for why poison recovery is sound here.
        self.core.read().unwrap_or_else(PoisonError::into_inner)
    }

    fn core_write(&self) -> RwLockWriteGuard<'_, StoreCore> {
        self.core.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Number of allocated pages (the index's disk footprint, fig. 16).
    pub fn num_pages(&self) -> usize {
        self.core_read().backend.num_pages()
    }

    /// Disk footprint in bytes.
    pub fn bytes(&self) -> usize {
        self.num_pages() * PAGE_SIZE
    }

    /// The backend, for journal inspection and downcasts in tests.
    /// `&mut self` because the backend lives under the read-path lock;
    /// exclusive access borrows it without locking.
    pub fn backend(&mut self) -> &dyn PageBackend {
        core_mut(&mut self.core).backend.as_ref()
    }

    /// Mutable backend access, for tests and tooling.
    pub fn backend_mut(&mut self) -> &mut dyn PageBackend {
        core_mut(&mut self.core).backend.as_mut()
    }

    /// Replace the retry budget/backoff schedule.
    pub fn set_retry_policy(&mut self, policy: RetryPolicy) {
        self.policy = policy;
    }

    /// The active retry policy.
    pub fn retry_policy(&self) -> RetryPolicy {
        self.policy
    }

    /// Replace the backoff clock (tests inject their own).
    pub fn set_clock(&mut self, clock: Box<dyn RetryClock>) {
        core_mut(&mut self.core).clock = clock;
    }

    /// A snapshot of the backoff clock, for asserting on the schedule
    /// taken (boxed clone: the live clock sits under the read-path lock).
    pub fn clock(&self) -> Box<dyn RetryClock> {
        self.core_read().clock.clone_box()
    }

    /// Allocate a page and return its id, reusing freed pages first.
    pub fn allocate(&mut self) -> Result<PageId, StorageError> {
        let Self {
            core,
            free,
            io_retries,
            policy,
            txn,
            ..
        } = self;
        let core = core_mut(core);
        if let Some(id) = free.pop() {
            // Free-list reuse is a metadata operation: the page is
            // already on the device; only its content is reset. The
            // pre-image is captured first — rollback must restore what
            // the page held before this transaction zeroed it.
            if txn.is_some() {
                let prior = core.backend.page(id).cloned();
                let prior_sum = core.sums[id as usize];
                if let (Some(txn), Some(bytes)) = (txn.as_mut(), prior) {
                    if txn.imaged.insert(id) {
                        txn.ops.push(UndoOp::Image {
                            id,
                            bytes,
                            sum: prior_sum,
                        });
                    }
                    txn.ops.push(UndoOp::ReusedFree { id });
                }
            }
            if let Some(p) = core.backend.page_mut(id) {
                *p = Page::zeroed();
            }
            core.sums[id as usize] = zero_page_sum();
            return Ok(id);
        }
        let mut attempt = 0u32;
        let id = loop {
            attempt += 1;
            match core.backend.allocate() {
                Ok(id) => break id,
                Err(e) if e.is_transient() && attempt < policy.max_attempts => {
                    // ordering: independent stat counter, read only for reporting.
                    io_retries.fetch_add(1, Ordering::Relaxed);
                    core.clock.pause(policy.delay_for(attempt));
                }
                Err(e) => {
                    core.backend.quiesce();
                    return Err(e);
                }
            }
        };
        core.sums.push(zero_page_sum());
        if let Some(txn) = txn.as_mut() {
            txn.ops.push(UndoOp::Appended);
        }
        Ok(id)
    }

    /// Return a page to the free list for reuse by a later
    /// [`PageStore::allocate`]. The page's content becomes invalid and it
    /// is dropped from the buffer pool.
    pub fn free(&mut self, id: PageId) -> Result<(), StorageError> {
        let pages = self.num_pages();
        if (id as usize) >= pages {
            return Err(StorageError::Unallocated {
                op: IoOp::Write,
                page: id,
                pages,
            });
        }
        // The linear double-free scan would make mass deallocation
        // quadratic in the free-list length; keep it as a debug check.
        debug_assert!(!self.free.contains(&id), "double free of page {id}");
        self.buffer.invalidate(buffer_key(self.tag, id));
        self.free.push(id);
        if let Some(txn) = self.txn.as_mut() {
            txn.ops.push(UndoOp::Freed { id });
        }
        Ok(())
    }

    /// Number of pages currently on the free list.
    pub fn free_pages(&self) -> usize {
        self.free.len()
    }

    /// Fetch a page for reading, going through the buffer pool. A miss
    /// costs one disk read and verifies the page against its recorded
    /// checksum; verification failures are retried (a re-fetch repairs
    /// corruption that happened in transfer) within the retry budget,
    /// then surface as [`StorageError::Corrupt`].
    ///
    /// Shared: concurrent readers are safe. Buffer hits run under the
    /// shared core lock; a miss upgrades to the exclusive lock for the
    /// backend transfer, then re-checks residency (another reader may
    /// have fetched the page while this one waited).
    ///
    /// The caller's [`ReadProbe`] receives exactly this call's counter
    /// movement, mirroring the global accounting increment for
    /// increment — that one-to-one mirroring is what makes per-query
    /// stats sum to the global [`IoStats`] delta under concurrency.
    pub fn read(&self, id: PageId, probe: &mut ReadProbe) -> Result<Page, StorageError> {
        if self.buffer.touch_if_resident(buffer_key(self.tag, id)) {
            probe.buffer_hits += 1;
            return self
                .core_read()
                .backend
                .page(id)
                .cloned()
                .ok_or(StorageError::Unallocated {
                    op: IoOp::Read,
                    page: id,
                    pages: 0,
                });
        }
        let mut core = self.core_write();
        if (id as usize) >= core.backend.num_pages() {
            return Err(StorageError::Unallocated {
                op: IoOp::Read,
                page: id,
                pages: core.backend.num_pages(),
            });
        }
        if self.buffer.touch_if_resident(buffer_key(self.tag, id)) {
            // Lost the race to another reader's fetch: the page became
            // resident while this thread waited for the exclusive lock.
            probe.buffer_hits += 1;
            return core
                .backend
                .page(id)
                .cloned()
                .ok_or(StorageError::Unallocated {
                    op: IoOp::Read,
                    page: id,
                    pages: 0,
                });
        }
        let injected_before = core.backend.faults_injected();
        let fetched = self.fetch_verified(&mut core, id, probe);
        probe.io_faults_injected += core
            .backend
            .faults_injected()
            .saturating_sub(injected_before);
        fetched?;
        // The shard counts the miss; mirror whatever it counted so the
        // probe can never disagree with the global sum.
        if self.buffer.access(buffer_key(self.tag, id)) {
            probe.buffer_hits += 1;
        } else {
            probe.disk_reads += 1;
        }
        core.backend
            .page(id)
            .cloned()
            .ok_or(StorageError::Unallocated {
                op: IoOp::Read,
                page: id,
                pages: 0,
            })
    }

    /// Batch-fetch `ids` into the buffer pool ahead of their reads
    /// (interval-query readahead). Pages already resident are skipped
    /// without counter movement; each page actually transferred counts
    /// exactly like a missing read — one shard miss mirrored into
    /// `probe.disk_reads` — plus a `probe.readahead_pages` attribution,
    /// so the conservation invariant Σ probes == [`IoStats`] delta is
    /// preserved by construction. The whole batch runs under one
    /// exclusive core lock: one lock round-trip instead of one per
    /// child page.
    ///
    /// # Errors
    /// The first failing transfer aborts the batch (pages fetched before
    /// it stay resident and stay counted).
    pub fn prefetch(&self, ids: &[PageId], probe: &mut ReadProbe) -> Result<(), StorageError> {
        if ids.is_empty() {
            return Ok(());
        }
        let mut core = self.core_write();
        for &id in ids {
            let key = buffer_key(self.tag, id);
            if self.buffer.resident(key) {
                continue;
            }
            if (id as usize) >= core.backend.num_pages() {
                return Err(StorageError::Unallocated {
                    op: IoOp::Read,
                    page: id,
                    pages: core.backend.num_pages(),
                });
            }
            let injected_before = core.backend.faults_injected();
            let fetched = self.fetch_verified(&mut core, id, probe);
            probe.io_faults_injected += core
                .backend
                .faults_injected()
                .saturating_sub(injected_before);
            fetched?;
            self.buffer.prefetch_install(key);
            probe.disk_reads += 1;
            probe.readahead_pages += 1;
        }
        Ok(())
    }

    /// Transfer page `id` from the backend and verify its checksum,
    /// retrying transient failures within the policy budget. On final
    /// failure the backend is quiesced (in-flight transfer corruption
    /// must not outlive the error) and the original error is returned
    /// unchanged. Runs entirely under the exclusive core lock, so a
    /// mid-retry corrupt page is never visible to other readers.
    fn fetch_verified(
        &self,
        core: &mut StoreCore,
        id: PageId,
        probe: &mut ReadProbe,
    ) -> Result<(), StorageError> {
        let mut attempt = 0u32;
        // bounded: each pass returns or bumps `attempt`; retries stop at policy.max_attempts.
        loop {
            attempt += 1;
            let outcome = match core.backend.read(id) {
                Ok(()) => core.verify_against_sum(id),
                Err(e) => Err(e),
            };
            match outcome {
                Ok(()) => return Ok(()),
                Err(e) => {
                    if is_checksum_mismatch(&e) {
                        probe.checksum_failures += 1;
                        // ordering: independent stat counter, read only for reporting.
                        self.checksum_failures.fetch_add(1, Ordering::Relaxed);
                    }
                    if e.is_transient() && attempt < self.policy.max_attempts {
                        probe.io_retries += 1;
                        // ordering: independent stat counter, read only for reporting.
                        self.io_retries.fetch_add(1, Ordering::Relaxed);
                        core.clock.pause(self.policy.delay_for(attempt));
                    } else {
                        core.backend.quiesce();
                        return Err(e);
                    }
                }
            }
        }
    }

    /// Overwrite a page's payload. Costs one disk write; the new content
    /// becomes buffer-resident (write-through).
    ///
    /// Accounting policy (see DESIGN.md §6): a successful write *always*
    /// costs exactly one disk write, independent of buffer residency —
    /// the paper's cost model has no notion of absorbed writes, and its
    /// query metric counts read misses only. Write-through *does* warm
    /// the buffer (and refreshes LRU recency), so a read immediately
    /// after a write hits; but that residency update is a caching side
    /// effect, not a read, so it must not increment `buffer_hits`. The
    /// buffer is therefore touched via [`ShardedBuffer::install`], which
    /// reports no hit/miss outcome at all.
    ///
    /// Failure discipline: the stored bytes are verified after the
    /// write (catching silent at-rest bit flips); a verification failure
    /// is retried — rewriting heals medium corruption — and on final
    /// failure the page's prior content is restored, so a failed write
    /// never leaves a torn page behind.
    pub fn write(&mut self, id: PageId, payload: &[u8]) -> Result<(), StorageError> {
        let Self {
            core,
            buffer,
            tag,
            writes,
            io_retries,
            checksum_failures,
            policy,
            txn,
            ..
        } = self;
        let core = core_mut(core);
        if (id as usize) >= core.backend.num_pages() {
            return Err(StorageError::Unallocated {
                op: IoOp::Write,
                page: id,
                pages: core.backend.num_pages(),
            });
        }
        if payload.len() > PAGE_SIZE {
            return Err(StorageError::PayloadTooLarge { len: payload.len() });
        }
        let mut padded = [0u8; PAGE_SIZE];
        padded[..payload.len()].copy_from_slice(payload);
        let new_sum = xxh64(&padded);

        // Pre-image for this write's own rollback, and for the enclosing
        // transaction's (captured once per page per transaction).
        let prior = core.backend.page(id).cloned();
        let prior_sum = core.sums[id as usize];
        if let (Some(txn), Some(bytes)) = (txn.as_mut(), prior.as_ref()) {
            if txn.imaged.insert(id) {
                txn.ops.push(UndoOp::Image {
                    id,
                    bytes: bytes.clone(),
                    sum: prior_sum,
                });
            }
        }

        let mut attempt = 0u32;
        loop {
            attempt += 1;
            let outcome = match core.backend.write(id, payload) {
                Ok(()) => core.verify_written(id, new_sum),
                Err(e) => Err(e),
            };
            match outcome {
                Ok(()) => {
                    core.sums[id as usize] = new_sum;
                    // ordering: independent stat counter, read only for reporting.
                    writes.fetch_add(1, Ordering::Relaxed);
                    buffer.install(buffer_key(*tag, id));
                    return Ok(());
                }
                Err(e) => {
                    if is_checksum_mismatch(&e) {
                        // ordering: independent stat counter, read only for reporting.
                        checksum_failures.fetch_add(1, Ordering::Relaxed);
                    }
                    if e.is_transient() && attempt < policy.max_attempts {
                        // ordering: independent stat counter, read only for reporting.
                        io_retries.fetch_add(1, Ordering::Relaxed);
                        core.clock.pause(policy.delay_for(attempt));
                    } else {
                        // Restore the pre-image: a failed write (torn or
                        // otherwise) must not change observable state.
                        if let (Some(bytes), Some(slot)) = (prior, core.backend.page_mut(id)) {
                            *slot = bytes;
                        }
                        buffer.invalidate(buffer_key(*tag, id));
                        core.backend.quiesce();
                        return Err(e);
                    }
                }
            }
        }
    }

    /// Flush the backend to durable storage, retrying transient faults.
    pub fn sync(&mut self) -> Result<(), StorageError> {
        let Self {
            core,
            io_retries,
            policy,
            ..
        } = self;
        let core = core_mut(core);
        let mut attempt = 0u32;
        loop {
            attempt += 1;
            match core.backend.sync() {
                Ok(()) => return Ok(()),
                Err(e) if e.is_transient() && attempt < policy.max_attempts => {
                    // ordering: independent stat counter, read only for reporting.
                    io_retries.fetch_add(1, Ordering::Relaxed);
                    core.clock.pause(policy.delay_for(attempt));
                }
                Err(e) => {
                    core.backend.quiesce();
                    return Err(e);
                }
            }
        }
    }

    // --- transactions -------------------------------------------------

    /// Start recording undo information. One undo log at a time; nested
    /// `begin_txn` calls fold into the outer transaction and only bump a
    /// depth counter, so a batch can bracket many per-update
    /// begin/commit pairs and a rollback at *any* depth undoes the whole
    /// batch.
    pub fn begin_txn(&mut self) {
        if self.txn.is_none() {
            self.txn = Some(Txn::default());
            self.txn_depth = 0;
        }
        self.txn_depth += 1;
    }

    /// Whether a transaction is currently recording.
    pub fn in_txn(&self) -> bool {
        self.txn.is_some()
    }

    /// Nesting depth of the open transaction (0 when none is recording).
    pub fn txn_depth(&self) -> u32 {
        self.txn_depth
    }

    /// Leave the innermost `begin_txn` scope. Only the outermost commit
    /// discards the undo log and keeps the changes; an inner commit
    /// merely pops one nesting level, leaving the enclosing
    /// transaction's rollback able to undo everything.
    pub fn commit_txn(&mut self) {
        self.txn_depth = self.txn_depth.saturating_sub(1);
        if self.txn_depth == 0 {
            self.txn = None;
        }
    }

    /// Undo every `write`/`allocate`/`free` since [`PageStore::begin_txn`],
    /// in reverse order, then clear the buffer pool (residency acquired
    /// during the transaction is no longer meaningful). Rollback uses raw
    /// page access, bypassing fault injection: recovery must not re-enter
    /// the failure it is recovering from.
    pub fn rollback_txn(&mut self) {
        self.txn_depth = 0;
        let Some(txn) = self.txn.take() else {
            return;
        };
        let core = core_mut(&mut self.core);
        for op in txn.ops.into_iter().rev() {
            match op {
                UndoOp::Image { id, bytes, sum } => {
                    if let Some(slot) = core.backend.page_mut(id) {
                        *slot = bytes;
                    }
                    core.sums[id as usize] = sum;
                }
                UndoOp::Appended => {
                    let len = core.backend.num_pages().saturating_sub(1);
                    core.backend.truncate(len);
                    core.sums.pop();
                }
                UndoOp::ReusedFree { id } => {
                    self.free.push(id);
                }
                UndoOp::Freed { id } => {
                    // Reverse order guarantees this id is the tail push.
                    debug_assert_eq!(self.free.last(), Some(&id));
                    self.free.pop();
                }
            }
        }
        core.backend.quiesce();
        self.buffer.clear();
    }

    // --- inspection ---------------------------------------------------

    /// Inspect a page without touching the buffer pool or I/O counters,
    /// or `None` for an unallocated id.
    ///
    /// For integrity checkers and tooling only: unlike
    /// [`PageStore::read`], a `peek` is invisible to the paper's I/O
    /// accounting, so walking a whole index for validation does not
    /// perturb a measured query that follows. Returns an owned copy:
    /// the page itself lives under the read-path lock.
    pub fn peek(&self, id: PageId) -> Option<Page> {
        self.core_read().backend.page(id).cloned()
    }

    /// Whether `id` currently sits on the free list (integrity checkers:
    /// no reachable node may point at a freed page).
    pub fn is_free(&self, id: PageId) -> bool {
        self.free.contains(&id)
    }

    /// Accumulated I/O counters. Reads and hits are the sum of the
    /// buffer shards' counters — the single source of truth shared with
    /// per-call [`ReadProbe`]s.
    pub fn stats(&self) -> IoStats {
        let counters = self.buffer.counters();
        IoStats {
            reads: counters.misses,
            // ordering: relaxed counter snapshot; stats are advisory.
            writes: self.writes.load(Ordering::Relaxed),
            buffer_hits: counters.hits,
        }
    }

    /// Accumulated failure-path counters since the last reset.
    pub fn fault_stats(&self) -> FaultStats {
        FaultStats {
            // ordering: relaxed counter snapshot; stats are advisory.
            io_retries: self.io_retries.load(Ordering::Relaxed),
            io_faults_injected: self
                .core_read()
                .backend
                .faults_injected()
                // ordering: relaxed counter snapshot; stats are advisory.
                .saturating_sub(self.injected_at_reset.load(Ordering::Relaxed)),
            checksum_failures: self.checksum_failures.load(Ordering::Relaxed),
        }
    }

    /// Zero the I/O and fault counters (start of a measured query
    /// batch). Shared: counters are atomics (and, for reads/hits, live
    /// inside the buffer shards), so an accounting reset needs no
    /// exclusive access — see [`PageStore::reset_buffer`] for the
    /// residency half, which does.
    pub fn reset_stats(&self) {
        self.buffer.reset_counters();
        // ordering: relaxed zeroing of independent stat counters; callers
        // quiesce queries around a reset, nothing synchronizes on these.
        self.writes.store(0, Ordering::Relaxed);
        self.io_retries.store(0, Ordering::Relaxed);
        self.checksum_failures.store(0, Ordering::Relaxed);
        self.injected_at_reset.store(
            self.core_read().backend.faults_injected(),
            Ordering::Relaxed,
        );
    }

    /// Empty the buffer pool (the paper resets it before every query).
    /// Residency only: the accumulated counters are untouched.
    pub fn reset_buffer(&mut self) {
        self.buffer.clear();
    }

    /// Replace the buffer pool capacity (clears residency, keeps the
    /// shard count and accumulated counters). If the pool was shared
    /// with other store versions, this store splits off its own copy
    /// (`Arc::make_mut`): reconfiguration is a local decision.
    pub fn set_buffer_capacity(&mut self, capacity: usize) {
        Arc::make_mut(&mut self.buffer).set_capacity(capacity);
    }

    /// Re-stripe the buffer pool across `shards` lock shards (clears
    /// residency, preserves total capacity and merged counters). One
    /// shard — the default — reproduces the paper's global-LRU numbers
    /// exactly; more shards trade strict global LRU for less reader
    /// contention (DESIGN.md §6).
    pub fn set_buffer_shards(&mut self, shards: usize) {
        Arc::make_mut(&mut self.buffer).set_shards(shards);
    }

    /// Number of buffer pool lock shards.
    pub fn buffer_shards(&self) -> usize {
        self.buffer.shard_count()
    }

    /// Switch the buffer pool eviction policy (clears residency, keeps
    /// accumulated counters — see [`ShardedBuffer::set_policy`]). As
    /// with capacity, a shared pool is split off first.
    pub fn set_buffer_policy(&mut self, policy: BufferPolicy) {
        Arc::make_mut(&mut self.buffer).set_policy(policy);
    }

    /// Current buffer pool eviction policy.
    pub fn buffer_policy(&self) -> BufferPolicy {
        self.buffer.policy()
    }

    /// Readahead effectiveness counters accumulated by [`Self::prefetch`].
    pub fn readahead_stats(&self) -> ReadaheadStats {
        self.buffer.readahead_stats()
    }

    /// Probation-queue evictions the 2Q policy absorbed while protected
    /// pages stayed resident (0 under LRU).
    pub fn scan_evictions_avoided(&self) -> u64 {
        self.buffer.scan_evictions_avoided()
    }

    /// The save epoch this store was loaded at (0 for a fresh store);
    /// `persist::save` bumps it monotonically.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    // --- persistence plumbing (see `crate::persist`) ------------------

    /// The free list, for serialization.
    pub(crate) fn free_list(&self) -> &[PageId] {
        &self.free
    }

    /// Restore a free list after loading.
    pub(crate) fn set_free_list(&mut self, free: Vec<PageId>) {
        self.free = free;
    }

    /// Restore the save epoch after loading / bump it when saving.
    pub(crate) fn set_epoch(&mut self, epoch: u64) {
        self.epoch = epoch;
    }

    /// Allocate without consulting the free list (used while loading a
    /// serialized store, where page ids must stay dense and ordered).
    /// Infallible: the loader builds over a fresh [`MemBackend`].
    pub(crate) fn allocate_silent(&mut self) -> PageId {
        let core = core_mut(&mut self.core);
        // stilint::allow(no_io_unwrap, "loader caps page_count at u32 (file format length fields) over a MemBackend that only fails on id overflow, so allocate cannot fail")
        let id = core.backend.allocate().expect("loader allocate");
        core.sums.push(zero_page_sum());
        id
    }

    /// Raw page access without buffer accounting (serialization only).
    /// Owned copy: the page lives under the read-path lock.
    pub(crate) fn raw_page(&self, id: PageId) -> Page {
        let page = self.core_read().backend.page(id).cloned();
        // stilint::allow(no_panic, "persist iterates ids below num_pages only")
        page.expect("raw_page in bounds")
    }

    /// Raw mutable page access without accounting (deserialization only).
    pub(crate) fn raw_page_mut(&mut self, id: PageId) -> &mut Page {
        let page = core_mut(&mut self.core).backend.page_mut(id);
        // stilint::allow(no_panic, "persist iterates ids below num_pages only")
        page.expect("raw_page_mut in bounds")
    }

    /// Recompute a page's recorded checksum from its current raw bytes
    /// (loader only: pages are filled via [`PageStore::raw_page_mut`]).
    pub(crate) fn refresh_sum(&mut self, id: PageId) {
        let core = core_mut(&mut self.core);
        if let Some(p) = core.backend.page(id) {
            core.sums[id as usize] = xxh64(p.bytes());
        }
    }

    /// A page's recorded checksum (serialization reuses it instead of
    /// re-hashing).
    pub(crate) fn page_sum(&self, id: PageId) -> u64 {
        self.core_read().sums[id as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{FaultKind, FaultPlan, FaultyBackend, ScheduledFault};

    /// Read discarding the per-call probe (the tests below assert on
    /// the global counters unless they are probing attribution itself).
    fn read(s: &PageStore, id: PageId) -> Result<Page, StorageError> {
        s.read(id, &mut ReadProbe::new())
    }

    #[test]
    fn allocate_read_write_round_trip() {
        let mut s = PageStore::new(4);
        let a = s.allocate().unwrap();
        let b = s.allocate().unwrap();
        assert_eq!((a, b), (0, 1));
        assert_eq!(s.num_pages(), 2);
        assert_eq!(s.bytes(), 2 * PAGE_SIZE);

        s.write(a, &[1, 2, 3]).unwrap();
        assert_eq!(&read(&s, a).unwrap().bytes()[..3], &[1, 2, 3]);
    }

    #[test]
    fn read_miss_then_hit_accounting() {
        let mut s = PageStore::new(2);
        let a = s.allocate().unwrap();
        s.reset_stats();
        s.reset_buffer();
        read(&s, a).unwrap(); // miss
        read(&s, a).unwrap(); // hit
        let st = s.stats();
        assert_eq!(st.reads, 1);
        assert_eq!(st.buffer_hits, 1);
    }

    #[test]
    fn probe_mirrors_global_counters_exactly() {
        let mut s = PageStore::new(1);
        let a = s.allocate().unwrap();
        let b = s.allocate().unwrap();
        s.reset_stats();
        s.reset_buffer();
        let mut probe = ReadProbe::new();
        s.read(a, &mut probe).unwrap(); // miss
        s.read(a, &mut probe).unwrap(); // hit
        s.read(b, &mut probe).unwrap(); // miss, evicts a
        s.read(a, &mut probe).unwrap(); // miss
        assert_eq!(probe.disk_reads, 3);
        assert_eq!(probe.buffer_hits, 1);
        let st = s.stats();
        assert_eq!(st.reads, probe.disk_reads);
        assert_eq!(st.buffer_hits, probe.buffer_hits);
        assert_eq!(probe.io_retries, 0);
        assert_eq!(probe.checksum_failures, 0);
    }

    #[test]
    fn concurrent_probes_sum_to_the_global_delta() {
        let mut s = PageStore::new(4);
        let pages: Vec<PageId> = (0..8).map(|_| s.allocate().unwrap()).collect();
        for &p in &pages {
            s.write(p, &[p as u8]).unwrap();
        }
        s.reset_stats();
        s.reset_buffer();
        s.set_buffer_shards(4);
        let store = &s;
        let pages = &pages;
        let probes: Vec<ReadProbe> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|t| {
                    scope.spawn(move || {
                        let mut probe = ReadProbe::new();
                        for round in 0..50u32 {
                            let p = pages[((t + round) % 8) as usize];
                            let page = store.read(p, &mut probe).unwrap();
                            assert_eq!(page.bytes()[0], p as u8, "torn read");
                        }
                        probe
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let mut total = ReadProbe::new();
        for p in &probes {
            total.merge(p);
        }
        let st = s.stats();
        assert_eq!(st.reads, total.disk_reads, "Σ probe reads == global");
        assert_eq!(st.buffer_hits, total.buffer_hits, "Σ probe hits == global");
        assert_eq!(st.reads + st.buffer_hits, 4 * 50, "every access accounted");
    }

    #[test]
    fn buffer_reset_makes_reads_cost_again() {
        let mut s = PageStore::new(2);
        let a = s.allocate().unwrap();
        read(&s, a).unwrap();
        s.reset_stats();
        s.reset_buffer();
        read(&s, a).unwrap();
        assert_eq!(s.stats().reads, 1);
    }

    #[test]
    fn write_is_write_through() {
        let mut s = PageStore::new(2);
        let a = s.allocate().unwrap();
        s.reset_stats();
        s.write(a, &[7]).unwrap();
        read(&s, a).unwrap(); // should hit: write populated the buffer
        let st = s.stats();
        assert_eq!(st.writes, 1);
        assert_eq!(st.reads, 0);
        assert_eq!(st.buffer_hits, 1);
    }

    /// Regression pin for the write-accounting decision: writes always
    /// cost one disk write each (resident or not), never a buffer hit;
    /// they warm the buffer for subsequent reads; and read accounting is
    /// unaffected. The exact counters for this scripted sequence are the
    /// contract — if they drift, the paper's figures drift with them.
    #[test]
    fn scripted_sequence_counts_are_pinned() {
        let mut s = PageStore::new(2);
        let a = s.allocate().unwrap();
        let b = s.allocate().unwrap();
        let c = s.allocate().unwrap();
        s.reset_stats();
        s.reset_buffer();

        s.write(a, &[1]).unwrap(); // writes=1, buffer: [a]
        s.write(a, &[2]).unwrap(); // resident: writes=2, still one write each
        read(&s, a).unwrap(); //       hit:          hits=1
        read(&s, b).unwrap(); //       miss:         reads=1, buffer: [b, a]
        s.write(c, &[3]).unwrap(); // miss-install: writes=3, evicts a → [c, b]
        read(&s, a).unwrap(); //       miss:         reads=2, evicts b → [a, c]
        read(&s, c).unwrap(); //       hit:          hits=2
        s.write(b, &[4]).unwrap(); // writes=4, evicts a → [b, c]
        read(&s, b).unwrap(); //       hit:          hits=3

        assert_eq!(
            s.stats(),
            IoStats {
                reads: 2,
                writes: 4,
                buffer_hits: 3,
            }
        );
        assert_eq!(s.fault_stats(), FaultStats::default());
    }

    #[test]
    fn eviction_under_pressure() {
        let mut s = PageStore::new(1);
        let a = s.allocate().unwrap();
        let b = s.allocate().unwrap();
        s.reset_stats();
        read(&s, a).unwrap();
        read(&s, b).unwrap(); // evicts a
        read(&s, a).unwrap(); // miss again
        assert_eq!(s.stats().reads, 3);
        assert_eq!(s.stats().buffer_hits, 0);
    }

    #[test]
    fn unallocated_access_is_a_typed_error() {
        let mut s = PageStore::new(2);
        assert!(matches!(
            read(&s, 0),
            Err(StorageError::Unallocated { page: 0, .. })
        ));
        assert!(matches!(
            s.write(5, &[1]),
            Err(StorageError::Unallocated { page: 5, .. })
        ));
        assert!(matches!(
            s.free(9),
            Err(StorageError::Unallocated { page: 9, .. })
        ));
    }

    #[test]
    fn oversized_payload_is_rejected_without_touching_state() {
        let mut s = PageStore::new(2);
        let a = s.allocate().unwrap();
        s.write(a, &[3; 10]).unwrap();
        s.reset_stats();
        let big = vec![1u8; PAGE_SIZE + 1];
        assert_eq!(
            s.write(a, &big),
            Err(StorageError::PayloadTooLarge { len: PAGE_SIZE + 1 })
        );
        assert_eq!(s.stats().writes, 0);
        assert_eq!(&read(&s, a).unwrap().bytes()[..10], &[3; 10]);
    }

    #[test]
    fn stats_total() {
        let st = IoStats {
            reads: 3,
            writes: 4,
            buffer_hits: 9,
        };
        assert_eq!(st.total(), 7);
    }

    #[test]
    fn freed_pages_are_reused() {
        let mut s = PageStore::new(2);
        let a = s.allocate().unwrap();
        let _b = s.allocate().unwrap();
        s.write(a, &[9]).unwrap();
        s.free(a).unwrap();
        assert_eq!(s.free_pages(), 1);
        let c = s.allocate().unwrap();
        assert_eq!(c, a, "free list should hand back the freed page");
        assert_eq!(s.free_pages(), 0);
        // Reused page comes back zeroed.
        assert!(read(&s, c).unwrap().bytes().iter().all(|&x| x == 0));
        assert_eq!(s.num_pages(), 2, "no growth when reusing");
    }

    #[test]
    fn free_invalidates_buffer_residency() {
        let mut s = PageStore::new(2);
        let a = s.allocate().unwrap();
        read(&s, a).unwrap(); // resident
        s.free(a).unwrap();
        let b = s.allocate().unwrap();
        assert_eq!(a, b);
        s.reset_stats();
        read(&s, b).unwrap();
        assert_eq!(s.stats().reads, 1, "stale residency must not mask the read");
    }

    #[test]
    #[cfg(debug_assertions)] // the double-free scan is a debug-only check
    #[should_panic(expected = "double free")]
    fn double_free_panics() {
        let mut s = PageStore::new(2);
        let a = s.allocate().unwrap();
        s.free(a).unwrap();
        s.free(a).unwrap();
    }

    // --- retry and fault behaviour ------------------------------------

    fn faulty_store(plan: FaultPlan) -> PageStore {
        PageStore::with_backend(Box::new(FaultyBackend::new_mem(plan)), 4)
    }

    #[test]
    fn transient_fault_is_retried_and_counted() {
        // Op 0 is the allocate; op 1 the write (faulted, transient,
        // retried as op 2 and succeeds).
        let plan = FaultPlan::new(vec![ScheduledFault {
            at_op: 1,
            kind: FaultKind::Fail { transient: true },
        }]);
        let mut s = faulty_store(plan);
        let a = s.allocate().unwrap();
        s.write(a, &[5]).unwrap();
        assert_eq!(&read(&s, a).unwrap().bytes()[..1], &[5]);
        let fs = s.fault_stats();
        assert_eq!(fs.io_retries, 1, "one transient fault, one retry");
        assert_eq!(fs.io_faults_injected, 1);
        assert!(s.clock().pauses() >= 1, "backoff was recorded");
    }

    #[test]
    fn permanent_fault_returns_original_error_unchanged() {
        let plan = FaultPlan::new(vec![ScheduledFault {
            at_op: 1,
            kind: FaultKind::Fail { transient: false },
        }]);
        let mut s = faulty_store(plan);
        let a = s.allocate().unwrap();
        let err = s.write(a, &[1]).unwrap_err();
        assert_eq!(
            err,
            StorageError::Injected {
                op: IoOp::Write,
                page: Some(a),
                transient: false,
            }
        );
        assert_eq!(s.fault_stats().io_retries, 0, "permanent: no retry");
        // State unchanged: the page still reads back zeroed.
        assert!(read(&s, a).unwrap().bytes().iter().all(|&x| x == 0));
    }

    #[test]
    fn retry_budget_exhaustion_surfaces_the_transient_error() {
        // Three consecutive transient faults exceed max_attempts=3's two
        // retries: ops 1, 2, 3 all fail.
        let plan = FaultPlan::new(
            (1..=3)
                .map(|at_op| ScheduledFault {
                    at_op,
                    kind: FaultKind::Fail { transient: true },
                })
                .collect(),
        );
        let mut s = faulty_store(plan);
        let a = s.allocate().unwrap();
        let err = s.write(a, &[1]).unwrap_err();
        assert!(err.is_transient(), "the original transient error surfaces");
        assert_eq!(s.fault_stats().io_retries, 2, "budget of 3 attempts");
    }

    #[test]
    fn torn_write_is_rolled_back_to_the_prior_content() {
        // Op 0 allocate, op 1 the good write, op 2 the torn write.
        let plan = FaultPlan::new(vec![ScheduledFault {
            at_op: 2,
            kind: FaultKind::TornWrite { keep_bytes: 3 },
        }]);
        let mut s = faulty_store(plan);
        let a = s.allocate().unwrap();
        s.write(a, &[7; 8]).unwrap();
        let err = s.write(a, &[9; 8]).unwrap_err();
        assert!(!err.is_transient());
        assert_eq!(
            &read(&s, a).unwrap().bytes()[..8],
            &[7; 8],
            "torn write rolled back"
        );
        assert_eq!(s.fault_stats().io_faults_injected, 1);
    }

    #[test]
    fn read_bit_flip_heals_via_retry_and_counts_checksum_failure() {
        // Op 0 allocate, op 1 write, op 2 the read transfer (flipped).
        let plan = FaultPlan::new(vec![ScheduledFault {
            at_op: 2,
            kind: FaultKind::BitFlip { byte: 0, bit: 0 },
        }]);
        let mut s = faulty_store(plan);
        let a = s.allocate().unwrap();
        s.write(a, &[0b10]).unwrap();
        s.reset_buffer();
        s.reset_stats();
        let mut probe = ReadProbe::new();
        let got = s.read(a, &mut probe).unwrap().bytes()[0];
        assert_eq!(got, 0b10, "retry re-fetched the clean page");
        let fs = s.fault_stats();
        assert_eq!(fs.checksum_failures, 1);
        assert_eq!(fs.io_retries, 1);
        assert_eq!(s.stats().reads, 1, "one logical read despite the retry");
        // The probe attributes the whole failure path to this call.
        assert_eq!(probe.disk_reads, 1);
        assert_eq!(probe.io_retries, 1);
        assert_eq!(probe.checksum_failures, 1);
        assert_eq!(probe.io_faults_injected, 1);
    }

    #[test]
    fn write_bit_flip_is_caught_and_healed_by_rewrite() {
        // Op 0 allocate, op 1 the flipped write; the verify catches it
        // and the retry rewrites cleanly.
        let plan = FaultPlan::new(vec![ScheduledFault {
            at_op: 1,
            kind: FaultKind::BitFlip { byte: 0, bit: 3 },
        }]);
        let mut s = faulty_store(plan);
        let a = s.allocate().unwrap();
        s.write(a, &[1]).unwrap();
        assert_eq!(read(&s, a).unwrap().bytes()[0], 1, "flip did not stick");
        let fs = s.fault_stats();
        assert_eq!(fs.checksum_failures, 1);
        assert_eq!(fs.io_retries, 1);
    }

    // --- transactions -------------------------------------------------

    #[test]
    fn rollback_restores_writes_allocations_and_frees() {
        let mut s = PageStore::new(4);
        let a = s.allocate().unwrap();
        let b = s.allocate().unwrap();
        s.write(a, &[1; 4]).unwrap();
        s.write(b, &[2; 4]).unwrap();

        s.begin_txn();
        s.write(a, &[9; 4]).unwrap();
        let c = s.allocate().unwrap();
        s.write(c, &[8; 4]).unwrap();
        s.free(b).unwrap();
        let d = s.allocate().unwrap(); // reuses b from the free list
        assert_eq!(d, b);
        s.rollback_txn();

        assert_eq!(s.num_pages(), 2, "appended page gone");
        assert_eq!(&read(&s, a).unwrap().bytes()[..4], &[1; 4], "write undone");
        assert_eq!(
            &read(&s, b).unwrap().bytes()[..4],
            &[2; 4],
            "free+reuse undone"
        );
        assert_eq!(s.free_pages(), 0);
        assert!(!s.in_txn());
    }

    #[test]
    fn commit_keeps_changes_and_drops_the_log() {
        let mut s = PageStore::new(4);
        let a = s.allocate().unwrap();
        s.begin_txn();
        s.write(a, &[5]).unwrap();
        s.commit_txn();
        assert!(!s.in_txn());
        assert_eq!(read(&s, a).unwrap().bytes()[0], 5);
        s.rollback_txn(); // no-op outside a txn
        assert_eq!(read(&s, a).unwrap().bytes()[0], 5);
    }

    #[test]
    fn inner_commit_keeps_the_outer_txn_rollbackable() {
        // The batch pattern: an outer txn brackets several inner
        // begin/commit pairs (one per tree update). Committing an inner
        // pair must NOT discard the undo log — the outer rollback still
        // undoes everything since the outer begin.
        let mut s = PageStore::new(4);
        let a = s.allocate().unwrap();
        s.write(a, &[1]).unwrap();
        s.begin_txn(); // outer (batch)
        assert_eq!(s.txn_depth(), 1);
        s.begin_txn(); // inner (one update)
        assert_eq!(s.txn_depth(), 2);
        s.write(a, &[2]).unwrap();
        s.commit_txn(); // inner commit: update done, batch still open
        assert!(s.in_txn(), "outer txn survives the inner commit");
        assert_eq!(s.txn_depth(), 1);
        s.begin_txn(); // second update
        s.write(a, &[3]).unwrap();
        s.commit_txn();
        s.rollback_txn(); // batch fails: everything comes back
        assert_eq!(read(&s, a).unwrap().bytes()[0], 1, "both updates undone");
        assert_eq!(s.txn_depth(), 0);
        assert!(!s.in_txn());
    }

    #[test]
    fn outermost_commit_discards_the_log() {
        let mut s = PageStore::new(4);
        let a = s.allocate().unwrap();
        s.begin_txn();
        s.begin_txn();
        s.write(a, &[7]).unwrap();
        s.commit_txn();
        s.commit_txn(); // outermost: log gone
        assert!(!s.in_txn());
        s.rollback_txn(); // no-op
        assert_eq!(read(&s, a).unwrap().bytes()[0], 7);
    }

    #[test]
    fn inner_rollback_aborts_the_whole_nest() {
        let mut s = PageStore::new(4);
        let a = s.allocate().unwrap();
        s.write(a, &[1]).unwrap();
        s.begin_txn();
        s.write(a, &[2]).unwrap();
        s.begin_txn();
        s.write(a, &[3]).unwrap();
        s.rollback_txn(); // at depth 2: undoes back to the outer begin
        assert_eq!(read(&s, a).unwrap().bytes()[0], 1);
        assert_eq!(s.txn_depth(), 0, "rollback closes every level");
        assert!(!s.in_txn());
    }

    #[test]
    fn shared_pool_keeps_versions_residency_distinct() {
        // Two stores share one pool under different tags: page 0 of one
        // must never register as resident for the other, and the pool's
        // counters account both stores' traffic.
        let mut v1 = PageStore::new(8);
        let a = v1.allocate().unwrap();
        v1.write(a, &[1]).unwrap();
        let mut backend2 = MemBackend::new();
        let b = backend2.allocate().unwrap();
        backend2.write(b, &[2]).unwrap();
        let v2 = PageStore::with_backend_shared(Box::new(backend2), v1.share_buffer(), 1);
        assert_eq!((a, b), (0, 0), "same page id in both versions");
        assert_eq!(v2.buffer_tag(), 1);

        v1.reset_stats();
        v1.reset_buffer(); // drop the write-through residency
        read(&v1, a).unwrap(); // miss: installs tag-0 key
        assert_eq!(read(&v2, b).unwrap().bytes()[0], 2);
        // v2's read of the same page id was a *miss* — tag-1 keys do not
        // alias tag-0 residency — and returned v2's bytes, not v1's.
        let st = v1.stats();
        assert_eq!(st.reads, 2, "pool-wide: both versions' misses counted");
        assert_eq!(st.buffer_hits, 0);
        assert!(read(&v1, a).is_ok());
        assert_eq!(v1.stats().buffer_hits, 1, "v1 re-read hits its own key");
    }

    #[test]
    fn clone_of_a_sharing_store_gets_a_private_pool() {
        let v1 = PageStore::new(4);
        let v2 = PageStore::with_backend_shared(Box::new(MemBackend::new()), v1.share_buffer(), 1);
        let clone = v2.clone();
        clone.reset_stats(); // zeroes the clone's pool counters...
        v1.reset_stats();
        let mut probe = ReadProbe::new();
        let _ = clone.read(0, &mut probe); // unallocated: error, no counters
        assert_eq!(v1.stats(), IoStats::default(), "clone's pool is detached");
    }

    #[test]
    fn nested_begin_folds_into_the_outer_txn() {
        let mut s = PageStore::new(4);
        let a = s.allocate().unwrap();
        s.write(a, &[1]).unwrap();
        s.begin_txn();
        s.write(a, &[2]).unwrap();
        s.begin_txn(); // folds
        s.write(a, &[3]).unwrap();
        s.rollback_txn();
        assert_eq!(
            read(&s, a).unwrap().bytes()[0],
            1,
            "outer rollback undoes all"
        );
    }

    #[test]
    fn with_backend_adopts_existing_pages_and_checksums() {
        let mut m = MemBackend::new();
        let id = m.allocate().unwrap();
        m.write(id, &[4; 4]).unwrap();
        let s = PageStore::with_backend(Box::new(m), 4);
        assert_eq!(s.num_pages(), 1);
        assert_eq!(&read(&s, id).unwrap().bytes()[..4], &[4; 4]);
        assert_eq!(s.fault_stats().checksum_failures, 0);
    }

    #[test]
    fn resharding_preserves_counters_and_sequential_totals() {
        let mut s = PageStore::new(4);
        let pages: Vec<PageId> = (0..6).map(|_| s.allocate().unwrap()).collect();
        s.reset_stats();
        s.reset_buffer();
        for &p in &pages {
            read(&s, p).unwrap();
        }
        let before = s.stats();
        assert_eq!(before.reads, 6);
        s.set_buffer_shards(4);
        assert_eq!(s.buffer_shards(), 4);
        assert_eq!(s.stats(), before, "re-striping moves no counters");
        for &p in &pages {
            read(&s, p).unwrap();
        }
        let after = s.stats();
        assert_eq!(
            after.reads + after.buffer_hits,
            12,
            "every access still accounted after re-striping"
        );
    }
}
