//! The simulated disk: a growable array of pages behind an LRU buffer.

use crate::{LruBuffer, Page, PageId, PAGE_SIZE};

/// Counters for logical disk traffic.
///
/// A *read* is counted whenever a page is fetched and misses the buffer
/// pool; buffer hits are free, matching how the paper reports "average
/// number of disk accesses" with a 10-page LRU buffer.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IoStats {
    /// Page fetches that missed the buffer.
    pub reads: u64,
    /// Page writes (build-time traffic; not part of the query metric).
    pub writes: u64,
    /// Page fetches that hit the buffer (for diagnostics).
    pub buffer_hits: u64,
}

impl IoStats {
    /// Total disk accesses (reads + writes).
    pub fn total(&self) -> u64 {
        self.reads + self.writes
    }
}

/// An in-memory simulated disk of fixed-size pages with an LRU buffer pool
/// and I/O accounting.
///
/// Both tree implementations own one `PageStore` and route *all* node
/// traffic through it, so query-time I/O counts are faithful to a
/// disk-resident index: the paper's page capacity is enforced by the node
/// serializers (entries per node), and the buffer is reset before every
/// measured query via [`PageStore::reset_buffer`].
#[derive(Debug, Clone)]
pub struct PageStore {
    pages: Vec<Page>,
    free: Vec<PageId>,
    buffer: LruBuffer,
    stats: IoStats,
}

impl PageStore {
    /// Create an empty store with a buffer pool of `buffer_capacity` pages.
    pub fn new(buffer_capacity: usize) -> Self {
        Self {
            pages: Vec::new(),
            free: Vec::new(),
            buffer: LruBuffer::new(buffer_capacity),
            stats: IoStats::default(),
        }
    }

    /// Number of allocated pages (the index's disk footprint, fig. 16).
    pub fn num_pages(&self) -> usize {
        self.pages.len()
    }

    /// Disk footprint in bytes.
    pub fn bytes(&self) -> usize {
        self.pages.len() * PAGE_SIZE
    }

    /// Allocate a page and return its id, reusing freed pages first.
    ///
    /// # Panics
    /// If more than `u32::MAX` pages are allocated.
    pub fn allocate(&mut self) -> PageId {
        if let Some(id) = self.free.pop() {
            self.pages[id as usize] = Page::zeroed();
            return id;
        }
        // stilint::allow(no_panic, "u32::MAX pages is a 16 TiB simulated disk; exceeding it is unreachable in experiments and unrecoverable if hit")
        let id = PageId::try_from(self.pages.len()).expect("page id overflow");
        self.pages.push(Page::zeroed());
        id
    }

    /// Return a page to the free list for reuse by a later
    /// [`PageStore::allocate`]. The page's content becomes invalid and it
    /// is dropped from the buffer pool.
    ///
    /// # Panics
    /// On an unallocated id or a double free.
    pub fn free(&mut self, id: PageId) {
        assert!(
            (id as usize) < self.pages.len(),
            "free of unallocated page {id}"
        );
        // The linear double-free scan would make mass deallocation
        // quadratic in the free-list length; keep it as a debug check.
        debug_assert!(!self.free.contains(&id), "double free of page {id}");
        self.buffer.invalidate(id);
        self.free.push(id);
    }

    /// Number of pages currently on the free list.
    pub fn free_pages(&self) -> usize {
        self.free.len()
    }

    /// Fetch a page for reading, going through the buffer pool. A miss
    /// costs one disk read.
    ///
    /// # Panics
    /// On an unallocated id — tree code never follows dangling pointers.
    pub fn read(&mut self, id: PageId) -> &Page {
        assert!(
            (id as usize) < self.pages.len(),
            "read of unallocated page {id}"
        );
        if self.buffer.access(id) {
            self.stats.buffer_hits += 1;
        } else {
            self.stats.reads += 1;
        }
        &self.pages[id as usize]
    }

    /// Overwrite a page's payload. Costs one disk write; the new content
    /// becomes buffer-resident (write-through).
    ///
    /// Accounting policy (see DESIGN.md §6): a write *always* costs
    /// exactly one disk write, independent of buffer residency — the
    /// paper's cost model has no notion of absorbed writes, and its query
    /// metric counts read misses only. Write-through *does* warm the
    /// buffer (and refreshes LRU recency), so a read immediately after a
    /// write hits; but that residency update is a caching side effect,
    /// not a read, so it must not increment `buffer_hits`. The buffer is
    /// therefore touched via [`LruBuffer::install`], which reports no
    /// hit/miss outcome at all.
    ///
    /// # Panics
    /// On an unallocated id or oversized payload.
    pub fn write(&mut self, id: PageId, payload: &[u8]) {
        assert!(
            (id as usize) < self.pages.len(),
            "write of unallocated page {id}"
        );
        self.pages[id as usize].fill_from(payload);
        self.stats.writes += 1;
        self.buffer.install(id);
    }

    /// Inspect a page without touching the buffer pool or I/O counters,
    /// or `None` for an unallocated id.
    ///
    /// For integrity checkers and tooling only: unlike
    /// [`PageStore::read`], a `peek` is invisible to the paper's I/O
    /// accounting, so walking a whole index for validation does not
    /// perturb a measured query that follows.
    pub fn peek(&self, id: PageId) -> Option<&Page> {
        self.pages.get(id as usize)
    }

    /// Whether `id` currently sits on the free list (integrity checkers:
    /// no reachable node may point at a freed page).
    pub fn is_free(&self, id: PageId) -> bool {
        self.free.contains(&id)
    }

    /// Accumulated I/O counters.
    pub fn stats(&self) -> IoStats {
        self.stats
    }

    /// Zero the I/O counters (start of a measured query batch).
    pub fn reset_stats(&mut self) {
        self.stats = IoStats::default();
    }

    /// Empty the buffer pool (the paper resets it before every query).
    pub fn reset_buffer(&mut self) {
        self.buffer.clear();
    }

    /// Replace the buffer pool capacity (clears residency).
    pub fn set_buffer_capacity(&mut self, capacity: usize) {
        self.buffer = LruBuffer::new(capacity);
    }

    // --- persistence plumbing (see `crate::persist`) ------------------

    /// The free list, for serialization.
    pub(crate) fn free_list(&self) -> &[PageId] {
        &self.free
    }

    /// Restore a free list after loading.
    pub(crate) fn set_free_list(&mut self, free: Vec<PageId>) {
        self.free = free;
    }

    /// Allocate without consulting the free list (used while loading a
    /// serialized store, where page ids must stay dense and ordered).
    pub(crate) fn allocate_silent(&mut self) -> PageId {
        // stilint::allow(no_panic, "loader caps page_count at u32 (file format length fields), so the conversion cannot fail")
        let id = PageId::try_from(self.pages.len()).expect("page id overflow");
        self.pages.push(Page::zeroed());
        id
    }

    /// Raw page access without buffer accounting (serialization only).
    pub(crate) fn raw_page(&self, id: PageId) -> &Page {
        &self.pages[id as usize]
    }

    /// Raw mutable page access without accounting (deserialization only).
    pub(crate) fn raw_page_mut(&mut self, id: PageId) -> &mut Page {
        &mut self.pages[id as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocate_read_write_round_trip() {
        let mut s = PageStore::new(4);
        let a = s.allocate();
        let b = s.allocate();
        assert_eq!((a, b), (0, 1));
        assert_eq!(s.num_pages(), 2);
        assert_eq!(s.bytes(), 2 * PAGE_SIZE);

        s.write(a, &[1, 2, 3]);
        assert_eq!(&s.read(a).bytes()[..3], &[1, 2, 3]);
    }

    #[test]
    fn read_miss_then_hit_accounting() {
        let mut s = PageStore::new(2);
        let a = s.allocate();
        s.reset_stats();
        s.reset_buffer();
        s.read(a); // miss
        s.read(a); // hit
        let st = s.stats();
        assert_eq!(st.reads, 1);
        assert_eq!(st.buffer_hits, 1);
    }

    #[test]
    fn buffer_reset_makes_reads_cost_again() {
        let mut s = PageStore::new(2);
        let a = s.allocate();
        s.read(a);
        s.reset_stats();
        s.reset_buffer();
        s.read(a);
        assert_eq!(s.stats().reads, 1);
    }

    #[test]
    fn write_is_write_through() {
        let mut s = PageStore::new(2);
        let a = s.allocate();
        s.reset_stats();
        s.write(a, &[7]);
        s.read(a); // should hit: write populated the buffer
        let st = s.stats();
        assert_eq!(st.writes, 1);
        assert_eq!(st.reads, 0);
        assert_eq!(st.buffer_hits, 1);
    }

    /// Regression pin for the write-accounting decision: writes always
    /// cost one disk write each (resident or not), never a buffer hit;
    /// they warm the buffer for subsequent reads; and read accounting is
    /// unaffected. The exact counters for this scripted sequence are the
    /// contract — if they drift, the paper's figures drift with them.
    #[test]
    fn scripted_sequence_counts_are_pinned() {
        let mut s = PageStore::new(2);
        let a = s.allocate();
        let b = s.allocate();
        let c = s.allocate();
        s.reset_stats();
        s.reset_buffer();

        s.write(a, &[1]); //               writes=1, buffer: [a]
        s.write(a, &[2]); // resident:     writes=2, still one write each
        s.read(a); //        hit:          hits=1
        s.read(b); //        miss:         reads=1, buffer: [b, a]
        s.write(c, &[3]); // miss-install: writes=3, evicts a → [c, b]
        s.read(a); //        miss:         reads=2, evicts b → [a, c]
        s.read(c); //        hit:          hits=2
        s.write(b, &[4]); // writes=4, evicts a → [b, c]
        s.read(b); //        hit:          hits=3

        assert_eq!(
            s.stats(),
            IoStats {
                reads: 2,
                writes: 4,
                buffer_hits: 3,
            }
        );
    }

    #[test]
    fn eviction_under_pressure() {
        let mut s = PageStore::new(1);
        let a = s.allocate();
        let b = s.allocate();
        s.reset_stats();
        s.read(a);
        s.read(b); // evicts a
        s.read(a); // miss again
        assert_eq!(s.stats().reads, 3);
        assert_eq!(s.stats().buffer_hits, 0);
    }

    #[test]
    #[should_panic(expected = "unallocated page")]
    fn read_unallocated_panics() {
        let mut s = PageStore::new(2);
        s.read(0);
    }

    #[test]
    fn stats_total() {
        let st = IoStats {
            reads: 3,
            writes: 4,
            buffer_hits: 9,
        };
        assert_eq!(st.total(), 7);
    }

    #[test]
    fn freed_pages_are_reused() {
        let mut s = PageStore::new(2);
        let a = s.allocate();
        let _b = s.allocate();
        s.write(a, &[9]);
        s.free(a);
        assert_eq!(s.free_pages(), 1);
        let c = s.allocate();
        assert_eq!(c, a, "free list should hand back the freed page");
        assert_eq!(s.free_pages(), 0);
        // Reused page comes back zeroed.
        assert!(s.read(c).bytes().iter().all(|&x| x == 0));
        assert_eq!(s.num_pages(), 2, "no growth when reusing");
    }

    #[test]
    fn free_invalidates_buffer_residency() {
        let mut s = PageStore::new(2);
        let a = s.allocate();
        s.read(a); // resident
        s.free(a);
        let b = s.allocate();
        assert_eq!(a, b);
        s.reset_stats();
        s.read(b);
        assert_eq!(s.stats().reads, 1, "stale residency must not mask the read");
    }

    #[test]
    #[cfg(debug_assertions)] // the double-free scan is a debug-only check
    #[should_panic(expected = "double free")]
    fn double_free_panics() {
        let mut s = PageStore::new(2);
        let a = s.allocate();
        s.free(a);
        s.free(a);
    }
}
