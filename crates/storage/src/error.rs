//! Typed storage errors.
//!
//! Every fallible operation on the I/O path — [`crate::PageStore`]
//! methods, the [`crate::backend::PageBackend`] trait, and the tree
//! layers above — reports a [`StorageError`] instead of panicking, so a
//! short read, torn write, or flipped bit surfaces as a recoverable,
//! matchable value (see DESIGN.md §6, "Failure model & recovery").

use crate::PageId;

/// Which storage operation an error occurred in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IoOp {
    /// Fetching a page from the backend.
    Read,
    /// Writing a page payload to the backend.
    Write,
    /// Appending a fresh page to the backend.
    Allocate,
    /// Flushing backend state to durable storage.
    Sync,
}

impl std::fmt::Display for IoOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoOp::Read => write!(f, "read"),
            IoOp::Write => write!(f, "write"),
            IoOp::Allocate => write!(f, "allocate"),
            IoOp::Sync => write!(f, "sync"),
        }
    }
}

/// Why a page failed its integrity check.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CorruptReason {
    /// The page content does not match its recorded checksum.
    Checksum,
    /// The page checksummed clean but its node payload failed to decode.
    Decode,
}

impl std::fmt::Display for CorruptReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CorruptReason::Checksum => write!(f, "checksum mismatch"),
            CorruptReason::Decode => write!(f, "node payload failed to decode"),
        }
    }
}

/// A typed failure on the storage I/O path.
///
/// `transient` faults may succeed when the operation is retried (the
/// [`crate::PageStore`] retry loop does this automatically, within a
/// bounded budget); all other variants are permanent for a given call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// The page id is outside the allocated range — a dangling pointer.
    Unallocated {
        /// The operation that followed the dangling id.
        op: IoOp,
        /// The offending page id.
        page: PageId,
        /// Number of allocated pages at the time.
        pages: usize,
    },
    /// A fault injected by a [`crate::fault::FaultyBackend`].
    Injected {
        /// The operation the fault was scheduled on.
        op: IoOp,
        /// The page involved, when the operation targets one.
        page: Option<PageId>,
        /// Whether a retry of the same operation may succeed.
        transient: bool,
    },
    /// A real I/O error reported by a file-based backend.
    Io {
        /// The operation that failed.
        op: IoOp,
        /// The page involved, when the operation targets one.
        page: Option<PageId>,
        /// Whether a retry of the same operation may succeed.
        transient: bool,
        /// The underlying OS error, formatted.
        message: String,
    },
    /// A page failed verification after it was fetched or written.
    Corrupt {
        /// The corrupted page.
        page: PageId,
        /// What kind of verification failed.
        reason: CorruptReason,
    },
    /// A write payload larger than [`crate::PAGE_SIZE`].
    PayloadTooLarge {
        /// The rejected payload length.
        len: usize,
    },
    /// The store is full: page ids no longer fit in [`PageId`].
    OutOfPageIds,
}

impl StorageError {
    /// Whether the [`crate::PageStore`] retry loop may re-attempt the
    /// failed operation. Checksum mismatches on *reads* are retried too:
    /// re-fetching repairs corruption that happened in transfer rather
    /// than at rest.
    pub fn is_transient(&self) -> bool {
        match self {
            StorageError::Injected { transient, .. } | StorageError::Io { transient, .. } => {
                *transient
            }
            StorageError::Corrupt {
                reason: CorruptReason::Checksum,
                ..
            } => true,
            _ => false,
        }
    }
}

impl std::fmt::Display for StorageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StorageError::Unallocated { op, page, pages } => {
                write!(
                    f,
                    "{op} of unallocated page {page} ({pages} pages allocated)"
                )
            }
            StorageError::Injected {
                op,
                page,
                transient,
            } => {
                let kind = if *transient { "transient" } else { "permanent" };
                match page {
                    Some(p) => write!(f, "injected {kind} fault during {op} of page {p}"),
                    None => write!(f, "injected {kind} fault during {op}"),
                }
            }
            StorageError::Io {
                op,
                page,
                transient,
                message,
            } => {
                let kind = if *transient { "transient" } else { "permanent" };
                match page {
                    Some(p) => write!(f, "{kind} I/O error during {op} of page {p}: {message}"),
                    None => write!(f, "{kind} I/O error during {op}: {message}"),
                }
            }
            StorageError::Corrupt { page, reason } => {
                write!(f, "page {page} is corrupt: {reason}")
            }
            StorageError::PayloadTooLarge { len } => {
                write!(f, "payload of {len} bytes exceeds the page size")
            }
            StorageError::OutOfPageIds => write!(f, "page id space exhausted"),
        }
    }
}

impl std::error::Error for StorageError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transience_classification() {
        assert!(StorageError::Injected {
            op: IoOp::Read,
            page: Some(3),
            transient: true
        }
        .is_transient());
        assert!(!StorageError::Injected {
            op: IoOp::Write,
            page: Some(3),
            transient: false
        }
        .is_transient());
        assert!(StorageError::Corrupt {
            page: 1,
            reason: CorruptReason::Checksum
        }
        .is_transient());
        assert!(!StorageError::Corrupt {
            page: 1,
            reason: CorruptReason::Decode
        }
        .is_transient());
        assert!(!StorageError::Unallocated {
            op: IoOp::Read,
            page: 9,
            pages: 2
        }
        .is_transient());
        assert!(!StorageError::PayloadTooLarge { len: 5000 }.is_transient());
        assert!(!StorageError::OutOfPageIds.is_transient());
    }

    #[test]
    fn display_mentions_the_operation_and_page() {
        let e = StorageError::Injected {
            op: IoOp::Write,
            page: Some(7),
            transient: false,
        };
        let s = e.to_string();
        assert!(
            s.contains("write") && s.contains('7') && s.contains("permanent"),
            "{s}"
        );
        let c = StorageError::Corrupt {
            page: 2,
            reason: CorruptReason::Checksum,
        }
        .to_string();
        assert!(c.contains("checksum"), "{c}");
    }
}
