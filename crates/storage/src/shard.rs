//! Lock-striped buffer pool and per-call read attribution for the
//! shared (`&self`) read path.
//!
//! [`ShardedBuffer`] wraps N independent [`LruBuffer`] shards, each
//! behind its own mutex, with pages routed to shards by a multiplicative
//! hash of the page id. Concurrent readers touching different shards
//! never contend; readers on the same shard serialize only for the
//! O(1) LRU bookkeeping. With one shard (the default) the pool is
//! bit-for-bit equivalent to the old store-owned [`LruBuffer`], which
//! keeps the paper's sequential figures byte-identical.
//!
//! Hit/miss counters live *inside* the shards and are summed on demand,
//! so the global [`crate::IoStats`] is a pure function of per-shard
//! state — there is no second copy that a test hook or reset path could
//! desync (see DESIGN.md §6, "Concurrency model").

use crate::buffer::BufferKey;
use crate::buffer::LruBuffer;
use std::sync::{Mutex, MutexGuard, PoisonError};

/// Merged hit/miss counters across every shard.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BufferCounters {
    /// Accesses absorbed by some shard's LRU.
    pub hits: u64,
    /// Accesses that missed and were installed (disk reads).
    pub misses: u64,
}

#[derive(Debug, Clone)]
struct Shard {
    lru: LruBuffer,
    hits: u64,
    misses: u64,
}

/// A lock-striped LRU buffer pool shared by concurrent readers.
///
/// The total capacity is split as evenly as possible across shards
/// (the first `capacity % shards` shards get one extra page). Per-shard
/// LRU is *not* global LRU: a hot page in one shard cannot evict a cold
/// page in another. That skew is bounded by the shard count and is the
/// price of lock striping; the paper's measured configuration uses one
/// shard, where the two policies coincide exactly.
#[derive(Debug)]
pub struct ShardedBuffer {
    shards: Vec<Mutex<Shard>>,
    capacity: usize,
}

impl ShardedBuffer {
    /// A single-shard pool: behaves exactly like `LruBuffer::new`.
    pub fn new(capacity: usize) -> Self {
        Self::with_shards(capacity, 1)
    }

    /// A pool of `shards` independent stripes sharing `capacity` pages.
    /// A shard count of zero is treated as one.
    pub fn with_shards(capacity: usize, shards: usize) -> Self {
        let n = shards.max(1);
        let shards = (0..n)
            .map(|i| {
                Mutex::new(Shard {
                    lru: LruBuffer::new(Self::shard_capacity(capacity, n, i)),
                    hits: 0,
                    misses: 0,
                })
            })
            .collect();
        Self { shards, capacity }
    }

    /// Pages granted to shard `i` out of `n` sharing `capacity`.
    fn shard_capacity(capacity: usize, n: usize, i: usize) -> usize {
        capacity / n + usize::from(i < capacity % n)
    }

    /// Total pool capacity across all shards.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of lock stripes.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Which shard a page id routes to (stable for a given shard count).
    pub fn shard_of(&self, page: BufferKey) -> usize {
        // Fibonacci multiplicative hash: consecutive page ids (the common
        // allocation pattern) spread across shards instead of clustering.
        let h = page.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        (h % self.shards.len() as u64) as usize
    }

    fn shard(&self, page: BufferKey) -> MutexGuard<'_, Shard> {
        // Poison is unreachable in practice (no code path panics while
        // holding a shard lock; stilint's no_panic gate enforces this),
        // and a shard holds only residency + counters, which stay
        // internally consistent even if a panic did slip through.
        self.shards[self.shard_of(page)]
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
    }

    /// Count a buffer hit and refresh recency if `page` is resident.
    /// Returns `false` *without counting anything* on a miss, so the
    /// caller can fall through to the fetch path (which accounts the
    /// miss via [`ShardedBuffer::access`]).
    pub fn touch_if_resident(&self, page: BufferKey) -> bool {
        let mut shard = self.shard(page);
        if shard.lru.contains(page) {
            shard.lru.access(page);
            shard.hits += 1;
            true
        } else {
            false
        }
    }

    /// Record an access: a hit refreshes recency and counts a hit; a
    /// miss installs the page (evicting within the shard) and counts a
    /// miss. Returns whether the access hit.
    pub fn access(&self, page: BufferKey) -> bool {
        let mut shard = self.shard(page);
        let hit = shard.lru.access(page);
        if hit {
            shard.hits += 1;
        } else {
            shard.misses += 1;
        }
        hit
    }

    /// Make `page` resident without recording a hit or a miss
    /// (write-through warming; see `PageStore::write` accounting notes).
    pub fn install(&self, page: BufferKey) {
        self.shard(page).lru.install(page);
    }

    /// Drop `page` from its shard if resident (no counter movement).
    pub fn invalidate(&self, page: BufferKey) {
        self.shard(page).lru.invalidate(page);
    }

    /// Whether `page` is currently resident (no counter movement).
    pub fn resident(&self, page: BufferKey) -> bool {
        self.shard(page).lru.contains(page)
    }

    /// Empty every shard's residency. Counters are preserved: clearing
    /// the pool is a cache event, not an accounting reset.
    pub fn clear(&self) {
        for shard in &self.shards {
            shard
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .lru
                .clear();
        }
    }

    /// Sum of every shard's hit/miss counters.
    pub fn counters(&self) -> BufferCounters {
        let mut out = BufferCounters::default();
        for shard in &self.shards {
            let s = shard.lock().unwrap_or_else(PoisonError::into_inner);
            out.hits += s.hits;
            out.misses += s.misses;
        }
        out
    }

    /// Zero every shard's hit/miss counters (residency untouched).
    pub fn reset_counters(&self) {
        for shard in &self.shards {
            let mut s = shard.lock().unwrap_or_else(PoisonError::into_inner);
            s.hits = 0;
            s.misses = 0;
        }
    }

    /// Replace the capacity, clearing residency but preserving counters
    /// and the shard count (matches the old `set_buffer_capacity`
    /// contract, where counters lived outside the pool).
    pub fn set_capacity(&mut self, capacity: usize) {
        let n = self.shards.len();
        for (i, shard) in self.shards.iter_mut().enumerate() {
            let s = shard.get_mut().unwrap_or_else(PoisonError::into_inner);
            s.lru = LruBuffer::new(Self::shard_capacity(capacity, n, i));
        }
        self.capacity = capacity;
    }

    /// Replace the shard count, clearing residency but preserving the
    /// total capacity and merged counters (folded into the first shard
    /// so conservation sums keep holding across reconfiguration).
    pub fn set_shards(&mut self, shards: usize) {
        let carried = self.counters();
        let mut fresh = Self::with_shards(self.capacity, shards);
        if let Some(first) = fresh.shards.first_mut() {
            let s = first.get_mut().unwrap_or_else(PoisonError::into_inner);
            s.hits = carried.hits;
            s.misses = carried.misses;
        }
        *self = fresh;
    }
}

impl Clone for ShardedBuffer {
    fn clone(&self) -> Self {
        let shards = self
            .shards
            .iter()
            .map(|s| Mutex::new(s.lock().unwrap_or_else(PoisonError::into_inner).clone()))
            .collect();
        Self {
            shards,
            capacity: self.capacity,
        }
    }
}

/// Per-call I/O attribution for the shared read path.
///
/// Under `&mut self` queries, per-query deltas could be computed by
/// snapshotting the store's global counters before and after — exclusive
/// access made the window race-free. Under concurrent `&self` readers
/// that subtraction would attribute other threads' I/O to this query, so
/// the store instead writes each read's cost directly into the probe the
/// caller passes down. Conservation (Σ probes == global counter delta)
/// then holds *by construction*: every counter increment lands in
/// exactly one probe and the matching global cell.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReadProbe {
    /// Page fetches that missed the buffer pool.
    pub disk_reads: u64,
    /// Page fetches absorbed by the buffer pool.
    pub buffer_hits: u64,
    /// Attempts re-issued after a transient fault.
    pub io_retries: u64,
    /// Faults the backend injected inside this call's fetch windows.
    pub io_faults_injected: u64,
    /// Checksum verifications that failed inside this call.
    pub checksum_failures: u64,
}

impl ReadProbe {
    /// A zeroed probe.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fold another probe's counts into this one.
    pub fn merge(&mut self, other: &ReadProbe) {
        self.disk_reads += other.disk_reads;
        self.buffer_hits += other.buffer_hits;
        self.io_retries += other.io_retries;
        self.io_faults_injected += other.io_faults_injected;
        self.checksum_failures += other.checksum_failures;
    }
}

/// A small free-list of reusable scratch values for `&self` query paths.
///
/// Trees used to own one scratch allocation and `mem::take` it per
/// query, which requires `&mut self`. The pool keeps that allocation
/// reuse for sequential callers (take → use → put returns the same
/// value) while letting concurrent callers each take their own; a burst
/// of N threads simply materializes up to N scratch values, retained up
/// to [`ScratchPool::MAX_POOLED`] for reuse.
#[derive(Debug, Default)]
pub struct ScratchPool<T> {
    pool: Mutex<Vec<T>>,
}

impl<T: Default> ScratchPool<T> {
    /// Retained values beyond this are dropped on `put`.
    pub const MAX_POOLED: usize = 64;

    /// An empty pool.
    pub fn new() -> Self {
        Self {
            pool: Mutex::new(Vec::new()),
        }
    }

    /// Pop a pooled value, or default-construct a fresh one.
    pub fn take(&self) -> T {
        self.pool
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .pop()
            .unwrap_or_default()
    }

    /// Return a value (its internal buffers' capacity) to the pool.
    pub fn put(&self, value: T) {
        let mut pool = self.pool.lock().unwrap_or_else(PoisonError::into_inner);
        if pool.len() < Self::MAX_POOLED {
            pool.push(value);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Replay `trace` through the pool, returning the hit/miss outcome
    /// of each access.
    fn replay(buf: &ShardedBuffer, trace: &[BufferKey]) -> Vec<bool> {
        trace.iter().map(|&p| buf.access(p)).collect()
    }

    #[test]
    fn zero_capacity_never_hits_and_counts_every_miss() {
        let buf = ShardedBuffer::new(0);
        assert!(!replay(&buf, &[1, 1, 2, 1]).iter().any(|&h| h));
        assert_eq!(
            buf.counters(),
            BufferCounters { hits: 0, misses: 4 },
            "capacity 0 still accounts disk traffic"
        );
        assert!(!buf.touch_if_resident(1));
        assert!(!buf.resident(1));
    }

    #[test]
    fn capacity_one_holds_exactly_the_last_page() {
        let buf = ShardedBuffer::new(1);
        assert_eq!(replay(&buf, &[5, 5, 6, 5]), [false, true, false, false]);
        assert_eq!(buf.counters(), BufferCounters { hits: 1, misses: 3 });
    }

    #[test]
    fn capacity_below_shard_count_leaves_some_shards_empty() {
        // 4 shards sharing 3 pages: shards 0..3 get capacity 1,1,1,0.
        let buf = ShardedBuffer::with_shards(3, 4);
        let starved = (0..4)
            .map(|i| ShardedBuffer::shard_capacity(3, 4, i))
            .position(|c| c == 0)
            .unwrap();
        // A page routed to the zero-capacity shard can never become
        // resident; everything still gets counted.
        let page = (0u64..64).find(|&p| buf.shard_of(p) == starved).unwrap();
        assert!(!buf.access(page));
        assert!(!buf.access(page), "uncacheable page misses forever");
        assert!(!buf.resident(page));
        assert_eq!(buf.counters().misses, 2);
    }

    #[test]
    fn shards_evict_independently() {
        // One page per shard: filling every other shard must not evict
        // an earlier shard's resident page, unlike a global LRU of the
        // same total capacity.
        let n = 4;
        let buf = ShardedBuffer::with_shards(n, n);
        let mut picks: Vec<BufferKey> = Vec::new();
        let mut page = 0u64;
        while picks.len() < n {
            if buf.shard_of(page) == picks.len() {
                picks.push(page);
            }
            page += 1;
        }
        for &p in &picks {
            assert!(!buf.access(p), "first touch misses");
        }
        for &p in &picks {
            assert!(
                buf.resident(p),
                "page {p} survived: other shards' installs cannot evict it"
            );
        }
        // Same trace through a single shard of the same total capacity
        // also keeps all four resident (they fit), but a second page in
        // one shard evicts only within that shard.
        let (a, b) = (picks[0], picks[1]);
        let c = (picks[n - 1] + 1..u64::MAX)
            .find(|&p| buf.shard_of(p) == buf.shard_of(a))
            .unwrap();
        buf.access(c); // evicts `a` (same shard, capacity 1)...
        assert!(!buf.resident(a));
        assert!(buf.resident(b), "...but `b` lives in an untouched shard");
    }

    #[test]
    fn single_shard_matches_raw_lru_hit_for_hit() {
        // The store's default configuration must be bit-identical to
        // the pre-sharding LruBuffer on any access trace.
        let mut xs = 0x1234_5678_u64;
        let mut trace = Vec::new();
        for _ in 0..400 {
            // xorshift so the trace mixes hot and cold pages.
            xs ^= xs << 13;
            xs ^= xs >> 7;
            xs ^= xs << 17;
            trace.push((xs % 23) as BufferKey);
        }
        for capacity in [0usize, 1, 2, 7, 10, 32, 64] {
            let sharded = ShardedBuffer::new(capacity);
            let mut raw = LruBuffer::new(capacity);
            for &p in &trace {
                assert_eq!(
                    sharded.access(p),
                    raw.access(p),
                    "capacity {capacity}, page {p}: sharded(1) diverged from LruBuffer"
                );
            }
            assert_eq!(
                sharded.counters().hits + sharded.counters().misses,
                trace.len() as u64
            );
        }
    }

    #[test]
    fn touch_if_resident_counts_hits_only() {
        let buf = ShardedBuffer::new(2);
        assert!(!buf.touch_if_resident(9), "miss leaves counters untouched");
        assert_eq!(buf.counters(), BufferCounters::default());
        buf.access(9); // miss, installs
        assert!(buf.touch_if_resident(9));
        assert_eq!(buf.counters(), BufferCounters { hits: 1, misses: 1 });
    }

    #[test]
    fn install_and_invalidate_move_no_counters() {
        let buf = ShardedBuffer::new(2);
        buf.install(3);
        assert!(buf.resident(3));
        buf.invalidate(3);
        assert!(!buf.resident(3));
        assert_eq!(buf.counters(), BufferCounters::default());
    }

    #[test]
    fn clear_preserves_counters_and_empties_residency() {
        let buf = ShardedBuffer::with_shards(8, 4);
        for p in 0..8u64 {
            buf.access(p);
        }
        let before = buf.counters();
        buf.clear();
        assert_eq!(buf.counters(), before);
        assert!((0..8u64).all(|p| !buf.resident(p)));
    }

    #[test]
    fn reconfiguration_preserves_counters() {
        let mut buf = ShardedBuffer::new(4);
        for p in [1u64, 1, 2, 3] {
            buf.access(p);
        }
        let counted = buf.counters();
        buf.set_capacity(10);
        assert_eq!(buf.counters(), counted, "set_capacity keeps counters");
        assert!(!buf.resident(1), "set_capacity clears residency");
        buf.set_shards(4);
        assert_eq!(buf.counters(), counted, "set_shards keeps merged totals");
        assert_eq!(buf.shard_count(), 4);
        assert_eq!(buf.capacity(), 10);
        buf.set_shards(0);
        assert_eq!(buf.shard_count(), 1, "zero shards clamps to one");
        assert_eq!(buf.counters(), counted);
    }

    #[test]
    fn capacity_split_is_even_with_remainder_first() {
        let caps: Vec<usize> = (0..4)
            .map(|i| ShardedBuffer::shard_capacity(10, 4, i))
            .collect();
        assert_eq!(caps, [3, 3, 2, 2]);
        assert_eq!(caps.iter().sum::<usize>(), 10);
    }

    #[test]
    fn probe_merge_accumulates_every_field() {
        let mut a = ReadProbe {
            disk_reads: 1,
            buffer_hits: 2,
            io_retries: 3,
            io_faults_injected: 4,
            checksum_failures: 5,
        };
        a.merge(&a.clone());
        assert_eq!(
            a,
            ReadProbe {
                disk_reads: 2,
                buffer_hits: 4,
                io_retries: 6,
                io_faults_injected: 8,
                checksum_failures: 10,
            }
        );
    }

    #[test]
    fn scratch_pool_reuses_returned_values() {
        let pool: ScratchPool<Vec<u32>> = ScratchPool::new();
        let mut v = pool.take();
        assert!(v.is_empty());
        v.reserve(100);
        let had = v.capacity();
        v.push(7);
        v.clear();
        pool.put(v);
        let again = pool.take();
        assert!(again.is_empty());
        assert!(again.capacity() >= had, "allocation was recycled");
    }
}
