//! Lock-striped buffer pool and per-call read attribution for the
//! shared (`&self`) read path.
//!
//! [`ShardedBuffer`] wraps N independent [`LruBuffer`] shards, each
//! behind its own mutex, with pages routed to shards by a multiplicative
//! hash of the page id. Concurrent readers touching different shards
//! never contend; readers on the same shard serialize only for the
//! O(1) LRU bookkeeping. With one shard (the default) the pool is
//! bit-for-bit equivalent to the old store-owned [`LruBuffer`], which
//! keeps the paper's sequential figures byte-identical.
//!
//! Hit/miss counters live *inside* the shards and are summed on demand,
//! so the global [`crate::IoStats`] is a pure function of per-shard
//! state — there is no second copy that a test hook or reset path could
//! desync (see DESIGN.md §6, "Concurrency model").

use crate::buffer::BufferKey;
use crate::buffer::{LruBuffer, TwoQBuffer};
use std::sync::{Mutex, MutexGuard, PoisonError};

/// Merged hit/miss counters across every shard.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BufferCounters {
    /// Accesses absorbed by some shard's LRU.
    pub hits: u64,
    /// Accesses that missed and were installed (disk reads).
    pub misses: u64,
}

/// Which eviction policy each shard runs.
///
/// The default is plain LRU — the paper's measured configuration, and
/// the one every committed baseline pins. [`BufferPolicy::TwoQ`] swaps
/// in the scan-resistant [`TwoQBuffer`] so a bulk interval scan cannot
/// flush the hot upper tree levels; hit/miss *accounting* is identical
/// under both policies (it lives in the shard, not the policy).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum BufferPolicy {
    /// Least-recently-used eviction (paper configuration).
    #[default]
    Lru,
    /// Scan-resistant 2Q eviction (probation FIFO + protected LRU).
    TwoQ,
}

impl BufferPolicy {
    /// Parse a policy name (`lru` / `2q`).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "lru" => Some(Self::Lru),
            "2q" | "twoq" => Some(Self::TwoQ),
            _ => None,
        }
    }
}

impl std::fmt::Display for BufferPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Self::Lru => "lru",
            Self::TwoQ => "2q",
        })
    }
}

/// Readahead effectiveness counters, summed across shards.
///
/// `hits` + `wasted` never exceeds the number of prefetched pages;
/// pages still resident and untouched are pending and counted by
/// neither until they resolve (touched, or swept after eviction).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReadaheadStats {
    /// Prefetched pages later served from the buffer.
    pub hits: u64,
    /// Prefetched pages evicted (or re-missed) before any touch.
    pub wasted: u64,
}

/// The policy-selected residency structure behind one shard.
#[derive(Debug, Clone)]
enum PolicyBuffer {
    Lru(LruBuffer),
    TwoQ(TwoQBuffer),
}

impl PolicyBuffer {
    fn new(policy: BufferPolicy, capacity: usize) -> Self {
        match policy {
            BufferPolicy::Lru => Self::Lru(LruBuffer::new(capacity)),
            BufferPolicy::TwoQ => Self::TwoQ(TwoQBuffer::new(capacity)),
        }
    }

    fn access(&mut self, page: BufferKey) -> bool {
        match self {
            Self::Lru(b) => b.access(page),
            Self::TwoQ(b) => b.access(page),
        }
    }

    fn install(&mut self, page: BufferKey) {
        match self {
            Self::Lru(b) => b.install(page),
            Self::TwoQ(b) => b.install(page),
        }
    }

    fn invalidate(&mut self, page: BufferKey) {
        match self {
            Self::Lru(b) => b.invalidate(page),
            Self::TwoQ(b) => b.invalidate(page),
        }
    }

    fn clear(&mut self) {
        match self {
            Self::Lru(b) => b.clear(),
            Self::TwoQ(b) => b.clear(),
        }
    }

    fn contains(&self, page: BufferKey) -> bool {
        match self {
            Self::Lru(b) => b.contains(page),
            Self::TwoQ(b) => b.contains(page),
        }
    }

    fn scan_evictions_avoided(&self) -> u64 {
        match self {
            Self::Lru(_) => 0,
            Self::TwoQ(b) => b.scan_evictions_avoided(),
        }
    }
}

#[derive(Debug, Clone)]
struct Shard {
    buf: PolicyBuffer,
    hits: u64,
    misses: u64,
    /// Keys installed by readahead and not yet touched by a real read.
    prefetched: Vec<BufferKey>,
    readahead_hits: u64,
    readahead_wasted: u64,
    /// Scan evictions carried over policy/capacity rebuilds (the live
    /// count sits inside the 2Q buffer itself).
    scan_avoided_carry: u64,
}

impl Shard {
    fn new(policy: BufferPolicy, capacity: usize) -> Self {
        Self {
            buf: PolicyBuffer::new(policy, capacity),
            hits: 0,
            misses: 0,
            prefetched: Vec::new(),
            readahead_hits: 0,
            readahead_wasted: 0,
            scan_avoided_carry: 0,
        }
    }

    /// Resolve readahead attribution for `page` after an access that
    /// `hit` (or missed) the shard. No-op unless readahead is in use.
    fn note_touch(&mut self, page: BufferKey, hit: bool) {
        if self.prefetched.is_empty() {
            return;
        }
        if let Some(i) = self.prefetched.iter().position(|&k| k == page) {
            self.prefetched.swap_remove(i);
            if hit {
                self.readahead_hits += 1;
            } else {
                // Prefetched, evicted before use, now re-fetched: the
                // prefetch bought nothing.
                self.readahead_wasted += 1;
            }
        }
    }

    /// Retire prefetched keys that were evicted without ever being
    /// touched.
    fn sweep_prefetched(&mut self) {
        if self.prefetched.is_empty() {
            return;
        }
        let buf = &self.buf;
        let mut wasted = 0u64;
        self.prefetched.retain(|&k| {
            let resident = buf.contains(k);
            if !resident {
                wasted += 1;
            }
            resident
        });
        self.readahead_wasted += wasted;
    }

    fn scan_evictions_avoided(&self) -> u64 {
        self.scan_avoided_carry + self.buf.scan_evictions_avoided()
    }
}

/// A lock-striped LRU buffer pool shared by concurrent readers.
///
/// The total capacity is split as evenly as possible across shards
/// (the first `capacity % shards` shards get one extra page). Per-shard
/// LRU is *not* global LRU: a hot page in one shard cannot evict a cold
/// page in another. That skew is bounded by the shard count and is the
/// price of lock striping; the paper's measured configuration uses one
/// shard, where the two policies coincide exactly.
#[derive(Debug)]
pub struct ShardedBuffer {
    shards: Vec<Mutex<Shard>>,
    capacity: usize,
    policy: BufferPolicy,
}

impl ShardedBuffer {
    /// A single-shard pool: behaves exactly like `LruBuffer::new`.
    pub fn new(capacity: usize) -> Self {
        Self::with_shards(capacity, 1)
    }

    /// A pool of `shards` independent stripes sharing `capacity` pages.
    /// A shard count of zero is treated as one.
    pub fn with_shards(capacity: usize, shards: usize) -> Self {
        Self::with_shards_policy(capacity, shards, BufferPolicy::default())
    }

    /// A pool with an explicit eviction policy per shard.
    pub fn with_shards_policy(capacity: usize, shards: usize, policy: BufferPolicy) -> Self {
        let n = shards.max(1);
        let shards = (0..n)
            .map(|i| Mutex::new(Shard::new(policy, Self::shard_capacity(capacity, n, i))))
            .collect();
        Self {
            shards,
            capacity,
            policy,
        }
    }

    /// Pages granted to shard `i` out of `n` sharing `capacity`.
    fn shard_capacity(capacity: usize, n: usize, i: usize) -> usize {
        capacity / n + usize::from(i < capacity % n)
    }

    /// Total pool capacity across all shards.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of lock stripes.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Which shard a page id routes to (stable for a given shard count).
    pub fn shard_of(&self, page: BufferKey) -> usize {
        // Fibonacci multiplicative hash: consecutive page ids (the common
        // allocation pattern) spread across shards instead of clustering.
        let h = page.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        (h % self.shards.len() as u64) as usize
    }

    fn shard(&self, page: BufferKey) -> MutexGuard<'_, Shard> {
        // Poison is unreachable in practice (no code path panics while
        // holding a shard lock; stilint's no_panic gate enforces this),
        // and a shard holds only residency + counters, which stay
        // internally consistent even if a panic did slip through.
        self.shards[self.shard_of(page)]
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
    }

    /// Count a buffer hit and refresh recency if `page` is resident.
    /// Returns `false` *without counting anything* on a miss, so the
    /// caller can fall through to the fetch path (which accounts the
    /// miss via [`ShardedBuffer::access`]).
    pub fn touch_if_resident(&self, page: BufferKey) -> bool {
        let mut shard = self.shard(page);
        if shard.buf.contains(page) {
            shard.buf.access(page);
            shard.hits += 1;
            shard.note_touch(page, true);
            true
        } else {
            false
        }
    }

    /// Record an access: a hit refreshes recency and counts a hit; a
    /// miss installs the page (evicting within the shard) and counts a
    /// miss. Returns whether the access hit.
    pub fn access(&self, page: BufferKey) -> bool {
        let mut shard = self.shard(page);
        let hit = shard.buf.access(page);
        if hit {
            shard.hits += 1;
        } else {
            shard.misses += 1;
        }
        shard.note_touch(page, hit);
        hit
    }

    /// Record a readahead fetch: installs `page` and counts a miss (the
    /// fetch *is* a disk read), remembering the key so a later touch —
    /// or an eviction without one — settles whether the prefetch paid.
    pub fn prefetch_install(&self, page: BufferKey) {
        let mut shard = self.shard(page);
        shard.sweep_prefetched();
        let hit = shard.buf.access(page);
        debug_assert!(!hit, "prefetch_install called for a resident page");
        shard.misses += 1;
        if !shard.prefetched.contains(&page) {
            shard.prefetched.push(page);
        }
    }

    /// Make `page` resident without recording a hit or a miss
    /// (write-through warming; see `PageStore::write` accounting notes).
    pub fn install(&self, page: BufferKey) {
        self.shard(page).buf.install(page);
    }

    /// Drop `page` from its shard if resident (no counter movement).
    pub fn invalidate(&self, page: BufferKey) {
        self.shard(page).buf.invalidate(page);
    }

    /// Whether `page` is currently resident (no counter movement).
    pub fn resident(&self, page: BufferKey) -> bool {
        self.shard(page).buf.contains(page)
    }

    /// Empty every shard's residency. Counters are preserved: clearing
    /// the pool is a cache event, not an accounting reset; prefetched
    /// pages dropped before any touch count as wasted.
    pub fn clear(&self) {
        for shard in &self.shards {
            let mut s = shard.lock().unwrap_or_else(PoisonError::into_inner);
            s.readahead_wasted += s.prefetched.len() as u64;
            s.prefetched.clear();
            s.buf.clear();
        }
    }

    /// Sum of every shard's hit/miss counters.
    pub fn counters(&self) -> BufferCounters {
        let mut out = BufferCounters::default();
        for shard in &self.shards {
            let s = shard.lock().unwrap_or_else(PoisonError::into_inner);
            out.hits += s.hits;
            out.misses += s.misses;
        }
        out
    }

    /// Zero every shard's hit/miss counters (residency untouched).
    /// Readahead and scan-resistance counters reset with them: they are
    /// measurement state, and benchmarks reset between configurations.
    pub fn reset_counters(&self) {
        for shard in &self.shards {
            let mut s = shard.lock().unwrap_or_else(PoisonError::into_inner);
            s.hits = 0;
            s.misses = 0;
            s.readahead_hits = 0;
            s.readahead_wasted = 0;
            s.prefetched.clear();
            s.scan_avoided_carry = 0;
            let cap = match &s.buf {
                PolicyBuffer::Lru(b) => b.capacity(),
                PolicyBuffer::TwoQ(b) => b.capacity(),
            };
            if matches!(s.buf, PolicyBuffer::TwoQ(_)) {
                // The live scan counter sits inside the 2Q structure;
                // rebuilding it is the only way to zero it. Residency is
                // cleared as a side effect, which reset callers accept
                // (they reset between measurement phases, not mid-run).
                s.buf = PolicyBuffer::new(BufferPolicy::TwoQ, cap);
            }
        }
    }

    /// The eviction policy shards run.
    pub fn policy(&self) -> BufferPolicy {
        self.policy
    }

    /// Swap the eviction policy, clearing residency but preserving the
    /// hit/miss and effectiveness counters (conservation sums keep
    /// holding across reconfiguration).
    pub fn set_policy(&mut self, policy: BufferPolicy) {
        self.policy = policy;
        let n = self.shards.len();
        let capacity = self.capacity;
        for (i, shard) in self.shards.iter_mut().enumerate() {
            let s = shard.get_mut().unwrap_or_else(PoisonError::into_inner);
            s.readahead_wasted += s.prefetched.len() as u64;
            s.prefetched.clear();
            s.scan_avoided_carry = s.scan_evictions_avoided();
            s.buf = PolicyBuffer::new(policy, Self::shard_capacity(capacity, n, i));
        }
    }

    /// Summed readahead effectiveness counters, after retiring keys that
    /// were evicted untouched.
    pub fn readahead_stats(&self) -> ReadaheadStats {
        let mut out = ReadaheadStats::default();
        for shard in &self.shards {
            let mut s = shard.lock().unwrap_or_else(PoisonError::into_inner);
            s.sweep_prefetched();
            out.hits += s.readahead_hits;
            out.wasted += s.readahead_wasted;
        }
        out
    }

    /// Summed scan-eviction counter across shards (0 under plain LRU).
    pub fn scan_evictions_avoided(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| {
                s.lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .scan_evictions_avoided()
            })
            .sum()
    }

    /// Replace the capacity, clearing residency but preserving counters
    /// and the shard count (matches the old `set_buffer_capacity`
    /// contract, where counters lived outside the pool).
    pub fn set_capacity(&mut self, capacity: usize) {
        let n = self.shards.len();
        let policy = self.policy;
        for (i, shard) in self.shards.iter_mut().enumerate() {
            let s = shard.get_mut().unwrap_or_else(PoisonError::into_inner);
            s.readahead_wasted += s.prefetched.len() as u64;
            s.prefetched.clear();
            s.scan_avoided_carry = s.scan_evictions_avoided();
            s.buf = PolicyBuffer::new(policy, Self::shard_capacity(capacity, n, i));
        }
        self.capacity = capacity;
    }

    /// Replace the shard count, clearing residency but preserving the
    /// total capacity, policy, and merged counters (folded into the
    /// first shard so conservation sums keep holding).
    pub fn set_shards(&mut self, shards: usize) {
        let carried = self.counters();
        let mut readahead = self.readahead_stats();
        // Reconfiguration clears residency, so prefetched keys still
        // pending are evicted untouched: wasted.
        for shard in &self.shards {
            let s = shard.lock().unwrap_or_else(PoisonError::into_inner);
            readahead.wasted += s.prefetched.len() as u64;
        }
        let scans = self.scan_evictions_avoided();
        let mut fresh = Self::with_shards_policy(self.capacity, shards, self.policy);
        if let Some(first) = fresh.shards.first_mut() {
            let s = first.get_mut().unwrap_or_else(PoisonError::into_inner);
            s.hits = carried.hits;
            s.misses = carried.misses;
            s.readahead_hits = readahead.hits;
            s.readahead_wasted = readahead.wasted;
            s.scan_avoided_carry = scans;
        }
        *self = fresh;
    }
}

impl Clone for ShardedBuffer {
    fn clone(&self) -> Self {
        let shards = self
            .shards
            .iter()
            .map(|s| Mutex::new(s.lock().unwrap_or_else(PoisonError::into_inner).clone()))
            .collect();
        Self {
            shards,
            capacity: self.capacity,
            policy: self.policy,
        }
    }
}

/// Per-call I/O attribution for the shared read path.
///
/// Under `&mut self` queries, per-query deltas could be computed by
/// snapshotting the store's global counters before and after — exclusive
/// access made the window race-free. Under concurrent `&self` readers
/// that subtraction would attribute other threads' I/O to this query, so
/// the store instead writes each read's cost directly into the probe the
/// caller passes down. Conservation (Σ probes == global counter delta)
/// then holds *by construction*: every counter increment lands in
/// exactly one probe and the matching global cell.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReadProbe {
    /// Page fetches that missed the buffer pool.
    pub disk_reads: u64,
    /// Page fetches absorbed by the buffer pool.
    pub buffer_hits: u64,
    /// Attempts re-issued after a transient fault.
    pub io_retries: u64,
    /// Faults the backend injected inside this call's fetch windows.
    pub io_faults_injected: u64,
    /// Checksum verifications that failed inside this call.
    pub checksum_failures: u64,
    /// Pages fetched by interval-query readahead inside this call. These
    /// are *also* counted in `disk_reads` — readahead batches fetches,
    /// it does not make them free — so this field attributes, it does
    /// not add.
    pub readahead_pages: u64,
}

impl ReadProbe {
    /// A zeroed probe.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fold another probe's counts into this one.
    pub fn merge(&mut self, other: &ReadProbe) {
        self.disk_reads += other.disk_reads;
        self.buffer_hits += other.buffer_hits;
        self.io_retries += other.io_retries;
        self.io_faults_injected += other.io_faults_injected;
        self.checksum_failures += other.checksum_failures;
        self.readahead_pages += other.readahead_pages;
    }
}

/// A small free-list of reusable scratch values for `&self` query paths.
///
/// Trees used to own one scratch allocation and `mem::take` it per
/// query, which requires `&mut self`. The pool keeps that allocation
/// reuse for sequential callers (take → use → put returns the same
/// value) while letting concurrent callers each take their own; a burst
/// of N threads simply materializes up to N scratch values, retained up
/// to [`ScratchPool::MAX_POOLED`] for reuse.
#[derive(Debug, Default)]
pub struct ScratchPool<T> {
    pool: Mutex<Vec<T>>,
}

impl<T: Default> ScratchPool<T> {
    /// Retained values beyond this are dropped on `put`.
    pub const MAX_POOLED: usize = 64;

    /// An empty pool.
    pub fn new() -> Self {
        Self {
            pool: Mutex::new(Vec::new()),
        }
    }

    /// Pop a pooled value, or default-construct a fresh one.
    pub fn take(&self) -> T {
        self.pool
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .pop()
            .unwrap_or_default()
    }

    /// Return a value (its internal buffers' capacity) to the pool.
    pub fn put(&self, value: T) {
        let mut pool = self.pool.lock().unwrap_or_else(PoisonError::into_inner);
        if pool.len() < Self::MAX_POOLED {
            pool.push(value);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Replay `trace` through the pool, returning the hit/miss outcome
    /// of each access.
    fn replay(buf: &ShardedBuffer, trace: &[BufferKey]) -> Vec<bool> {
        trace.iter().map(|&p| buf.access(p)).collect()
    }

    #[test]
    fn zero_capacity_never_hits_and_counts_every_miss() {
        let buf = ShardedBuffer::new(0);
        assert!(!replay(&buf, &[1, 1, 2, 1]).iter().any(|&h| h));
        assert_eq!(
            buf.counters(),
            BufferCounters { hits: 0, misses: 4 },
            "capacity 0 still accounts disk traffic"
        );
        assert!(!buf.touch_if_resident(1));
        assert!(!buf.resident(1));
    }

    #[test]
    fn capacity_one_holds_exactly_the_last_page() {
        let buf = ShardedBuffer::new(1);
        assert_eq!(replay(&buf, &[5, 5, 6, 5]), [false, true, false, false]);
        assert_eq!(buf.counters(), BufferCounters { hits: 1, misses: 3 });
    }

    #[test]
    fn capacity_below_shard_count_leaves_some_shards_empty() {
        // 4 shards sharing 3 pages: shards 0..3 get capacity 1,1,1,0.
        let buf = ShardedBuffer::with_shards(3, 4);
        let starved = (0..4)
            .map(|i| ShardedBuffer::shard_capacity(3, 4, i))
            .position(|c| c == 0)
            .unwrap();
        // A page routed to the zero-capacity shard can never become
        // resident; everything still gets counted.
        let page = (0u64..64).find(|&p| buf.shard_of(p) == starved).unwrap();
        assert!(!buf.access(page));
        assert!(!buf.access(page), "uncacheable page misses forever");
        assert!(!buf.resident(page));
        assert_eq!(buf.counters().misses, 2);
    }

    #[test]
    fn shards_evict_independently() {
        // One page per shard: filling every other shard must not evict
        // an earlier shard's resident page, unlike a global LRU of the
        // same total capacity.
        let n = 4;
        let buf = ShardedBuffer::with_shards(n, n);
        let mut picks: Vec<BufferKey> = Vec::new();
        let mut page = 0u64;
        while picks.len() < n {
            if buf.shard_of(page) == picks.len() {
                picks.push(page);
            }
            page += 1;
        }
        for &p in &picks {
            assert!(!buf.access(p), "first touch misses");
        }
        for &p in &picks {
            assert!(
                buf.resident(p),
                "page {p} survived: other shards' installs cannot evict it"
            );
        }
        // Same trace through a single shard of the same total capacity
        // also keeps all four resident (they fit), but a second page in
        // one shard evicts only within that shard.
        let (a, b) = (picks[0], picks[1]);
        let c = (picks[n - 1] + 1..u64::MAX)
            .find(|&p| buf.shard_of(p) == buf.shard_of(a))
            .unwrap();
        buf.access(c); // evicts `a` (same shard, capacity 1)...
        assert!(!buf.resident(a));
        assert!(buf.resident(b), "...but `b` lives in an untouched shard");
    }

    #[test]
    fn single_shard_matches_raw_lru_hit_for_hit() {
        // The store's default configuration must be bit-identical to
        // the pre-sharding LruBuffer on any access trace.
        let mut xs = 0x1234_5678_u64;
        let mut trace = Vec::new();
        for _ in 0..400 {
            // xorshift so the trace mixes hot and cold pages.
            xs ^= xs << 13;
            xs ^= xs >> 7;
            xs ^= xs << 17;
            trace.push((xs % 23) as BufferKey);
        }
        for capacity in [0usize, 1, 2, 7, 10, 32, 64] {
            let sharded = ShardedBuffer::new(capacity);
            let mut raw = LruBuffer::new(capacity);
            for &p in &trace {
                assert_eq!(
                    sharded.access(p),
                    raw.access(p),
                    "capacity {capacity}, page {p}: sharded(1) diverged from LruBuffer"
                );
            }
            assert_eq!(
                sharded.counters().hits + sharded.counters().misses,
                trace.len() as u64
            );
        }
    }

    #[test]
    fn touch_if_resident_counts_hits_only() {
        let buf = ShardedBuffer::new(2);
        assert!(!buf.touch_if_resident(9), "miss leaves counters untouched");
        assert_eq!(buf.counters(), BufferCounters::default());
        buf.access(9); // miss, installs
        assert!(buf.touch_if_resident(9));
        assert_eq!(buf.counters(), BufferCounters { hits: 1, misses: 1 });
    }

    #[test]
    fn install_and_invalidate_move_no_counters() {
        let buf = ShardedBuffer::new(2);
        buf.install(3);
        assert!(buf.resident(3));
        buf.invalidate(3);
        assert!(!buf.resident(3));
        assert_eq!(buf.counters(), BufferCounters::default());
    }

    #[test]
    fn clear_preserves_counters_and_empties_residency() {
        let buf = ShardedBuffer::with_shards(8, 4);
        for p in 0..8u64 {
            buf.access(p);
        }
        let before = buf.counters();
        buf.clear();
        assert_eq!(buf.counters(), before);
        assert!((0..8u64).all(|p| !buf.resident(p)));
    }

    #[test]
    fn reconfiguration_preserves_counters() {
        let mut buf = ShardedBuffer::new(4);
        for p in [1u64, 1, 2, 3] {
            buf.access(p);
        }
        let counted = buf.counters();
        buf.set_capacity(10);
        assert_eq!(buf.counters(), counted, "set_capacity keeps counters");
        assert!(!buf.resident(1), "set_capacity clears residency");
        buf.set_shards(4);
        assert_eq!(buf.counters(), counted, "set_shards keeps merged totals");
        assert_eq!(buf.shard_count(), 4);
        assert_eq!(buf.capacity(), 10);
        buf.set_shards(0);
        assert_eq!(buf.shard_count(), 1, "zero shards clamps to one");
        assert_eq!(buf.counters(), counted);
    }

    #[test]
    fn capacity_split_is_even_with_remainder_first() {
        let caps: Vec<usize> = (0..4)
            .map(|i| ShardedBuffer::shard_capacity(10, 4, i))
            .collect();
        assert_eq!(caps, [3, 3, 2, 2]);
        assert_eq!(caps.iter().sum::<usize>(), 10);
    }

    #[test]
    fn probe_merge_accumulates_every_field() {
        let mut a = ReadProbe {
            disk_reads: 1,
            buffer_hits: 2,
            io_retries: 3,
            io_faults_injected: 4,
            checksum_failures: 5,
            readahead_pages: 6,
        };
        a.merge(&a.clone());
        assert_eq!(
            a,
            ReadProbe {
                disk_reads: 2,
                buffer_hits: 4,
                io_retries: 6,
                io_faults_injected: 8,
                checksum_failures: 10,
                readahead_pages: 12,
            }
        );
    }

    // ------------------------------------------------------------------
    // Policy + readahead plumbing
    // ------------------------------------------------------------------

    #[test]
    fn policy_parse_and_display_round_trip() {
        assert_eq!(BufferPolicy::parse("lru"), Some(BufferPolicy::Lru));
        assert_eq!(BufferPolicy::parse("2q"), Some(BufferPolicy::TwoQ));
        assert_eq!(BufferPolicy::parse("twoq"), Some(BufferPolicy::TwoQ));
        assert_eq!(BufferPolicy::parse("mru"), None);
        assert_eq!(BufferPolicy::Lru.to_string(), "lru");
        assert_eq!(BufferPolicy::TwoQ.to_string(), "2q");
    }

    #[test]
    fn twoq_pool_counts_hits_and_misses_like_lru() {
        // Accounting is policy-independent: every access lands in
        // exactly one of hits/misses under either policy.
        for policy in [BufferPolicy::Lru, BufferPolicy::TwoQ] {
            let buf = ShardedBuffer::with_shards_policy(8, 2, policy);
            for p in [1u64, 1, 2, 3, 1, 2, 9, 9] {
                buf.access(p);
            }
            let c = buf.counters();
            assert_eq!(c.hits + c.misses, 8, "policy {policy}");
        }
    }

    #[test]
    fn set_policy_preserves_counters_and_clears_residency() {
        let mut buf = ShardedBuffer::new(8);
        for p in [1u64, 1, 2] {
            buf.access(p);
        }
        let before = buf.counters();
        buf.set_policy(BufferPolicy::TwoQ);
        assert_eq!(buf.policy(), BufferPolicy::TwoQ);
        assert_eq!(buf.counters(), before);
        assert!(!buf.resident(1), "policy swap clears residency");
        // 2Q counter survives a later capacity change via the carry.
        buf.access(10);
        buf.access(10); // graduate
        for p in 20..40u64 {
            buf.access(p); // probation churn
        }
        let scans = buf.scan_evictions_avoided();
        assert!(scans > 0);
        buf.set_capacity(16);
        assert_eq!(buf.scan_evictions_avoided(), scans, "carry preserved");
        buf.set_shards(3);
        assert_eq!(buf.scan_evictions_avoided(), scans);
        assert_eq!(buf.counters().hits, before.hits + 1);
    }

    #[test]
    fn prefetch_attribution_hit_and_wasted() {
        let buf = ShardedBuffer::new(4);
        buf.prefetch_install(1);
        buf.prefetch_install(2);
        assert_eq!(buf.counters().misses, 2, "prefetches are disk reads");
        assert!(buf.resident(1) && buf.resident(2));
        // A later touch on 1 is a buffer hit AND a readahead hit.
        assert!(buf.touch_if_resident(1));
        // Push 2 out before it is ever touched.
        for p in 10..20u64 {
            buf.access(p);
        }
        let ra = buf.readahead_stats();
        assert_eq!(ra.hits, 1);
        assert_eq!(ra.wasted, 1);
        // Conservation: every access is a hit or a miss, nothing extra.
        let c = buf.counters();
        assert_eq!(c.hits, 1);
        assert_eq!(c.misses, 2 + 10);
    }

    #[test]
    fn prefetch_then_clear_counts_wasted() {
        let buf = ShardedBuffer::new(4);
        buf.prefetch_install(7);
        buf.clear();
        assert_eq!(buf.readahead_stats().wasted, 1);
        assert_eq!(buf.readahead_stats().hits, 0);
    }

    #[test]
    fn reset_counters_zeroes_readahead_and_scan_state() {
        let mut buf = ShardedBuffer::new(8);
        buf.set_policy(BufferPolicy::TwoQ);
        buf.prefetch_install(1);
        buf.access(2);
        buf.access(2);
        for p in 10..30u64 {
            buf.access(p);
        }
        assert!(buf.scan_evictions_avoided() > 0);
        buf.reset_counters();
        assert_eq!(buf.counters(), BufferCounters::default());
        assert_eq!(buf.readahead_stats(), ReadaheadStats::default());
        assert_eq!(buf.scan_evictions_avoided(), 0);
    }

    #[test]
    fn scratch_pool_reuses_returned_values() {
        let pool: ScratchPool<Vec<u32>> = ScratchPool::new();
        let mut v = pool.take();
        assert!(v.is_empty());
        v.reserve(100);
        let had = v.capacity();
        v.push(7);
        v.clear();
        pool.put(v);
        let again = pool.take();
        assert!(again.is_empty());
        assert!(again.capacity() >= had, "allocation was recycled");
    }
}
