//! Simulated disk storage.
//!
//! Both index structures in this workspace are *disk-based*: nodes are
//! serialized to fixed-size pages and every page touched during a query is
//! a potential disk access. The paper's evaluation metric is the average
//! number of disk accesses per query with a 10-page LRU buffer that is
//! reset before every query; this crate provides exactly that substrate:
//!
//! * [`Page`] / [`PageId`] — fixed-size byte pages,
//! * [`PageStore`] — an in-memory "disk" of pages with an LRU buffer pool
//!   in front and [`IoStats`] counting logical reads/writes,
//! * [`codec`] — bounds-checked little-endian encode/decode helpers used
//!   by the tree node serializers.

pub mod buffer;
pub mod codec;
pub mod page;
pub mod persist;
pub mod store;

pub use buffer::LruBuffer;
pub use codec::{ByteReader, ByteWriter, CodecError};
pub use page::{Page, PageId, PAGE_SIZE};
pub use store::{IoStats, PageStore};
