//! Simulated disk storage.
//!
//! Both index structures in this workspace are *disk-based*: nodes are
//! serialized to fixed-size pages and every page touched during a query is
//! a potential disk access. The paper's evaluation metric is the average
//! number of disk accesses per query with a 10-page LRU buffer that is
//! reset before every query; this crate provides exactly that substrate:
//!
//! * [`Page`] / [`PageId`] — fixed-size byte pages,
//! * [`PageStore`] — a "disk" of pages over a pluggable [`backend`] with
//!   an LRU buffer pool in front, [`IoStats`] counting logical
//!   reads/writes, per-page checksums, bounded [`retry`] for transient
//!   faults ([`FaultStats`]), and page-level undo transactions,
//! * [`backend`] — the [`PageBackend`] device trait with in-memory and
//!   file-backed implementations,
//! * [`fault`] — the deterministic [`FaultyBackend`] fault injector,
//!   driven by replayable [`FaultPlan`]s,
//! * [`persist`] — crash-safe save/load (checksummed regions, monotonic
//!   epochs, atomic temp-then-rename) failing closed with a typed
//!   [`OpenError`],
//! * [`codec`] — bounds-checked little-endian encode/decode helpers used
//!   by the tree node serializers,
//! * [`wal`] — a checksummed, segmented write-ahead log (per-record
//!   xxh64 framing, torn-tail truncation, typed [`WalError`]) backing
//!   the durable ingest pipeline.
//!
//! Every fallible operation returns a typed [`StorageError`]; the I/O
//! path through this crate and the trees above it is panic-free (see
//! DESIGN.md §6, "Failure model & recovery").

pub mod backend;
pub mod buffer;
pub mod checksum;
pub mod codec;
pub mod error;
pub mod fault;
pub mod page;
pub mod persist;
pub mod retry;
pub mod shard;
pub mod store;
pub mod wal;

pub use backend::{FileBackend, MemBackend, PageBackend};
pub use buffer::{BufferKey, LruBuffer, TwoQBuffer};
pub use checksum::xxh64;
pub use codec::{ByteReader, ByteWriter, CodecError};
pub use error::{CorruptReason, IoOp, StorageError};
pub use fault::{FaultKind, FaultPlan, FaultyBackend, ScheduledFault};
pub use page::{Page, PageId, PAGE_SIZE};
pub use persist::{OpenError, Region, SaveCrash};
pub use retry::{RetryClock, RetryPolicy, SimClock};
pub use shard::{
    BufferCounters, BufferPolicy, ReadProbe, ReadaheadStats, ScratchPool, ShardedBuffer,
};
pub use store::{FaultStats, IoStats, PageStore};
pub use wal::{FsyncPolicy, TornTail, Wal, WalConfig, WalError, WalOpen, WalRecord, WalStats};
