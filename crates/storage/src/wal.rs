//! A checksummed, segmented write-ahead log for the ingest pipeline.
//!
//! The live pipeline (`sti_core::pipeline`) is atomic but, on its own,
//! not durable: a crash between `enqueue` and publication silently
//! loses every operation that never reached a saved index. This module
//! provides the byte-level durability substrate: an append-only log of
//! opaque payload records, split across fixed-growth segment files,
//! with every region checksummed so a torn tail is *detected and
//! truncated* while genuine corruption *fails closed* with a typed
//! [`WalError`] (DESIGN.md §8).
//!
//! On-disk layout (all little-endian):
//!
//! ```text
//! wal-<first_lsn:016x>.seg :=
//!   magic "STIWAL1\0" · first_lsn: u64 · header_xxh: u64   (24 bytes)
//!   record*
//! record :=
//!   len: u32 · len_xxh: u32 (truncated XXH64 of the len bytes)
//!   payload_xxh: u64 · payload: len bytes
//! ```
//!
//! Records carry no explicit sequence number on disk: a record's **LSN**
//! (log sequence number) is the segment's `first_lsn` plus its ordinal
//! within the segment, so LSNs are dense and segment files chain-check
//! each other — a missing middle segment is a typed
//! [`WalError::SequenceGap`], never a silently shortened history.
//!
//! The length field has its *own* checksum so the two failure families
//! stay distinguishable at the tail of the last segment:
//!
//! * a **torn write** (crash mid-append) leaves a *prefix* of a record —
//!   a short header or a short payload — which replay truncates
//!   fail-closed and [`Wal::open`] reports as a [`TornTail`];
//! * a **flipped byte** (disk corruption) fails a checksum — including a
//!   flip inside `len` that would otherwise masquerade as a torn write
//!   by pointing past the end of the file — and is a typed
//!   [`WalError::Corrupt`], never a silent truncation.

use crate::checksum::xxh64;
use std::fs::{File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};

/// Magic prefix of every WAL segment file (format version 1).
pub const WAL_MAGIC: &[u8; 8] = b"STIWAL1\0";

/// Segment header: magic, first LSN, and the header's own checksum.
const SEG_HEADER_LEN: usize = 8 + 8 + 8;

/// Record frame ahead of the payload: `len`, `len` checksum, payload
/// checksum.
const REC_HEADER_LEN: usize = 4 + 4 + 8;

/// Upper bound on one record's payload. Ingest operations are tens of
/// bytes; anything near this bound with a *valid* length checksum is
/// corruption that got lucky, so it fails closed instead of allocating.
pub const MAX_RECORD_LEN: usize = 1 << 24;

/// When appended records are pushed to the disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// `fsync` after every append: an acknowledged operation is durable
    /// the moment [`Wal::append`] returns. The zero-loss policy.
    Always,
    /// `fsync` once per `n` appends (and on [`Wal::sync`]): bounded
    /// loss of at most `n - 1` acknowledged operations on power cut.
    EveryN(u32),
    /// `fsync` only on explicit [`Wal::sync`] calls — the pipeline
    /// issues one per commit, so durability tracks publication.
    Commit,
}

impl std::fmt::Display for FsyncPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FsyncPolicy::Always => f.write_str("always"),
            FsyncPolicy::EveryN(n) => write!(f, "every-{n}"),
            FsyncPolicy::Commit => f.write_str("commit"),
        }
    }
}

/// Tuning for a [`Wal`].
#[derive(Debug, Clone, Copy)]
pub struct WalConfig {
    /// Start a new segment once the active one reaches this many bytes
    /// (checked before each append; a segment always holds at least one
    /// record, so oversized records still land somewhere).
    pub segment_max_bytes: u64,
    /// When appends are fsynced.
    pub fsync: FsyncPolicy,
}

impl Default for WalConfig {
    fn default() -> Self {
        Self {
            segment_max_bytes: 1 << 20,
            fsync: FsyncPolicy::Always,
        }
    }
}

/// Why the log was rejected. Mirrors [`crate::persist::OpenError`]:
/// every malformed input maps to a typed variant; nothing panics and
/// nothing half-loads.
#[derive(Debug)]
pub enum WalError {
    /// A file operation failed.
    Io(io::Error),
    /// A segment file does not start with [`WAL_MAGIC`].
    BadMagic {
        /// The offending segment file.
        segment: PathBuf,
    },
    /// A checksummed region inside a segment failed verification, or a
    /// segment that is not the last one ends mid-record (an interior
    /// segment was sealed by a rotation, so it must end exactly on a
    /// record boundary).
    Corrupt {
        /// The offending segment file.
        segment: PathBuf,
        /// Byte offset of the bad region within the segment.
        offset: u64,
        /// Which check failed.
        what: &'static str,
    },
    /// Consecutive segments do not chain: the next segment's first LSN
    /// is not where the previous one stopped (a deleted or renamed
    /// middle segment).
    SequenceGap {
        /// The LSN the previous segment ran up to.
        expected: u64,
        /// The first LSN the next segment claims.
        found: u64,
    },
    /// A structural rule was violated (bad file name, oversized append).
    Malformed(&'static str),
}

impl std::fmt::Display for WalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WalError::Io(e) => write!(f, "wal I/O error: {e}"),
            WalError::BadMagic { segment } => {
                write!(f, "{} is not a WAL segment", segment.display())
            }
            WalError::Corrupt {
                segment,
                offset,
                what,
            } => write!(
                f,
                "wal segment {} corrupt at byte {offset}: {what}",
                segment.display()
            ),
            WalError::SequenceGap { expected, found } => write!(
                f,
                "wal segment chain gap: expected first lsn {expected}, found {found}"
            ),
            WalError::Malformed(what) => write!(f, "malformed wal: {what}"),
        }
    }
}

impl std::error::Error for WalError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WalError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for WalError {
    fn from(e: io::Error) -> Self {
        WalError::Io(e)
    }
}

/// One replayed record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalRecord {
    /// The record's log sequence number (dense, starting at the first
    /// segment's `first_lsn`).
    pub lsn: u64,
    /// The opaque payload exactly as appended.
    pub payload: Vec<u8>,
}

/// A torn write found (and truncated away) at the tail of the last
/// segment during [`Wal::open`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TornTail {
    /// The segment whose tail was torn.
    pub segment: PathBuf,
    /// The record boundary the file was truncated back to.
    pub offset: u64,
    /// How many torn bytes were discarded.
    pub dropped_bytes: u64,
}

/// Counters a [`Wal`] accumulates for observability (exported as
/// `wal_*` metrics by the pipeline).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WalStats {
    /// Records appended through this handle.
    pub appends: u64,
    /// Payload + framing bytes appended.
    pub bytes: u64,
    /// `fsync` calls issued (policy-driven and explicit).
    pub fsyncs: u64,
    /// Segment files created (including the initial one).
    pub segments_created: u64,
    /// Obsolete segment files deleted by [`Wal::truncate_below`].
    pub segments_deleted: u64,
}

/// The result of opening a log directory: the writable log positioned
/// at its end, every intact record in order, and the torn-tail
/// truncation report if the last segment ended mid-record.
#[derive(Debug)]
pub struct WalOpen {
    /// The log, ready for [`Wal::append`].
    pub wal: Wal,
    /// Every valid record, in LSN order.
    pub records: Vec<WalRecord>,
    /// Present when a torn tail was detected and truncated fail-closed.
    pub torn: Option<TornTail>,
}

/// An append-only, checksummed, segmented log of opaque payloads.
#[derive(Debug)]
pub struct Wal {
    dir: PathBuf,
    config: WalConfig,
    /// `(first_lsn, path)` of every live segment, oldest first; the
    /// last entry is the active segment.
    segments: Vec<(u64, PathBuf)>,
    active: File,
    active_len: u64,
    next_lsn: u64,
    unsynced: u32,
    stats: WalStats,
}

impl Wal {
    /// Open (creating if needed) the log rooted at `dir`, replaying
    /// every segment. A torn tail in the *last* segment is truncated
    /// back to the previous record boundary and reported; any other
    /// inconsistency — corruption, a gap in the segment chain, a short
    /// interior segment — is a typed error and nothing is modified.
    pub fn open(dir: &Path, config: WalConfig) -> Result<WalOpen, WalError> {
        if let FsyncPolicy::EveryN(0) = config.fsync {
            return Err(WalError::Malformed("fsync policy every-0"));
        }
        std::fs::create_dir_all(dir)?;
        let mut segments = scan_segments(dir)?;

        let mut records = Vec::new();
        let mut torn = None;
        let mut next_lsn = segments.first().map(|&(lsn, _)| lsn).unwrap_or(0);
        let mut active_len = SEG_HEADER_LEN as u64;
        let mut created = 0u64;

        for (i, (first_lsn, path)) in segments.iter().enumerate() {
            let last = i + 1 == segments.len();
            if *first_lsn != next_lsn {
                return Err(WalError::SequenceGap {
                    expected: next_lsn,
                    found: *first_lsn,
                });
            }
            let bytes = std::fs::read(path)?;
            let outcome = replay_segment(path, *first_lsn, &bytes, last, &mut records)?;
            next_lsn = outcome.next_lsn;
            if last {
                active_len = outcome.keep_bytes;
            }
            if outcome.keep_bytes < bytes.len() as u64 {
                // Torn tail (last segment only — replay_segment errors
                // otherwise): truncate fail-closed so the next append
                // starts on a clean record boundary.
                let f = OpenOptions::new().write(true).open(path)?;
                f.set_len(outcome.keep_bytes)?;
                f.sync_all()?;
                torn = Some(TornTail {
                    segment: path.clone(),
                    offset: outcome.keep_bytes,
                    dropped_bytes: bytes.len() as u64 - outcome.keep_bytes,
                });
            }
        }

        let active = match segments.last() {
            Some((_, path)) => OpenOptions::new().append(true).open(path)?,
            None => {
                let path = segment_path(dir, 0);
                let f = create_segment(&path, 0)?;
                sync_dir(dir)?;
                segments.push((0, path));
                created = 1;
                f
            }
        };

        Ok(WalOpen {
            wal: Wal {
                dir: dir.to_path_buf(),
                config,
                segments,
                active,
                active_len,
                next_lsn,
                unsynced: 0,
                stats: WalStats {
                    segments_created: created,
                    ..WalStats::default()
                },
            },
            records,
            torn,
        })
    }

    /// Append one payload record, applying the fsync policy. Returns
    /// the record's LSN. On any error the in-memory cursor is
    /// unchanged; the bytes that may have partially reached the file
    /// are exactly the torn tail [`Wal::open`] truncates away.
    pub fn append(&mut self, payload: &[u8]) -> Result<u64, WalError> {
        if payload.len() > MAX_RECORD_LEN {
            return Err(WalError::Malformed("record payload over MAX_RECORD_LEN"));
        }
        if self.active_len >= self.config.segment_max_bytes
            && self.active_len > SEG_HEADER_LEN as u64
        {
            self.rotate()?;
        }
        let len_bytes = u32_bytes(payload.len())?;
        let mut frame = Vec::with_capacity(REC_HEADER_LEN + payload.len());
        frame.extend_from_slice(&len_bytes);
        frame.extend_from_slice(&truncate_sum(xxh64(&len_bytes)).to_le_bytes());
        frame.extend_from_slice(&xxh64(payload).to_le_bytes());
        frame.extend_from_slice(payload);
        self.active.write_all(&frame)?;
        self.active_len += frame.len() as u64;
        self.unsynced += 1;
        self.stats.appends += 1;
        self.stats.bytes += frame.len() as u64;
        match self.config.fsync {
            FsyncPolicy::Always => self.sync()?,
            FsyncPolicy::EveryN(n) => {
                if self.unsynced >= n {
                    self.sync()?;
                }
            }
            FsyncPolicy::Commit => {}
        }
        let lsn = self.next_lsn;
        self.next_lsn += 1;
        Ok(lsn)
    }

    /// Push every unsynced append to the disk (a no-op when nothing is
    /// pending). The pipeline calls this at each commit under
    /// [`FsyncPolicy::Commit`] and before every checkpoint.
    pub fn sync(&mut self) -> Result<(), WalError> {
        if self.unsynced > 0 {
            self.active.sync_data()?;
            self.unsynced = 0;
            self.stats.fsyncs += 1;
        }
        Ok(())
    }

    /// The LSN the next append will receive.
    pub fn next_lsn(&self) -> u64 {
        self.next_lsn
    }

    /// Number of live segment files.
    pub fn segment_count(&self) -> usize {
        self.segments.len()
    }

    /// Accumulated counters for metrics export.
    pub fn stats(&self) -> WalStats {
        self.stats
    }

    /// Delete every segment whose records *all* precede `lsn` (the
    /// checkpoint/truncation protocol: a checkpoint that captured
    /// state through `lsn` makes older records unreachable). The
    /// active segment is never deleted. Returns how many files went.
    pub fn truncate_below(&mut self, lsn: u64) -> Result<u64, WalError> {
        let mut deleted = 0u64;
        // A segment's records end where the next segment begins, so
        // segment i is obsolete iff segments[i + 1].first_lsn <= lsn.
        while self.segments.len() > 1 {
            let next_first = match self.segments.get(1) {
                Some(&(first, _)) => first,
                None => break, // unreachable: len > 1 checked
            };
            if next_first > lsn {
                break;
            }
            let (_, path) = self.segments.remove(0);
            std::fs::remove_file(&path)?;
            deleted += 1;
        }
        if deleted > 0 {
            sync_dir(&self.dir)?;
            self.stats.segments_deleted += deleted;
        }
        Ok(deleted)
    }

    /// Seal the active segment and start a new one at `next_lsn`.
    fn rotate(&mut self) -> Result<(), WalError> {
        // Everything in the sealed segment must be durable before the
        // log continues elsewhere, whatever the fsync policy: replay
        // treats a short *interior* segment as corruption.
        self.active.sync_data()?;
        if self.unsynced > 0 {
            self.unsynced = 0;
            self.stats.fsyncs += 1;
        }
        let path = segment_path(&self.dir, self.next_lsn);
        self.active = create_segment(&path, self.next_lsn)?;
        sync_dir(&self.dir)?;
        self.segments.push((self.next_lsn, path));
        self.active_len = SEG_HEADER_LEN as u64;
        self.stats.segments_created += 1;
        Ok(())
    }
}

/// `dir/wal-<first_lsn>.seg`, zero-padded so lexicographic order is
/// LSN order.
fn segment_path(dir: &Path, first_lsn: u64) -> PathBuf {
    dir.join(format!("wal-{first_lsn:016x}.seg"))
}

/// Create a fresh segment file with a checksummed header, synced.
fn create_segment(path: &Path, first_lsn: u64) -> Result<File, WalError> {
    let mut header = Vec::with_capacity(SEG_HEADER_LEN);
    header.extend_from_slice(WAL_MAGIC);
    header.extend_from_slice(&first_lsn.to_le_bytes());
    header.extend_from_slice(&xxh64(&header).to_le_bytes());
    // Plain write mode (not append): the cursor sits right after the
    // header and this handle only ever writes sequentially.
    let mut f = OpenOptions::new()
        .create(true)
        .truncate(true)
        .write(true)
        .open(path)?;
    f.write_all(&header)?;
    f.sync_all()?;
    Ok(f)
}

/// List `wal-*.seg` files under `dir`, sorted by their first LSN.
/// Non-WAL files (checkpoints share the directory) are ignored;
/// WAL-shaped names that don't parse are a typed error, not a skip.
fn scan_segments(dir: &Path) -> Result<Vec<(u64, PathBuf)>, WalError> {
    let mut out = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some(middle) = name
            .strip_prefix("wal-")
            .and_then(|rest| rest.strip_suffix(".seg"))
        else {
            continue;
        };
        let Ok(first_lsn) = u64::from_str_radix(middle, 16) else {
            return Err(WalError::Malformed("unparseable wal segment file name"));
        };
        out.push((first_lsn, entry.path()));
    }
    out.sort_unstable_by_key(|&(lsn, _)| lsn);
    Ok(out)
}

/// What replaying one segment concluded.
struct SegmentReplay {
    /// The LSN following this segment's last valid record.
    next_lsn: u64,
    /// Bytes of the file that are valid (header + whole records); any
    /// surplus is a torn tail the caller truncates.
    keep_bytes: u64,
}

/// Validate and replay one segment image. `last` relaxes the
/// end-of-file rules: only the final segment of the chain may end
/// mid-record (a torn append), and only there is truncation legal.
fn replay_segment(
    path: &Path,
    first_lsn: u64,
    bytes: &[u8],
    last: bool,
    records: &mut Vec<WalRecord>,
) -> Result<SegmentReplay, WalError> {
    let corrupt = |offset: usize, what: &'static str| WalError::Corrupt {
        segment: path.to_path_buf(),
        offset: offset as u64,
        what,
    };
    if bytes.len() < SEG_HEADER_LEN {
        if last {
            // A crash between segment creation and the header write
            // leaves a short header; there is nothing to keep.
            return Ok(SegmentReplay {
                next_lsn: first_lsn,
                keep_bytes: 0,
            });
        }
        return Err(corrupt(0, "interior segment shorter than its header"));
    }
    if slice(bytes, 0, 8)? != WAL_MAGIC {
        return Err(WalError::BadMagic {
            segment: path.to_path_buf(),
        });
    }
    let header_sum = u64::from_le_bytes(arr8(slice(bytes, 16, 8)?)?);
    if xxh64(slice(bytes, 0, 16)?) != header_sum {
        return Err(corrupt(0, "segment header checksum"));
    }
    let header_lsn = u64::from_le_bytes(arr8(slice(bytes, 8, 8)?)?);
    if header_lsn != first_lsn {
        return Err(corrupt(8, "segment header lsn disagrees with file name"));
    }

    let mut lsn = first_lsn;
    let mut at = SEG_HEADER_LEN;
    while at < bytes.len() {
        let remaining = bytes.len() - at;
        if remaining < REC_HEADER_LEN {
            if last {
                break; // torn mid-header
            }
            return Err(corrupt(at, "interior segment ends mid-record"));
        }
        let len_bytes = slice(bytes, at, 4)?;
        let len_sum = u32::from_le_bytes(arr4(slice(bytes, at + 4, 4)?)?);
        if truncate_sum(xxh64(len_bytes)) != len_sum {
            return Err(corrupt(at, "record length checksum"));
        }
        let len = u32::from_le_bytes(arr4(len_bytes)?) as usize;
        if len > MAX_RECORD_LEN {
            return Err(corrupt(at, "record length over MAX_RECORD_LEN"));
        }
        if remaining - REC_HEADER_LEN < len {
            if last {
                break; // torn mid-payload: the length itself verified
            }
            return Err(corrupt(at, "interior segment ends mid-record"));
        }
        let payload_sum = u64::from_le_bytes(arr8(slice(bytes, at + 8, 8)?)?);
        let payload = slice(bytes, at + REC_HEADER_LEN, len)?;
        if xxh64(payload) != payload_sum {
            return Err(corrupt(at, "record payload checksum"));
        }
        records.push(WalRecord {
            lsn,
            payload: payload.to_vec(),
        });
        lsn += 1;
        at += REC_HEADER_LEN + len;
    }
    Ok(SegmentReplay {
        next_lsn: lsn,
        keep_bytes: at as u64,
    })
}

/// Make directory-entry changes (created/deleted segments) durable.
fn sync_dir(dir: &Path) -> Result<(), WalError> {
    File::open(dir)?.sync_all()?;
    Ok(())
}

/// The low 32 bits of a 64-bit digest (the length field's checksum).
fn truncate_sum(sum: u64) -> u32 {
    (sum & 0xffff_ffff).try_into().unwrap_or(0) // unreachable: masked to 32 bits above
}

fn u32_bytes(n: usize) -> Result<[u8; 4], WalError> {
    u32::try_from(n)
        .map(|v| v.to_le_bytes())
        .map_err(|_| WalError::Malformed("record length exceeds u32"))
}

/// Fallible bounds-checked subslice: every frame field read goes
/// through here so a bad offset surfaces as a decode error, never a
/// slice panic on the recovery path.
fn slice(bytes: &[u8], at: usize, len: usize) -> Result<&[u8], WalError> {
    at.checked_add(len)
        .and_then(|end| bytes.get(at..end))
        .ok_or(WalError::Malformed("frame field out of bounds"))
}

fn arr8(b: &[u8]) -> Result<[u8; 8], WalError> {
    <[u8; 8]>::try_from(b).map_err(|_| WalError::Malformed("not an 8-byte field"))
}

fn arr4(b: &[u8]) -> Result<[u8; 4], WalError> {
    <[u8; 4]>::try_from(b).map_err(|_| WalError::Malformed("not a 4-byte field"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("sti-wal-{}-{name}", std::process::id()));
        std::fs::remove_dir_all(&p).ok();
        p
    }

    fn open(dir: &Path, config: WalConfig) -> WalOpen {
        Wal::open(dir, config).expect("open wal")
    }

    #[test]
    fn round_trips_records_across_segment_rotation() {
        let dir = temp_dir("roundtrip");
        let config = WalConfig {
            segment_max_bytes: 64, // force rotation every couple records
            fsync: FsyncPolicy::Always,
        };
        let mut w = open(&dir, config).wal;
        for i in 0..20u64 {
            let lsn = w.append(&i.to_le_bytes()).expect("append");
            assert_eq!(lsn, i);
        }
        assert!(w.segment_count() > 1, "rotation must have fired");
        assert_eq!(w.next_lsn(), 20);
        drop(w);

        let back = open(&dir, config);
        assert!(back.torn.is_none());
        assert_eq!(back.records.len(), 20);
        for (i, r) in back.records.iter().enumerate() {
            assert_eq!(r.lsn, i as u64);
            assert_eq!(r.payload, (i as u64).to_le_bytes());
        }
        assert_eq!(back.wal.next_lsn(), 20);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn append_after_reopen_continues_the_lsn_sequence() {
        let dir = temp_dir("reopen");
        let config = WalConfig::default();
        let mut w = open(&dir, config).wal;
        w.append(b"a").unwrap();
        w.append(b"b").unwrap();
        drop(w);
        let mut back = open(&dir, config);
        assert_eq!(back.records.len(), 2);
        assert_eq!(back.wal.append(b"c").unwrap(), 2);
        drop(back);
        let again = open(&dir, config);
        assert_eq!(
            again.records.iter().map(|r| r.lsn).collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fsync_policies_sync_when_promised() {
        let dir = temp_dir("fsync");
        let mut w = open(
            &dir,
            WalConfig {
                fsync: FsyncPolicy::Always,
                ..WalConfig::default()
            },
        )
        .wal;
        w.append(b"x").unwrap();
        w.append(b"y").unwrap();
        assert_eq!(w.stats().fsyncs, 2, "always: one fsync per append");
        std::fs::remove_dir_all(&dir).ok();

        let dir = temp_dir("fsync-n");
        let mut w = open(
            &dir,
            WalConfig {
                fsync: FsyncPolicy::EveryN(3),
                ..WalConfig::default()
            },
        )
        .wal;
        for _ in 0..7 {
            w.append(b"x").unwrap();
        }
        assert_eq!(w.stats().fsyncs, 2, "every-3: fsyncs at 3 and 6");
        w.sync().unwrap();
        assert_eq!(w.stats().fsyncs, 3, "explicit sync flushes the leftover");
        w.sync().unwrap();
        assert_eq!(w.stats().fsyncs, 3, "sync with nothing pending is free");
        std::fs::remove_dir_all(&dir).ok();

        let dir = temp_dir("fsync-commit");
        let mut w = open(
            &dir,
            WalConfig {
                fsync: FsyncPolicy::Commit,
                ..WalConfig::default()
            },
        )
        .wal;
        for _ in 0..5 {
            w.append(b"x").unwrap();
        }
        assert_eq!(w.stats().fsyncs, 0, "commit policy never syncs on append");
        w.sync().unwrap();
        assert_eq!(w.stats().fsyncs, 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn zero_every_n_is_refused() {
        let dir = temp_dir("zero-n");
        let err = Wal::open(
            &dir,
            WalConfig {
                fsync: FsyncPolicy::EveryN(0),
                ..WalConfig::default()
            },
        )
        .unwrap_err();
        assert!(matches!(err, WalError::Malformed(_)), "{err:?}");
        std::fs::remove_dir_all(&dir).ok();
    }

    /// A crash mid-append leaves a record prefix; reopen must keep the
    /// intact records, report the torn tail, truncate the file, and
    /// resume appending at the right LSN.
    #[test]
    fn torn_tail_is_truncated_and_reported() {
        let dir = temp_dir("torn");
        let config = WalConfig::default();
        let mut w = open(&dir, config).wal;
        w.append(b"first").unwrap();
        w.append(b"second").unwrap();
        let (_, seg) = w.segments.last().expect("segment").clone();
        drop(w);
        // Tear the last record: drop its final 3 payload bytes.
        let full = std::fs::read(&seg).unwrap();
        let f = OpenOptions::new().write(true).open(&seg).unwrap();
        f.set_len(full.len() as u64 - 3).unwrap();
        drop(f);

        let back = open(&dir, config);
        assert_eq!(back.records.len(), 1);
        assert_eq!(back.records[0].payload, b"first");
        let torn = back.torn.expect("torn tail reported");
        assert_eq!(torn.dropped_bytes, (REC_HEADER_LEN + 6 - 3) as u64);
        assert_eq!(
            std::fs::metadata(&seg).unwrap().len(),
            torn.offset,
            "file truncated to the record boundary"
        );
        // The torn record's LSN is reused: it was never acknowledged
        // as durable by a completed append.
        let mut w = back.wal;
        assert_eq!(w.append(b"replacement").unwrap(), 1);
        drop(w);
        let again = open(&dir, config);
        assert!(again.torn.is_none());
        assert_eq!(again.records[1].payload, b"replacement");
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Truncation to just a header, or to an empty file (crash between
    /// create and header write), both reopen cleanly.
    #[test]
    fn torn_header_resets_the_segment() {
        let dir = temp_dir("torn-header");
        let config = WalConfig::default();
        let mut w = open(&dir, config).wal;
        w.append(b"payload").unwrap();
        let (_, seg) = w.segments.last().expect("segment").clone();
        drop(w);
        let f = OpenOptions::new().write(true).open(&seg).unwrap();
        f.set_len(10).unwrap(); // mid-header tear
        drop(f);

        let back = open(&dir, config);
        assert_eq!(back.records.len(), 0);
        assert_eq!(back.torn.expect("reported").dropped_bytes, 10);
        let mut w = back.wal;
        assert_eq!(w.append(b"again").unwrap(), 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Every single-byte flip in a sealed log is a typed error — never
    /// a panic, never a silent truncation. This is the storage-level
    /// half of the crash-matrix acceptance criterion.
    #[test]
    fn every_byte_flip_fails_closed() {
        let dir = temp_dir("flip");
        let config = WalConfig::default();
        let mut w = open(&dir, config).wal;
        w.append(b"alpha").unwrap();
        w.append(b"beta-longer-payload").unwrap();
        let (_, seg) = w.segments.last().expect("segment").clone();
        drop(w);
        let clean = std::fs::read(&seg).unwrap();
        for at in 0..clean.len() {
            let mut bad = clean.clone();
            bad[at] ^= 0x20;
            std::fs::write(&seg, &bad).unwrap();
            let result = Wal::open(&dir, config);
            match result {
                Err(
                    WalError::BadMagic { .. }
                    | WalError::Corrupt { .. }
                    | WalError::SequenceGap { .. }
                    | WalError::Malformed(_),
                ) => {}
                Err(other) => panic!("flip at {at}: unexpected error {other:?}"),
                Ok(opened) => panic!(
                    "flip at {at} went unnoticed ({} records)",
                    opened.records.len()
                ),
            }
        }
        std::fs::write(&seg, &clean).unwrap();
        assert_eq!(open(&dir, config).records.len(), 2, "clean log still reads");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_middle_segment_is_a_sequence_gap() {
        let dir = temp_dir("gap");
        let config = WalConfig {
            segment_max_bytes: 40,
            fsync: FsyncPolicy::Commit,
        };
        let mut w = open(&dir, config).wal;
        for i in 0..12u64 {
            w.append(&[0u8; 16][..(i as usize % 16)]).unwrap();
        }
        assert!(w.segment_count() >= 3);
        let (_, victim) = w.segments[1].clone();
        drop(w);
        std::fs::remove_file(&victim).unwrap();
        let err = Wal::open(&dir, config).unwrap_err();
        assert!(matches!(err, WalError::SequenceGap { .. }), "{err:?}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn truncate_below_deletes_only_fully_covered_segments() {
        let dir = temp_dir("truncate");
        let config = WalConfig {
            segment_max_bytes: 48,
            fsync: FsyncPolicy::Commit,
        };
        let mut w = open(&dir, config).wal;
        for _ in 0..12 {
            w.append(b"0123456789").unwrap();
        }
        w.sync().unwrap();
        let segs = w.segment_count();
        assert!(segs >= 3, "need several segments, got {segs}");
        let second_first = w.segments[1].0;

        // Truncating below the second segment's first LSN deletes only
        // the first segment.
        assert_eq!(w.truncate_below(second_first).unwrap(), 1);
        assert_eq!(w.segment_count(), segs - 1);
        // Truncating below an LSN inside a segment keeps that segment.
        let last_first = w.segments.last().expect("active").0;
        w.truncate_below(last_first).unwrap();
        assert_eq!(w.segment_count(), 1, "active segment survives");
        assert_eq!(w.truncate_below(u64::MAX).unwrap(), 0);
        drop(w);

        // The remaining chain replays from a nonzero first LSN.
        let back = open(&dir, config);
        assert_eq!(back.records.first().expect("records").lsn, last_first);
        assert_eq!(back.wal.next_lsn(), 12);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn foreign_files_are_ignored_but_bad_names_fail() {
        let dir = temp_dir("foreign");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("checkpoint-00000001.meta"), b"not a segment").unwrap();
        let config = WalConfig::default();
        let mut w = open(&dir, config).wal;
        w.append(b"ok").unwrap();
        drop(w);
        std::fs::write(dir.join("wal-zzzz.seg"), b"junk").unwrap();
        let err = Wal::open(&dir, config).unwrap_err();
        assert!(matches!(err, WalError::Malformed(_)), "{err:?}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn oversized_appends_are_refused() {
        let dir = temp_dir("oversize");
        let mut w = open(&dir, WalConfig::default()).wal;
        let big = vec![0u8; MAX_RECORD_LEN + 1];
        let err = w.append(&big).unwrap_err();
        assert!(matches!(err, WalError::Malformed(_)), "{err:?}");
        assert_eq!(w.next_lsn(), 0, "refused append consumes no LSN");
        std::fs::remove_dir_all(&dir).ok();
    }
}
