//! Pluggable page backends beneath [`crate::PageStore`].
//!
//! The store owns accounting (buffer pool, [`crate::IoStats`], retry,
//! checksums, the undo log); a [`PageBackend`] owns the bytes. Three
//! implementations ship with the crate:
//!
//! * [`MemBackend`] — the classic simulated disk: a `Vec` of pages that
//!   never fails.
//! * [`FileBackend`] — pages mirrored to a real file with write-through,
//!   so OS-level I/O errors surface as typed [`StorageError`]s.
//! * [`crate::fault::FaultyBackend`] — a deterministic fault-injection
//!   wrapper over either of the above.

use crate::error::{IoOp, StorageError};
use crate::{Page, PageId, PAGE_SIZE};
use std::io::{Read as _, Seek as _, SeekFrom, Write as _};
use std::path::{Path, PathBuf};

/// The raw page device beneath a [`crate::PageStore`].
///
/// `read` is the fault point for fetches: it performs (or simulates) the
/// transfer and may fail; the store then serves the bytes via
/// [`PageBackend::page`], which is raw access and never fails or injects.
/// All mutating operations go through `write`/`allocate`/`truncate`;
/// `page_mut` is reserved for the store's rollback and load paths, which
/// bypass fault injection by design (recovery must not re-enter the
/// failure it is recovering from).
pub trait PageBackend: std::fmt::Debug + Send + Sync {
    /// Number of pages the backend holds.
    fn num_pages(&self) -> usize;

    /// Perform the transfer of page `id` from the device. The store
    /// verifies the checksum of [`PageBackend::page`] afterwards.
    fn read(&mut self, id: PageId) -> Result<(), StorageError>;

    /// Overwrite page `id` with `payload` (shorter payloads are
    /// zero-padded to [`PAGE_SIZE`]).
    fn write(&mut self, id: PageId, payload: &[u8]) -> Result<(), StorageError>;

    /// Append one zeroed page, returning its id.
    fn allocate(&mut self) -> Result<PageId, StorageError>;

    /// Drop pages from the tail until `len` remain (undo of `allocate`;
    /// infallible because rollback cannot itself fail).
    fn truncate(&mut self, len: usize);

    /// Flush to durable storage.
    fn sync(&mut self) -> Result<(), StorageError>;

    /// Raw access to a page's current bytes. No accounting, no faults.
    fn page(&self, id: PageId) -> Option<&Page>;

    /// Raw mutable access, for rollback/load paths only.
    fn page_mut(&mut self, id: PageId) -> Option<&mut Page>;

    /// Total faults this backend has injected (zero for real backends).
    fn faults_injected(&self) -> u64 {
        0
    }

    /// Heal any in-flight (transfer-level) corruption after a failed
    /// operation. Called by the store when it gives up on an operation,
    /// so injected read-side bit flips do not outlive the error they
    /// caused. Real backends have nothing to heal.
    fn quiesce(&mut self) {}

    /// Clone into a boxed backend (see the caveat on [`FileBackend`]).
    fn clone_box(&self) -> Box<dyn PageBackend>;

    /// Downcast support for tests and tooling.
    fn as_any(&self) -> &dyn std::any::Any;

    /// Mutable downcast support for tests and tooling.
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any;
}

impl Clone for Box<dyn PageBackend> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

/// The default in-memory backend: a growable array of pages. Operations
/// never fail (the error type exists so wrappers can inject).
#[derive(Debug, Clone, Default)]
pub struct MemBackend {
    pages: Vec<Page>,
}

impl MemBackend {
    /// An empty in-memory backend.
    pub fn new() -> Self {
        Self::default()
    }
}

impl PageBackend for MemBackend {
    fn num_pages(&self) -> usize {
        self.pages.len()
    }

    fn read(&mut self, id: PageId) -> Result<(), StorageError> {
        if (id as usize) < self.pages.len() {
            Ok(())
        } else {
            Err(StorageError::Unallocated {
                op: IoOp::Read,
                page: id,
                pages: self.pages.len(),
            })
        }
    }

    fn write(&mut self, id: PageId, payload: &[u8]) -> Result<(), StorageError> {
        let pages = self.pages.len();
        match self.pages.get_mut(id as usize) {
            Some(p) => {
                p.fill_from(payload);
                Ok(())
            }
            None => Err(StorageError::Unallocated {
                op: IoOp::Write,
                page: id,
                pages,
            }),
        }
    }

    fn allocate(&mut self) -> Result<PageId, StorageError> {
        let id = PageId::try_from(self.pages.len()).map_err(|_| StorageError::OutOfPageIds)?;
        self.pages.push(Page::zeroed());
        Ok(id)
    }

    fn truncate(&mut self, len: usize) {
        self.pages.truncate(len);
    }

    fn sync(&mut self) -> Result<(), StorageError> {
        Ok(())
    }

    fn page(&self, id: PageId) -> Option<&Page> {
        self.pages.get(id as usize)
    }

    fn page_mut(&mut self, id: PageId) -> Option<&mut Page> {
        self.pages.get_mut(id as usize)
    }

    fn clone_box(&self) -> Box<dyn PageBackend> {
        Box::new(self.clone())
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

/// Classify an OS error: interruptions and timeouts are worth retrying,
/// everything else (permissions, missing file, full disk) is not.
fn io_transient(kind: std::io::ErrorKind) -> bool {
    matches!(
        kind,
        std::io::ErrorKind::Interrupted
            | std::io::ErrorKind::TimedOut
            | std::io::ErrorKind::WouldBlock
    )
}

fn io_err(op: IoOp, page: Option<PageId>, e: &std::io::Error) -> StorageError {
    StorageError::Io {
        op,
        page,
        transient: io_transient(e.kind()),
        message: e.to_string(),
    }
}

/// A backend keeping pages in a real file (one [`PAGE_SIZE`] slot per
/// page) with an in-memory mirror for zero-copy reads.
///
/// Writes go through to the file immediately; `read` re-fetches the slot
/// from the file into the mirror, so OS-level failures surface where the
/// fault actually is. Cloning detaches from the file: the clone becomes
/// an in-memory snapshot (a second handle appending to the same file
/// would corrupt both owners).
#[derive(Debug)]
pub struct FileBackend {
    path: PathBuf,
    file: std::fs::File,
    mirror: Vec<Page>,
}

impl FileBackend {
    /// Create (or truncate) the backing file at `path`.
    pub fn create(path: &Path) -> std::io::Result<Self> {
        let file = std::fs::OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        Ok(Self {
            path: path.to_path_buf(),
            file,
            mirror: Vec::new(),
        })
    }

    /// Open an existing backing file, loading every full page slot.
    pub fn open(path: &Path) -> std::io::Result<Self> {
        let mut file = std::fs::OpenOptions::new()
            .read(true)
            .write(true)
            .open(path)?;
        let len = file.metadata()?.len() as usize;
        let pages = len / PAGE_SIZE;
        let mut mirror = Vec::with_capacity(pages);
        let mut buf = vec![0u8; PAGE_SIZE];
        file.seek(SeekFrom::Start(0))?;
        for _ in 0..pages {
            file.read_exact(&mut buf)?;
            let mut page = Page::zeroed();
            page.fill_from(&buf);
            mirror.push(page);
        }
        Ok(Self {
            path: path.to_path_buf(),
            file,
            mirror,
        })
    }

    /// The backing file path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl PageBackend for FileBackend {
    fn num_pages(&self) -> usize {
        self.mirror.len()
    }

    fn read(&mut self, id: PageId) -> Result<(), StorageError> {
        if (id as usize) >= self.mirror.len() {
            return Err(StorageError::Unallocated {
                op: IoOp::Read,
                page: id,
                pages: self.mirror.len(),
            });
        }
        let offset = (id as u64) * (PAGE_SIZE as u64);
        self.file
            .seek(SeekFrom::Start(offset))
            .map_err(|e| io_err(IoOp::Read, Some(id), &e))?;
        let mut buf = vec![0u8; PAGE_SIZE];
        self.file
            .read_exact(&mut buf)
            .map_err(|e| io_err(IoOp::Read, Some(id), &e))?;
        self.mirror[id as usize].fill_from(&buf);
        Ok(())
    }

    fn write(&mut self, id: PageId, payload: &[u8]) -> Result<(), StorageError> {
        if (id as usize) >= self.mirror.len() {
            return Err(StorageError::Unallocated {
                op: IoOp::Write,
                page: id,
                pages: self.mirror.len(),
            });
        }
        self.mirror[id as usize].fill_from(payload);
        let offset = (id as u64) * (PAGE_SIZE as u64);
        self.file
            .seek(SeekFrom::Start(offset))
            .map_err(|e| io_err(IoOp::Write, Some(id), &e))?;
        self.file
            .write_all(self.mirror[id as usize].bytes())
            .map_err(|e| io_err(IoOp::Write, Some(id), &e))?;
        Ok(())
    }

    fn allocate(&mut self) -> Result<PageId, StorageError> {
        let id = PageId::try_from(self.mirror.len()).map_err(|_| StorageError::OutOfPageIds)?;
        let new_len = (self.mirror.len() as u64 + 1) * (PAGE_SIZE as u64);
        self.file
            .set_len(new_len)
            .map_err(|e| io_err(IoOp::Allocate, Some(id), &e))?;
        self.mirror.push(Page::zeroed());
        Ok(id)
    }

    fn truncate(&mut self, len: usize) {
        self.mirror.truncate(len);
        // Rollback must not fail; if the OS refuses to shrink the file,
        // the extra zeroed slots are harmless (the mirror is the source
        // of truth for allocation length).
        let _ = self.file.set_len((len as u64) * (PAGE_SIZE as u64));
    }

    fn sync(&mut self) -> Result<(), StorageError> {
        self.file
            .sync_all()
            .map_err(|e| io_err(IoOp::Sync, None, &e))
    }

    fn page(&self, id: PageId) -> Option<&Page> {
        self.mirror.get(id as usize)
    }

    fn page_mut(&mut self, id: PageId) -> Option<&mut Page> {
        self.mirror.get_mut(id as usize)
    }

    fn clone_box(&self) -> Box<dyn PageBackend> {
        Box::new(MemBackend {
            pages: self.mirror.clone(),
        })
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_backend_round_trip() {
        let mut b = MemBackend::new();
        let a = b.allocate().unwrap();
        assert_eq!(a, 0);
        b.write(a, &[1, 2, 3]).unwrap();
        b.read(a).unwrap();
        assert_eq!(&b.page(a).unwrap().bytes()[..3], &[1, 2, 3]);
        assert!(matches!(
            b.read(9),
            Err(StorageError::Unallocated { page: 9, .. })
        ));
        b.truncate(0);
        assert_eq!(b.num_pages(), 0);
    }

    #[test]
    fn file_backend_round_trip_and_reopen() {
        let mut path = std::env::temp_dir();
        path.push(format!("sti-filebackend-{}.pages", std::process::id()));
        {
            let mut b = FileBackend::create(&path).unwrap();
            let a = b.allocate().unwrap();
            let c = b.allocate().unwrap();
            b.write(a, &[7; 10]).unwrap();
            b.write(c, &[9; 5]).unwrap();
            b.sync().unwrap();
        }
        {
            let mut b = FileBackend::open(&path).unwrap();
            assert_eq!(b.num_pages(), 2);
            b.read(0).unwrap();
            assert_eq!(&b.page(0).unwrap().bytes()[..10], &[7; 10]);
            assert_eq!(&b.page(1).unwrap().bytes()[..5], &[9; 5]);
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn file_backend_clone_detaches_to_memory() {
        let mut path = std::env::temp_dir();
        path.push(format!(
            "sti-filebackend-clone-{}.pages",
            std::process::id()
        ));
        let mut b = FileBackend::create(&path).unwrap();
        let a = b.allocate().unwrap();
        b.write(a, &[4; 4]).unwrap();
        let mut cloned = b.clone_box();
        cloned.write(a, &[5; 4]).unwrap();
        // The clone diverges without touching the original file.
        b.read(a).unwrap();
        assert_eq!(&b.page(a).unwrap().bytes()[..4], &[4; 4]);
        assert_eq!(&cloned.page(a).unwrap().bytes()[..4], &[5; 4]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn transience_classification_of_os_errors() {
        assert!(io_transient(std::io::ErrorKind::Interrupted));
        assert!(io_transient(std::io::ErrorKind::TimedOut));
        assert!(!io_transient(std::io::ErrorKind::NotFound));
        assert!(!io_transient(std::io::ErrorKind::PermissionDenied));
    }
}
