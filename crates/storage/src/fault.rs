//! Deterministic fault injection for the storage layer.
//!
//! A [`FaultyBackend`] wraps any [`PageBackend`] and injects failures
//! scheduled by a [`FaultPlan`]: error-on-Nth-operation (permanent or
//! transient), torn (partial) writes, and bit flips. Plans are plain
//! data — seeded generation, a compact text spec, and a journal of what
//! actually fired make every failure a reproducible test case:
//!
//! ```
//! use sti_storage::fault::{FaultKind, FaultPlan, FaultyBackend};
//! use sti_storage::PageStore;
//!
//! let plan = FaultPlan::seeded(42, 100, 3);
//! let mut store = PageStore::with_backend(
//!     Box::new(FaultyBackend::new_mem(plan.clone())),
//!     10,
//! );
//! // ... run a workload; on failure, print `plan.to_spec()` and replay
//! // it verbatim with `FaultPlan::parse_spec(..)`.
//! # let _ = store.allocate();
//! ```
//!
//! Fault semantics (the failure model in DESIGN.md §6):
//!
//! * `Fail { transient: true }` — the operation errors once; a retry of
//!   the same operation succeeds (unless another fault is scheduled).
//! * `Fail { transient: false }` — the operation errors; retrying is
//!   useless and the [`crate::PageStore`] retry loop will not.
//! * `TornWrite` — only a prefix of the payload reaches the page before
//!   the operation errors (permanently): the on-"disk" bytes are now a
//!   mix of old zero-padding and new prefix, exactly what a crash mid
//!   sector-write leaves behind.
//! * `BitFlip` on a **write** — the operation "succeeds" but a bit of
//!   the stored page is flipped: silent at-rest corruption, caught by
//!   the store's write-back verification.
//! * `BitFlip` on a **read** — the transfer is corrupted but the medium
//!   is not: the flip heals when the page is read again (retry) or when
//!   the store abandons the operation ([`PageBackend::quiesce`]), so a
//!   failed read never leaves damage behind.

use crate::backend::PageBackend;
use crate::error::{IoOp, StorageError};
use crate::{Page, PageId, PAGE_SIZE};

/// What a scheduled fault does to its operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Error the operation outright.
    Fail {
        /// Whether an immediate retry succeeds.
        transient: bool,
    },
    /// Write only the first `keep_bytes` of the payload, then error.
    TornWrite {
        /// Payload prefix length that reaches the page.
        keep_bytes: u32,
    },
    /// Flip one bit of the page involved; the operation "succeeds".
    BitFlip {
        /// Byte offset within the page (taken modulo [`PAGE_SIZE`]).
        byte: u16,
        /// Bit index 0..8.
        bit: u8,
    },
}

/// One fault scheduled at a backend operation index (0-based; every
/// `read`/`write`/`allocate`/`sync` the backend executes counts).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScheduledFault {
    /// Operation index the fault fires at.
    pub at_op: u64,
    /// What happens.
    pub kind: FaultKind,
}

/// A deterministic, replayable schedule of faults.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FaultPlan {
    faults: Vec<ScheduledFault>,
}

impl FaultPlan {
    /// A plan that injects nothing.
    pub fn none() -> Self {
        Self::default()
    }

    /// Build a plan from explicit faults (sorted by operation index;
    /// at most one fault per index — later duplicates are dropped).
    pub fn new(mut faults: Vec<ScheduledFault>) -> Self {
        faults.sort_by_key(|f| f.at_op);
        faults.dedup_by_key(|f| f.at_op);
        Self { faults }
    }

    /// Generate `count` pseudo-random faults over the first
    /// `horizon_ops` operations from `seed`. Same seed, same plan.
    pub fn seeded(seed: u64, horizon_ops: u64, count: usize) -> Self {
        let mut rng = SplitMix64::new(seed);
        let mut faults = Vec::with_capacity(count);
        for _ in 0..count {
            let at_op = if horizon_ops == 0 {
                0
            } else {
                rng.next() % horizon_ops
            };
            let kind = match rng.next() % 4 {
                0 => FaultKind::Fail { transient: true },
                1 => FaultKind::Fail { transient: false },
                2 => FaultKind::TornWrite {
                    keep_bytes: u32::try_from(rng.next() % (PAGE_SIZE as u64)).unwrap_or(0),
                },
                _ => FaultKind::BitFlip {
                    byte: u16::try_from(rng.next() % (PAGE_SIZE as u64)).unwrap_or(0),
                    bit: u8::try_from(rng.next() % 8).unwrap_or(0),
                },
            };
            faults.push(ScheduledFault { at_op, kind });
        }
        Self::new(faults)
    }

    /// The scheduled faults, sorted by operation index.
    pub fn faults(&self) -> &[ScheduledFault] {
        &self.faults
    }

    /// Compact text form, e.g. `"3:transient 17:fail 40:torn@512
    /// 99:flip@33.5"`. Round-trips through [`FaultPlan::parse_spec`].
    pub fn to_spec(&self) -> String {
        let mut out = String::new();
        for (i, f) in self.faults.iter().enumerate() {
            if i > 0 {
                out.push(' ');
            }
            match f.kind {
                FaultKind::Fail { transient: true } => {
                    out.push_str(&format!("{}:transient", f.at_op));
                }
                FaultKind::Fail { transient: false } => {
                    out.push_str(&format!("{}:fail", f.at_op));
                }
                FaultKind::TornWrite { keep_bytes } => {
                    out.push_str(&format!("{}:torn@{}", f.at_op, keep_bytes));
                }
                FaultKind::BitFlip { byte, bit } => {
                    out.push_str(&format!("{}:flip@{}.{}", f.at_op, byte, bit));
                }
            }
        }
        out
    }

    /// Parse the [`FaultPlan::to_spec`] form back into a plan.
    pub fn parse_spec(spec: &str) -> Result<Self, String> {
        let mut faults = Vec::new();
        for item in spec.split_whitespace() {
            let (op, kind) = item
                .split_once(':')
                .ok_or_else(|| format!("fault `{item}`: expected `op:kind`"))?;
            let at_op: u64 = op
                .parse()
                .map_err(|_| format!("fault `{item}`: bad operation index"))?;
            let kind = if kind == "transient" {
                FaultKind::Fail { transient: true }
            } else if kind == "fail" {
                FaultKind::Fail { transient: false }
            } else if let Some(n) = kind.strip_prefix("torn@") {
                FaultKind::TornWrite {
                    keep_bytes: n
                        .parse()
                        .map_err(|_| format!("fault `{item}`: bad torn length"))?,
                }
            } else if let Some(pos) = kind.strip_prefix("flip@") {
                let (byte, bit) = pos
                    .split_once('.')
                    .ok_or_else(|| format!("fault `{item}`: expected flip@byte.bit"))?;
                FaultKind::BitFlip {
                    byte: byte
                        .parse()
                        .map_err(|_| format!("fault `{item}`: bad flip byte"))?,
                    bit: bit
                        .parse()
                        .map_err(|_| format!("fault `{item}`: bad flip bit"))?,
                }
            } else {
                return Err(format!("fault `{item}`: unknown kind `{kind}`"));
            };
            faults.push(ScheduledFault { at_op, kind });
        }
        Ok(Self::new(faults))
    }
}

/// One fault that actually fired, as recorded in the backend's journal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// Operation index it fired at.
    pub at_op: u64,
    /// The operation it hit.
    pub op: IoOp,
    /// The page involved, when the operation targets one.
    pub page: Option<PageId>,
    /// What was injected.
    pub kind: FaultKind,
}

/// A [`PageBackend`] wrapper injecting the faults a [`FaultPlan`]
/// schedules, with a journal of everything that fired.
#[derive(Debug, Clone)]
pub struct FaultyBackend {
    inner: Box<dyn PageBackend>,
    plan: FaultPlan,
    /// Cursor into `plan.faults`.
    next_fault: usize,
    /// Operations executed so far.
    op: u64,
    journal: Vec<FaultEvent>,
    /// Pristine copy of a page corrupted by a read-side bit flip, healed
    /// on the next touch of that page or on `quiesce`.
    healing: Option<(PageId, Page)>,
}

impl FaultyBackend {
    /// Wrap `inner` with the given plan.
    pub fn new(inner: Box<dyn PageBackend>, plan: FaultPlan) -> Self {
        Self {
            inner,
            plan,
            next_fault: 0,
            op: 0,
            journal: Vec::new(),
            healing: None,
        }
    }

    /// Wrap a fresh [`crate::backend::MemBackend`].
    pub fn new_mem(plan: FaultPlan) -> Self {
        Self::new(Box::new(crate::backend::MemBackend::new()), plan)
    }

    /// Operations executed so far (the fault clock).
    pub fn ops_executed(&self) -> u64 {
        self.op
    }

    /// Everything that fired, in order — replay with
    /// [`FaultPlan::from_journal`].
    pub fn journal(&self) -> &[FaultEvent] {
        &self.journal
    }

    /// The wrapped backend.
    pub fn inner(&self) -> &dyn PageBackend {
        self.inner.as_ref()
    }

    /// Take the next scheduled fault if it fires on this operation.
    fn due(&mut self) -> Option<FaultKind> {
        let f = self.plan.faults.get(self.next_fault)?;
        if f.at_op == self.op {
            self.next_fault += 1;
            Some(f.kind)
        } else {
            // Skip faults scheduled for op indexes that never executed
            // (e.g. the workload ended early); keep the cursor moving.
            while self
                .plan
                .faults
                .get(self.next_fault)
                .is_some_and(|f| f.at_op < self.op)
            {
                self.next_fault += 1;
            }
            let f = self.plan.faults.get(self.next_fault)?;
            (f.at_op == self.op).then(|| {
                self.next_fault += 1;
                f.kind
            })
        }
    }

    fn record(&mut self, op: IoOp, page: Option<PageId>, kind: FaultKind) {
        // Callers bump `self.op` before recording, so the operation the
        // fault fired on is the previous index.
        self.journal.push(FaultEvent {
            at_op: self.op - 1,
            op,
            page,
            kind,
        });
    }

    /// Restore the pristine bytes of a page corrupted in transfer.
    fn heal(&mut self) {
        if let Some((id, pristine)) = self.healing.take() {
            if let Some(p) = self.inner.page_mut(id) {
                *p = pristine;
            }
        }
    }
}

impl FaultPlan {
    /// Rebuild the exact plan a journal describes (for replays).
    pub fn from_journal(journal: &[FaultEvent]) -> Self {
        Self::new(
            journal
                .iter()
                .map(|e| ScheduledFault {
                    at_op: e.at_op,
                    kind: e.kind,
                })
                .collect(),
        )
    }
}

impl PageBackend for FaultyBackend {
    fn num_pages(&self) -> usize {
        self.inner.num_pages()
    }

    fn read(&mut self, id: PageId) -> Result<(), StorageError> {
        self.heal();
        let fault = self.due();
        self.op += 1;
        match fault {
            None => self.inner.read(id),
            Some(FaultKind::Fail { transient }) => {
                self.record(IoOp::Read, Some(id), FaultKind::Fail { transient });
                Err(StorageError::Injected {
                    op: IoOp::Read,
                    page: Some(id),
                    transient,
                })
            }
            Some(FaultKind::BitFlip { byte, bit }) => {
                self.inner.read(id)?;
                self.record(IoOp::Read, Some(id), FaultKind::BitFlip { byte, bit });
                if let Some(p) = self.inner.page_mut(id) {
                    let pristine = p.clone();
                    p.bytes_mut()[(byte as usize) % PAGE_SIZE] ^= 1 << (bit % 8);
                    self.healing = Some((id, pristine));
                }
                Ok(())
            }
            // A torn fault scheduled onto a read degrades to a plain
            // permanent failure: reads have no payload to tear.
            Some(FaultKind::TornWrite { .. }) => {
                self.record(IoOp::Read, Some(id), FaultKind::Fail { transient: false });
                Err(StorageError::Injected {
                    op: IoOp::Read,
                    page: Some(id),
                    transient: false,
                })
            }
        }
    }

    fn write(&mut self, id: PageId, payload: &[u8]) -> Result<(), StorageError> {
        self.heal();
        let fault = self.due();
        self.op += 1;
        match fault {
            None => self.inner.write(id, payload),
            Some(FaultKind::Fail { transient }) => {
                self.record(IoOp::Write, Some(id), FaultKind::Fail { transient });
                Err(StorageError::Injected {
                    op: IoOp::Write,
                    page: Some(id),
                    transient,
                })
            }
            Some(FaultKind::TornWrite { keep_bytes }) => {
                let keep = (keep_bytes as usize).min(payload.len());
                self.inner.write(id, &payload[..keep])?;
                self.record(IoOp::Write, Some(id), FaultKind::TornWrite { keep_bytes });
                Err(StorageError::Injected {
                    op: IoOp::Write,
                    page: Some(id),
                    transient: false,
                })
            }
            Some(FaultKind::BitFlip { byte, bit }) => {
                self.inner.write(id, payload)?;
                self.record(IoOp::Write, Some(id), FaultKind::BitFlip { byte, bit });
                if let Some(p) = self.inner.page_mut(id) {
                    // At-rest corruption: no healing copy is kept.
                    p.bytes_mut()[(byte as usize) % PAGE_SIZE] ^= 1 << (bit % 8);
                }
                Ok(())
            }
        }
    }

    fn allocate(&mut self) -> Result<PageId, StorageError> {
        self.heal();
        let fault = self.due();
        self.op += 1;
        match fault {
            Some(FaultKind::Fail { transient }) => {
                self.record(IoOp::Allocate, None, FaultKind::Fail { transient });
                Err(StorageError::Injected {
                    op: IoOp::Allocate,
                    page: None,
                    transient,
                })
            }
            // Torn writes and bit flips have no meaning for an append of
            // a zeroed page; treat them as permanent failures.
            Some(_) => {
                self.record(IoOp::Allocate, None, FaultKind::Fail { transient: false });
                Err(StorageError::Injected {
                    op: IoOp::Allocate,
                    page: None,
                    transient: false,
                })
            }
            None => self.inner.allocate(),
        }
    }

    fn truncate(&mut self, len: usize) {
        // Rollback path: never counted, never faulted.
        self.inner.truncate(len);
    }

    fn sync(&mut self) -> Result<(), StorageError> {
        self.heal();
        let fault = self.due();
        self.op += 1;
        match fault {
            Some(FaultKind::Fail { transient }) => {
                self.record(IoOp::Sync, None, FaultKind::Fail { transient });
                Err(StorageError::Injected {
                    op: IoOp::Sync,
                    page: None,
                    transient,
                })
            }
            Some(_) => {
                self.record(IoOp::Sync, None, FaultKind::Fail { transient: false });
                Err(StorageError::Injected {
                    op: IoOp::Sync,
                    page: None,
                    transient: false,
                })
            }
            None => self.inner.sync(),
        }
    }

    fn page(&self, id: PageId) -> Option<&Page> {
        self.inner.page(id)
    }

    fn page_mut(&mut self, id: PageId) -> Option<&mut Page> {
        self.inner.page_mut(id)
    }

    fn faults_injected(&self) -> u64 {
        self.journal.len() as u64
    }

    fn quiesce(&mut self) {
        self.heal();
    }

    fn clone_box(&self) -> Box<dyn PageBackend> {
        Box::new(self.clone())
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

/// SplitMix64: the tiny, well-distributed generator behind the seeded
/// plans (and many standard libraries' seeding paths).
#[derive(Debug, Clone)]
struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mem_with(plan: FaultPlan) -> FaultyBackend {
        let mut b = FaultyBackend::new_mem(plan);
        // Pre-allocate a page without consuming fault-plan ops: plans in
        // these tests are written against post-setup operation indexes.
        b.inner.allocate().unwrap();
        b
    }

    #[test]
    fn plans_are_deterministic_and_spec_round_trips() {
        let a = FaultPlan::seeded(7, 1000, 8);
        let b = FaultPlan::seeded(7, 1000, 8);
        assert_eq!(a, b);
        assert_ne!(a, FaultPlan::seeded(8, 1000, 8));
        let spec = a.to_spec();
        assert_eq!(FaultPlan::parse_spec(&spec).unwrap(), a, "{spec}");
        assert_eq!(FaultPlan::parse_spec("").unwrap(), FaultPlan::none());
        assert!(FaultPlan::parse_spec("x").is_err());
        assert!(FaultPlan::parse_spec("3:explode").is_err());
    }

    #[test]
    fn fail_on_nth_op_fires_exactly_once() {
        let plan = FaultPlan::new(vec![ScheduledFault {
            at_op: 1,
            kind: FaultKind::Fail { transient: true },
        }]);
        let mut b = mem_with(plan);
        b.read(0).unwrap(); // op 0
        let err = b.read(0).unwrap_err(); // op 1: injected
        assert!(err.is_transient());
        b.read(0).unwrap(); // op 2: retry succeeds
        assert_eq!(b.faults_injected(), 1);
        assert_eq!(b.journal().len(), 1);
        assert_eq!(b.journal()[0].at_op, 1);
    }

    #[test]
    fn torn_write_keeps_a_prefix_and_errors() {
        let plan = FaultPlan::new(vec![ScheduledFault {
            at_op: 0,
            kind: FaultKind::TornWrite { keep_bytes: 2 },
        }]);
        let mut b = mem_with(plan);
        let err = b.write(0, &[9, 9, 9, 9]).unwrap_err();
        assert!(!err.is_transient());
        assert_eq!(&b.page(0).unwrap().bytes()[..4], &[9, 9, 0, 0]);
    }

    #[test]
    fn write_bit_flip_is_silent_at_rest() {
        let plan = FaultPlan::new(vec![ScheduledFault {
            at_op: 0,
            kind: FaultKind::BitFlip { byte: 0, bit: 0 },
        }]);
        let mut b = mem_with(plan);
        b.write(0, &[0b10]).unwrap(); // "succeeds"
        assert_eq!(b.page(0).unwrap().bytes()[0], 0b11, "bit 0 flipped");
        // No healing: the corruption is on the medium.
        b.read(0).unwrap();
        assert_eq!(b.page(0).unwrap().bytes()[0], 0b11);
    }

    #[test]
    fn read_bit_flip_heals_on_reread_and_on_quiesce() {
        let plan = FaultPlan::new(vec![ScheduledFault {
            at_op: 0,
            kind: FaultKind::BitFlip { byte: 0, bit: 1 },
        }]);
        let mut b = mem_with(plan);
        b.read(0).unwrap();
        assert_eq!(b.page(0).unwrap().bytes()[0], 0b10, "transfer corrupted");
        b.read(0).unwrap(); // re-read heals first
        assert_eq!(b.page(0).unwrap().bytes()[0], 0, "medium was never damaged");

        let plan = FaultPlan::new(vec![ScheduledFault {
            at_op: 0,
            kind: FaultKind::BitFlip { byte: 0, bit: 1 },
        }]);
        let mut b = mem_with(plan);
        b.read(0).unwrap();
        b.quiesce();
        assert_eq!(b.page(0).unwrap().bytes()[0], 0, "quiesce heals");
    }

    #[test]
    fn journal_replays_to_an_equivalent_plan() {
        let plan = FaultPlan::seeded(3, 10, 4);
        let mut b = mem_with(plan);
        for _ in 0..12 {
            let _ = b.read(0);
        }
        let replay = FaultPlan::from_journal(b.journal());
        // Journal indexes are the indexes that actually fired; replaying
        // them against the same workload fires the same faults.
        let mut b2 = mem_with(replay);
        for _ in 0..12 {
            let _ = b2.read(0);
        }
        assert_eq!(b.journal(), b2.journal());
    }

    #[test]
    fn faults_on_allocate_and_sync_are_typed() {
        let plan = FaultPlan::new(vec![
            ScheduledFault {
                at_op: 0,
                kind: FaultKind::Fail { transient: false },
            },
            ScheduledFault {
                at_op: 1,
                kind: FaultKind::Fail { transient: true },
            },
        ]);
        let mut b = FaultyBackend::new_mem(plan);
        assert!(matches!(
            b.allocate(),
            Err(StorageError::Injected {
                op: IoOp::Allocate,
                transient: false,
                ..
            })
        ));
        assert!(matches!(
            b.sync(),
            Err(StorageError::Injected {
                op: IoOp::Sync,
                transient: true,
                ..
            })
        ));
        assert_eq!(b.ops_executed(), 2);
    }
}
