//! Crash-safe saving and loading of a [`PageStore`] (plus owner
//! metadata), so a built index survives process restarts and a torn save
//! can never be mistaken for a valid index.
//!
//! File layout, version 2 (all little-endian):
//!
//! ```text
//! magic "STIDX2\0\0" · epoch: u64 · meta_len: u32 · page_count: u32 ·
//! free_count: u32                                  (header, 28 bytes)
//! header_xxh: u64                                  (XXH64 of the header)
//! meta bytes · meta_xxh: u64
//! free page ids (u32 each) · free_xxh: u64
//! page_count × (PAGE_SIZE page bytes · page_xxh: u64)
//! trailer_epoch: u64                               (must equal epoch)
//! ```
//!
//! The `meta` region belongs to the structure owning the store (tree
//! parameters, root log, counters); the store itself doesn't interpret
//! it.
//!
//! Three mechanisms make the format crash-safe (DESIGN.md §6):
//!
//! * **Atomic save** — the file is written to a `.tmp` sibling, synced,
//!   then renamed over the target, so a crash mid-save leaves the old
//!   index untouched.
//! * **Checksums** — every region (header, meta, free list, each page)
//!   carries an XXH64 digest; [`PageStore::load_from`] fails closed with
//!   a typed [`OpenError`] on the first mismatch.
//! * **Epochs** — a monotonically increasing save counter appears in the
//!   header *and* as the file's final 8 bytes; a truncated tail or a
//!   spliced file shows up as [`OpenError::EpochMismatch`] (or
//!   [`OpenError::Truncated`]) before any page is trusted.

use crate::checksum::xxh64;
use crate::{PageId, PageStore, PAGE_SIZE};
use std::io::{self, Write};
use std::path::{Path, PathBuf};

/// Magic prefix identifying index files (format version 2).
pub const MAGIC: &[u8; 8] = b"STIDX2\0\0";

/// Fixed-size header length: magic + epoch + three length fields.
const HEADER_LEN: usize = 8 + 8 + 4 + 4 + 4;

/// Which checksummed region of an index file failed verification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Region {
    /// The fixed-size header.
    Header,
    /// The owner metadata block.
    Meta,
    /// The free-list block.
    FreeList,
    /// One page slot.
    Page(PageId),
}

impl std::fmt::Display for Region {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Region::Header => write!(f, "header"),
            Region::Meta => write!(f, "metadata"),
            Region::FreeList => write!(f, "free list"),
            Region::Page(id) => write!(f, "page {id}"),
        }
    }
}

/// Why an index file was rejected. Every malformed input — from a
/// zero-byte file to a single flipped bit in the last page — maps to one
/// of these variants; `load_from` never panics and never returns a
/// partially loaded store.
#[derive(Debug)]
pub enum OpenError {
    /// The file could not be read at all.
    Io(io::Error),
    /// The file ends before a required region: a zero-byte file, a file
    /// shorter than one header, and a file cut anywhere else all take
    /// this same path.
    Truncated {
        /// Bytes needed to finish the region being read.
        needed: usize,
        /// Bytes actually available.
        have: usize,
    },
    /// The magic prefix is not [`MAGIC`] (wrong or pre-checksum format).
    BadMagic,
    /// A region's content does not match its recorded checksum.
    Corrupt {
        /// The region that failed.
        region: Region,
    },
    /// Header and trailer epochs disagree (torn tail or spliced file).
    EpochMismatch {
        /// Epoch recorded in the header.
        header: u64,
        /// Epoch recorded in the trailer.
        trailer: u64,
    },
    /// A length or id field is internally inconsistent.
    Malformed(&'static str),
}

impl std::fmt::Display for OpenError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OpenError::Io(e) => write!(f, "cannot read index file: {e}"),
            OpenError::Truncated { needed, have } => {
                write!(f, "index file truncated: need {needed} bytes, have {have}")
            }
            OpenError::BadMagic => write!(f, "not an STIDX2 index file"),
            OpenError::Corrupt { region } => {
                write!(f, "index file {region} failed checksum verification")
            }
            OpenError::EpochMismatch { header, trailer } => write!(
                f,
                "index file epoch mismatch: header {header}, trailer {trailer} (torn save?)"
            ),
            OpenError::Malformed(what) => write!(f, "malformed index file: {what}"),
        }
    }
}

impl std::error::Error for OpenError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            OpenError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for OpenError {
    fn from(e: io::Error) -> Self {
        OpenError::Io(e)
    }
}

impl From<OpenError> for io::Error {
    fn from(e: OpenError) -> Self {
        match e {
            OpenError::Io(e) => e,
            other => io::Error::new(io::ErrorKind::InvalidData, other.to_string()),
        }
    }
}

/// Where a simulated crash interrupts a save (test/CI hook for the
/// fault-matrix job; the public [`PageStore::save_to`] never crashes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SaveCrash {
    /// Power loss after `keep_bytes` of the temp file reached the disk;
    /// the rename never happens.
    MidTemp {
        /// Prefix of the temp file that survives.
        keep_bytes: usize,
    },
    /// Crash after the temp file is complete and synced, but before the
    /// rename makes it current.
    BeforeRename,
}

/// The `.tmp` sibling a save writes before renaming into place.
pub fn temp_sibling(path: &Path) -> PathBuf {
    let mut os = path.as_os_str().to_os_string();
    os.push(".tmp");
    PathBuf::from(os)
}

/// Removes the `.tmp` sibling on drop unless defused. A save that fails
/// after creating the temp file (disk full, rename onto a directory, an
/// interrupting signal unwinding the caller) must not leave a partial
/// image behind; only a *successful* rename — or a simulated
/// [`SaveCrash`], which models a process that never got to run cleanup —
/// keeps the temp path alone.
struct TempGuard {
    path: PathBuf,
    armed: bool,
}

impl TempGuard {
    fn new(path: PathBuf) -> Self {
        Self { path, armed: true }
    }

    fn defuse(&mut self) {
        self.armed = false;
    }
}

impl Drop for TempGuard {
    fn drop(&mut self) {
        if self.armed {
            std::fs::remove_file(&self.path).ok();
        }
    }
}

impl PageStore {
    /// Serialize the store plus `meta` into the version-2 byte image,
    /// stamped with `epoch`.
    fn encode(&self, meta: &[u8], epoch: u64) -> io::Result<Vec<u8>> {
        let meta_len = len_u32(meta.len(), "metadata")?;
        let page_count = len_u32(self.num_pages(), "page count")?;
        let free = self.free_list();
        let free_count = len_u32(free.len(), "free list")?;

        let mut out = Vec::with_capacity(
            HEADER_LEN
                + 8
                + meta.len()
                + 8
                + free.len() * 4
                + 8
                + self.num_pages() * (PAGE_SIZE + 8)
                + 8,
        );
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&epoch.to_le_bytes());
        out.extend_from_slice(&meta_len.to_le_bytes());
        out.extend_from_slice(&page_count.to_le_bytes());
        out.extend_from_slice(&free_count.to_le_bytes());
        let header_sum = xxh64(&out[..HEADER_LEN]);
        out.extend_from_slice(&header_sum.to_le_bytes());

        out.extend_from_slice(meta);
        out.extend_from_slice(&xxh64(meta).to_le_bytes());

        let free_start = out.len();
        for id in free {
            out.extend_from_slice(&id.to_le_bytes());
        }
        let free_sum = xxh64(&out[free_start..]);
        out.extend_from_slice(&free_sum.to_le_bytes());

        for i in 0..self.num_pages() {
            let id = len_u32(i, "page id")?;
            let page = self.raw_page(id);
            out.extend_from_slice(page.bytes());
            out.extend_from_slice(&self.page_sum(id).to_le_bytes());
        }

        out.extend_from_slice(&epoch.to_le_bytes());
        Ok(out)
    }

    /// Write the store plus the owner's `meta` bytes to `path`
    /// atomically: the image goes to a `.tmp` sibling, is synced, then
    /// renamed over `path`. On success the store's save epoch is bumped;
    /// on any error the previous file at `path` is untouched.
    pub fn save_to(&mut self, path: &Path, meta: &[u8]) -> io::Result<()> {
        self.save_impl(path, meta, None)
    }

    /// [`PageStore::save_to`] with a simulated crash at `crash` — the
    /// test/CI hook behind the mid-save-crash recovery scenario. Returns
    /// `Ok(())` at the crash point (the "process" died; there is no error
    /// to observe) without bumping the epoch.
    pub fn save_to_crashing(
        &mut self,
        path: &Path,
        meta: &[u8],
        crash: SaveCrash,
    ) -> io::Result<()> {
        self.save_impl(path, meta, Some(crash))
    }

    fn save_impl(&mut self, path: &Path, meta: &[u8], crash: Option<SaveCrash>) -> io::Result<()> {
        let epoch = self.epoch() + 1;
        let image = self.encode(meta, epoch)?;
        let tmp = temp_sibling(path);
        let mut guard = TempGuard::new(tmp.clone());
        {
            let mut f = std::fs::File::create(&tmp)?;
            match crash {
                Some(SaveCrash::MidTemp { keep_bytes }) => {
                    let keep = keep_bytes.min(image.len());
                    f.write_all(&image[..keep])?;
                    f.sync_all()?;
                    // The simulated process died here; a real crash runs
                    // no destructors, so the torn temp stays on disk.
                    guard.defuse();
                    return Ok(());
                }
                _ => {
                    f.write_all(&image)?;
                    f.sync_all()?;
                }
            }
        }
        if crash == Some(SaveCrash::BeforeRename) {
            guard.defuse();
            return Ok(());
        }
        std::fs::rename(&tmp, path)?;
        guard.defuse();
        self.set_epoch(epoch);
        Ok(())
    }

    /// Read a store back from `path`, returning it together with the
    /// owner's meta bytes. The buffer pool starts empty with
    /// `buffer_pages` capacity (capacity 0 is valid: recovery then
    /// replays with every fetch counted as a miss); I/O counters start
    /// at zero; the store adopts the file's save epoch.
    ///
    /// Fails closed: any truncation, checksum mismatch, epoch mismatch,
    /// or inconsistent length field rejects the whole file.
    pub fn load_from(path: &Path, buffer_pages: usize) -> Result<(Self, Vec<u8>), OpenError> {
        let bytes = std::fs::read(path)?;
        Self::decode(&bytes, buffer_pages)
    }

    /// Validate and decode a version-2 byte image (see
    /// [`PageStore::load_from`]).
    pub fn decode(bytes: &[u8], buffer_pages: usize) -> Result<(Self, Vec<u8>), OpenError> {
        let mut r = Reader { bytes, at: 0 };

        // Header: a zero-byte file and a half-written header both land
        // in the same Truncated arm here.
        let header = r.take(HEADER_LEN)?;
        let header_sum = r.take_u64()?;
        if xxh64(header) != header_sum {
            // Distinguish "different format entirely" from "our format,
            // damaged": magic is checked on the raw bytes first.
            if &header[..8] != MAGIC {
                return Err(OpenError::BadMagic);
            }
            return Err(OpenError::Corrupt {
                region: Region::Header,
            });
        }
        if &header[..8] != MAGIC {
            return Err(OpenError::BadMagic);
        }
        let epoch = u64::from_le_bytes(slice8(&header[8..16]));
        let meta_len = u32::from_le_bytes(slice4(&header[16..20])) as usize;
        let page_count = u32::from_le_bytes(slice4(&header[20..24])) as usize;
        let free_count = u32::from_le_bytes(slice4(&header[24..28])) as usize;
        if meta_len > 1 << 24 {
            return Err(OpenError::Malformed("oversized metadata"));
        }
        if free_count > page_count {
            return Err(OpenError::Malformed("free list exceeds pages"));
        }

        let meta = r.take(meta_len)?;
        let meta_sum = r.take_u64()?;
        if xxh64(meta) != meta_sum {
            return Err(OpenError::Corrupt {
                region: Region::Meta,
            });
        }
        let meta = meta.to_vec();

        let free_bytes = r.take(free_count * 4)?;
        let free_sum = r.take_u64()?;
        if xxh64(free_bytes) != free_sum {
            return Err(OpenError::Corrupt {
                region: Region::FreeList,
            });
        }
        let mut free = Vec::with_capacity(free_count);
        let mut seen = std::collections::HashSet::with_capacity(free_count);
        for chunk in free_bytes.chunks_exact(4) {
            let id = u32::from_le_bytes(slice4(chunk));
            if id as usize >= page_count {
                return Err(OpenError::Malformed("free id out of range"));
            }
            if !seen.insert(id) {
                return Err(OpenError::Malformed("duplicate free id"));
            }
            free.push(id);
        }

        let mut store = PageStore::new(buffer_pages);
        for i in 0..page_count {
            let page_bytes = r.take(PAGE_SIZE)?;
            let page_sum = r.take_u64()?;
            if xxh64(page_bytes) != page_sum {
                let id = u32::try_from(i).map_err(|_| OpenError::Malformed("page id overflow"))?;
                return Err(OpenError::Corrupt {
                    region: Region::Page(id),
                });
            }
            let id = store.allocate_silent();
            store.raw_page_mut(id).fill_from(page_bytes);
            store.refresh_sum(id);
        }

        let trailer = r.take_u64()?;
        if trailer != epoch {
            return Err(OpenError::EpochMismatch {
                header: epoch,
                trailer,
            });
        }
        if r.at != bytes.len() {
            return Err(OpenError::Malformed("trailing bytes after trailer"));
        }

        store.set_free_list(free);
        store.set_epoch(epoch);
        Ok((store, meta))
    }
}

/// Cursor over the raw file image; every short read is a typed
/// [`OpenError::Truncated`].
struct Reader<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], OpenError> {
        let end = self.at.checked_add(n).ok_or(OpenError::Malformed(
            "region length overflows the file offset",
        ))?;
        if end > self.bytes.len() {
            return Err(OpenError::Truncated {
                needed: n,
                have: self.bytes.len() - self.at,
            });
        }
        let out = &self.bytes[self.at..end];
        self.at = end;
        Ok(out)
    }

    fn take_u64(&mut self) -> Result<u64, OpenError> {
        Ok(u64::from_le_bytes(slice8(self.take(8)?)))
    }
}

fn slice8(b: &[u8]) -> [u8; 8] {
    let mut out = [0u8; 8];
    out.copy_from_slice(&b[..8]);
    out
}

fn slice4(b: &[u8]) -> [u8; 4] {
    let mut out = [0u8; 4];
    out.copy_from_slice(&b[..4]);
    out
}

/// Encode a length field, rejecting sizes the `u32` file format can't
/// represent instead of truncating them.
fn len_u32(n: usize, what: &str) -> io::Result<u32> {
    u32::try_from(n).map_err(|_| {
        io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("{what} too large for index file format: {n}"),
        )
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shard::ReadProbe;

    fn temp_path(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("sti-persist-{}-{name}", std::process::id()));
        p
    }

    fn small_store() -> (PageStore, PageId, PageId, PageId) {
        let mut store = PageStore::new(4);
        let a = store.allocate().unwrap();
        let b = store.allocate().unwrap();
        let c = store.allocate().unwrap();
        store.write(a, &[1, 2, 3]).unwrap();
        store.write(b, &[4; 100]).unwrap();
        store.write(c, &[7]).unwrap();
        store.free(b).unwrap();
        (store, a, b, c)
    }

    #[test]
    fn round_trip_pages_meta_free_list_and_epoch() {
        let (mut store, a, b, c) = small_store();
        let meta = b"hello index metadata".to_vec();

        let path = temp_path("roundtrip");
        store.save_to(&path, &meta).expect("save");
        assert_eq!(store.epoch(), 1, "save bumps the epoch");
        let (mut back, meta2) = PageStore::load_from(&path, 4).expect("load");
        std::fs::remove_file(&path).ok();

        assert_eq!(meta2, meta);
        assert_eq!(back.epoch(), 1, "loaded store adopts the file epoch");
        assert_eq!(back.num_pages(), 3);
        assert_eq!(back.free_pages(), 1);
        assert_eq!(
            &back.read(a, &mut ReadProbe::new()).unwrap().bytes()[..3],
            &[1, 2, 3]
        );
        assert_eq!(
            &back.read(c, &mut ReadProbe::new()).unwrap().bytes()[..1],
            &[7]
        );
        // Freed page is handed out again on allocate.
        assert_eq!(back.allocate().unwrap(), b);
    }

    #[test]
    fn epoch_is_monotonic_across_saves() {
        let (mut store, ..) = small_store();
        let path = temp_path("epoch");
        store.save_to(&path, &[]).expect("save 1");
        store.save_to(&path, &[]).expect("save 2");
        store.save_to(&path, &[]).expect("save 3");
        let (back, _) = PageStore::load_from(&path, 2).expect("load");
        std::fs::remove_file(&path).ok();
        assert_eq!(back.epoch(), 3);
    }

    #[test]
    fn rejects_wrong_magic() {
        let path = temp_path("badmagic");
        let mut bogus = b"NOTANIDX".to_vec();
        bogus.extend_from_slice(&[0u8; 40]);
        std::fs::write(&path, &bogus).expect("write");
        let err = PageStore::load_from(&path, 4).unwrap_err();
        std::fs::remove_file(&path).ok();
        assert!(matches!(err, OpenError::BadMagic), "{err:?}");
    }

    #[test]
    fn zero_byte_and_sub_header_files_take_the_same_error_path() {
        let path = temp_path("empty");
        std::fs::write(&path, b"").expect("write");
        let err = PageStore::load_from(&path, 4).unwrap_err();
        assert!(
            matches!(err, OpenError::Truncated { have: 0, .. }),
            "{err:?}"
        );

        std::fs::write(&path, b"STIDX2\0\0short").expect("write");
        let err = PageStore::load_from(&path, 4).unwrap_err();
        std::fs::remove_file(&path).ok();
        assert!(
            matches!(err, OpenError::Truncated { have: 13, .. }),
            "{err:?}"
        );
    }

    #[test]
    fn rejects_truncated_file_at_any_cut() {
        let (mut store, ..) = small_store();
        let path = temp_path("trunc");
        store.save_to(&path, b"meta").expect("save");
        let full = std::fs::read(&path).expect("read");
        std::fs::remove_file(&path).ok();
        // Every prefix must be rejected, without panicking.
        for cut in [0, 1, 35, 36, 40, full.len() / 2, full.len() - 1] {
            let err = PageStore::decode(&full[..cut], 2).unwrap_err();
            assert!(
                matches!(err, OpenError::Truncated { .. } | OpenError::Corrupt { .. }),
                "cut at {cut}: {err:?}"
            );
        }
    }

    #[test]
    fn bit_flips_are_detected_in_every_region() {
        let (mut store, ..) = small_store();
        let path = temp_path("flip");
        store.save_to(&path, b"some meta").expect("save");
        let full = std::fs::read(&path).expect("read");
        std::fs::remove_file(&path).ok();

        // One flip inside the header, the meta, the free list, a page,
        // and the trailer — each must be caught.
        let header_at = 10;
        let meta_at = HEADER_LEN + 8 + 2;
        let free_at = HEADER_LEN + 8 + 9 + 8 + 1;
        let page_at = full.len() - 8 - (PAGE_SIZE + 8) - 100;
        let trailer_at = full.len() - 2;
        for at in [header_at, meta_at, free_at, page_at, trailer_at] {
            let mut corrupted = full.clone();
            corrupted[at] ^= 0x40;
            let err = PageStore::decode(&corrupted, 2).unwrap_err();
            assert!(
                matches!(
                    err,
                    OpenError::Corrupt { .. } | OpenError::EpochMismatch { .. }
                ),
                "flip at {at}: {err:?}"
            );
        }
    }

    #[test]
    fn mid_temp_crash_leaves_the_previous_file_intact() {
        let (mut store, a, ..) = small_store();
        let path = temp_path("midtemp");
        store.save_to(&path, b"v1").expect("save");

        store.write(a, &[99]).unwrap();
        store
            .save_to_crashing(&path, b"v2", SaveCrash::MidTemp { keep_bytes: 50 })
            .expect("simulated crash");
        assert_eq!(store.epoch(), 1, "crashed save must not bump the epoch");

        // The target still opens as v1; the torn temp fails closed.
        let (back, meta) = PageStore::load_from(&path, 2).expect("old file intact");
        assert_eq!(meta, b"v1");
        assert_eq!(back.epoch(), 1);
        let tmp = temp_sibling(&path);
        let err = PageStore::load_from(&tmp, 2).unwrap_err();
        assert!(matches!(err, OpenError::Truncated { .. }), "{err:?}");
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(&tmp).ok();
    }

    #[test]
    fn before_rename_crash_leaves_the_previous_file_current() {
        let (mut store, a, ..) = small_store();
        let path = temp_path("prerename");
        store.save_to(&path, b"v1").expect("save");
        store.write(a, &[42]).unwrap();
        store
            .save_to_crashing(&path, b"v2", SaveCrash::BeforeRename)
            .expect("simulated crash");

        let (_, meta) = PageStore::load_from(&path, 2).expect("load");
        assert_eq!(meta, b"v1", "rename never happened");
        // The complete temp is valid on its own (recovery could adopt
        // it), at the *next* epoch.
        let tmp = temp_sibling(&path);
        let (adopted, meta2) = PageStore::load_from(&tmp, 2).expect("temp is complete");
        assert_eq!(meta2, b"v2");
        assert_eq!(adopted.epoch(), 2);
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(&tmp).ok();
    }

    #[test]
    fn capacity_zero_buffer_replays_recovery_reads() {
        let (mut store, a, _, c) = small_store();
        let path = temp_path("cap0");
        store.save_to(&path, &[]).expect("save");
        let (back, _) = PageStore::load_from(&path, 0).expect("load");
        std::fs::remove_file(&path).ok();
        assert_eq!(
            &back.read(a, &mut ReadProbe::new()).unwrap().bytes()[..3],
            &[1, 2, 3]
        );
        assert_eq!(
            &back.read(c, &mut ReadProbe::new()).unwrap().bytes()[..1],
            &[7]
        );
        back.read(a, &mut ReadProbe::new()).unwrap();
        let st = back.stats();
        assert_eq!(st.reads, 3, "capacity 0: every fetch is a miss");
        assert_eq!(st.buffer_hits, 0);
    }

    #[test]
    fn loaded_store_counts_fresh_io() {
        let mut store = PageStore::new(2);
        let a = store.allocate().unwrap();
        store.write(a, &[1]).unwrap();
        let path = temp_path("io");
        store.save_to(&path, &[]).expect("save");
        let (back, _) = PageStore::load_from(&path, 2).expect("load");
        std::fs::remove_file(&path).ok();
        assert_eq!(back.stats().reads, 0);
        back.read(a, &mut ReadProbe::new()).unwrap();
        assert_eq!(back.stats().reads, 1);
    }

    /// A save that fails *after* the temp file is written — here the
    /// rename is forced to fail by making the target a directory — must
    /// clean its `.tmp` sibling up instead of leaving a partial image
    /// behind (the `stidx ingest` interrupted-mid-commit bug).
    #[test]
    fn failed_save_removes_its_temp_file() {
        let (mut store, ..) = small_store();
        let path = temp_path("tmp-cleanup");
        std::fs::remove_file(&path).ok();
        std::fs::create_dir_all(&path).expect("decoy directory");
        let err = store.save_to(&path, b"meta").unwrap_err();
        let tmp = temp_sibling(&path);
        let leftover = tmp.exists();
        std::fs::remove_dir_all(&path).ok();
        std::fs::remove_file(&tmp).ok();
        assert_eq!(store.epoch(), 0, "failed save must not bump the epoch");
        assert!(!leftover, "temp file survived a failed save: {err}");
    }

    #[test]
    fn rejects_duplicate_free_ids_and_trailing_garbage() {
        let (mut store, ..) = small_store();
        let path = temp_path("malformed");
        store.save_to(&path, &[]).expect("save");
        let mut full = std::fs::read(&path).expect("read");
        std::fs::remove_file(&path).ok();
        full.push(0);
        let err = PageStore::decode(&full, 2).unwrap_err();
        assert!(matches!(err, OpenError::Malformed(_)), "{err:?}");
    }
}
