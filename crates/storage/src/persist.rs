//! Saving and loading a [`PageStore`] (plus owner metadata) to a real
//! file, so a built index survives process restarts.
//!
//! File layout (all little-endian):
//!
//! ```text
//! magic "STIDX1\0\0" · meta_len: u32 · meta bytes · page_count: u32 ·
//! free_count: u32 · free page ids · raw pages (page_count × PAGE_SIZE)
//! ```
//!
//! The `meta` region belongs to the structure owning the store (tree
//! parameters, root log, counters); the store itself doesn't interpret
//! it.

use crate::{PageId, PageStore, PAGE_SIZE};
use std::fs::File;
use std::io::{self, Read, Write};
use std::path::Path;

/// Magic prefix identifying index files.
pub const MAGIC: &[u8; 8] = b"STIDX1\0\0";

impl PageStore {
    /// Write the store plus the owner's `meta` bytes to `path`.
    pub fn save_to(&self, path: &Path, meta: &[u8]) -> io::Result<()> {
        let mut f = File::create(path)?;
        f.write_all(MAGIC)?;
        f.write_all(&len_u32(meta.len(), "metadata")?.to_le_bytes())?;
        f.write_all(meta)?;
        f.write_all(&len_u32(self.num_pages(), "page count")?.to_le_bytes())?;
        let free = self.free_list();
        f.write_all(&len_u32(free.len(), "free list")?.to_le_bytes())?;
        for id in free {
            f.write_all(&id.to_le_bytes())?;
        }
        for i in 0..self.num_pages() {
            f.write_all(&self.raw_page(i as PageId).bytes()[..])?;
        }
        f.sync_all()
    }

    /// Read a store back from `path`, returning it together with the
    /// owner's meta bytes. The buffer pool starts empty with
    /// `buffer_pages` capacity; I/O counters start at zero.
    pub fn load_from(path: &Path, buffer_pages: usize) -> io::Result<(Self, Vec<u8>)> {
        let mut f = File::open(path)?;
        let mut magic = [0u8; 8];
        f.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "not an STIDX file",
            ));
        }
        let meta_len = read_u32(&mut f)? as usize;
        if meta_len > 1 << 24 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "oversized metadata",
            ));
        }
        let mut meta = vec![0u8; meta_len];
        f.read_exact(&mut meta)?;
        let page_count = read_u32(&mut f)? as usize;
        let free_count = read_u32(&mut f)? as usize;
        if free_count > page_count {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "free list exceeds pages",
            ));
        }
        let mut free = Vec::with_capacity(free_count);
        for _ in 0..free_count {
            let id = read_u32(&mut f)?;
            if id as usize >= page_count {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "free id out of range",
                ));
            }
            free.push(id);
        }
        let mut store = PageStore::new(buffer_pages);
        for _ in 0..page_count {
            let mut buf = vec![0u8; PAGE_SIZE];
            f.read_exact(&mut buf)?;
            let id = store.allocate_silent();
            store.raw_page_mut(id).fill_from(&buf);
        }
        store.set_free_list(free);
        Ok((store, meta))
    }
}

fn read_u32(f: &mut File) -> io::Result<u32> {
    let mut b = [0u8; 4];
    f.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

/// Encode a length field, rejecting sizes the `u32` file format can't
/// represent instead of truncating them.
fn len_u32(n: usize, what: &str) -> io::Result<u32> {
    u32::try_from(n).map_err(|_| {
        io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("{what} too large for index file format: {n}"),
        )
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("sti-persist-{}-{name}", std::process::id()));
        p
    }

    #[test]
    fn round_trip_pages_meta_and_free_list() {
        let mut store = PageStore::new(4);
        let a = store.allocate();
        let b = store.allocate();
        let c = store.allocate();
        store.write(a, &[1, 2, 3]);
        store.write(b, &[4; 100]);
        store.write(c, &[7]);
        store.free(b);
        let meta = b"hello index metadata".to_vec();

        let path = temp_path("roundtrip");
        store.save_to(&path, &meta).expect("save");
        let (mut back, meta2) = PageStore::load_from(&path, 4).expect("load");
        std::fs::remove_file(&path).ok();

        assert_eq!(meta2, meta);
        assert_eq!(back.num_pages(), 3);
        assert_eq!(back.free_pages(), 1);
        assert_eq!(&back.read(a).bytes()[..3], &[1, 2, 3]);
        assert_eq!(&back.read(c).bytes()[..1], &[7]);
        // Freed page is handed out again on allocate.
        assert_eq!(back.allocate(), b);
    }

    #[test]
    fn rejects_wrong_magic() {
        let path = temp_path("badmagic");
        std::fs::write(&path, b"NOTANIDX????????").expect("write");
        let err = PageStore::load_from(&path, 4).unwrap_err();
        std::fs::remove_file(&path).ok();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn rejects_truncated_file() {
        let mut store = PageStore::new(2);
        let a = store.allocate();
        store.write(a, &[9]);
        let path = temp_path("trunc");
        store.save_to(&path, b"meta").expect("save");
        let full = std::fs::read(&path).expect("read");
        std::fs::write(&path, &full[..full.len() - 100]).expect("truncate");
        assert!(PageStore::load_from(&path, 2).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn loaded_store_counts_fresh_io() {
        let mut store = PageStore::new(2);
        let a = store.allocate();
        store.write(a, &[1]);
        let path = temp_path("io");
        store.save_to(&path, &[]).expect("save");
        let (mut back, _) = PageStore::load_from(&path, 2).expect("load");
        std::fs::remove_file(&path).ok();
        assert_eq!(back.stats().reads, 0);
        back.read(a);
        assert_eq!(back.stats().reads, 1);
    }
}
