//! Bounds-checked little-endian byte encoding for page payloads.
//!
//! Tree nodes are serialized by hand (no serde in the hot path): layouts
//! are tiny, fixed, and version-controlled by the node code itself. These
//! two cursors keep the call sites readable and panic-free.

/// Error produced when decoding runs past the end of a page or encounters
/// an impossible value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// Tried to read `wanted` bytes with only `available` left.
    OutOfBounds { wanted: usize, available: usize },
    /// A decoded discriminant or count was not valid for the target type.
    InvalidValue(&'static str),
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::OutOfBounds { wanted, available } => {
                write!(
                    f,
                    "decode out of bounds: wanted {wanted} bytes, {available} available"
                )
            }
            CodecError::InvalidValue(what) => write!(f, "invalid encoded value: {what}"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Append-only little-endian writer over a byte buffer.
///
/// # Panics
/// Writing past the end of the buffer panics — encoders size their nodes
/// against the page capacity statically, so an overflow is a programming
/// error, not a runtime condition.
pub struct ByteWriter<'a> {
    buf: &'a mut [u8],
    pos: usize,
}

impl<'a> ByteWriter<'a> {
    /// Start writing at the beginning of `buf`.
    pub fn new(buf: &'a mut [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Bytes written so far.
    pub fn position(&self) -> usize {
        self.pos
    }

    fn put(&mut self, bytes: &[u8]) {
        let end = self.pos + bytes.len();
        assert!(
            end <= self.buf.len(),
            "page overflow at byte {end}/{}",
            self.buf.len()
        );
        self.buf[self.pos..end].copy_from_slice(bytes);
        self.pos = end;
    }

    /// Write a `u8`.
    pub fn put_u8(&mut self, v: u8) {
        self.put(&[v]);
    }

    /// Write a `u16` (little-endian).
    pub fn put_u16(&mut self, v: u16) {
        self.put(&v.to_le_bytes());
    }

    /// Write a `u32` (little-endian).
    pub fn put_u32(&mut self, v: u32) {
        self.put(&v.to_le_bytes());
    }

    /// Write a `u64` (little-endian).
    pub fn put_u64(&mut self, v: u64) {
        self.put(&v.to_le_bytes());
    }

    /// Write an `f64` (little-endian IEEE-754 bits).
    pub fn put_f64(&mut self, v: f64) {
        self.put(&v.to_le_bytes());
    }
}

/// Little-endian reader over a byte buffer with explicit error results.
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// Start reading at the beginning of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Bytes consumed so far.
    pub fn position(&self) -> usize {
        self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.pos + n > self.buf.len() {
            return Err(CodecError::OutOfBounds {
                wanted: n,
                available: self.buf.len() - self.pos,
            });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Take exactly `N` bytes as a fixed-size array, without any
    /// slice-length fallibility at the call sites.
    fn take_array<const N: usize>(&mut self) -> Result<[u8; N], CodecError> {
        let mut out = [0u8; N];
        out.copy_from_slice(self.take(N)?);
        Ok(out)
    }

    /// Read a `u8`.
    pub fn get_u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    /// Read a `u16`.
    pub fn get_u16(&mut self) -> Result<u16, CodecError> {
        Ok(u16::from_le_bytes(self.take_array()?))
    }

    /// Read a `u32`.
    pub fn get_u32(&mut self) -> Result<u32, CodecError> {
        Ok(u32::from_le_bytes(self.take_array()?))
    }

    /// Read a `u64`.
    pub fn get_u64(&mut self) -> Result<u64, CodecError> {
        Ok(u64::from_le_bytes(self.take_array()?))
    }

    /// Read an `f64`.
    pub fn get_f64(&mut self) -> Result<f64, CodecError> {
        Ok(f64::from_le_bytes(self.take_array()?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn round_trip_all_types() {
        let mut buf = [0u8; 64];
        let mut w = ByteWriter::new(&mut buf);
        w.put_u8(0xab);
        w.put_u16(0x1234);
        w.put_u32(0xdead_beef);
        w.put_u64(0x0123_4567_89ab_cdef);
        w.put_f64(-1.5e300);
        let written = w.position();
        assert_eq!(written, 1 + 2 + 4 + 8 + 8);

        let mut r = ByteReader::new(&buf[..written]);
        assert_eq!(r.get_u8().unwrap(), 0xab);
        assert_eq!(r.get_u16().unwrap(), 0x1234);
        assert_eq!(r.get_u32().unwrap(), 0xdead_beef);
        assert_eq!(r.get_u64().unwrap(), 0x0123_4567_89ab_cdef);
        assert_eq!(r.get_f64().unwrap(), -1.5e300);
        assert_eq!(r.position(), written);
    }

    #[test]
    fn reader_reports_out_of_bounds() {
        let buf = [0u8; 3];
        let mut r = ByteReader::new(&buf);
        r.get_u8().unwrap();
        let err = r.get_u32().unwrap_err();
        assert_eq!(
            err,
            CodecError::OutOfBounds {
                wanted: 4,
                available: 2
            }
        );
        assert!(err.to_string().contains("wanted 4"));
    }

    #[test]
    #[should_panic(expected = "page overflow")]
    fn writer_panics_on_overflow() {
        let mut buf = [0u8; 4];
        let mut w = ByteWriter::new(&mut buf);
        w.put_u64(1);
    }

    #[test]
    fn nan_round_trips_bitwise() {
        let mut buf = [0u8; 8];
        ByteWriter::new(&mut buf).put_f64(f64::NAN);
        let v = ByteReader::new(&buf).get_f64().unwrap();
        assert!(v.is_nan());
    }

    proptest! {
        #[test]
        fn u64_f64_round_trip(a in any::<u64>(), b in any::<f64>()) {
            let mut buf = [0u8; 16];
            let mut w = ByteWriter::new(&mut buf);
            w.put_u64(a);
            w.put_f64(b);
            let mut r = ByteReader::new(&buf);
            prop_assert_eq!(r.get_u64().unwrap(), a);
            let back = r.get_f64().unwrap();
            prop_assert_eq!(back.to_bits(), b.to_bits());
        }
    }
}
