//! `sti-load` — open-loop load generator for `sti-server`.
//!
//! ```text
//! sti-load --addr 127.0.0.1:7070 [--rate 200] [--requests 1000]
//!          [--concurrency 4] [--seed 1] [--time-extent 1000]
//!          [--json FILE] [--sample FILE] [--sample-every 50]
//!          [--allow-errors]
//! ```
//!
//! Open-loop means arrivals are *scheduled*, not reactive: request `i`
//! is due at `i / rate` seconds after start, and its latency is
//! measured from that scheduled instant — so when the server slows
//! down, the generator does not slow down with it, and queueing delay
//! lands in the tail instead of being coordinated away (the classic
//! closed-loop measurement bug).
//!
//! The workload is a seeded stream of snapshot and interval queries
//! over the unit square. `--json` writes the run in the `sti-bench/1`
//! report shape (`p50_secs`/`p95_secs`/`p99_secs` latency profile), so
//! `scripts/check_regression.py` can gate it against a committed
//! baseline. `--sample FILE` records every `--sample-every`-th
//! request's parameters and response body so CI can replay them through
//! `stidx query` and check the server byte-for-byte.
//!
//! Exits non-zero when any request failed (transport error or non-200),
//! unless `--allow-errors` is given (saturation tests expect 503s).

use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::process::ExitCode;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};
use sti_obs::{JsonValue, LatencyHistogram};
use sti_server::cli::parse_flags;

const USAGE: &str = "usage:
  sti-load --addr HOST:PORT [--rate R] [--requests N] [--concurrency C]
           [--seed S] [--time-extent T] [--json FILE]
           [--sample FILE] [--sample-every K] [--allow-errors]";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("sti-load: {msg}\n\n{USAGE}");
            ExitCode::FAILURE
        }
    }
}

/// One sampled request: enough to replay it through `stidx query`.
struct Sample {
    index: usize,
    area: String,
    time: u32,
    until: u32,
    status: u16,
    body: String,
}

/// What one issued request came back with.
enum Outcome {
    Status(u16, String),
    Transport(String),
}

fn run(args: &[String]) -> Result<(), String> {
    let flags = parse_flags(
        args,
        &[
            "addr",
            "rate",
            "requests",
            "concurrency",
            "seed",
            "time-extent",
            "json",
            "sample",
            "sample-every",
        ],
        &["allow-errors"],
    )?;
    let addr = flags.need("addr")?.to_string();
    let rate: f64 = flags.parsed("rate")?.unwrap_or(200.0);
    let requests: usize = flags.parsed("requests")?.unwrap_or(1000);
    let concurrency: usize = flags.parsed("concurrency")?.unwrap_or(4).max(1);
    let seed: u64 = flags.parsed("seed")?.unwrap_or(1);
    let time_extent: u32 = flags.parsed("time-extent")?.unwrap_or(1000);
    let sample_every: usize = flags.parsed("sample-every")?.unwrap_or(50).max(1);
    if !(rate.is_finite() && rate > 0.0) {
        return Err("--rate must be a positive number".into());
    }
    if requests == 0 {
        return Err("--requests must be at least 1".into());
    }

    let histogram = LatencyHistogram::new();
    let statuses: Mutex<BTreeMap<u16, u64>> = Mutex::new(BTreeMap::new());
    let transport_errors: Mutex<Vec<String>> = Mutex::new(Vec::new());
    let samples: Mutex<Vec<Sample>> = Mutex::new(Vec::new());
    let next = AtomicUsize::new(0);
    let want_samples = flags.get("sample").is_some();

    // Schedule the first arrival slightly in the future so thread
    // spawn time cannot create an artificial initial backlog.
    let start = Instant::now() + Duration::from_millis(50);
    std::thread::scope(|scope| {
        for _ in 0..concurrency {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= requests {
                    break;
                }
                let (area, time, until) = synth_query(seed, i, time_extent);
                let path = format!("/query?area={area}&time={time}&until={until}");
                let due = start + Duration::from_secs_f64(i as f64 / rate);
                let now = Instant::now();
                if due > now {
                    std::thread::sleep(due - now);
                }
                let outcome = issue(&addr, &path);
                // Latency from the *scheduled* arrival: queueing delay
                // caused by a slow server belongs in the measurement.
                histogram.observe(due.elapsed());
                match outcome {
                    Outcome::Status(code, body) => {
                        *statuses.lock().unwrap().entry(code).or_insert(0) += 1;
                        if want_samples && i.is_multiple_of(sample_every) {
                            samples.lock().unwrap().push(Sample {
                                index: i,
                                area: area.clone(),
                                time,
                                until,
                                status: code,
                                body,
                            });
                        }
                    }
                    Outcome::Transport(why) => {
                        let mut errs = transport_errors.lock().unwrap();
                        if errs.len() < 16 {
                            errs.push(why);
                        } else {
                            errs.push(String::new()); // count only
                        }
                    }
                }
            });
        }
    });
    let wall_secs = start.elapsed().as_secs_f64();

    let statuses = statuses.into_inner().unwrap();
    let transport = transport_errors.into_inner().unwrap();
    let ok = statuses.get(&200).copied().unwrap_or(0);
    let errors = requests as u64 - ok;
    let p50 = histogram.quantile(0.50);
    let p95 = histogram.quantile(0.95);
    let p99 = histogram.quantile(0.99);

    println!("sti-load: {requests} requests at {rate}/s, {concurrency} connections");
    println!(
        "  p50 {:.3} ms   p95 {:.3} ms   p99 {:.3} ms   wall {wall_secs:.2} s",
        p50 * 1e3,
        p95 * 1e3,
        p99 * 1e3
    );
    for (code, count) in &statuses {
        println!("  HTTP {code}: {count}");
    }
    if !transport.is_empty() {
        println!("  transport errors: {}", transport.len());
        for why in transport.iter().filter(|w| !w.is_empty()).take(4) {
            println!("    {why}");
        }
    }

    if let Some(json_path) = flags.get("json") {
        let report = render_report(
            requests,
            rate,
            concurrency,
            wall_secs,
            errors,
            p50,
            p95,
            p99,
            &statuses,
        );
        std::fs::write(json_path, report).map_err(|e| format!("writing {json_path}: {e}"))?;
    }

    if let Some(sample_path) = flags.get("sample") {
        let mut recorded = samples.into_inner().unwrap();
        recorded.sort_by_key(|s| s.index);
        let items = recorded.iter().map(|s| {
            JsonValue::object([
                ("i", JsonValue::UInt(s.index as u64)),
                ("area", JsonValue::str(s.area.clone())),
                ("time", JsonValue::UInt(u64::from(s.time))),
                ("until", JsonValue::UInt(u64::from(s.until))),
                ("status", JsonValue::UInt(u64::from(s.status))),
                ("body", JsonValue::str(s.body.clone())),
            ])
        });
        std::fs::write(sample_path, JsonValue::array(items).render_pretty())
            .map_err(|e| format!("writing {sample_path}: {e}"))?;
    }

    if errors > 0 && !flags.has("allow-errors") {
        return Err(format!(
            "{errors} of {requests} requests failed (non-200 or transport error)"
        ));
    }
    Ok(())
}

/// Deterministic query for request `i`: mostly snapshots, every fourth
/// an interval, windows sized like the paper's query mix.
fn synth_query(seed: u64, i: usize, time_extent: u32) -> (String, u32, u32) {
    let mut s = splitmix(seed ^ (i as u64).wrapping_mul(0x9E3779B97F4A7C15));
    let x0 = 0.85 * next_unit(&mut s);
    let y0 = 0.85 * next_unit(&mut s);
    let x1 = (x0 + 0.05 + 0.10 * next_unit(&mut s)).min(1.0);
    let y1 = (y0 + 0.05 + 0.10 * next_unit(&mut s)).min(1.0);
    let horizon = time_extent.max(2);
    let time = (next_unit(&mut s) * f64::from(horizon - 1)) as u32;
    let until = if i.is_multiple_of(4) {
        (time + 2 + (next_unit(&mut s) * 20.0) as u32).min(horizon)
    } else {
        time + 1
    };
    let until = until.max(time + 1);
    (format!("{x0:.4},{y0:.4},{x1:.4},{y1:.4}"), time, until)
}

/// splitmix64 step.
fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Advance the state and map to [0, 1).
fn next_unit(state: &mut u64) -> f64 {
    *state = splitmix(*state);
    (*state >> 11) as f64 / (1u64 << 53) as f64
}

/// Issue one request on a fresh connection; return the status or the
/// transport failure.
fn issue(addr: &str, path: &str) -> Outcome {
    match issue_inner(addr, path) {
        Ok((status, body)) => Outcome::Status(status, body),
        Err(why) => Outcome::Transport(why),
    }
}

fn issue_inner(addr: &str, path: &str) -> Result<(u16, String), String> {
    let mut stream = TcpStream::connect(addr).map_err(|e| format!("connect: {e}"))?;
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .map_err(|e| format!("timeout: {e}"))?;
    let head = format!("GET {path} HTTP/1.1\r\nHost: sti\r\nConnection: close\r\n\r\n");
    stream
        .write_all(head.as_bytes())
        .map_err(|e| format!("send: {e}"))?;
    let mut raw = Vec::new();
    stream
        .read_to_end(&mut raw)
        .map_err(|e| format!("recv: {e}"))?;
    let text = String::from_utf8_lossy(&raw);
    let status: u16 = text
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| {
            format!(
                "unparseable response: {:?}",
                text.chars().take(40).collect::<String>()
            )
        })?;
    let body = match text.split_once("\r\n\r\n") {
        Some((_, b)) => b.to_string(),
        None => String::new(),
    };
    Ok((status, body))
}

/// The `sti-bench/1` report shape `scripts/check_regression.py` gates.
#[allow(clippy::too_many_arguments)]
fn render_report(
    requests: usize,
    rate: f64,
    concurrency: usize,
    wall_secs: f64,
    errors: u64,
    p50: f64,
    p95: f64,
    p99: f64,
    statuses: &BTreeMap<u16, u64>,
) -> String {
    let row = vec![
        JsonValue::str("http"),
        JsonValue::str(requests.to_string()),
        JsonValue::str(errors.to_string()),
        JsonValue::str(format!("{:.3}", p50 * 1e3)),
        JsonValue::str(format!("{:.3}", p95 * 1e3)),
        JsonValue::str(format!("{:.3}", p99 * 1e3)),
    ];
    let profile = JsonValue::object([
        ("row", JsonValue::str("load")),
        ("series", JsonValue::str("http")),
        ("queries", JsonValue::UInt(requests as u64)),
        ("errors", JsonValue::UInt(errors)),
        ("wall_secs", JsonValue::Num(wall_secs)),
        ("p50_secs", JsonValue::Num(p50)),
        ("p95_secs", JsonValue::Num(p95)),
        ("p99_secs", JsonValue::Num(p99)),
    ]);
    let table = JsonValue::object([
        ("title", JsonValue::str("Open-loop load")),
        (
            "headers",
            JsonValue::array([
                JsonValue::str("series"),
                JsonValue::str("queries"),
                JsonValue::str("errors"),
                JsonValue::str("p50 (ms)"),
                JsonValue::str("p95 (ms)"),
                JsonValue::str("p99 (ms)"),
            ]),
        ),
        ("rows", JsonValue::array([JsonValue::Arr(row)])),
        ("profiles", JsonValue::array([profile])),
    ]);
    let mut scale = JsonValue::object([
        ("requests", JsonValue::UInt(requests as u64)),
        ("rate", JsonValue::Num(rate)),
        ("concurrency", JsonValue::UInt(concurrency as u64)),
    ]);
    let http = JsonValue::Obj(
        statuses
            .iter()
            .map(|(code, count)| (code.to_string(), JsonValue::UInt(*count)))
            .collect(),
    );
    let mut root = JsonValue::object([
        ("schema", JsonValue::str("sti-bench/1")),
        ("bench", JsonValue::str("load")),
    ]);
    root.push_field("scale", std::mem::replace(&mut scale, JsonValue::Null));
    root.push_field("wall_secs", JsonValue::Num(wall_secs));
    root.push_field("http", http);
    root.push_field("tables", JsonValue::array([table]));
    root.render_pretty()
}
